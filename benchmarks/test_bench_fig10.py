"""Benchmark for Figure 10: empirical error on (synthetic) Adult data, α = 0.9."""

from __future__ import annotations

import pytest

from repro.data.adult import generate_adult_like
from repro.experiments import fig10_adult


@pytest.mark.benchmark(group="figure-10")
def test_figure10_adult_error_rates(benchmark):
    dataset = generate_adult_like(num_records=8000, seed=10)

    result = benchmark(
        lambda: fig10_adult.run(
            group_sizes=(4, 8, 12),
            repetitions=20,
            dataset=dataset,
            seed=10,
        )
    )
    # Shape: UM's wrong-answer rate is the data-independent 1 - 1/(n+1).
    for row in result.rows:
        if row["mechanism"] == "UM":
            assert row["error_rate"] == pytest.approx(row["um_reference"], abs=0.03)

    # Shape: GM is worse than uniform guessing on this mid-heavy data, while
    # EM is the best (or tied best) mechanism for every target and group size.
    for target in ("young", "gender", "income"):
        for group_size in (4, 8, 12):
            ranking = fig10_adult.mechanism_ranking(result, target, group_size)
            assert ranking["GM"] >= ranking["UM"] - 0.02, (target, group_size)
            assert ranking["EM"] <= min(ranking.values()) + 0.02, (target, group_size)
