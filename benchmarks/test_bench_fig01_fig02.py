"""Benchmarks for Figures 1 and 2: unconstrained vs constrained LP designs.

Regenerates the four LP panels of each figure and checks the paper's shape:
every unconstrained optimum has gaps and spikes; adding the structural
constraints removes every gap at a bounded increase in objective value.
"""

from __future__ import annotations

import pytest

from repro.experiments import fig01_unconstrained, fig02_constrained


@pytest.mark.benchmark(group="figure-1")
def test_figure1_unconstrained_designs(benchmark):
    result = benchmark(lambda: fig01_unconstrained.run(include_heatmaps=False))
    assert len(result.rows) == 4
    # Shape: every unconstrained optimum exhibits the gap pathology.
    assert all(row["num_gap_outputs"] > 0 for row in result.rows)
    # Shape: the L2 design is (nearly) degenerate - one output dominates.
    l2_row = next(row for row in result.rows if row["case"] == "L2, n=7")
    assert l2_row["spike_ratio"] > 1.5


@pytest.mark.benchmark(group="figure-2")
def test_figure2_constrained_designs(benchmark):
    result = benchmark(lambda: fig02_constrained.run(include_heatmaps=False))
    assert len(result.rows) == 4
    # Shape: the constraints eliminate every gap and tame the spikes.
    assert all(row["num_gap_outputs"] == 0 for row in result.rows)
    assert all(row["spike_ratio"] < 1.6 for row in result.rows)
    # Shape: outputs stay within one step of the truth with probability > 1/2
    # for every input (the paper quotes ~2/3 for the L2 instance).
    assert all(row["min_within_1_probability"] > 0.5 for row in result.rows)


@pytest.mark.benchmark(group="figure-2")
def test_figure2_cost_of_constraints_is_bounded(benchmark):
    """Ablation: how much objective value do the seven properties cost?"""

    def run_both():
        unconstrained = fig01_unconstrained.run(include_heatmaps=False)
        constrained = fig02_constrained.run(include_heatmaps=False)
        return unconstrained, constrained

    unconstrained, constrained = benchmark(run_both)
    unconstrained_by_case = {row["case"]: row["objective_value"] for row in unconstrained.rows}
    for row in constrained.rows:
        # Constraints can only increase the objective, and for these panels the
        # increase stays within a factor ~2 (no blow-up).
        assert row["objective_value"] >= unconstrained_by_case[row["case"]] - 1e-9
        assert row["objective_value"] <= 2.5 * unconstrained_by_case[row["case"]] + 0.5
