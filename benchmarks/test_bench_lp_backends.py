"""Ablation benchmark: the two LP backends on the mechanism-design programs.

DESIGN.md calls out the LP backend as a substitution for the paper's
PyLPSolve.  This module times both backends on the same constrained design
problems and verifies they reach the same optimum — so the choice of backend
is a pure performance decision, not a correctness one.  The paper reports
"sub-second" LP solves on commodity hardware; the timings here confirm the
same order of magnitude for comparable n.
"""

from __future__ import annotations

import pytest

from repro.core.design import design_mechanism
from repro.core.losses import l0_score
from repro.core.theory import em_l0_score, gm_l0_score


@pytest.mark.benchmark(group="lp-backends")
@pytest.mark.parametrize("backend", ["scipy", "simplex"])
def test_unconstrained_design_backend(benchmark, backend):
    n, alpha = 7, 0.62
    mechanism = benchmark(lambda: design_mechanism(n, alpha, properties=(), backend=backend))
    assert l0_score(mechanism) == pytest.approx(gm_l0_score(alpha), abs=1e-7)


@pytest.mark.benchmark(group="lp-backends")
@pytest.mark.parametrize("backend", ["scipy", "simplex"])
def test_fully_constrained_design_backend(benchmark, backend):
    n, alpha = 7, 0.62
    mechanism = benchmark(
        lambda: design_mechanism(n, alpha, properties="all", backend=backend)
    )
    assert l0_score(mechanism) == pytest.approx(em_l0_score(n, alpha), abs=1e-7)


@pytest.mark.benchmark(group="lp-backends")
def test_scipy_backend_scales_to_larger_groups(benchmark):
    """The default backend must stay sub-second well beyond the paper's sizes."""
    n, alpha = 24, 0.9
    mechanism = benchmark(lambda: design_mechanism(n, alpha, properties="WH+CM+S"))
    assert l0_score(mechanism) <= em_l0_score(n, alpha) + 1e-6
