"""Benchmark for Figure 11: empirical L0,1 on Binomial data across (p, n, α)."""

from __future__ import annotations

import pytest

from repro.experiments import fig11_l01_binomial


@pytest.mark.benchmark(group="figure-11")
def test_figure11_l01_sweep(benchmark):
    result = benchmark(
        lambda: fig11_l01_binomial.run(
            alphas=(0.91, 0.67),
            group_sizes=(4, 8),
            probabilities=(0.1, 0.3, 0.5),
            repetitions=10,
            population=6000,
            seed=11,
        )
    )

    def cell(mechanism, alpha, group_size, probability):
        rows = [
            row
            for row in result.rows
            if row["mechanism"] == mechanism
            and row["alpha"] == pytest.approx(alpha)
            and row["group_size"] == group_size
            and row["probability"] == pytest.approx(probability)
        ]
        assert len(rows) == 1
        return rows[0]["exceeds_1_rate"]

    # Shape: input skew matters.  GM is competitive only for biased inputs
    # (p near 0); for balanced inputs the constrained mechanisms win.
    for group_size in (4, 8):
        assert cell("GM", 0.91, group_size, 0.1) < cell("GM", 0.91, group_size, 0.5)
        assert cell("EM", 0.91, group_size, 0.5) < cell("GM", 0.91, group_size, 0.5)

    # Shape: EM is much less sensitive to the input distribution than GM.
    for group_size in (4, 8):
        gm_spread = abs(cell("GM", 0.91, group_size, 0.5) - cell("GM", 0.91, group_size, 0.1))
        em_spread = abs(cell("EM", 0.91, group_size, 0.5) - cell("EM", 0.91, group_size, 0.1))
        assert em_spread < gm_spread

    # Shape: lowering alpha reduces the error and pulls WM towards GM.
    assert cell("GM", 0.67, 8, 0.5) < cell("GM", 0.91, 8, 0.5)
    assert abs(cell("WM", 0.67, 8, 0.5) - cell("GM", 0.67, 8, 0.5)) <= 0.08
