"""Benchmarks for the release engine: streaming vs one-shot execution.

Two guarantees of the engine refactor are asserted here, not just timed:

* streaming 10^6 mixed GM/EM requests at ``n = 10^5`` through a
  :class:`~repro.engine.executor.StreamExecutor` in fixed-size chunks
  releases **bit-identical** counts to the one-shot
  :meth:`~repro.core.mechanism.Mechanism.sample_tiled` path on the same
  seeded stream (the chunked serial discipline consumes the same uniforms
  in the same order);
* the streaming pass holds **peak incremental memory under a fixed bound**
  tied to the chunk size, far below the one-shot path's O(stream) working
  set — this is what lets ``serve-stream`` process unbounded stdin traffic.

Wall-clock gates are conservative for the 1-core CI box, and
``REPRO_BENCH_TINY=1`` (the CI smoke job) runs the same code paths at toy
sizes with the wall-clock/memory assertions disabled.
"""

from __future__ import annotations

import time
import tracemalloc

import numpy as np
import pytest
from _tiny import TINY

import repro
from repro.core.mechanism import Mechanism
from repro.engine import ReleasePlan, StreamExecutor
from repro.privacy import PrivacyAccountant

#: Group size / request volume for the streaming run (split across GM/EM).
N_STREAM = 512 if TINY else 100_000
REQUESTS_STREAM = 4_000 if TINY else 1_000_000
CHUNK_SIZE = 256 if TINY else 65_536

#: Peak incremental memory allowed while streaming one plan's half of the
#: requests.  The executor touches O(chunk) arrays per chunk (the counts
#: view, one uniform vector, bisection temporaries — roughly a dozen
#: chunk-sized float64/int64 arrays); the bound leaves ~3x headroom over
#: the ~6 MB measured at chunk 65536 and stays far below the one-shot
#: path's O(stream) working set (~60 MB measured for 5*10^5 requests).
STREAM_PEAK_BOUND = 24e6


def _traced(fn):
    """Run ``fn`` returning (result, seconds, peak_traced_bytes)."""
    tracemalloc.start()
    start = time.perf_counter()
    result = fn()
    elapsed = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return result, elapsed, peak


def test_streaming_million_mixed_requests_bit_identical_bounded_memory(rng):
    """10^6 mixed GM/EM requests: chunked == one-shot, memory O(chunk), no matrices."""
    n = N_STREAM
    half = REQUESTS_STREAM // 2
    densifications_before = Mechanism.densifications
    checks = []
    streaming_seconds = oneshot_seconds = 0.0
    for properties in ("", "F"):  # Figure-5 GM and EM branches
        plan = repro.compile_plan(n, 0.9, properties=properties)
        counts = rng.integers(0, n + 1, size=half)

        def stream():
            # Consume chunk by chunk, keeping only O(chunk) alive — the
            # integer-exact running reduction stands in for a downstream
            # consumer writing chunks out.
            executor = StreamExecutor(plan, chunk_size=CHUNK_SIZE)
            checksum = 0
            released_total = 0
            for chunk in executor.stream(counts, rng=np.random.default_rng(13)):
                checksum += int(chunk.sum())
                released_total += chunk.shape[0]
            return executor, checksum, released_total

        (executor, checksum, released_total), stream_elapsed, stream_peak = _traced(stream)
        one_shot, oneshot_elapsed, _ = _traced(
            lambda: plan.mechanism.sample_tiled(counts, 1, rng=np.random.default_rng(13))[0]
        )
        streaming_seconds += stream_elapsed
        oneshot_seconds += oneshot_elapsed
        assert released_total == half
        assert executor.stats.chunks == -(-half // CHUNK_SIZE)
        # Bit-identity: the chunked stream released exactly the one-shot
        # counts (sum over integer counts is exact in any order).
        assert checksum == int(one_shot.sum()), properties
        checks.append((properties, stream_peak))
        if not TINY:
            assert stream_peak < STREAM_PEAK_BOUND, (
                f"streaming {properties or 'GM'} peak {stream_peak / 1e6:.1f} MB "
                f"exceeds the {STREAM_PEAK_BOUND / 1e6:.0f} MB chunk-tied bound"
            )

    # Full per-element bit-identity on a slice-sized replay (cheap enough
    # to compare elementwise even at full scale).
    plan = repro.compile_plan(n, 0.9)
    replay = rng.integers(0, n + 1, size=min(half, 50_000))
    streamed = StreamExecutor(plan, chunk_size=CHUNK_SIZE).run(
        replay, rng=np.random.default_rng(29)
    )
    reference = plan.mechanism.sample_tiled(replay, 1, rng=np.random.default_rng(29))[0]
    assert np.array_equal(streamed, reference)

    assert Mechanism.densifications == densifications_before, (
        "streaming materialised a dense (n+1)^2 matrix"
    )
    if not TINY:
        # Conservative for the 1-core CI box (measured ~8s for the 10^6
        # total on the reference container).
        assert streaming_seconds < 90.0, (
            f"streaming 10^6 requests took {streaming_seconds:.1f}s"
        )
        # Chunking overhead must stay small relative to one-shot sampling.
        assert streaming_seconds < 3.0 * oneshot_seconds + 5.0, (
            f"streaming {streaming_seconds:.1f}s vs one-shot {oneshot_seconds:.1f}s"
        )


def test_budget_guarded_stream_charges_without_measurable_cost(rng):
    """Accountant charging adds bookkeeping, not sampling work, per chunk."""
    n = N_STREAM
    requests = REQUESTS_STREAM // 10
    plan = repro.compile_plan(n, 0.9)
    counts = rng.integers(0, n + 1, size=requests)
    chunks = -(-requests // CHUNK_SIZE)
    # A budget wide enough for every chunk: alpha^chunks stays above target.
    accountant = PrivacyAccountant(alpha_target=0.9 ** (chunks + 1))
    executor = StreamExecutor(plan, chunk_size=CHUNK_SIZE, accountant=accountant)

    def stream():
        total = 0
        for chunk in executor.stream(counts, rng=np.random.default_rng(31)):
            total += chunk.shape[0]
        return total

    total, elapsed, _ = _traced(stream)
    assert total == requests
    assert accountant.spent_alpha() == pytest.approx(0.9**chunks)
    assert executor.stats.chunks == chunks
    if not TINY:
        assert elapsed < 30.0, f"guarded streaming took {elapsed:.1f}s"


def test_durable_ledger_overhead_and_bit_identity(rng, tmp_path):
    """fsync'd WAL accounting stays within 15% of the plain seeded stream.

    The crash-safe path (PR 7) prepends one durable ledger append per chunk
    charge and one per completion checkpoint — O(chunks) fsyncs against
    O(requests) sampling work, so at the serving chunk size the overhead
    must be bookkeeping noise.  Gated at 1.15x (+1s absolute slack for the
    shared CI box); bit-identity of the released stream is asserted exactly,
    not within noise — durable accounting never touches the sampled bytes.
    """
    from repro.engine.durability import AccountantLedger

    n = N_STREAM
    requests = REQUESTS_STREAM
    plan = repro.compile_plan(n, 0.9)
    counts = rng.integers(0, n + 1, size=requests)
    chunks = -(-requests // CHUNK_SIZE)

    def plain():
        executor = StreamExecutor(plan, chunk_size=CHUNK_SIZE)
        return np.concatenate(list(executor.stream_seeded(counts, seed=17)))

    plain_released, plain_elapsed, _ = _traced(plain)

    ledger_path = tmp_path / "bench-ledger.bin"

    def ledgered():
        ledger = AccountantLedger.open(
            ledger_path, alpha_target=0.9 ** (chunks + 1)
        )
        executor = StreamExecutor(plan, chunk_size=CHUNK_SIZE, ledger=ledger)
        parts = []
        total = 0
        try:
            for index, chunk in executor.stream_durable(counts, seed=17):
                parts.append(chunk)
                total += chunk.shape[0]
                ledger.mark_done(index, chunk.shape[0], total, total * 8)
        finally:
            ledger.close()
        return np.concatenate(parts)

    ledger_released, ledger_elapsed, _ = _traced(ledgered)
    assert np.array_equal(ledger_released, plain_released)
    # The log replays to the exact spend and a complete resume prefix.
    with AccountantLedger.open(ledger_path) as replayed:
        assert replayed.spent_alpha() == pytest.approx(0.9**chunks)
        assert replayed.resume_state().next_chunk == chunks
    if not TINY:
        assert ledger_elapsed < 1.15 * plain_elapsed + 1.0, (
            f"durable ledger streaming {ledger_elapsed:.2f}s vs plain seeded "
            f"{plain_elapsed:.2f}s exceeds the 15% overhead gate"
        )


@pytest.mark.benchmark(group="engine")
def test_stream_executor_throughput(benchmark, rng):
    """Timed: chunked streaming through a compiled plan at the serving size."""
    plan = repro.compile_plan(N_STREAM, 0.9)
    counts = rng.integers(0, N_STREAM + 1, size=REQUESTS_STREAM // 20)

    def stream():
        executor = StreamExecutor(plan, chunk_size=CHUNK_SIZE)
        last = None
        for chunk in executor.stream(counts, rng=np.random.default_rng(0)):
            last = chunk
        return last

    last = benchmark(stream)
    assert last is not None
