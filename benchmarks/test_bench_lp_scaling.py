"""Benchmarks for the sparse vectorized LP pipeline.

The paper's design loop is one LP over ``(n + 1)^2`` variables with ~4
nonzeros per constraint row.  The sparse pipeline (triplet-block constraint
emission + CSR export + HiGHS-native sparse solve) is what lets mechanism
design scale past ``n ≈ 100``; this module asserts the headline guarantees
instead of just timing them:

* at ``n = 100`` the sparse pipeline builds **and** solves the design LP at
  least 5x faster than the dense path (loop-based emitters + dense export) —
  in practice the gap is an order of magnitude;
* both paths produce identical LP solutions, and identical mechanisms after
  renormalisation;
* a fully constrained (all seven properties) design at ``n = 300`` completes
  within an interactive time budget — the dense export alone would need
  ~43 GB for that program, so this was simply impossible before.

The timings use ``alpha = 0.5``: solver degeneracy grows sharply with
``alpha``, and pinning it keeps the benchmark about pipeline cost (build,
export, solver ingestion) rather than simplex pivoting pathologies.

Set ``REPRO_BENCH_TINY=1`` (the CI smoke job does) to run the same code at
toy sizes with the wall-clock assertions disabled, so the benchmark itself
cannot rot between full runs.
"""

from __future__ import annotations

import time

import numpy as np
import pytest
from _tiny import TINY

from repro.core.constraints import build_mechanism_lp
from repro.core.design import design_mechanism
from repro.lp.solver import solve

N_SPEEDUP = 16 if TINY else 100
N_LARGE = 10 if TINY else 300
ALPHA = 0.5

#: Required build+solve advantage of the sparse pipeline at ``N_SPEEDUP``.
MIN_SPEEDUP = 5.0

#: Generous wall-clock ceiling for the n=300 fully constrained design (the
#: measured time on one commodity core is ~20 s).
LARGE_BUDGET_SECONDS = 240.0


def _build_and_solve(n: int, vectorized: bool, sparse: bool, properties=()):
    """One full pipeline pass; returns (solution, mechanism matrix, seconds)."""
    start = time.perf_counter()
    mechanism_lp = build_mechanism_lp(
        n, ALPHA, properties=properties, vectorized=vectorized
    )
    solution = solve(mechanism_lp.program, sparse=sparse)
    elapsed = time.perf_counter() - start
    return solution, mechanism_lp.matrix_from_values(solution.values), elapsed


def test_sparse_pipeline_at_least_5x_faster_than_dense_at_n100():
    """The headline scaling guarantee, asserted on wall-clock time.

    Dense path = the original pipeline shape: per-constraint Python dict
    emitters plus an ``O(n^4)``-memory dense export (~1.6 GB at n=100).
    Sparse path = vectorized triplet blocks plus CSR export.
    """
    sparse_solution, sparse_matrix, sparse_seconds = _build_and_solve(
        N_SPEEDUP, vectorized=True, sparse=True
    )
    dense_solution, dense_matrix, dense_seconds = _build_and_solve(
        N_SPEEDUP, vectorized=False, sparse=False
    )
    # Same program, same solver: the solutions must agree exactly.
    assert np.array_equal(sparse_solution.values, dense_solution.values)
    assert np.array_equal(sparse_matrix, dense_matrix)
    if not TINY:
        assert dense_seconds >= MIN_SPEEDUP * sparse_seconds, (
            f"sparse pipeline only {dense_seconds / sparse_seconds:.1f}x faster "
            f"({sparse_seconds:.2f}s vs {dense_seconds:.2f}s)"
        )


def test_sparse_and_dense_mechanisms_bit_identical_at_small_n():
    """At a size where both paths are cheap, the pipelines are interchangeable."""
    for properties in ((), "WH+CM", "all"):
        sparse_solution, sparse_matrix, _ = _build_and_solve(
            8, vectorized=True, sparse=True, properties=properties
        )
        dense_solution, dense_matrix, _ = _build_and_solve(
            8, vectorized=False, sparse=False, properties=properties
        )
        assert np.array_equal(sparse_solution.values, dense_solution.values), properties
        assert np.array_equal(sparse_matrix, dense_matrix), properties


def test_fully_constrained_design_completes_at_n300():
    """An all-properties design at n=300 — unreachable with the dense export."""
    start = time.perf_counter()
    mechanism = design_mechanism(N_LARGE, ALPHA, properties="all")
    elapsed = time.perf_counter() - start
    size = N_LARGE + 1
    assert mechanism.matrix.shape == (size, size)
    assert np.allclose(mechanism.matrix.sum(axis=0), 1.0)
    assert mechanism.metadata["lp_variables"] == size * size
    assert mechanism.metadata["lp_nonzeros"] > 0
    assert mechanism.metadata["lp_solve_seconds"] <= elapsed
    if not TINY:
        assert elapsed < LARGE_BUDGET_SECONDS, f"n=300 design took {elapsed:.0f}s"


@pytest.mark.benchmark(group="lp-scaling")
def test_sparse_build_throughput(benchmark):
    """Constraint assembly alone: triplet blocks at a mid-size n."""
    n = 8 if TINY else 60

    program = benchmark(
        lambda: build_mechanism_lp(n, ALPHA, properties="all", vectorized=True).program
    )
    assert program.num_nonzeros() > 0


@pytest.mark.benchmark(group="lp-scaling")
def test_sparse_export_throughput(benchmark):
    """CSR export alone (the dense equivalent allocates O(n^4) memory)."""
    n = 8 if TINY else 60
    program = build_mechanism_lp(n, ALPHA, properties="all", vectorized=True).program

    arrays = benchmark(program.to_sparse_arrays)
    assert arrays["A_ub"].nnz > 0
