"""Serving-daemon throughput: cross-tenant coalescing vs per-request serving.

A closed-loop multi-client harness drives the daemon in-process at 1, 4 and
16 concurrent tenants, all requesting the same large-``n`` GM design (the
paper's "millions of users" serving shape: ``n`` = 100 000 puts the closed
form in its bisection regime, where every sampling call pays ~17 vectorised
CDF evaluations of fixed per-call cost — exactly the cost coalescing
amortises).  Each scenario is measured twice, identical in output bits:

* **coalesced** — ``batch_window_ms = 2``: same-plan requests from
  different tenants merge into one ``execute_with_uniforms`` draw;
* **per-request** — ``batch_window_ms = 0``: every request is served the
  moment it arrives (the behaviour of one CLI invocation per request,
  minus process startup).

The headline gate, asserted on wall-clock: at 16 concurrent same-plan
tenants, coalescing yields **at least 2x** the requests/sec of per-request
serving.  A third scenario measures **durable mode** (``--state-dir``:
per-batch group-committed fsync of the tenant budget ledgers) against
in-memory serving at 16 tenants, on 64-count histogram releases (durable
overhead is fixed per batch, so the gate weighs it against a batch doing
representative sampling work) — bit-identical outputs, at most 20% req/s
cost.  Requests/sec and p50/p99 latency land in ``BENCH_daemon.json`` via
:mod:`_metrics` and are regression-gated by
``scripts/check_bench_regression.py``.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np
from _metrics import record_case_metrics
from _tiny import TINY

from repro.serving import AsyncDaemonClient, ServingDaemon

#: Group size: bisection-regime closed form (TINY: toy size, same code path
#: through the daemon, column-cache sampling regime instead).
N = 512 if TINY else 100_000
ALPHA = 0.9
COUNTS_PER_REQUEST = 4
#: Timed requests per client connection.
REQUESTS = 3 if TINY else 30
#: The throughput gate at 16 concurrent same-plan tenants.
MIN_SPEEDUP_AT_16 = 2.0
#: Durable mode (per-batch group-committed fsync of the tenant ledgers)
#: may cost at most 20% of in-memory req/s at 16 tenants.
MIN_DURABLE_RATIO = 0.8
#: Counts per release in the durable scenario.  Durable overhead is fixed
#: per *batch* (one staged commit + one device flush, ~0.5 ms here no
#: matter how much the batch serves), so the gate measures it against a
#: batch carrying a histogram-release amount of sampling work; the 4-count
#: toy shape above would benchmark the disk's flush latency against
#: near-empty batches instead of the daemon's durability design.  64 also
#: leaves the gate margin against the flush's own drift — gapped-load
#: fdatasync on a contended shared disk swings ~2x run to run.
DURABLE_COUNTS_PER_REQUEST = 64


def _percentile_ms(latencies, fraction: float) -> float:
    ordered = np.sort(np.asarray(latencies))
    index = min(len(ordered) - 1, int(len(ordered) * fraction))
    return float(ordered[index] * 1e3)


async def _closed_loop(
    tenants: int,
    batch_window_ms: float,
    daemon_kwargs: dict = None,
    counts_per_request: int = COUNTS_PER_REQUEST,
) -> dict:
    """Drive ``tenants`` closed-loop clients; returns req/s and latencies."""
    daemon = ServingDaemon(
        batch_window_ms=batch_window_ms,
        seed=2018,
        max_tenants=max(64, tenants),
        **(daemon_kwargs or {}),
    )
    await daemon.start(port=0)
    rng = np.random.default_rng(5)
    workload = {
        tenant: [
            [int(c) for c in rng.integers(0, N + 1, size=counts_per_request)]
            for _ in range(REQUESTS)
        ]
        for tenant in range(tenants)
    }
    latencies: list = []
    released: dict = {}
    marks: list = []
    ready = asyncio.Barrier(tenants)

    async def client(tenant: int) -> None:
        connection = await AsyncDaemonClient.connect(
            host="127.0.0.1", port=daemon.port
        )
        await connection.hello(f"tenant-{tenant}")
        # One untimed warm-up release per client: the first request pays
        # plan compilation, sampler warm-up and (durable mode) ledger
        # creation — amortised startup cost, not steady-state serving
        # cost.  The barrier keeps the timed window to the steady state
        # all clients drive together.
        await connection.release([0] * counts_per_request, n=N, alpha=ALPHA)
        await ready.wait()
        marks.append(time.perf_counter())
        for counts in workload[tenant]:
            start = time.perf_counter()
            response = await connection.release(counts, n=N, alpha=ALPHA)
            latencies.append(time.perf_counter() - start)
            assert response["code"] == 0, response
            released.setdefault(tenant, []).append(response["released"])
        marks.append(time.perf_counter())
        await connection.close()

    await asyncio.gather(*(client(tenant) for tenant in range(tenants)))
    wall = max(marks) - min(marks)
    stats = daemon.stats_payload()
    await daemon.stop()
    return {
        "req_per_s": tenants * REQUESTS / wall,
        "p50_ms": _percentile_ms(latencies, 0.50),
        "p99_ms": _percentile_ms(latencies, 0.99),
        "released": released,
        "coalesced_requests": stats["coalesced_requests"],
        "plans_compiled": stats["plans_compiled"],
    }


def _run_scenario(case: str, tenants: int) -> dict:
    coalesced = asyncio.run(_closed_loop(tenants, batch_window_ms=2.0))
    per_request = asyncio.run(_closed_loop(tenants, batch_window_ms=0.0))

    # Coalescing must never change a single released bit: the same seeded
    # tenant substreams produce identical outputs in both modes.
    assert coalesced["released"] == per_request["released"]
    # One shared plan serves every tenant in both modes.
    assert coalesced["plans_compiled"] == 1

    speedup = coalesced["req_per_s"] / per_request["req_per_s"]
    record_case_metrics(
        case,
        req_per_s=coalesced["req_per_s"],
        p50_ms=coalesced["p50_ms"],
        p99_ms=coalesced["p99_ms"],
        per_request_req_per_s=per_request["req_per_s"],
        per_request_p50_ms=per_request["p50_ms"],
        per_request_p99_ms=per_request["p99_ms"],
        speedup=speedup,
    )
    return {"coalesced": coalesced, "per_request": per_request, "speedup": speedup}


def test_daemon_throughput_1_tenant():
    """Single tenant: coalescing must not cost latency (group-commit flush)."""
    result = _run_scenario("test_daemon_throughput_1_tenant", tenants=1)
    # With one connection the batcher flushes the moment its request is
    # pending — the window never adds a wait, so the two modes are within
    # noise of each other.  No wall-clock gate (single-stream timings on
    # shared runners are noise); the recorded metrics carry the trajectory.
    assert result["coalesced"]["coalesced_requests"] == 0  # nothing to merge


def test_daemon_throughput_4_tenants():
    result = _run_scenario("test_daemon_throughput_4_tenants", tenants=4)
    if not TINY:
        # Merging is happening (the gate itself lives at 16 tenants).
        assert result["coalesced"]["coalesced_requests"] > 0


def test_daemon_throughput_16_tenants():
    """The headline gate: >= 2x req/s from coalescing at high concurrency."""
    result = _run_scenario("test_daemon_throughput_16_tenants", tenants=16)
    if not TINY:
        assert result["coalesced"]["coalesced_requests"] > 0
        assert result["speedup"] >= MIN_SPEEDUP_AT_16, (
            f"coalescing speedup {result['speedup']:.2f}x at 16 tenants is "
            f"below the {MIN_SPEEDUP_AT_16:.1f}x gate "
            f"(coalesced {result['coalesced']['req_per_s']:.0f} req/s vs "
            f"per-request {result['per_request']['req_per_s']:.0f} req/s)"
        )


def test_daemon_durable_overhead_16_tenants(tmp_path):
    """Durable budgets (--state-dir) cost <= 20% req/s at 16 tenants.

    Every batch pays one staged group commit plus one device flush —
    charges durable before any sample — so the overhead is fixed per
    *batch*, not per request; the scenario serves
    ``DURABLE_COUNTS_PER_REQUEST``-count releases so each batch carries a
    representative amount of sampling work (see that constant's note).
    Released bits must be identical to in-memory serving: durability only
    changes *when* the charge hits the disk, never which substream a
    request samples from.
    """
    # Interleave three timed runs per mode and score each mode by its
    # best: the ratio compares two ~100 ms windows on a shared host whose
    # speed (and flush latency) drifts by more than the 20% budget being
    # asserted, and interleaved best-of-3 cancels that drift without
    # touching what is measured.  Every run must release identical bits
    # (each durable run replays the same recovery path from its own fresh
    # state dir).
    def durable_run(tag: str) -> dict:
        return asyncio.run(
            _closed_loop(
                16,
                batch_window_ms=2.0,
                # The warm-up plus the timed requests all fit the budget:
                # budgets gate admission, never the sampled bits.
                daemon_kwargs={
                    "state_dir": tmp_path / f"state-{tag}",
                    "budget_alpha": 0.01,
                },
                counts_per_request=DURABLE_COUNTS_PER_REQUEST,
            )
        )

    def in_memory_run() -> dict:
        return asyncio.run(
            _closed_loop(
                16,
                batch_window_ms=2.0,
                counts_per_request=DURABLE_COUNTS_PER_REQUEST,
            )
        )

    def measure(attempt: int):
        rounds = [
            (durable_run(f"{attempt}-{tag}"), in_memory_run())
            for tag in ("a", "b", "c")
        ]
        for durable_round, in_memory_round in rounds:
            assert durable_round["released"] == in_memory_round["released"]
            assert durable_round["released"] == rounds[0][0]["released"]
        durable = max((r[0] for r in rounds), key=lambda r: r["req_per_s"])
        in_memory = max((r[1] for r in rounds), key=lambda r: r["req_per_s"])
        return durable, in_memory, durable["req_per_s"] / in_memory["req_per_s"]

    # One re-measure before failing: the device flush's gapped-load
    # latency has a fat tail under host disk contention, and a single bad
    # ~2 s window should read as "measure again", not as a regression.
    # The bit-identity assertions above are never retried.
    durable, in_memory, ratio = measure(1)
    if not TINY and ratio < MIN_DURABLE_RATIO:
        durable, in_memory, ratio = measure(2)
    record_case_metrics(
        "test_daemon_durable_overhead_16_tenants",
        req_per_s=durable["req_per_s"],
        p50_ms=durable["p50_ms"],
        p99_ms=durable["p99_ms"],
        in_memory_req_per_s=in_memory["req_per_s"],
        durable_ratio=ratio,
    )
    if not TINY:
        assert ratio >= MIN_DURABLE_RATIO, (
            f"durable serving holds {ratio:.2f}x of in-memory req/s at 16 "
            f"tenants, below the {MIN_DURABLE_RATIO:.1f}x gate "
            f"(durable {durable['req_per_s']:.0f} req/s vs in-memory "
            f"{in_memory['req_per_s']:.0f} req/s)"
        )
