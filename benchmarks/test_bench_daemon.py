"""Serving-daemon throughput: cross-tenant coalescing vs per-request serving.

A closed-loop multi-client harness drives the daemon in-process at 1, 4 and
16 concurrent tenants, all requesting the same large-``n`` GM design (the
paper's "millions of users" serving shape: ``n`` = 100 000 puts the closed
form in its bisection regime, where every sampling call pays ~17 vectorised
CDF evaluations of fixed per-call cost — exactly the cost coalescing
amortises).  Each scenario is measured twice, identical in output bits:

* **coalesced** — ``batch_window_ms = 2``: same-plan requests from
  different tenants merge into one ``execute_with_uniforms`` draw;
* **per-request** — ``batch_window_ms = 0``: every request is served the
  moment it arrives (the behaviour of one CLI invocation per request,
  minus process startup).

The headline gate, asserted on wall-clock: at 16 concurrent same-plan
tenants, coalescing yields **at least 2x** the requests/sec of per-request
serving.  Requests/sec and p50/p99 latency land in ``BENCH_daemon.json``
via :mod:`_metrics` and are regression-gated by
``scripts/check_bench_regression.py``.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np
from _metrics import record_case_metrics
from _tiny import TINY

from repro.serving import AsyncDaemonClient, ServingDaemon

#: Group size: bisection-regime closed form (TINY: toy size, same code path
#: through the daemon, column-cache sampling regime instead).
N = 512 if TINY else 100_000
ALPHA = 0.9
COUNTS_PER_REQUEST = 4
#: Timed requests per client connection.
REQUESTS = 3 if TINY else 30
#: The throughput gate at 16 concurrent same-plan tenants.
MIN_SPEEDUP_AT_16 = 2.0


def _percentile_ms(latencies, fraction: float) -> float:
    ordered = np.sort(np.asarray(latencies))
    index = min(len(ordered) - 1, int(len(ordered) * fraction))
    return float(ordered[index] * 1e3)


async def _closed_loop(tenants: int, batch_window_ms: float) -> dict:
    """Drive ``tenants`` closed-loop clients; returns req/s and latencies."""
    daemon = ServingDaemon(
        batch_window_ms=batch_window_ms, seed=2018, max_tenants=max(64, tenants)
    )
    await daemon.start(port=0)
    rng = np.random.default_rng(5)
    workload = {
        tenant: [
            [int(c) for c in rng.integers(0, N + 1, size=COUNTS_PER_REQUEST)]
            for _ in range(REQUESTS)
        ]
        for tenant in range(tenants)
    }
    latencies: list = []
    released: dict = {}

    async def client(tenant: int) -> None:
        connection = await AsyncDaemonClient.connect(
            host="127.0.0.1", port=daemon.port
        )
        await connection.hello(f"tenant-{tenant}")
        # One untimed warm-up release per client: the first request pays
        # plan compilation and sampler warm-up, which is amortised startup
        # cost, not steady-state serving cost.
        await connection.release([0] * COUNTS_PER_REQUEST, n=N, alpha=ALPHA)
        for counts in workload[tenant]:
            start = time.perf_counter()
            response = await connection.release(counts, n=N, alpha=ALPHA)
            latencies.append(time.perf_counter() - start)
            assert response["code"] == 0, response
            released.setdefault(tenant, []).append(response["released"])
        await connection.close()

    start = time.perf_counter()
    await asyncio.gather(*(client(tenant) for tenant in range(tenants)))
    wall = time.perf_counter() - start
    stats = daemon.stats_payload()
    await daemon.stop()
    return {
        "req_per_s": tenants * REQUESTS / wall,
        "p50_ms": _percentile_ms(latencies, 0.50),
        "p99_ms": _percentile_ms(latencies, 0.99),
        "released": released,
        "coalesced_requests": stats["coalesced_requests"],
        "plans_compiled": stats["plans_compiled"],
    }


def _run_scenario(case: str, tenants: int) -> dict:
    coalesced = asyncio.run(_closed_loop(tenants, batch_window_ms=2.0))
    per_request = asyncio.run(_closed_loop(tenants, batch_window_ms=0.0))

    # Coalescing must never change a single released bit: the same seeded
    # tenant substreams produce identical outputs in both modes.
    assert coalesced["released"] == per_request["released"]
    # One shared plan serves every tenant in both modes.
    assert coalesced["plans_compiled"] == 1

    speedup = coalesced["req_per_s"] / per_request["req_per_s"]
    record_case_metrics(
        case,
        req_per_s=coalesced["req_per_s"],
        p50_ms=coalesced["p50_ms"],
        p99_ms=coalesced["p99_ms"],
        per_request_req_per_s=per_request["req_per_s"],
        per_request_p50_ms=per_request["p50_ms"],
        per_request_p99_ms=per_request["p99_ms"],
        speedup=speedup,
    )
    return {"coalesced": coalesced, "per_request": per_request, "speedup": speedup}


def test_daemon_throughput_1_tenant():
    """Single tenant: coalescing must not cost latency (group-commit flush)."""
    result = _run_scenario("test_daemon_throughput_1_tenant", tenants=1)
    # With one connection the batcher flushes the moment its request is
    # pending — the window never adds a wait, so the two modes are within
    # noise of each other.  No wall-clock gate (single-stream timings on
    # shared runners are noise); the recorded metrics carry the trajectory.
    assert result["coalesced"]["coalesced_requests"] == 0  # nothing to merge


def test_daemon_throughput_4_tenants():
    result = _run_scenario("test_daemon_throughput_4_tenants", tenants=4)
    if not TINY:
        # Merging is happening (the gate itself lives at 16 tenants).
        assert result["coalesced"]["coalesced_requests"] > 0


def test_daemon_throughput_16_tenants():
    """The headline gate: >= 2x req/s from coalescing at high concurrency."""
    result = _run_scenario("test_daemon_throughput_16_tenants", tenants=16)
    if not TINY:
        assert result["coalesced"]["coalesced_requests"] > 0
        assert result["speedup"] >= MIN_SPEEDUP_AT_16, (
            f"coalescing speedup {result['speedup']:.2f}x at 16 tenants is "
            f"below the {MIN_SPEEDUP_AT_16:.1f}x gate "
            f"(coalesced {result['coalesced']['req_per_s']:.0f} req/s vs "
            f"per-request {result['per_request']['req_per_s']:.0f} req/s)"
        )
