"""Benchmarks for the vectorised empirical evaluation pipeline.

Three guarantees of the evaluation rework are asserted here, not just
timed, at the acceptance operating point ``(n = 32, num_groups = 10^4,
repetitions = 50)``:

* ``evaluate_mechanism`` (one tiled sample + matrix metric kernels) is at
  least **10x faster** than the sequential scalar reference — the
  paper-faithful loop that releases one group at a time and computes each
  metric per repetition (measured ~1000x on the reference machine) — and at
  least **2x faster** than the batched repetition loop kept as
  ``_evaluate_loop`` (measured ~4-6x);
* the per-repetition metric values of all three paths are **bit-identical**
  (same uniform stream, same exact inverse-CDF sampler, exact integer
  reductions);
* a parallel sweep (``max_workers = 4``) reproduces the serial sweep's rows
  **exactly**, row for row.

``REPRO_BENCH_TINY=1`` (the CI smoke job) runs the same code paths at toy
sizes with the wall-clock assertions disabled.
"""

from __future__ import annotations

import time

import numpy as np
from _tiny import TINY

from repro.core.mechanism import DenseMechanism
from repro.eval import metrics as metrics_module
from repro.eval.empirical import DEFAULT_METRICS, _evaluate_loop, evaluate_mechanism
from repro.eval.sweep import sweep
from repro.mechanisms.geometric import geometric_matrix, geometric_mechanism

#: The acceptance operating point for the evaluation speedup.
N = 8 if TINY else 32
NUM_GROUPS = 500 if TINY else 10_000
REPETITIONS = 5 if TINY else 50

#: Repetitions actually timed for the scalar reference (it is ~1000x slower
#: than the vectorised path; its per-repetition cost is measured on a few
#: repetitions and scaled).
SCALAR_REPETITIONS = 2 if TINY else 2


def _scalar_reference(mechanism, counts, repetitions, seed):
    """The paper-faithful sequential path: one scalar draw per group.

    Releases every group with an individual ``mechanism.sample`` call and
    computes every metric with one Python call per repetition.  Consumes
    one uniform per group in the same stream order as the batch and tiled
    samplers, so its metric values are bit-identical to theirs.
    """
    rng = np.random.default_rng(seed)
    per_repetition = {name: [] for name in DEFAULT_METRICS}
    for _ in range(repetitions):
        released = np.array([mechanism.sample(int(count), rng=rng) for count in counts])
        for name, function in DEFAULT_METRICS.items():
            per_repetition[name].append(function(counts, released))
    return {name: np.asarray(values) for name, values in per_repetition.items()}


def _best_of(fn, repeats=3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def test_vectorized_evaluation_speedup_and_bit_identity(rng):
    """The headline guarantee: >=10x over the scalar path, >=2x over the loop."""
    counts = rng.integers(0, N + 1, size=NUM_GROUPS)
    mechanism = geometric_mechanism(N, 0.9)
    evaluate_mechanism(mechanism, counts, group_size=N, repetitions=2, seed=0)  # warm

    vectorized, vectorized_seconds = _best_of(
        lambda: evaluate_mechanism(
            mechanism, counts, group_size=N, repetitions=REPETITIONS, seed=1
        )
    )
    loop, loop_seconds = _best_of(
        lambda: _evaluate_loop(
            mechanism, counts, group_size=N, repetitions=REPETITIONS, seed=1
        )
    )
    start = time.perf_counter()
    scalar = _scalar_reference(mechanism, counts, SCALAR_REPETITIONS, seed=1)
    scalar_seconds = (time.perf_counter() - start) * REPETITIONS / SCALAR_REPETITIONS

    # Bit-identical per-repetition metric values across all three paths.
    assert vectorized.metrics() == loop.metrics()
    for name in vectorized.metrics():
        assert np.array_equal(vectorized.per_repetition[name], loop.per_repetition[name]), name
        assert np.array_equal(
            vectorized.per_repetition[name][:SCALAR_REPETITIONS], scalar[name]
        ), name

    scalar_speedup = scalar_seconds / vectorized_seconds
    loop_speedup = loop_seconds / vectorized_seconds
    if not TINY:
        assert scalar_speedup >= 10.0, (
            f"vectorized evaluation only {scalar_speedup:.1f}x faster than the "
            f"scalar sequential reference ({vectorized_seconds * 1e3:.1f} ms vs "
            f"~{scalar_seconds * 1e3:.0f} ms)"
        )
        assert loop_speedup >= 2.0, (
            f"vectorized evaluation only {loop_speedup:.1f}x faster than the "
            f"batched repetition loop ({vectorized_seconds * 1e3:.1f} ms vs "
            f"{loop_seconds * 1e3:.1f} ms)"
        )


def test_dense_representation_matches_and_speeds_up(rng):
    """The tiled guide path serves the dense backend too, bit-identically."""
    counts = rng.integers(0, N + 1, size=NUM_GROUPS)
    dense = DenseMechanism(geometric_matrix(N, 0.9), name="GM", alpha=0.9)
    closed = geometric_mechanism(N, 0.9)
    dense_result = evaluate_mechanism(
        dense, counts, group_size=N, repetitions=REPETITIONS, seed=3
    )
    closed_result = evaluate_mechanism(
        closed, counts, group_size=N, repetitions=REPETITIONS, seed=3
    )
    for name in dense_result.metrics():
        assert np.array_equal(
            dense_result.per_repetition[name], closed_result.per_repetition[name]
        ), name


def test_distance_profile_single_pass(rng):
    """The Figure-12 d-sweep: every threshold from one histogram pass."""
    counts = rng.integers(0, N + 1, size=NUM_GROUPS)
    mechanism = geometric_mechanism(N, 0.67)
    family = metrics_module.distance_metrics(range(8))
    vectorized, vectorized_seconds = _best_of(
        lambda: evaluate_mechanism(
            mechanism, counts, group_size=N, repetitions=REPETITIONS,
            metrics=family, seed=5,
        )
    )
    loop, loop_seconds = _best_of(
        lambda: _evaluate_loop(
            mechanism, counts, group_size=N, repetitions=REPETITIONS,
            metrics=family, seed=5,
        )
    )
    for name in family:
        assert np.array_equal(vectorized.per_repetition[name], loop.per_repetition[name])
    if not TINY:
        assert loop_seconds / vectorized_seconds >= 2.0, (
            f"multi-threshold profile only {loop_seconds / vectorized_seconds:.1f}x "
            "faster than per-threshold metric calls"
        )


def test_parallel_sweep_reproduces_serial_rows():
    """max_workers=4 must change wall-clock only, never a row."""
    kwargs = dict(
        alphas=[0.67, 0.91],
        group_sizes=[4, 8],
        probabilities=[0.3, 0.5],
        mechanisms=("GM", "WM", "EM", "UM"),
        repetitions=3 if TINY else 10,
        num_groups=100 if TINY else 2_000,
        seed=2018,
    )
    serial = sweep(**kwargs)
    parallel = sweep(max_workers=4, **kwargs)
    assert len(serial.rows) == len(parallel.rows) == 2 * 2 * 2 * 4
    assert serial.rows == parallel.rows
