"""Shared toy-size switch for the benchmark suite.

``REPRO_BENCH_TINY=1`` (set by the CI smoke job) runs every benchmark's code
path at toy sizes with wall-clock assertions disabled: shared runners are
too noisy for perf gates, but the code itself must not rot.  Benchmark
modules import the flag from here so the semantics live in one place.
"""

from __future__ import annotations

import os

#: True when the benchmarks should run at toy sizes without perf assertions.
TINY = os.environ.get("REPRO_BENCH_TINY", "") not in ("", "0")
