"""Benchmarks for the plan registry and LP warm-starting.

Four guarantees from the registry layer are asserted here, not just timed:

* **registry-hit serving** — a design point solved once and persisted in the
  sqlite plan registry is served to a fresh process at least **5x** faster
  than the cold LP solve it replaces, at ``n >= 200`` (in practice the gap
  is three orders of magnitude), and the registry-loaded mechanism is
  bit-identical to the cold one;
* **simplex warm-starting** — a cold ``(n, alpha)`` miss whose neighbour on
  the registry's ``(n, alpha)`` index is cached warm-starts the in-repo
  two-phase simplex from the neighbour's optimal basis, at least **5x**
  faster than the cold two-phase solve (phase 1 is skipped entirely), with
  the warm objective equal to the cold reference within ``1e-9`` and the
  warm matrix verified feasible (columns sum to 1, entries non-negative);
* **zero-solve grid serving** — after ``repro-mechanisms warm`` fills a
  registry, a freshly constructed cache (the daemon-restart shape) compiles
  every grid point into a :class:`~repro.engine.plan.ReleasePlan` with
  **zero** LP solves, measured through the solver call counter;
* **opt-out bit-identity** — with ``REPRO_NO_WARMSTART=1`` the solve next
  to a populated registry is bit-identical to a solve with no registry at
  all (the cold path is byte-for-byte today's behaviour).

Solve times land in ``BENCH_registry.json`` via :mod:`_metrics` as
lower-is-better ``*_s`` seconds metrics (plus higher-is-better
``speedup_x``), gated by ``scripts/check_bench_regression.py``.

Set ``REPRO_BENCH_TINY=1`` (the CI registry-smoke job does) to run the same
code at toy sizes with the wall-clock assertions disabled.
"""

from __future__ import annotations

import time

import numpy as np
import pytest
from _metrics import record_case_metrics
from _tiny import TINY

from repro.core.selector import choose_mechanism
from repro.engine.plan import ReleasePlan
from repro.lp.solver import solve_call_count
from repro.serving import DesignCache, warm_grid

#: Registry-hit case: the acceptance gate is "n >= 200", where a cold
#: scipy/HiGHS solve of the WH+CM design costs seconds and a registry load
#: costs milliseconds.  TINY keeps the identical code path at a toy size.
N_REGISTRY = 16 if TINY else 220
#: Simplex warm-start case: the in-repo dense two-phase simplex is the
#: warm-startable backend; at n = 10 the standard form has ~650 columns and
#: a cold solve pays hundreds of phase-1 + phase-2 pivots that the imported
#: neighbour basis skips outright.
N_WARM = 6 if TINY else 10
ALPHA = 0.9
#: The warm/registry serving advantage both headline gates require.
MIN_SPEEDUP = 5.0
#: Warm solutions must match the cold reference objective this tightly.
OBJECTIVE_TOLERANCE = 1e-9

pytestmark = pytest.mark.usefixtures("_no_warmstart_env_leak")


@pytest.fixture
def _no_warmstart_env_leak(monkeypatch):
    """Benchmarks measure the default (warm-start enabled) configuration."""
    monkeypatch.delenv("REPRO_NO_WARMSTART", raising=False)


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _assert_feasible(matrix: np.ndarray) -> None:
    """A mechanism matrix is column-stochastic and non-negative."""
    assert matrix.min() >= -1e-12
    np.testing.assert_allclose(matrix.sum(axis=0), 1.0, atol=1e-9)


def test_registry_hit_5x_faster_than_cold_solve(tmp_path):
    """The headline serving gate: persisted plans beat re-solving by >= 5x."""
    cold_cache = DesignCache(directory=tmp_path)
    (cold_mech, _), cold_seconds = _timed(
        lambda: cold_cache.get_or_design(N_REGISTRY, ALPHA, properties="WH+CM")
    )
    assert cold_mech.metadata["design_cache"] == "solve"
    cold_cache.close()

    # A fresh cache over the same directory is the daemon-restart shape:
    # empty memory tier, every hit comes off the sqlite registry.
    warm_cache = DesignCache(directory=tmp_path)
    (warm_mech, _), hit_seconds = _timed(
        lambda: warm_cache.get_or_design(N_REGISTRY, ALPHA, properties="WH+CM")
    )
    assert warm_mech.metadata["design_cache"] == "disk"
    assert warm_cache.stats().tiers == {"memory": 0, "registry": 1, "solve": 0}
    warm_cache.close()

    # The registry round trip preserves the plan bit-for-bit.
    assert np.array_equal(warm_mech.matrix, cold_mech.matrix)
    _assert_feasible(warm_mech.matrix)

    speedup = cold_seconds / hit_seconds
    record_case_metrics(
        "test_registry_hit_5x_faster_than_cold_solve",
        cold_solve_s=cold_seconds,
        registry_hit_s=hit_seconds,
        speedup_x=speedup,
    )
    if not TINY:
        assert N_REGISTRY >= 200
        assert speedup >= MIN_SPEEDUP, (
            f"registry hit only {speedup:.1f}x faster than the cold solve "
            f"({hit_seconds:.3f}s vs {cold_seconds:.3f}s)"
        )


def test_simplex_warm_start_5x_faster_than_cold(tmp_path):
    """A neighbour basis off the registry index skips phase 1 entirely."""
    cache = DesignCache(directory=tmp_path)
    # Seed the registry with the neighbouring alpha: this is the one cold
    # two-phase solve the warm start amortises.
    cache.get_or_design(N_WARM, ALPHA, properties="WH+CM", backend="simplex")

    (warm_mech, _), warm_seconds = _timed(
        lambda: cache.get_or_design(
            N_WARM, ALPHA + 0.02, properties="WH+CM", backend="simplex"
        )
    )
    stats = cache.stats()
    assert stats.warm_attempts == 1
    assert stats.warm_hits == 1, "neighbour basis was rejected"
    assert warm_mech.metadata["lp_warm_started"] is True
    cache.close()

    # Cold reference: the same selector request with no registry in sight.
    (cold_mech, _), cold_seconds = _timed(
        lambda: choose_mechanism(
            N_WARM, ALPHA + 0.02, properties="WH+CM", backend="simplex"
        )
    )

    objective_diff = abs(
        warm_mech.metadata["objective_value"] - cold_mech.metadata["objective_value"]
    )
    assert objective_diff <= OBJECTIVE_TOLERANCE, (
        f"warm objective off the cold reference by {objective_diff:.2e}"
    )
    _assert_feasible(warm_mech.matrix)

    speedup = cold_seconds / warm_seconds
    record_case_metrics(
        "test_simplex_warm_start_5x_faster_than_cold",
        cold_solve_s=cold_seconds,
        warm_solve_s=warm_seconds,
        speedup_x=speedup,
        objective_diff=objective_diff,
    )
    if not TINY:
        assert speedup >= MIN_SPEEDUP, (
            f"warm-started simplex only {speedup:.1f}x faster than cold "
            f"({warm_seconds:.3f}s vs {cold_seconds:.3f}s)"
        )


def test_warmed_registry_restart_serves_grid_with_zero_lp_solves(tmp_path):
    """``repro warm`` then restart: every grid point compiles solve-free."""
    ns = [6] if TINY else [12, 16]
    alphas = [0.9, 0.95]
    summary = warm_grid(tmp_path, ns, alphas, props_list=("WH+CM",))
    assert summary["solved"] == len(ns) * len(alphas)

    # Fresh cache over the warmed directory = the restarted daemon.
    cache = DesignCache(directory=tmp_path)
    solves_before = solve_call_count()
    start = time.perf_counter()
    for n in ns:
        for alpha in alphas:
            plan = ReleasePlan.compile(n, alpha, properties="WH+CM", cache=cache)
            assert plan.mechanism.metadata["design_cache"] == "disk"
            _assert_feasible(plan.mechanism.matrix)
    serve_seconds = time.perf_counter() - start
    lp_solves = solve_call_count() - solves_before
    assert lp_solves == 0, f"restarted registry still paid {lp_solves} LP solves"
    assert cache.stats().tiers["registry"] == len(ns) * len(alphas)
    cache.close()

    record_case_metrics(
        "test_warmed_registry_restart_serves_grid_with_zero_lp_solves",
        grid_points=len(ns) * len(alphas),
        grid_serve_s=serve_seconds,
        lp_solves=lp_solves,
    )


def test_no_warmstart_env_is_bit_identical_to_cold(tmp_path, monkeypatch):
    """``REPRO_NO_WARMSTART=1`` keeps the cold path byte-for-byte intact."""
    n = 6 if TINY else 8
    cache = DesignCache(directory=tmp_path)
    cache.get_or_design(n, ALPHA, properties="WH+CM", backend="simplex")

    monkeypatch.setenv("REPRO_NO_WARMSTART", "1")
    opted_out, _ = cache.get_or_design(
        n, ALPHA + 0.02, properties="WH+CM", backend="simplex"
    )
    stats = cache.stats()
    assert stats.warm_attempts == 0, "opt-out still attempted a warm start"
    assert "lp_warm_started" not in opted_out.metadata
    cache.close()

    monkeypatch.delenv("REPRO_NO_WARMSTART")
    reference, _ = choose_mechanism(
        n, ALPHA + 0.02, properties="WH+CM", backend="simplex"
    )
    assert np.array_equal(opted_out.matrix, reference.matrix)
