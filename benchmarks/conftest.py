"""Shared configuration for the benchmark suite + the perf-trajectory recorder.

Every module in this directory regenerates one of the paper's figures (or an
ablation called out in DESIGN.md) under pytest-benchmark timing, using
reduced workloads so the whole suite completes in a few minutes, and asserts
the *shape* of the result — who wins, by roughly what factor, and where the
crossovers fall — matches the paper.

Run with::

    pytest benchmarks/ --benchmark-only

Perf trajectory
---------------
Every run of a ``test_bench_*`` module additionally records a
``BENCH_<suite>.json`` artifact (one per module, written to
``benchmarks/artifacts/`` or ``$REPRO_BENCH_DIR``): per-case wall time,
process-memory high-watermark and outcome, plus the git sha, machine info
and the active sampling kernel.  The committed reference runs live under
``benchmarks/baselines/`` and ``scripts/check_bench_regression.py`` gates
the current artifacts against them — the perf trajectory of this repository
is data, not anecdote.  See ``docs/performance.md`` for the schema.

The recorder is deliberately passive: wall time is pytest's own call-phase
duration and memory is the ``ru_maxrss`` watermark after the case, so the
perf-gated assertions inside the benchmarks (which manage ``tracemalloc``
themselves) are never perturbed by the measurement.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from _metrics import pop_case_metrics
from _tiny import TINY

#: Version of the BENCH_*.json schema (bump on incompatible changes).
BENCH_SCHEMA_VERSION = 1

#: Where the artifacts land; override with ``REPRO_BENCH_DIR``.
BENCH_DIR = Path(os.environ.get("REPRO_BENCH_DIR", Path(__file__).parent / "artifacts"))

#: Per-suite case records accumulated over the session, keyed by suite name
#: (module stem minus the ``test_bench_`` prefix).
_RECORDS: dict = {}


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator so benchmark workloads are identical across runs."""
    return np.random.default_rng(2018)


def _suite_for(nodeid: str):
    """Map a nodeid to its benchmark suite name, or None for non-bench items."""
    module = Path(nodeid.split("::", 1)[0]).name
    if not (module.startswith("test_bench_") and module.endswith(".py")):
        return None
    return module[len("test_bench_") : -len(".py")]


def _max_rss_mb() -> float:
    """Process memory high-watermark in MB (monotone over the session)."""
    import resource

    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports kilobytes, macOS bytes.
    scale = 1e3 if sys.platform != "darwin" else 1.0
    return round(rss * scale / 1e6, 3)


def _git_sha():
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "HEAD"],
                cwd=Path(__file__).parent,
                capture_output=True,
                text=True,
                timeout=10,
            ).stdout.strip()
            or None
        )
    except Exception:  # pragma: no cover - git absent
        return None


def _machine_info() -> dict:
    import scipy

    from repro.core import _kernels

    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "scipy": scipy.__version__,
        "cpu_count": os.cpu_count(),
        "sampling_kernel": _kernels.kernel_name(),
    }


def pytest_runtest_logreport(report):
    """Record wall/memory/outcome for every benchmark case."""
    suite = _suite_for(report.nodeid)
    if suite is None:
        return
    case = report.nodeid.split("::", 1)[1] if "::" in report.nodeid else report.nodeid
    cases = _RECORDS.setdefault(suite, {})
    if report.when == "call":
        cases[case] = {
            "wall_s": round(report.duration, 6),
            "max_rss_mb": _max_rss_mb(),
            "outcome": report.outcome,
        }
        # Structured metrics the case measured itself (req/s, latency
        # percentiles, ...) ride along under a "metrics" key; see
        # benchmarks/_metrics.py.
        extra = pop_case_metrics(case)
        if extra:
            cases[case]["metrics"] = extra
    elif report.when == "setup" and report.outcome in ("skipped", "failed"):
        # Skipped (or setup-errored) cases never reach the call phase but
        # must still appear in the artifact, so coverage loss is visible to
        # the regression gate.
        cases.setdefault(
            case,
            {
                "wall_s": 0.0,
                "max_rss_mb": _max_rss_mb(),
                "outcome": "skipped" if report.outcome == "skipped" else "error",
            },
        )


def pytest_sessionfinish(session, exitstatus):
    """Write one ``BENCH_<suite>.json`` artifact per benchmark module run."""
    if not _RECORDS:
        return
    BENCH_DIR.mkdir(parents=True, exist_ok=True)
    sha = _git_sha()
    machine = _machine_info()
    created = time.strftime("%Y-%m-%dT%H:%M:%S%z")
    for suite, cases in sorted(_RECORDS.items()):
        payload = {
            "schema_version": BENCH_SCHEMA_VERSION,
            "suite": suite,
            "created": created,
            "git_sha": sha,
            "tiny": TINY,
            "machine": machine,
            "cases": dict(sorted(cases.items())),
        }
        path = BENCH_DIR / f"BENCH_{suite}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    reporter = session.config.pluginmanager.get_plugin("terminalreporter")
    if reporter is not None:  # pragma: no branch - present in normal runs
        reporter.write_line(
            f"perf trajectory: wrote {len(_RECORDS)} BENCH_*.json artifact(s) "
            f"to {BENCH_DIR}"
        )
    _RECORDS.clear()
