"""Shared configuration for the benchmark suite.

Every module in this directory regenerates one of the paper's figures (or an
ablation called out in DESIGN.md) under pytest-benchmark timing, using
reduced workloads so the whole suite completes in a few minutes, and asserts
the *shape* of the result — who wins, by roughly what factor, and where the
crossovers fall — matches the paper.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator so benchmark workloads are identical across runs."""
    return np.random.default_rng(2018)
