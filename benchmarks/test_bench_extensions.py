"""Ablation benchmarks for the extension experiments.

These cover the directions the paper's concluding remarks point at (and that
DESIGN.md lists as ablations): the output-side DP constraint, the L1/L2
constrained-design study, and range queries over histogram releases built on
the count mechanisms.
"""

from __future__ import annotations

import pytest

from repro.experiments import ext_l1_l2_study, ext_output_dp, ext_range_queries


@pytest.mark.benchmark(group="extensions")
def test_output_dp_extension(benchmark):
    result = benchmark(lambda: ext_output_dp.run(alphas=(0.5, 0.7, 0.9), n=6))
    for row in result.rows:
        # Shape: GM never meets the symmetric output-side requirement, EM
        # always does, and enforcing it costs at most EM's L0.
        assert not row["gm_satisfies_output_dp"]
        assert row["em_output_alpha"] >= row["alpha"] - 1e-9
        assert row["gm_l0"] - 1e-9 <= row["l0_with_output_dp"] <= row["em_l0"] + 1e-6
        assert row["relative_cost_of_output_dp"] <= 1.1


@pytest.mark.benchmark(group="extensions")
def test_l1_l2_constrained_study(benchmark):
    result = benchmark(lambda: ext_l1_l2_study.run(group_sizes=(5, 7)))
    unconstrained = [row for row in result.rows if row["properties"] == "unconstrained"]
    constrained = [row for row in result.rows if row["properties"] == "all seven"]
    # Shape: the Figure-1 pathologies appear under L1/L2 and disappear under
    # the full constraint set, at a bounded relative cost.
    assert all(row["has_gap"] for row in unconstrained)
    assert all(not row["has_gap"] for row in constrained)
    assert all(row["relative_to_unconstrained"] < 3.0 for row in constrained)


@pytest.mark.benchmark(group="extensions")
def test_range_query_extension(benchmark):
    result = benchmark(
        lambda: ext_range_queries.run(
            alphas=(0.67, 0.9),
            num_buckets=12,
            population=1500,
            zipf_exponents=(0.0, 1.0),
            num_queries=40,
            repetitions=5,
            seed=2,
        )
    )
    # Shape: the informative mechanisms answer range queries far better than
    # the uniform baseline, and stronger privacy costs accuracy.
    for alpha in (0.67, 0.9):
        for exponent in (0.0, 1.0):
            cells = {
                row["mechanism"]: row["range_mae"]
                for row in result.rows
                if row["alpha"] == alpha and row["zipf_exponent"] == exponent
            }
            assert cells["EM"] < cells["UM"]
            assert cells["GM"] < cells["UM"]
