"""Benchmarks for the representation-polymorphic mechanism core.

Two guarantees of the refactor are asserted here, not just timed:

* a closed-form GM serves a 10^5-count batch at ``n = 10^4`` at least
  **10x faster** than the dense matrix path and with at least **100x less
  peak memory** (measured ~280x and ~480x on the reference machine — the
  dense path must build and CDF-precompute an ``(n + 1)^2`` matrix, the
  closed form inverts its analytic CDF in O(batch) memory);
* the serving layer releases 10^6 mixed GM/EM requests at ``n = 10^5``
  end-to-end **without materialising a single dense matrix**, verified by
  the :attr:`~repro.core.mechanism.Mechanism.densifications` counter.

``REPRO_BENCH_TINY=1`` (the CI smoke job) runs the same code paths at toy
sizes with the wall-clock/memory assertions disabled.
"""

from __future__ import annotations

import time
import tracemalloc

import numpy as np
import pytest
from _tiny import TINY

import repro
from repro.core.mechanism import ClosedFormMechanism, DenseMechanism, Mechanism
from repro.mechanisms.geometric import geometric_matrix, geometric_mechanism

#: Group size / batch size for the closed-form vs dense comparison.
N_COMPARE = 256 if TINY else 10_000
BATCH_COMPARE = 5_000 if TINY else 100_000

#: Group size / request volume for the end-to-end serving run.
N_SERVE = 512 if TINY else 100_000
REQUESTS_SERVE = 10_000 if TINY else 1_000_000


def _traced(fn):
    """Run ``fn`` returning (result, seconds, peak_traced_bytes)."""
    tracemalloc.start()
    start = time.perf_counter()
    result = fn()
    elapsed = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return result, elapsed, peak


def test_closed_form_gm_vs_dense_speed_and_memory(rng):
    """The headline representation guarantee: >=10x faster, >=100x less memory."""
    n, alpha = N_COMPARE, 0.9
    counts = rng.integers(0, n + 1, size=BATCH_COMPARE)

    def closed_form_serve():
        mechanism = geometric_mechanism(n, alpha)
        return mechanism.sample_batch(counts, rng=np.random.default_rng(0))

    def dense_serve():
        mechanism = DenseMechanism(geometric_matrix(n, alpha), name="GM", alpha=alpha)
        return mechanism.sample_batch(counts, rng=np.random.default_rng(0))

    closed_released, closed_seconds, closed_peak = _traced(closed_form_serve)
    dense_released, dense_seconds, dense_peak = _traced(dense_serve)
    assert closed_released.shape == dense_released.shape == counts.shape

    speedup = dense_seconds / closed_seconds
    memory_reduction = dense_peak / closed_peak
    if not TINY:
        assert speedup >= 10.0, (
            f"closed-form GM speedup {speedup:.1f}x below the 10x guarantee "
            f"({closed_seconds * 1e3:.0f} ms vs dense {dense_seconds * 1e3:.0f} ms)"
        )
        assert memory_reduction >= 100.0, (
            f"closed-form GM memory reduction {memory_reduction:.0f}x below the "
            f"100x guarantee ({closed_peak / 1e6:.1f} MB vs dense "
            f"{dense_peak / 1e6:.1f} MB)"
        )

    # Same distribution: compare the released-count histograms coarsely.
    edges = np.linspace(0, n + 1, 9)
    closed_hist = np.histogram(closed_released, bins=edges)[0] / counts.size
    dense_hist = np.histogram(dense_released, bins=edges)[0] / counts.size
    assert np.allclose(closed_hist, dense_hist, atol=0.02)


def test_closed_form_sampling_is_exactly_dense_below_the_switch(rng):
    """At n <= EXACT_SAMPLING_LIMIT the two representations are bit-identical."""
    n = min(N_COMPARE, ClosedFormMechanism.EXACT_SAMPLING_LIMIT)
    counts = rng.integers(0, n + 1, size=5_000)
    closed = geometric_mechanism(n, 0.9)
    dense = DenseMechanism(geometric_matrix(n, 0.9), name="GM", alpha=0.9)
    assert np.array_equal(
        closed.sample_batch(counts, rng=np.random.default_rng(4)),
        dense.sample_batch(counts, rng=np.random.default_rng(4)),
    )


def test_serving_million_mixed_requests_without_densification(rng):
    """10^6 mixed GM/EM requests at n = 10^5: seconds, O(batch) memory, 0 matrices."""
    n = N_SERVE
    session = repro.BatchReleaseSession(rng=np.random.default_rng(7))
    densifications_before = Mechanism.densifications

    def serve():
        total = 0
        for properties in ("", "F"):  # Figure-5 GM and EM branches
            counts = rng.integers(0, n + 1, size=REQUESTS_SERVE // 2)
            total += session.release_counts(
                counts, n=n, alpha=0.9, properties=properties
            ).size
        return total

    total, elapsed, peak = _traced(serve)
    assert total == 2 * (REQUESTS_SERVE // 2)
    assert Mechanism.densifications == densifications_before, (
        "serving materialised a dense (n+1)^2 matrix"
    )
    if not TINY:
        assert elapsed < 60.0, f"serving 10^6 requests took {elapsed:.1f}s"
        # O(batch) memory: far below the ~80 GB a dense matrix would need.
        assert peak < 500e6, f"serving peak memory {peak / 1e6:.0f} MB"
    assert session.stats.records == total
    assert session.stats.distinct_designs == 2


@pytest.mark.benchmark(group="representations")
def test_closed_form_gm_large_n_throughput(benchmark, rng):
    """Timed: analytic inverse-CDF sampling at the serving group size."""
    mechanism = geometric_mechanism(N_SERVE, 0.9)
    counts = rng.integers(0, N_SERVE + 1, size=BATCH_COMPARE)

    released = benchmark(
        lambda: mechanism.sample_batch(counts, rng=np.random.default_rng(0))
    )
    assert released.shape == counts.shape


@pytest.mark.benchmark(group="representations")
def test_sparse_wm_sampling_throughput(benchmark, rng):
    """Timed: column-exact sampling from CSC storage (LP-designed WM)."""
    mechanism = repro.design_mechanism(
        64, 0.9, properties="WH+CM+S", representation="sparse"
    )
    counts = rng.integers(0, 65, size=BATCH_COMPARE)

    released = benchmark(
        lambda: mechanism.sample_batch(counts, rng=np.random.default_rng(0))
    )
    assert released.shape == counts.shape
