"""Benchmark for Figure 8: the L0 cost of weak honesty plus other properties."""

from __future__ import annotations

import pytest

from repro.core.theory import gm_l0_score
from repro.experiments import fig08_wh_combinations


@pytest.mark.benchmark(group="figure-8")
def test_figure8_wh_combination_sweep(benchmark):
    result = benchmark(
        lambda: fig08_wh_combinations.run(
            alpha=0.76,
            group_sizes=(4, 8),
            alphas=(0.5, 0.91),
            panel_b_group_size=6,
        )
    )
    rows = result.rows
    # Shape (panel a): at n = 8 > 2a/(1-a) = 6.33, every WH+row-only
    # combination costs exactly GM's 2a/(1+a); column combinations cost more.
    at_n8 = [row for row in rows if row["panel"] == "a" and row["group_size"] == 8]
    row_only = [row for row in at_n8 if not row["includes_column_property"]]
    with_column = [row for row in at_n8 if row["includes_column_property"]]
    assert all(row["l0_score"] == pytest.approx(gm_l0_score(0.76), abs=1e-6) for row in row_only)
    assert min(row["l0_score"] for row in with_column) > gm_l0_score(0.76) + 1e-6

    # Shape (panel a): below the threshold (n = 4) even WH alone costs more than GM.
    at_n4_row_only = [
        row
        for row in rows
        if row["panel"] == "a" and row["group_size"] == 4 and not row["includes_column_property"]
    ]
    assert all(row["l0_score"] > row["gm_l0"] + 1e-7 for row in at_n4_row_only)

    # Shape (panel b): at alpha = 0.5 every combination collapses onto GM
    # (Lemma 3), while at alpha = 0.91 the two-level structure appears.
    at_low_alpha = [row for row in rows if row["panel"] == "b" and row["alpha"] == 0.5]
    assert all(row["matches"] == "GM" for row in at_low_alpha)
    at_high_alpha = [row for row in rows if row["panel"] == "b" and row["alpha"] == 0.91]
    assert any(row["l0_score"] > gm_l0_score(0.91) + 1e-6 for row in at_high_alpha)
