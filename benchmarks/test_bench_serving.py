"""Benchmarks for the serving layer: vectorised sampling and the design cache.

Two guarantees the serving subsystem makes are asserted here, not just
timed:

* :meth:`~repro.core.mechanism.Mechanism.apply_batch` is at least 10x
  faster than the per-value scalar sampling loop at batch size 10^4 (in
  practice the gap is two orders of magnitude);
* a :class:`~repro.serving.cache.DesignCache` hit performs **zero** LP
  solves, measured through the solver call counter, so the marginal cost of
  repeat design traffic is near zero.
"""

from __future__ import annotations

import time

import numpy as np
import pytest
from _tiny import TINY

from repro.lp.solver import solve_call_count
from repro.mechanisms.fair import explicit_fair_mechanism
from repro.serving import BatchReleaseSession, DesignCache, ReleaseRequest

BATCH_SIZE = 10_000


def _scalar_loop(mechanism, counts, rng):
    return np.array([mechanism.sample(int(c), rng=rng) for c in counts])


@pytest.mark.benchmark(group="serving-sampling")
def test_apply_batch_throughput(benchmark, rng):
    mechanism = explicit_fair_mechanism(16, 0.9)
    counts = rng.integers(0, 17, size=BATCH_SIZE)
    mechanism.column_cdfs()  # warm the CDF cache outside the timed region

    released = benchmark(lambda: mechanism.apply_batch(counts, rng=np.random.default_rng(0)))
    assert released.shape == counts.shape


@pytest.mark.benchmark(group="serving-sampling")
def test_scalar_sampling_loop_reference(benchmark, rng):
    mechanism = explicit_fair_mechanism(16, 0.9)
    counts = rng.integers(0, 17, size=1_000)  # 10x smaller: the loop is slow

    released = benchmark(lambda: _scalar_loop(mechanism, counts, np.random.default_rng(0)))
    assert released.shape == counts.shape


def test_apply_batch_at_least_10x_faster_than_scalar_loop(rng):
    """The headline serving guarantee, asserted directly on wall-clock time."""
    mechanism = explicit_fair_mechanism(16, 0.9)
    counts = rng.integers(0, 17, size=BATCH_SIZE)
    mechanism.column_cdfs()

    # Best-of-several so scheduler noise cannot fail the assertion unfairly.
    batch_time = min(
        _timed(lambda: mechanism.apply_batch(counts, rng=np.random.default_rng(0)))
        for _ in range(5)
    )
    scalar_time = min(
        _timed(lambda: _scalar_loop(mechanism, counts, np.random.default_rng(0)))
        for _ in range(2)
    )
    speedup = scalar_time / batch_time
    if not TINY:
        assert speedup >= 10.0, (
            f"apply_batch speedup {speedup:.1f}x below the 10x serving guarantee "
            f"(batch {batch_time * 1e3:.2f} ms vs scalar {scalar_time * 1e3:.2f} ms)"
        )

    # Outputs are not just fast but bit-identical to the scalar path.
    batch = mechanism.apply_batch(counts, rng=np.random.default_rng(7))
    scalar = _scalar_loop(mechanism, counts, np.random.default_rng(7))
    assert np.array_equal(batch, scalar)


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


@pytest.mark.benchmark(group="serving-cache")
def test_design_cache_cold_miss(benchmark):
    """Reference cost of a WM design when the LP must actually be solved."""

    def design_without_cache():
        cache = DesignCache()
        return cache.get_or_design(8, 0.95, properties="WH+CM")

    mechanism, decision = benchmark(design_without_cache)
    assert decision.branch == "WM[WH+CM]"


@pytest.mark.benchmark(group="serving-cache")
def test_design_cache_warm_hit(benchmark):
    cache = DesignCache()
    cache.get_or_design(8, 0.95, properties="WH+CM")

    mechanism, _ = benchmark(lambda: cache.get_or_design(8, 0.95, properties="WH+CM"))
    assert mechanism.metadata["design_cache"] == "memory"


def test_cache_hits_perform_no_lp_solve():
    """The other serving guarantee: repeat designs never touch the solver."""
    cache = DesignCache()
    cache.get_or_design(8, 0.95, properties="WH+CM")  # cold: solves the LP

    before = solve_call_count()
    for _ in range(50):
        mechanism, _ = cache.get_or_design(8, 0.95, properties="WH+CM")
    assert solve_call_count() == before, "cache hit reached the LP solver"
    assert cache.stats().hits >= 50


@pytest.mark.benchmark(group="serving-session")
def test_session_mixed_stream_throughput(benchmark, rng):
    """End-to-end serving: 10^4 mixed requests over three designs."""
    properties = ["", "F", "WH+CM"]
    requests = [
        ReleaseRequest(
            group=i,
            count=int(c),
            n=12,
            alpha=0.9,
            properties=properties[i % 3],
        )
        for i, c in enumerate(rng.integers(0, 13, size=BATCH_SIZE))
    ]
    session = BatchReleaseSession(rng=np.random.default_rng(0))
    session.release(requests[:3])  # warm every design outside the timed region

    results = benchmark(lambda: session.release(requests))
    assert len(results) == BATCH_SIZE
