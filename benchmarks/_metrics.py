"""Side-channel for benchmark cases to attach structured metrics.

The perf-trajectory recorder in ``conftest.py`` captures wall time and
memory passively, but some suites measure quantities pytest cannot see —
requests/sec and latency percentiles from the daemon's closed-loop harness,
for instance.  A case calls :func:`record_case_metrics` with its own name
and the recorder merges the values into the case's entry in
``BENCH_<suite>.json`` under a ``"metrics"`` key, where
``scripts/check_bench_regression.py`` gates the ones it understands
(``req_per_s`` higher-is-better, ``p50_ms``/``p99_ms`` lower-is-better).
"""

from __future__ import annotations

from typing import Dict

#: Pending metrics keyed by case name (the part of the nodeid after ``::``).
_EXTRA: Dict[str, Dict[str, float]] = {}


def record_case_metrics(case: str, **metrics: float) -> None:
    """Attach numeric metrics to ``case``'s record in the suite artifact."""
    _EXTRA.setdefault(case, {}).update(
        {key: round(float(value), 6) for key, value in metrics.items()}
    )


def pop_case_metrics(case: str) -> Dict[str, float]:
    """Drain the pending metrics for one case (used by the recorder)."""
    return _EXTRA.pop(case, {})
