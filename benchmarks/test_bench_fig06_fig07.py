"""Benchmarks for Figures 6 and 7: the named-mechanism table and heatmaps."""

from __future__ import annotations

import pytest

from repro.core.theory import em_l0_score, gm_l0_score
from repro.experiments import fig06_property_table, fig07_heatmaps


@pytest.mark.benchmark(group="figure-6")
def test_figure6_property_table(benchmark):
    result = benchmark(lambda: fig06_property_table.run(n=8, alpha=0.9))
    by_name = {row["mechanism"]: row for row in result.rows}
    # Shape: the property table of Figure 6.
    assert by_name["GM"]["S"] and by_name["GM"]["RM"] and not by_name["GM"]["F"]
    assert by_name["EM"]["F"] and by_name["EM"]["CM"] and by_name["EM"]["WH"]
    assert by_name["UM"]["F"]
    # Shape: the L0 column - GM at 2a/(1+a), EM a factor ~(n+1)/n above, UM at 1.
    assert by_name["GM"]["l0_measured"] == pytest.approx(gm_l0_score(0.9))
    assert by_name["EM"]["l0_measured"] == pytest.approx(em_l0_score(8, 0.9))
    assert by_name["UM"]["l0_measured"] == pytest.approx(1.0)
    assert (
        by_name["GM"]["l0_measured"]
        <= by_name["WM"]["l0_measured"] + 1e-9
        <= by_name["EM"]["l0_measured"] + 1e-7
    )


@pytest.mark.benchmark(group="figure-7")
def test_figure7_heatmaps(benchmark):
    result = benchmark(lambda: fig07_heatmaps.run(n=4, alpha=0.9, include_heatmaps=False))
    by_name = {row["mechanism"]: row for row in result.rows}
    # Shape: GM piles mass on the extremes, EM along the diagonal, WM between.
    assert by_name["GM"]["extreme_output_mass"] > by_name["WM"]["extreme_output_mass"]
    assert by_name["WM"]["extreme_output_mass"] > by_name["EM"]["extreme_output_mass"] - 1e-9
    # Shape: truth probabilities ~0.238 (GM) vs ~0.224 (EM), a small margin.
    assert by_name["GM"]["truth_probability"] == pytest.approx(0.238, abs=0.01)
    assert by_name["EM"]["truth_probability"] == pytest.approx(0.224, abs=0.01)
    assert by_name["GM"]["truth_probability"] - by_name["EM"]["truth_probability"] < 0.03
