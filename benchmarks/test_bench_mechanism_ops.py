"""Micro-benchmarks for the operations a deployment performs repeatedly.

These are not tied to a single paper figure; they time the building blocks
behind every experiment — constructing the explicit mechanisms, applying a
mechanism to a large batch of group counts, and the property checks — so
regressions in the hot paths are visible.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.properties import check_all_properties
from repro.data.synthetic import binomial_group_counts
from repro.mechanisms.fair import explicit_fair_mechanism
from repro.mechanisms.geometric import geometric_mechanism


@pytest.mark.benchmark(group="mechanism-ops")
def test_construct_geometric_mechanism(benchmark):
    mechanism = benchmark(lambda: geometric_mechanism(64, 0.9))
    assert mechanism.n == 64


@pytest.mark.benchmark(group="mechanism-ops")
def test_construct_fair_mechanism(benchmark):
    mechanism = benchmark(lambda: explicit_fair_mechanism(64, 0.9))
    assert mechanism.n == 64


@pytest.mark.benchmark(group="mechanism-ops")
def test_apply_mechanism_to_population(benchmark, rng):
    mechanism = explicit_fair_mechanism(16, 0.9)
    counts = binomial_group_counts(10_000, 16, 0.5, rng=rng)

    released = benchmark(lambda: mechanism.apply(counts, rng=np.random.default_rng(0)))
    assert released.shape == counts.shape
    assert released.min() >= 0 and released.max() <= 16


@pytest.mark.benchmark(group="mechanism-ops")
def test_property_check_suite(benchmark):
    mechanism = explicit_fair_mechanism(32, 0.9)
    report = benchmark(lambda: check_all_properties(mechanism))
    assert all(report.values())
