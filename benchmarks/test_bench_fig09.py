"""Benchmark for Figure 9: L0 of GM / WM / EM / UM against group size."""

from __future__ import annotations

import pytest

from repro.core.theory import em_l0_score, gm_l0_score, weak_honesty_threshold
from repro.experiments import fig09_l0_vs_n


@pytest.mark.benchmark(group="figure-9")
def test_figure9_l0_series(benchmark):
    alphas = (2.0 / 3.0, 10.0 / 11.0)
    group_sizes = (2, 4, 8, 12, 16, 20, 24)
    result = benchmark(lambda: fig09_l0_vs_n.run(alphas=alphas, group_sizes=group_sizes))

    def series(mechanism, alpha):
        return {
            row["group_size"]: row["l0_score"]
            for row in result.rows
            if row["mechanism"] == mechanism and row["alpha"] == pytest.approx(alpha)
        }

    # Shape (9a, alpha = 2/3, threshold 4): WM coincides with GM over almost
    # the whole range while EM carries a shrinking premium.
    alpha = 2.0 / 3.0
    wm = series("WM", alpha)
    for n, value in wm.items():
        if n >= weak_honesty_threshold(alpha):
            assert value == pytest.approx(gm_l0_score(alpha), abs=1e-6)
    em = series("EM", alpha)
    assert em[24] < em[2]

    # Shape (9b, alpha = 10/11, threshold 20): the WM curve converges onto GM
    # exactly at n = 20 and not before.
    alpha = 10.0 / 11.0
    wm = series("WM", alpha)
    assert wm[20] == pytest.approx(gm_l0_score(alpha), abs=1e-6)
    assert wm[24] == pytest.approx(gm_l0_score(alpha), abs=1e-6)
    assert wm[12] > gm_l0_score(alpha) + 1e-6

    # Shape (all panels): GM <= WM <= EM <= UM = 1 everywhere.
    for row in result.rows:
        if row["mechanism"] == "WM":
            assert gm_l0_score(row["alpha"]) - 1e-7 <= row["l0_score"]
            assert row["l0_score"] <= em_l0_score(row["group_size"], row["alpha"]) + 1e-6
        if row["mechanism"] == "UM":
            assert row["l0_score"] == pytest.approx(1.0)
