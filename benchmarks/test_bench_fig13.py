"""Benchmark for Figure 13: RMSE of released counts on Binomial data."""

from __future__ import annotations

import pytest

from repro.experiments import fig13_rmse


@pytest.mark.benchmark(group="figure-13")
def test_figure13_rmse_sweep(benchmark):
    result = benchmark(
        lambda: fig13_rmse.run(
            alphas=(0.91, 0.67),
            group_sizes=(4, 8),
            probabilities=(0.1, 0.5, 0.9),
            repetitions=10,
            population=6000,
            seed=13,
        )
    )

    def cell(mechanism, alpha, group_size, probability):
        rows = [
            row
            for row in result.rows
            if row["mechanism"] == mechanism
            and row["alpha"] == pytest.approx(alpha)
            and row["group_size"] == group_size
            and row["probability"] == pytest.approx(probability)
        ]
        assert len(rows) == 1
        return rows[0]["rmse"]

    # Shape: RMSE grows with the group size for every mechanism.
    for mechanism in ("GM", "EM", "UM"):
        assert cell(mechanism, 0.91, 8, 0.5) > cell(mechanism, 0.91, 4, 0.5)

    # Shape: at strong privacy GM is worse than uniform guessing in many
    # cells, and EM gives the lowest error on balanced inputs.
    assert cell("GM", 0.91, 8, 0.5) > cell("UM", 0.91, 8, 0.5) - 0.05
    assert cell("EM", 0.91, 8, 0.5) < cell("GM", 0.91, 8, 0.5)
    assert cell("EM", 0.91, 8, 0.5) <= cell("UM", 0.91, 8, 0.5) + 0.05

    # Shape: at the weaker privacy level GM becomes competitive again.
    assert cell("GM", 0.67, 8, 0.5) < cell("UM", 0.67, 8, 0.5)

    # Shape: empirical RMSE tracks the analytic value under the same prior.
    for row in result.rows:
        assert row["rmse"] == pytest.approx(row["analytic_rmse"], rel=0.2)
