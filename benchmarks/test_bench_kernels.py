"""Benchmarks for the native sampling kernels and the binary stream I/O.

Three claims of the kernel PR are asserted here, not just timed:

* the guide-table sampler releases **bit-identical** counts with the JIT
  kernel on and off (``REPRO_NO_NUMBA``) on a 10^6-count guide-regime
  stream, and when numba is available the kernel is at least **3x faster**
  than the pure-numpy path on that stream;
* the executor's batched-RNG regime (uniforms drawn once per
  ``UNIFORM_BATCH_CHUNKS`` window) is no slower than the per-chunk regime
  and releases the identical stream;
* parsing a ``.npy`` count file is dramatically cheaper than parsing the
  same counts as text — the reason ``serve-stream`` grew the binary
  protocol.

Wall-clock gates are conservative for the 1-core CI box and disabled under
``REPRO_BENCH_TINY=1`` (which still runs every code path at toy sizes).
"""

from __future__ import annotations

import time

import numpy as np
import pytest
from _tiny import TINY

from repro.core import _kernels
from repro.core.mechanism import Mechanism
from repro.engine import ReleasePlan, StreamExecutor
from repro.mechanisms.geometric import geometric_mechanism
from repro.privacy import PrivacyAccountant

#: Guide-regime stream: a small-n dense mechanism and enough tiled draws to
#: clear the guide threshold (``size * GUIDE_BINS / 4``) by a wide margin.
N_GUIDE = 8 if TINY else 64
STREAM_COUNTS = 10_000 if TINY else 1_000_000

CHUNK_SIZE = 256 if TINY else 65_536


def _guide_mechanism():
    mechanism = Mechanism(
        geometric_mechanism(N_GUIDE, 0.5).matrix, name="gm-dense", alpha=0.5
    )
    assert mechanism._use_guide(STREAM_COUNTS), "stream too small for the guide regime"
    return mechanism


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_guide_kernel_bit_identical_and_3x_on_million_count_stream(rng, monkeypatch):
    """10^6 guide-regime draws: JIT on == JIT off, and >= 3x faster when on."""
    mechanism = _guide_mechanism()
    counts = rng.integers(0, N_GUIDE + 1, size=STREAM_COUNTS)

    def release():
        return mechanism.sample_tiled(counts, 1, rng=np.random.default_rng(17))[0]

    # Warm both paths (guide table build + JIT compilation) before timing.
    monkeypatch.setenv(_kernels.NO_NUMBA_ENV, "1")
    release()
    numpy_released, numpy_seconds = _timed(release)
    monkeypatch.delenv(_kernels.NO_NUMBA_ENV)
    release()
    kernel_released, kernel_seconds = _timed(release)

    # Bit-identity is unconditional: with numba absent both runs take the
    # numpy path and the assertion pins env-switch neutrality instead.
    assert np.array_equal(kernel_released, numpy_released)

    if not TINY:
        assert numpy_seconds < 60.0, f"numpy guide path took {numpy_seconds:.1f}s"
    if _kernels.numba_available() and not TINY:
        assert kernel_seconds * 3.0 <= numpy_seconds, (
            f"JIT kernel {kernel_seconds:.3f}s is not 3x faster than "
            f"numpy {numpy_seconds:.3f}s on {STREAM_COUNTS} guide draws"
        )


def test_batched_rng_stream_no_slower_than_per_chunk_and_identical(rng):
    """The unmetered batched-uniform regime matches the metered per-chunk
    regime's output and does not cost more wall time."""
    plan = ReleasePlan.from_mechanism(_guide_mechanism())
    counts = rng.integers(0, N_GUIDE + 1, size=STREAM_COUNTS // 2)
    chunks = -(-counts.shape[0] // CHUNK_SIZE)

    def run_batched():
        executor = StreamExecutor(plan, chunk_size=CHUNK_SIZE)
        checksum = 0
        for chunk in executor.stream(counts, rng=np.random.default_rng(23)):
            checksum += int(chunk.sum())
        return checksum

    def run_per_chunk():
        accountant = PrivacyAccountant(alpha_target=0.5 ** (chunks + 1))
        executor = StreamExecutor(plan, chunk_size=CHUNK_SIZE, accountant=accountant)
        checksum = 0
        for chunk in executor.stream(counts, rng=np.random.default_rng(23)):
            checksum += int(chunk.sum())
        return checksum

    run_batched()  # warm caches before timing
    batched_sum, batched_seconds = _timed(run_batched)
    per_chunk_sum, per_chunk_seconds = _timed(run_per_chunk)
    assert batched_sum == per_chunk_sum, "batched uniforms changed the release"
    if not TINY:
        # Identical sampling work either way; batching only removes RNG-call
        # and bookkeeping overhead, so a generous 1.5x + slack bound holds
        # even under CI noise.
        assert batched_seconds <= 1.5 * per_chunk_seconds + 2.0, (
            f"batched {batched_seconds:.2f}s vs per-chunk {per_chunk_seconds:.2f}s"
        )


def test_npy_parse_beats_text_parse(tmp_path, rng):
    """Reading a .npy count file skips parsing entirely; text pays per line."""
    from repro.engine.stream_io import open_npy_counts

    values = rng.integers(0, N_GUIDE + 1, size=STREAM_COUNTS // 2)
    text_path = tmp_path / "counts.txt"
    text_path.write_text("\n".join(str(int(v)) for v in values) + "\n")
    npy_path = tmp_path / "counts.npy"
    np.save(npy_path, values)

    def parse_text():
        with text_path.open() as handle:
            return np.fromiter(
                (int(line) for line in handle if line.strip()), dtype=np.int64
            )

    def parse_npy():
        # Materialise the mapped array so both paths deliver every element.
        return np.asarray(open_npy_counts(npy_path))

    from_text, text_seconds = _timed(parse_text)
    from_npy, npy_seconds = _timed(parse_npy)
    assert np.array_equal(from_npy, from_text)
    if not TINY:
        assert npy_seconds < text_seconds, (
            f".npy parse {npy_seconds:.3f}s is not faster than "
            f"text parse {text_seconds:.3f}s"
        )


@pytest.mark.benchmark(group="kernels")
def test_guide_stream_throughput(benchmark, rng):
    """Timed: the guide-regime tiled release at the evaluation size."""
    mechanism = _guide_mechanism()
    counts = rng.integers(0, N_GUIDE + 1, size=STREAM_COUNTS // 10)
    repetitions = 10  # tiled back up to the full stream volume

    def release():
        return mechanism.sample_tiled(
            counts, repetitions, rng=np.random.default_rng(3)
        )

    released = benchmark(release)
    assert released.shape == (repetitions, counts.shape[0])
    assert released.min() >= 0 and released.max() <= N_GUIDE
