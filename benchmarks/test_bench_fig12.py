"""Benchmark for Figure 12: L0,d tail histograms on Binomial data (n = 8)."""

from __future__ import annotations

import pytest

from repro.experiments import fig12_l0d_histograms


@pytest.mark.benchmark(group="figure-12")
def test_figure12_tail_histograms(benchmark):
    result = benchmark(
        lambda: fig12_l0d_histograms.run(
            alphas=(0.91, 0.67),
            group_size=8,
            probabilities=(0.5, 0.1),
            repetitions=10,
            population=6000,
            seed=12,
        )
    )

    def tail(mechanism, alpha, probability):
        rows = sorted(
            (row["d"], row["empirical_rate"])
            for row in result.rows
            if row["mechanism"] == mechanism
            and row["alpha"] == pytest.approx(alpha)
            and row["probability"] == pytest.approx(probability)
        )
        return [rate for _, rate in rows]

    # Shape (top row, balanced input, strong privacy): EM beats GM and the
    # margin grows with d (GM's tail is fat because it favours the extremes).
    gm = tail("GM", 0.91, 0.5)
    em = tail("EM", 0.91, 0.5)
    assert all(e <= g + 0.02 for e, g in zip(em, gm))
    margins = [g - e for g, e in zip(gm[:5], em[:5])]
    assert margins[3] > margins[0]

    # Shape: GM is worse than uniform guessing over much of the range for
    # the balanced input at alpha = 0.91.
    um = tail("UM", 0.91, 0.5)
    assert sum(g > u for g, u in zip(gm[:5], um[:5])) >= 3

    # Shape (bottom row, skewed input): GM recovers, but EM does not collapse -
    # it stays within a modest factor of GM.
    gm_skewed = tail("GM", 0.91, 0.1)
    em_skewed = tail("EM", 0.91, 0.1)
    assert gm_skewed[1] < gm[1]
    assert em_skewed[1] < gm_skewed[1] + 0.35

    # Shape: lower alpha improves GM dramatically.
    gm_low = tail("GM", 0.67, 0.5)
    assert gm_low[1] < gm[1]
