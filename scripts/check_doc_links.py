#!/usr/bin/env python
"""Verify that relative links in README.md and docs/ resolve to real files.

Used by the CI workflow (and by ``tests/test_docs.py``) so documentation
cannot silently drift away from the tree it describes.  External links
(``http://``, ``https://``, ``mailto:``) are not fetched; pure-anchor links
are checked against the headings of the current file.

Exit status is the number of broken links.

Run with::

    python scripts/check_doc_links.py [repo_root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List, Tuple

#: Markdown inline links ``[text](target)``; images share the syntax.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#+\s+(.*)$", re.MULTILINE)

#: Documentation files whose links are checked.
DOC_GLOBS = ("README.md", "docs/*.md")


def _anchor(heading: str) -> str:
    """GitHub-style anchor for a heading."""
    text = heading.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def check_file(path: Path, root: Path) -> List[Tuple[str, str]]:
    """Return ``(link, reason)`` for every broken link in one file."""
    content = path.read_text()
    anchors = {_anchor(m.group(1)) for m in _HEADING.finditer(content)}
    broken: List[Tuple[str, str]] = []
    for match in _LINK.finditer(content):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        base, _, fragment = target.partition("#")
        if not base:
            if fragment and fragment not in anchors:
                broken.append((target, "missing anchor"))
            continue
        resolved = (path.parent / base).resolve()
        if not resolved.exists():
            broken.append((target, "missing file"))
        elif fragment and resolved.suffix == ".md":
            linked = {_anchor(m.group(1)) for m in _HEADING.finditer(resolved.read_text())}
            if fragment not in linked:
                broken.append((target, "missing anchor in linked file"))
    return broken


def main(root: Path) -> int:
    files = [p for pattern in DOC_GLOBS for p in sorted(root.glob(pattern))]
    if not files:
        print(f"no documentation files found under {root}", file=sys.stderr)
        return 1
    total = 0
    for path in files:
        for target, reason in check_file(path, root):
            print(f"{path.relative_to(root)}: broken link {target!r} ({reason})")
            total += 1
    if total == 0:
        print(f"checked {len(files)} files: all links resolve")
    return total


if __name__ == "__main__":
    repo_root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).resolve().parents[1]
    sys.exit(main(repo_root))
