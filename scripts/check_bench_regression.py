#!/usr/bin/env python3
"""Gate the benchmark suite's perf trajectory against committed baselines.

``benchmarks/conftest.py`` writes one ``BENCH_<suite>.json`` artifact per
benchmark module run (see ``docs/performance.md`` for the schema).  This
script compares a directory of fresh artifacts against the committed
reference run and fails CI when the trajectory degrades:

* a baselined suite produced no artifact (the module vanished or crashed
  before collection),
* a baselined case is missing from the artifact, failed, or silently
  became a skip (coverage loss),
* a case that was substantial in the baseline (``--min-seconds``) got more
  than ``--max-ratio`` times slower,
* a structured case metric (recorded via ``benchmarks/_metrics.py`` under
  the case's ``"metrics"`` key) regressed: ``req_per_s`` and speedup
  factors (``*_x``) are higher-is-better and gated whenever baselined;
  ``p50_ms``/``p99_ms`` are lower-is-better and gated when the baseline
  latency clears ``--min-latency-ms`` (sub-millisecond percentiles on
  shared runners are noise); duration metrics (``*_s``/``*_seconds``,
  e.g. the solve times in ``BENCH_registry.json``) are lower-is-better
  and gated when the baseline clears 50 ms.  Metrics use their own ``--metric-max-ratio`` (looser than the
  wall-clock gate: a percentile from a short closed-loop run is a noisier
  estimator than an aggregate duration).  A baselined metric that
  vanishes from the artifact fails, like a vanished case.

Structure and outcome are gated unconditionally; wall-clock ratios only
for cases whose baseline duration clears ``--min-seconds``, because
sub-second timings on shared CI runners are noise.  Memory is recorded in
the artifacts but not gated — ``ru_maxrss`` is a process-wide watermark,
so per-case attribution depends on execution order.

Usage::

    python scripts/check_bench_regression.py \
        --artifacts benchmarks/artifacts --baselines benchmarks/baselines/tiny

Exit status 0 when every gate passes, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Structured case metrics the gate understands and their better-direction.
METRIC_GATES = {
    "req_per_s": "higher",
    "p50_ms": "lower",
    "p99_ms": "lower",
}

#: Seconds metrics below this baseline value are not gated: a sub-50ms
#: duration on a shared runner is scheduler noise, like the latency floor.
MIN_METRIC_SECONDS = 0.05


def metric_direction(name: str):
    """Better-direction for a metric name, or ``None`` when ungated.

    Beyond the explicit :data:`METRIC_GATES` table, duration metrics
    (``*_s`` / ``*_seconds``, e.g. ``cold_solve_s`` from
    ``BENCH_registry.json``) are lower-is-better and speedup factors
    (``*_x``) are higher-is-better.  Rate names like ``req_per_s`` end in
    ``per_s`` and are *not* durations — the explicit table wins first and
    the suffix rule excludes them.
    """
    if name in METRIC_GATES:
        return METRIC_GATES[name]
    if name.endswith("_seconds") or (name.endswith("_s") and not name.endswith("per_s")):
        return "lower"
    if name.endswith("_x"):
        return "higher"
    return None


def load_bench(path: Path) -> dict:
    payload = json.loads(path.read_text())
    for key in ("schema_version", "suite", "tiny", "cases"):
        if key not in payload:
            raise ValueError(f"{path}: missing required key {key!r}")
    return payload


def compare_metrics(
    suite: str,
    case: str,
    base_metrics: dict,
    new_metrics: dict,
    *,
    max_ratio: float,
    min_latency_ms: float,
) -> tuple[list[str], list[str]]:
    """Gate one case's structured metrics (throughput up, durations down)."""
    failures: list[str] = []
    notes: list[str] = []
    for name in sorted(base_metrics):
        direction = metric_direction(name)
        if direction is None:
            continue
        if name not in new_metrics:
            failures.append(
                f"{suite}::{case}: baselined metric {name!r} missing from artifact"
            )
            continue
        base_value = float(base_metrics[name])
        value = float(new_metrics[name])
        is_seconds = name not in METRIC_GATES and direction == "lower"
        if direction == "lower":
            floor = MIN_METRIC_SECONDS if is_seconds else min_latency_ms
            if base_value < floor:
                continue  # sub-threshold durations are runner noise
            ratio = value / base_value if base_value > 0 else float("inf")
            unit = "s" if is_seconds else "ms"
            detail = f"{value:.3f}{unit} vs baseline {base_value:.3f}{unit}"
        else:
            ratio = base_value / value if value > 0 else float("inf")
            unit = "x" if name.endswith("_x") else "/s"
            detail = f"{value:.1f}{unit} vs baseline {base_value:.1f}{unit}"
        if ratio > max_ratio:
            failures.append(
                f"{suite}::{case}: {name} regressed — {detail} "
                f"({ratio:.2f}x > {max_ratio:.2f}x)"
            )
        elif ratio > 1.0:
            notes.append(
                f"{suite}::{case}: {name} {detail} ({ratio:.2f}x, within gate)"
            )
    return failures, notes


def compare_suite(
    baseline: dict,
    artifact: dict,
    *,
    max_ratio: float,
    min_seconds: float,
    min_latency_ms: float = 2.0,
    metric_max_ratio: float = 4.0,
) -> tuple[list[str], list[str]]:
    """Return (failures, notes) for one suite's baseline/artifact pair."""
    failures: list[str] = []
    notes: list[str] = []
    suite = baseline["suite"]

    if artifact["schema_version"] != baseline["schema_version"]:
        failures.append(
            f"{suite}: schema_version mismatch "
            f"(baseline {baseline['schema_version']}, "
            f"artifact {artifact['schema_version']})"
        )
        return failures, notes
    if bool(artifact["tiny"]) != bool(baseline["tiny"]):
        failures.append(
            f"{suite}: tiny-mode mismatch (baseline tiny={baseline['tiny']}, "
            f"artifact tiny={artifact['tiny']}) — comparison is meaningless; "
            "regenerate the baseline or fix REPRO_BENCH_TINY"
        )
        return failures, notes

    base_cases = baseline["cases"]
    new_cases = artifact["cases"]
    for case, base in sorted(base_cases.items()):
        current = new_cases.get(case)
        if current is None:
            failures.append(f"{suite}::{case}: baselined case missing from artifact")
            continue
        if current["outcome"] not in ("passed", "skipped"):
            failures.append(f"{suite}::{case}: outcome is {current['outcome']!r}")
            continue
        if base["outcome"] == "passed" and current["outcome"] == "skipped":
            failures.append(
                f"{suite}::{case}: passed in baseline but skipped now (coverage loss)"
            )
            continue
        if base["outcome"] != "passed" or current["outcome"] != "passed":
            continue
        metric_failures, metric_notes = compare_metrics(
            suite,
            case,
            base.get("metrics", {}),
            current.get("metrics", {}),
            max_ratio=metric_max_ratio,
            min_latency_ms=min_latency_ms,
        )
        failures.extend(metric_failures)
        notes.extend(metric_notes)
        base_wall = float(base["wall_s"])
        wall = float(current["wall_s"])
        if base_wall < min_seconds:
            continue
        ratio = wall / base_wall if base_wall > 0 else float("inf")
        if ratio > max_ratio:
            failures.append(
                f"{suite}::{case}: {wall:.3f}s vs baseline {base_wall:.3f}s "
                f"({ratio:.2f}x > {max_ratio:.2f}x)"
            )
        elif ratio > 1.0:
            notes.append(
                f"{suite}::{case}: {wall:.3f}s vs baseline {base_wall:.3f}s "
                f"({ratio:.2f}x, within gate)"
            )

    for case in sorted(set(new_cases) - set(base_cases)):
        notes.append(f"{suite}::{case}: new case (no baseline yet)")
    return failures, notes


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--artifacts",
        type=Path,
        default=REPO_ROOT / "benchmarks" / "artifacts",
        help="directory holding the fresh BENCH_*.json artifacts",
    )
    parser.add_argument(
        "--baselines",
        type=Path,
        default=REPO_ROOT / "benchmarks" / "baselines",
        help="directory holding the committed baseline BENCH_*.json files",
    )
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=3.0,
        help="fail when a gated case is more than this factor slower (default 3.0)",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=0.5,
        help="only gate wall time for cases whose baseline took at least this long",
    )
    parser.add_argument(
        "--min-latency-ms",
        type=float,
        default=2.0,
        help="only gate p50/p99 latency metrics whose baseline is at least "
             "this many milliseconds (default 2.0)",
    )
    parser.add_argument(
        "--metric-max-ratio",
        type=float,
        default=4.0,
        help="fail when a gated case metric (req/s, p50/p99) is more than "
             "this factor worse (default 4.0 — looser than --max-ratio "
             "because short-run percentiles are noisier than durations)",
    )
    parser.add_argument(
        "--suites",
        nargs="*",
        default=None,
        help="restrict the check to these suite names (default: every baseline)",
    )
    args = parser.parse_args(argv)

    baseline_files = sorted(args.baselines.glob("BENCH_*.json"))
    if args.suites is not None:
        wanted = set(args.suites)
        baseline_files = [
            p for p in baseline_files if p.stem[len("BENCH_") :] in wanted
        ]
    if not baseline_files:
        print(f"error: no baseline BENCH_*.json files under {args.baselines}")
        return 1

    failures: list[str] = []
    notes: list[str] = []
    checked = 0
    for baseline_path in baseline_files:
        baseline = load_bench(baseline_path)
        artifact_path = args.artifacts / baseline_path.name
        if not artifact_path.exists():
            failures.append(
                f"{baseline['suite']}: no artifact at {artifact_path} "
                "(suite not run or crashed before sessionfinish)"
            )
            continue
        suite_failures, suite_notes = compare_suite(
            baseline,
            load_bench(artifact_path),
            max_ratio=args.max_ratio,
            min_seconds=args.min_seconds,
            min_latency_ms=args.min_latency_ms,
            metric_max_ratio=args.metric_max_ratio,
        )
        failures.extend(suite_failures)
        notes.extend(suite_notes)
        checked += 1

    for note in notes:
        print(f"note: {note}")
    for failure in failures:
        print(f"FAIL: {failure}")
    print(
        f"bench regression check: {checked}/{len(baseline_files)} suite(s) compared, "
        f"{len(failures)} failure(s)"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
