"""Drive the multi-tenant serving daemon with concurrent clients.

Start the daemon in one terminal::

    PYTHONPATH=src python -m repro.cli serve --unix-socket /tmp/repro.sock \
        --seed 7 --batch-window-ms 2 --budget-alpha 0.25

then run this client in another::

    PYTHONPATH=src python examples/daemon_client.py \
        --unix-socket /tmp/repro.sock --tenants 4 --requests 8

Each tenant opens its own connection, binds a session with ``hello`` and
releases a stream of random counts through the same design — so the
daemon's coalescing batcher merges the tenants' same-plan requests into
single vectorised draws.  The script prints per-tenant results, the
daemon's machine-readable statistics (the ``--stats-json`` schema), and —
with ``--shutdown`` — stops the daemon gracefully at the end, which is how
the CI smoke job tears the server down.

The client class itself is ~40 lines (:class:`repro.serving.protocol
.AsyncDaemonClient`); everything on the wire is line-delimited JSON, so any
language with sockets can speak it.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.serving import AsyncDaemonClient  # noqa: E402


async def run_tenant(args, tenant_index: int) -> dict:
    """One tenant's closed loop: hello, then `--requests` releases."""
    name = f"example-{tenant_index}"
    client = await _connect(args)
    hello = await client.hello(name, seed=tenant_index)
    assert hello["code"] == 0, hello
    rng = np.random.default_rng(tenant_index)
    served = refused = 0
    for request_id in range(args.requests):
        counts = [int(c) for c in rng.integers(0, args.n + 1, size=4)]
        response = await client.release(
            counts, n=args.n, alpha=args.alpha, request_id=request_id
        )
        if response["code"] == 0:
            served += 1
        elif response["code"] == 1:
            refused += 1  # over budget: shed before sampling, nothing drawn
        else:
            raise RuntimeError(f"{name}: {response}")
    stats = (await client.stats())["tenant"]
    await client.close()
    return {"tenant": name, "served": served, "refused": refused, "stats": stats}


async def _connect(args) -> AsyncDaemonClient:
    if args.unix_socket is not None:
        return await AsyncDaemonClient.connect(path=args.unix_socket)
    return await AsyncDaemonClient.connect(host=args.host, port=args.port)


async def main(args) -> int:
    results = await asyncio.gather(
        *(run_tenant(args, index) for index in range(args.tenants))
    )
    for result in results:
        budget = result["stats"]["budget"]
        spent = budget["alpha_spent"]
        print(
            f"{result['tenant']}: served={result['served']} "
            f"refused={result['refused']} "
            f"alpha_spent={'-' if spent is None else f'{spent:.4f}'}"
        )

    reporter = await _connect(args)
    stats = (await reporter.stats())["stats"]
    print("\ndaemon stats:")
    print(json.dumps(stats, indent=2))
    if args.shutdown:
        await reporter.shutdown()
        print("\ndaemon asked to shut down (in-flight batches flushed first)")
    await reporter.close()

    served = sum(r["served"] for r in results)
    if stats["coalesced_requests"] > 0:
        print(
            f"\n{served} requests served in {stats['batches']} batched draws — "
            f"{stats['coalesced_requests']} of them coalesced across tenants"
        )
    return 0 if served > 0 else 1


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--unix-socket", type=Path, default=None,
                        help="daemon unix socket path (wins over --host/--port)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=None)
    parser.add_argument("--tenants", type=int, default=4,
                        help="concurrent tenant connections to open")
    parser.add_argument("--requests", type=int, default=8,
                        help="releases per tenant")
    parser.add_argument("--n", type=int, default=1000, help="group size")
    parser.add_argument("--alpha", type=float, default=0.9, help="privacy level")
    parser.add_argument("--shutdown", action="store_true",
                        help="gracefully stop the daemon after the run")
    args = parser.parse_args(argv)
    if args.unix_socket is None and args.port is None:
        parser.error("pass --unix-socket or --port")
    return args


if __name__ == "__main__":
    sys.exit(asyncio.run(main(parse_args())))
