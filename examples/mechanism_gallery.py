"""Mechanism gallery: see the paper's heatmap figures in your terminal.

Reproduces, as ASCII art and tables:

* Figure 1 — the pathological unconstrained LP optima (gaps and spikes);
* Figure 2 — the same designs with all seven structural constraints;
* Figure 7 — GM vs WM vs EM at a small group size and strong privacy;
* Figure 6 — the property/score table of the named mechanisms.

Run with::

    python examples/mechanism_gallery.py [--full]

``--full`` also prints every heatmap of Figures 1 and 2 (longer output).
"""

from __future__ import annotations

import sys

from repro.eval.reporting import ascii_heatmap, describe_mechanism, format_table
from repro.experiments import (
    fig01_unconstrained,
    fig02_constrained,
    fig06_property_table,
    fig07_heatmaps,
)


def section(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    full = "--full" in sys.argv[1:]

    section("Figure 1 - unconstrained LP optima (alpha = 0.62): gaps and spikes")
    unconstrained = fig01_unconstrained.run()
    print(unconstrained.to_table(
        columns=["case", "objective", "num_gap_outputs", "gap_outputs", "spike_ratio",
                 "most_popular_output", "most_popular_mass"]))
    cases = [row["case"] for row in unconstrained.rows] if full else ["L2, n=7"]
    for case in cases:
        print()
        print(unconstrained.artefacts[f"heatmap:{case}"])

    section("Figure 2 - the same designs with all structural constraints")
    constrained = fig02_constrained.run()
    print(constrained.to_table(
        columns=["case", "num_gap_outputs", "spike_ratio", "min_within_1_probability"]))
    for case in cases:
        print()
        print(constrained.artefacts[f"heatmap:{case}"])

    section("Figure 7 - GM vs WM vs EM at n = 4, alpha = 0.9")
    comparison = fig07_heatmaps.run()
    print(comparison.to_table(
        columns=["mechanism", "truth_probability", "extreme_output_mass",
                 "within_1_mass", "l0_score"]))
    for name in ("GM", "WM", "EM"):
        print()
        print(comparison.artefacts[f"heatmap:{name}"])

    section("Figure 6 - properties and L0 scores of the named mechanisms (n = 8, alpha = 0.9)")
    table = fig06_property_table.run()
    print(table.to_table(
        columns=["mechanism", "S", "RM", "CM", "F", "WH", "l0_measured", "l0_closed_form"]))
    print()
    for mechanism in table.artefacts["mechanisms"].values():
        print(describe_mechanism(mechanism))
        print()


if __name__ == "__main__":
    main()
