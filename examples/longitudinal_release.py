"""Longitudinal release: weekly private counts under a fixed privacy budget.

A realistic deployment of the paper's mechanisms: a clinic reports, every
week, how many of the n patients in each small care group currently test
positive for a condition.  The same individuals are observed week after
week, so the releases compose *sequentially* — each weekly release spends
part of a fixed overall privacy budget.

This example shows the full workflow:

1. split an overall budget (α_target) across the planned number of weeks
   with :func:`repro.privacy.per_release_alpha`;
2. design the weekly mechanism (the fair mechanism EM) at that per-week α;
3. run the weekly releases through a :class:`repro.privacy.PrivacyAccountant`
   that refuses to overrun the budget;
4. recover the weekly positive-rate trend from the noisy counts with the
   estimator in :mod:`repro.eval.estimation`.

Run with::

    python examples/longitudinal_release.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.eval.estimation import estimate_true_mean
from repro.eval.reporting import format_table
from repro.privacy import PrivacyAccountant, per_release_alpha

GROUP_SIZE = 10
NUM_GROUPS = 3000
NUM_WEEKS = 6
ALPHA_TARGET = 0.05  # overall guarantee over the whole study (epsilon = 3)


def weekly_positive_probability(week: int) -> float:
    """A slowly rising then falling outbreak curve for the simulation."""
    peak = NUM_WEEKS / 2
    return 0.15 + 0.25 * np.exp(-((week - peak) ** 2) / 6.0)


def main() -> None:
    rng = np.random.default_rng(2024)

    alpha_per_week = per_release_alpha(ALPHA_TARGET, NUM_WEEKS)
    print(
        f"Overall budget alpha={ALPHA_TARGET} (epsilon={-np.log(ALPHA_TARGET):.3f}) over "
        f"{NUM_WEEKS} weekly releases -> per-week alpha={alpha_per_week:.4f} "
        f"(epsilon={-np.log(alpha_per_week):.3f})"
    )

    mechanism, decision = repro.choose_mechanism(GROUP_SIZE, alpha_per_week, properties="F")
    print(f"Weekly mechanism: {decision.branch} ({decision.reason})\n")

    accountant = PrivacyAccountant(alpha_target=ALPHA_TARGET)
    rows = []
    for week in range(1, NUM_WEEKS + 1):
        rate = weekly_positive_probability(week)
        true_counts = rng.binomial(GROUP_SIZE, rate, size=NUM_GROUPS)

        accountant.record(alpha_per_week, label=f"week {week}")
        released = mechanism.apply(true_counts, rng=rng)

        estimated_mean = estimate_true_mean(mechanism, released)
        rows.append(
            {
                "week": week,
                "true rate": rate,
                "true mean count": float(true_counts.mean()),
                "released mean": float(released.mean()),
                "estimated mean": estimated_mean,
                "abs error": abs(estimated_mean - true_counts.mean()),
                "budget spent (eps)": accountant.spent_epsilon(),
            }
        )

    print(format_table(rows, title="Weekly private releases and recovered trend"))
    print(
        f"\nBudget after {NUM_WEEKS} weeks: spent alpha={accountant.spent_alpha():.4f} "
        f"vs target {ALPHA_TARGET} - further releases this period: "
        f"{accountant.remaining_releases(alpha_per_week)}"
    )
    print(
        "\nThe raw released means are biased towards n/2 by the strongly private"
        "\nweekly mechanism; the matrix-inversion estimator recovers the outbreak"
        "\ncurve while the accountant guarantees the study never exceeds its budget."
    )


if __name__ == "__main__":
    main()
