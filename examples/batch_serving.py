"""Batch serving: high-volume releases through the design cache.

The scenario: a service releases private counts for many cities, on two
different privacy configurations, continuously.  Designing a mechanism can
cost an LP solve, and sampling one count at a time cannot keep up — so the
serving layer (``repro.serving``) memoises designs and samples whole batches
with one vectorised pass.

The second act scales the group size to ``n = 100 000``: the Figure-5
selector hands out *closed-form* GM/EM objects, which sample by analytic
inverse-CDF inversion — a dense matrix at this size would need ~80 GB, and
the ``Mechanism.densifications`` counter proves none is ever materialised.

Run with::

    python examples/batch_serving.py
"""

from __future__ import annotations

import time

import numpy as np

import repro
from repro.core.mechanism import Mechanism
from repro.lp.solver import solve_call_count


def main() -> None:
    rng = np.random.default_rng(0)
    cache = repro.DesignCache(capacity=64)
    session = repro.BatchReleaseSession(cache=cache, rng=np.random.default_rng(7))

    print("=" * 72)
    print("Serving 5 waves of mixed traffic over two designs")
    print("=" * 72)

    designs = [
        dict(n=16, alpha=0.9, properties="F"),      # explicit EM: no LP
        dict(n=12, alpha=0.95, properties="WH+CM"),  # WM: one LP solve, once
    ]

    for wave in range(5):
        requests = []
        for index in range(10_000):
            design = designs[index % 2]
            requests.append(
                repro.ReleaseRequest(
                    group=f"wave{wave}/city{index}",
                    count=int(rng.integers(0, design["n"] + 1)),
                    **design,
                )
            )
        solves_before = solve_call_count()
        start = time.perf_counter()
        results = session.release(requests)
        elapsed = time.perf_counter() - start
        print(
            f"wave {wave}: {len(results):6d} records in {elapsed * 1e3:7.1f} ms "
            f"({len(results) / elapsed:,.0f} records/s), "
            f"LP solves this wave: {solve_call_count() - solves_before}"
        )

    print()
    print("session:", session.describe())

    print()
    print("=" * 72)
    print("Large-n serving: closed-form mechanisms, no dense matrix, ever")
    print("=" * 72)
    big_n = 100_000
    large_session = repro.BatchReleaseSession(cache=cache, rng=np.random.default_rng(9))
    densifications_before = Mechanism.densifications
    for properties, label in (("", "GM"), ("F", "EM")):
        counts = rng.integers(0, big_n + 1, size=100_000)
        start = time.perf_counter()
        released = large_session.release_counts(
            counts, n=big_n, alpha=0.9, properties=properties
        )
        elapsed = time.perf_counter() - start
        print(
            f"{label} at n={big_n:,}: {released.size:,} counts in "
            f"{elapsed * 1e3:7.1f} ms ({released.size / elapsed:,.0f} records/s)"
        )
    # A dense representation of either design would be an 80 GB matrix; the
    # densification counter proves the serving path never built one.
    assert Mechanism.densifications == densifications_before, (
        "large-n serving materialised a dense matrix"
    )
    print(f"dense matrices materialised during large-n serving: "
          f"{Mechanism.densifications - densifications_before}")

    print()
    print("Same seed + same traffic = same release (audit-friendly):")
    sample = [
        repro.ReleaseRequest(group="city0", count=3, n=16, alpha=0.9, properties="F")
    ]
    first = repro.BatchReleaseSession(
        cache=cache, rng=np.random.default_rng(1)
    ).release(sample)[0]
    second = repro.BatchReleaseSession(
        cache=cache, rng=np.random.default_rng(1)
    ).release(sample)[0]
    print(f"  released {first.released} == {second.released}: {first == second}")


if __name__ == "__main__":
    main()
