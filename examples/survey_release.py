"""Survey release: private per-group counts of sensitive attributes.

The scenario motivating the paper's real-data experiment (Figure 10): a data
owner holds demographic survey records and wants to publish, for each small
group of respondents, how many members have a sensitive property (high
income, under 30, gender), under differential privacy.

The script generates a synthetic Adult-like dataset (or loads the real UCI
Adult file if you pass its path), groups respondents, releases the counts
through the four paper mechanisms (GM, WM, EM, UM), and compares how often
each mechanism reports the true count — reproducing the paper's finding that
the "optimal" GM is beaten by uniform guessing on this kind of data while
the fair mechanism EM does best.

Run with::

    python examples/survey_release.py [path/to/adult.data]
"""

from __future__ import annotations

import sys

import numpy as np

import repro
from repro.data.adult import generate_adult_like, load_adult_csv
from repro.data.groups import group_counts
from repro.eval.empirical import evaluate_mechanisms
from repro.eval.reporting import format_table

GROUP_SIZE = 8
ALPHA = 0.9
REPETITIONS = 20


def main() -> None:
    rng = np.random.default_rng(7)
    if len(sys.argv) > 1:
        dataset = load_adult_csv(sys.argv[1])
    else:
        dataset = generate_adult_like(num_records=10_000, rng=rng)
    print(f"Loaded {dataset.num_records} records from {dataset.source}")
    print("Sensitive attribute rates:", {k: round(v, 3) for k, v in dataset.target_rates().items()})

    mechanisms = repro.paper_mechanisms(GROUP_SIZE, ALPHA)
    rows = []
    for target in ("young", "gender", "income"):
        workload = group_counts(
            dataset.target(target), GROUP_SIZE, label=target, shuffle=True, rng=rng
        )
        print(
            f"\nTarget {target!r}: {workload.num_groups} groups of {GROUP_SIZE}; "
            f"true-count histogram {np.round(workload.histogram(), 2).tolist()}"
        )
        results = evaluate_mechanisms(
            mechanisms, workload, repetitions=REPETITIONS, seed=7
        )
        for name, result in results.items():
            rows.append(
                {
                    "target": target,
                    "mechanism": name,
                    "wrong-answer rate": result.mean("error_rate"),
                    "std err": result.standard_error("error_rate"),
                    "off-by->1 rate": result.mean("exceeds_1_rate"),
                    "rmse": result.mean("rmse"),
                }
            )

    print()
    print(
        format_table(
            rows,
            title=f"Empirical error per mechanism (n={GROUP_SIZE}, alpha={ALPHA}, "
            f"{REPETITIONS} repetitions) - lower is better",
        )
    )
    print(
        "\nNote how GM's wrong-answer rate exceeds UM's (uniform guessing) on this"
        "\nmid-heavy data, while the fair mechanism EM gives the best rate - the"
        "\npaper's Figure 10 in table form."
    )


if __name__ == "__main__":
    main()
