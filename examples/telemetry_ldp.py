"""Telemetry collection with local differential privacy (the n = 1 case).

The paper notes that a mechanism for a group of size one is exactly the
local-differential-privacy setting used by RAPPOR (Chrome) and Apple's iOS
telemetry: each user perturbs their own bit before it leaves the device, and
the aggregator only ever sees noisy values.

This example simulates a fleet of devices reporting whether a (sensitive)
feature flag is enabled, compares three per-user mechanisms — binary
randomized response, the n = 1 geometric mechanism and the n-ary randomized
response generalisation — and shows how the aggregator debiases the noisy
sum into an unbiased population-rate estimate with a confidence interval.

Run with::

    python examples/telemetry_ldp.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.eval.reporting import format_table

NUM_DEVICES = 50_000
TRUE_RATE = 0.23
ALPHA = 0.5  # per-user privacy level (epsilon = ln 2)


def debiased_estimate(released: np.ndarray, truth_probability: float) -> float:
    """Invert the randomized-response channel to estimate the population rate.

    For a symmetric binary channel with truth probability ``p``,
    ``E[released] = p * rate + (1 - p) * (1 - rate)``, so
    ``rate = (mean - (1 - p)) / (2p - 1)``.
    """
    p = truth_probability
    return float((released.mean() - (1.0 - p)) / (2.0 * p - 1.0))


def main() -> None:
    rng = np.random.default_rng(123)
    true_bits = (rng.random(NUM_DEVICES) < TRUE_RATE).astype(int)
    print(f"Simulating {NUM_DEVICES} devices, true enable rate {TRUE_RATE:.3f}, "
          f"per-user alpha {ALPHA} (epsilon = {repro.theory.epsilon_from_alpha(ALPHA):.3f})")

    rows = []

    # ------------------------------------------------------------------ #
    # Binary randomized response (the classical LDP mechanism).
    # ------------------------------------------------------------------ #
    rr = repro.binary_randomized_response(alpha=ALPHA)
    released = rr.apply(true_bits, rng=rng)
    p = rr.metadata["truth_probability"]
    estimate = debiased_estimate(released, p)
    # Variance of the debiased estimator: p(1-p) / (m (2p-1)^2) per report.
    stderr = float(np.sqrt(p * (1 - p) / (NUM_DEVICES * (2 * p - 1) ** 2)))
    rows.append(
        {
            "mechanism": "randomized response",
            "truth prob": p,
            "raw mean": released.mean(),
            "debiased estimate": estimate,
            "abs error": abs(estimate - TRUE_RATE),
            "95% CI halfwidth": 1.96 * stderr,
        }
    )

    # ------------------------------------------------------------------ #
    # The n = 1 explicit fair mechanism - identical to randomized response,
    # which is the paper's observation that RR is the unique n = 1 optimum.
    # ------------------------------------------------------------------ #
    em1 = repro.explicit_fair_mechanism(1, ALPHA)
    released = em1.apply(true_bits, rng=rng)
    estimate = debiased_estimate(released, em1.matrix[0, 0])
    rows.append(
        {
            "mechanism": "EM with n = 1",
            "truth prob": float(em1.matrix[0, 0]),
            "raw mean": released.mean(),
            "debiased estimate": estimate,
            "abs error": abs(estimate - TRUE_RATE),
            "95% CI halfwidth": 1.96 * stderr,
        }
    )

    # ------------------------------------------------------------------ #
    # n-ary randomized response run over a tiny domain, for contrast: it
    # wastes budget and the estimate degrades.
    # ------------------------------------------------------------------ #
    nrr = repro.nary_randomized_response(1, ALPHA)
    released = nrr.apply(true_bits, rng=rng)
    estimate = debiased_estimate(released, nrr.metadata["truth_probability"])
    rows.append(
        {
            "mechanism": "n-ary RR (k = 2)",
            "truth prob": nrr.metadata["truth_probability"],
            "raw mean": released.mean(),
            "debiased estimate": estimate,
            "abs error": abs(estimate - TRUE_RATE),
            "95% CI halfwidth": 1.96 * stderr,
        }
    )

    print()
    print(format_table(rows, title="Aggregator-side estimates after local perturbation"))
    print(
        "\nRandomized response and the n = 1 fair mechanism coincide (the paper's"
        "\nobservation), and the debiased estimate recovers the true rate to within"
        "\nthe reported confidence interval despite every individual report being"
        "\nplausibly deniable."
    )


if __name__ == "__main__":
    main()
