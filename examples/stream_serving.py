"""Streaming release with a privacy budget: the engine end-to-end.

The scenario: a weekly telemetry job re-releases the same cohort's counts
through a fixed design, forever — or until the privacy budget runs out.
The release engine compiles the design once (``ReleasePlan``), streams each
week's counts through it in fixed-size chunks (``StreamExecutor``), and a
``PrivacyAccountant`` charges every chunk *before* it is sampled: the week
that would overrun the budget is refused with nothing drawn.

Two properties worth seeing live:

* the chunked stream is bit-identical to a one-shot release on the same
  seeded generator (chunking is an operational choice, not a statistical
  one);
* peak incremental memory is tied to the chunk size, not the stream length.

Run with::

    python examples/stream_serving.py
"""

from __future__ import annotations

import numpy as np

import repro


def main() -> None:
    n = 50_000
    alpha = 0.9
    weekly_counts = np.random.default_rng(0).integers(0, n + 1, size=200_000)

    print("=" * 72)
    print(f"Compiling one plan: GM at n={n}, alpha={alpha}")
    print("=" * 72)
    plan = repro.compile_plan(n, alpha)
    print(plan.describe())

    # ------------------------------------------------------------------ #
    # Chunked streaming is bit-identical to the one-shot release.
    # ------------------------------------------------------------------ #
    executor = repro.StreamExecutor(plan, chunk_size=16_384)
    streamed = executor.run(weekly_counts, rng=np.random.default_rng(42))
    one_shot = plan.mechanism.sample_batch(weekly_counts, rng=np.random.default_rng(42))
    assert np.array_equal(streamed, one_shot)
    print(f"\n{executor.stats.chunks} chunks, {executor.stats.records} records "
          "— bit-identical to the one-shot release")

    # ------------------------------------------------------------------ #
    # Budgeted weekly re-releases: the over-budget week is refused whole.
    # ------------------------------------------------------------------ #
    accountant = repro.PrivacyAccountant(alpha_target=0.5)
    print(f"\nWeekly releases at alpha={alpha} against a budget of "
          f"alpha_target={accountant.alpha_target} "
          f"(epsilon budget {-np.log(accountant.alpha_target):.3f})")
    week = 0
    while True:
        week += 1
        guarded = repro.StreamExecutor(
            plan, chunk_size=len(weekly_counts), accountant=accountant
        )
        try:
            guarded.run(weekly_counts, rng=np.random.default_rng(week))
        except repro.BudgetExceededError as refusal:
            print(f"  week {week}: REFUSED before sampling ({refusal})")
            break
        print(f"  week {week}: released; spent alpha={accountant.spent_alpha():.4f}, "
              f"remaining budget alpha={accountant.remaining_alpha():.4f}")
    assert accountant.spent_alpha() >= accountant.alpha_target
    print("\nThe refused week consumed no randomness and released nothing —")
    print("the budget guard runs before the sampler, not after.")


if __name__ == "__main__":
    main()
