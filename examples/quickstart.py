"""Quickstart: design and use a constrained private mechanism for count data.

This walks through the library's core loop in a couple of minutes:

1. pick a group size ``n`` and a privacy level ``alpha``;
2. look at the off-the-shelf geometric mechanism (GM) and why it can
   misbehave for small groups;
3. ask for structural properties (here: fairness) and get the explicit fair
   mechanism (EM) back from the Figure-5 selector;
4. design a custom mechanism through the LP for a bespoke property set;
5. release noisy counts for a batch of groups and measure the error.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

import repro


def main() -> None:
    n, alpha = 8, 0.9
    rng = np.random.default_rng(0)

    print("=" * 72)
    print(f"Constrained private mechanisms for counts over groups of n={n}, alpha={alpha}")
    print("=" * 72)

    # ------------------------------------------------------------------ #
    # 1. The unconstrained optimum: the truncated geometric mechanism GM.
    # ------------------------------------------------------------------ #
    gm = repro.geometric_mechanism(n, alpha)
    print("\nGM is L0-optimal, but look at its properties:")
    for prop, holds in repro.check_all_properties(gm).items():
        print(f"  {prop.value:>3}: {'yes' if holds else 'NO'}")
    print(f"  L0 score: {repro.l0_score(gm):.4f}   (uniform guessing scores 1.0)")
    print(f"  probability of reporting the truth: {gm.truth_probability():.4f}")

    # ------------------------------------------------------------------ #
    # 2. Ask for fairness: the selector returns the explicit fair mechanism.
    # ------------------------------------------------------------------ #
    em, decision = repro.choose_mechanism(n, alpha, properties="F")
    print(f"\nRequesting fairness -> {decision.branch}: {decision.reason}")
    print(f"  L0 score: {repro.l0_score(em):.4f}  "
          f"(only a factor {repro.l0_score(em) / repro.l0_score(gm):.3f} above GM)")
    print(f"  probability of reporting the truth: {em.truth_probability():.4f}")
    print("  all seven structural properties hold:",
          all(repro.check_all_properties(em).values()))

    # ------------------------------------------------------------------ #
    # 3. Design a custom mechanism through the LP.
    # ------------------------------------------------------------------ #
    custom = repro.design_mechanism(n, alpha, properties="WH+CM+S")
    print("\nCustom LP design with weak honesty + column monotonicity + symmetry:")
    print(f"  L0 score: {repro.l0_score(custom):.4f}")
    print(f"  achieved privacy level alpha = {custom.max_alpha():.4f} "
          f"(epsilon = {custom.epsilon():.4f})")

    # ------------------------------------------------------------------ #
    # 4. Release noisy counts for a batch of groups.
    # ------------------------------------------------------------------ #
    true_counts = rng.binomial(n, 0.4, size=10)
    released = em.apply(true_counts, rng=rng)
    print("\nReleasing one noisy count per group with EM:")
    print(f"  true:     {true_counts.tolist()}")
    print(f"  released: {released.tolist()}")
    errors = np.abs(released - true_counts)
    print(f"  mean absolute error: {errors.mean():.2f}")

    # ------------------------------------------------------------------ #
    # 5. A heatmap view of the mechanism (the paper's Figure 7).
    # ------------------------------------------------------------------ #
    print()
    print(em.heatmap())


if __name__ == "__main__":
    main()
