"""Self-contained linear-programming substrate.

The paper obtains constrained mechanisms by solving linear programs with
PyLPSolve (a wrapper around ``lp_solve``).  That dependency is not available
here, so this package provides an equivalent substrate:

* :mod:`repro.lp.model` — a small modelling layer (:class:`LinearProgram`)
  for declaring variables, linear constraints and a linear objective.
* :mod:`repro.lp.simplex` — a pure-NumPy two-phase dense simplex solver
  (Bland's rule), useful for verification and for environments without
  SciPy.
* :mod:`repro.lp.scipy_backend` — a backend delegating to
  ``scipy.optimize.linprog`` (HiGHS), the default for speed.
* :mod:`repro.lp.solver` — backend dispatch and the :class:`LPSolution`
  result type.

The two backends solve identical programs; the test-suite cross-checks them
against each other and against the paper's closed forms.
"""

from repro.lp.model import (
    SENSE_EQ,
    SENSE_GE,
    SENSE_LE,
    Constraint,
    ConstraintBlock,
    ConstraintSense,
    LinearProgram,
    ObjectiveSense,
    Variable,
)
from repro.lp.solver import (
    LPError,
    LPInfeasibleError,
    LPSolution,
    LPStatus,
    LPUnboundedError,
    available_backends,
    solve,
)

__all__ = [
    "SENSE_EQ",
    "SENSE_GE",
    "SENSE_LE",
    "Constraint",
    "ConstraintBlock",
    "ConstraintSense",
    "LinearProgram",
    "ObjectiveSense",
    "Variable",
    "LPError",
    "LPInfeasibleError",
    "LPSolution",
    "LPStatus",
    "LPUnboundedError",
    "available_backends",
    "solve",
]
