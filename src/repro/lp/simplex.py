"""Pure-NumPy two-phase dense simplex solver.

This backend exists for two reasons:

1. The paper solved its mechanism-design LPs with PyLPSolve; to keep the
   reproduction self-contained we provide our own solver rather than relying
   solely on SciPy.
2. Having two independent implementations lets the test-suite cross-check
   every constrained mechanism: both backends must agree on the optimal
   objective value.

The implementation is a textbook two-phase primal simplex on the standard
form ``min c·x  s.t.  A x = b, x >= 0`` with Bland's anti-cycling rule.
General programs (inequalities, equalities, finite/infinite bounds) are
converted to standard form by :func:`to_standard_form`.  Dense NumPy tableau
operations keep it fast enough for the paper's program sizes (a few hundred
variables); larger programs should use the SciPy backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

#: Default numerical tolerance for pivoting and feasibility decisions.
DEFAULT_TOLERANCE = 1e-9


@dataclass
class StandardForm:
    """A program in standard form ``min c·x  s.t.  A x = b, x >= 0``.

    ``recover`` maps a standard-form solution vector back to the original
    variable space (undoing bound shifts, sign flips and variable splits).
    """

    c: np.ndarray
    A: np.ndarray
    b: np.ndarray
    num_original: int
    shift: np.ndarray
    positive_part: np.ndarray
    negative_part: np.ndarray

    def recover(self, x_standard: np.ndarray) -> np.ndarray:
        """Map a standard-form solution back to the original variables."""
        x = np.zeros(self.num_original, dtype=float)
        for j in range(self.num_original):
            pos = self.positive_part[j]
            neg = self.negative_part[j]
            value = x_standard[pos]
            if neg >= 0:
                value -= x_standard[neg]
            x[j] = value + self.shift[j]
        return x


@dataclass
class SimplexResult:
    """Raw result of a simplex run.

    ``basis`` holds the optimal basis as standard-form column indices, one
    per row.  Entries ``>= num_cols`` denote an artificial variable that
    stayed basic at zero on a redundant row (the symmetry-implied
    ``column_sum`` redundancies of the mechanism LP produce exactly this);
    they are preserved so an exported basis can be re-imported losslessly
    by :func:`solve_standard_form`'s ``warm_basis`` path.  ``warm_started``
    records whether a supplied warm basis was actually used (phase 1
    skipped); a warm basis that turned out stale falls back to the cold
    two-phase path with ``warm_started=False``.
    """

    status: str
    x: Optional[np.ndarray]
    objective: Optional[float]
    iterations: int
    message: str = ""
    basis: Optional[np.ndarray] = None
    warm_started: bool = False


def to_standard_form(
    c: np.ndarray,
    A_ub: np.ndarray,
    b_ub: np.ndarray,
    A_eq: np.ndarray,
    b_eq: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
) -> StandardForm:
    """Convert a general LP to standard equality form with non-negative variables.

    Transformation steps:

    * variables with a finite lower bound ``l`` are shifted (``x = l + x'``);
    * variables unbounded below are split into a difference of two
      non-negative variables;
    * finite upper bounds become explicit ``<=`` rows;
    * every ``<=`` row gains a slack variable.
    """
    c = np.asarray(c, dtype=float)
    num_vars = c.shape[0]
    A_ub = np.asarray(A_ub, dtype=float).reshape(-1, num_vars) if np.size(A_ub) else np.zeros((0, num_vars))
    A_eq = np.asarray(A_eq, dtype=float).reshape(-1, num_vars) if np.size(A_eq) else np.zeros((0, num_vars))
    b_ub = np.asarray(b_ub, dtype=float).ravel()
    b_eq = np.asarray(b_eq, dtype=float).ravel()
    lower = np.asarray(lower, dtype=float).ravel()
    upper = np.asarray(upper, dtype=float).ravel()

    shift = np.zeros(num_vars, dtype=float)
    positive_part = np.zeros(num_vars, dtype=int)
    negative_part = np.full(num_vars, -1, dtype=int)

    # Build the column layout for the shifted/split variables.
    columns = 0
    for j in range(num_vars):
        if np.isfinite(lower[j]):
            shift[j] = lower[j]
            positive_part[j] = columns
            columns += 1
        else:
            positive_part[j] = columns
            negative_part[j] = columns + 1
            columns += 2

    def expand_matrix(matrix: np.ndarray) -> np.ndarray:
        """Re-express constraint rows over the shifted/split variables."""
        if matrix.shape[0] == 0:
            return np.zeros((0, columns))
        expanded = np.zeros((matrix.shape[0], columns), dtype=float)
        for j in range(num_vars):
            expanded[:, positive_part[j]] += matrix[:, j]
            if negative_part[j] >= 0:
                expanded[:, negative_part[j]] -= matrix[:, j]
        return expanded

    # The shift moves constants to the right-hand side.
    ub_shifted = b_ub - A_ub @ shift if A_ub.shape[0] else b_ub
    eq_shifted = b_eq - A_eq @ shift if A_eq.shape[0] else b_eq

    # Finite upper bounds become additional <= rows (in original space the
    # row is x_j <= upper_j, i.e. x'_j <= upper_j - lower_j after shifting).
    extra_rows: List[np.ndarray] = []
    extra_rhs: List[float] = []
    for j in range(num_vars):
        if np.isfinite(upper[j]):
            row = np.zeros(num_vars, dtype=float)
            row[j] = 1.0
            extra_rows.append(row)
            extra_rhs.append(upper[j])
    if extra_rows:
        A_extra = np.vstack(extra_rows)
        b_extra = np.array(extra_rhs, dtype=float) - A_extra @ shift
        A_ub_full = np.vstack([A_ub, A_extra]) if A_ub.shape[0] else A_extra
        b_ub_full = np.concatenate([ub_shifted, b_extra]) if A_ub.shape[0] else b_extra
    else:
        A_ub_full = A_ub
        b_ub_full = ub_shifted

    A_ub_exp = expand_matrix(A_ub_full)
    A_eq_exp = expand_matrix(A_eq)

    num_ub = A_ub_exp.shape[0]
    num_eq = A_eq_exp.shape[0]
    total_cols = columns + num_ub  # slack variables for every <= row

    A = np.zeros((num_ub + num_eq, total_cols), dtype=float)
    b = np.zeros(num_ub + num_eq, dtype=float)
    if num_ub:
        A[:num_ub, :columns] = A_ub_exp
        A[:num_ub, columns : columns + num_ub] = np.eye(num_ub)
        b[:num_ub] = b_ub_full
    if num_eq:
        A[num_ub:, :columns] = A_eq_exp
        b[num_ub:] = eq_shifted

    c_standard = np.zeros(total_cols, dtype=float)
    for j in range(num_vars):
        c_standard[positive_part[j]] += c[j]
        if negative_part[j] >= 0:
            c_standard[negative_part[j]] -= c[j]

    # Ensure b >= 0 by flipping row signs where needed (simplex phase 1
    # assumes a non-negative right-hand side).
    for row_index in range(A.shape[0]):
        if b[row_index] < 0:
            A[row_index, :] *= -1.0
            b[row_index] *= -1.0

    return StandardForm(
        c=c_standard,
        A=A,
        b=b,
        num_original=num_vars,
        shift=shift,
        positive_part=positive_part,
        negative_part=negative_part,
    )


def _pivot(tableau: np.ndarray, basis: np.ndarray, row: int, col: int) -> None:
    """Perform an in-place pivot on ``tableau`` making ``col`` basic in ``row``.

    The elimination is one masked rank-1 update rather than a Python loop
    over rows: each touched element still computes exactly
    ``a[r, c] - f[r] * p[c]`` with the same operands as the old per-row
    code (rows with a zero factor are excluded, preserving the skip), so
    the result is bit-identical while the tableau update runs at BLAS
    speed — the difference between minutes and seconds per solve on the
    mechanism LP's thousand-row tableaus.
    """
    pivot_value = tableau[row, col]
    tableau[row, :] /= pivot_value
    factors = tableau[:, col].copy()
    factors[row] = 0.0
    touched = np.nonzero(factors)[0]
    if touched.size:
        tableau[touched, :] -= factors[touched, None] * tableau[row, :]
    basis[row] = col


def _simplex_iterate(
    tableau: np.ndarray,
    basis: np.ndarray,
    num_structural: int,
    tolerance: float,
    max_iterations: int,
) -> Tuple[str, int]:
    """Run primal simplex iterations on a tableau whose last row is the objective.

    Returns ``(status, iterations)`` where status is ``optimal``, ``unbounded``
    or ``iteration_limit``.  Bland's rule (lowest eligible index) guarantees
    termination in the absence of the limit.
    """
    num_rows = tableau.shape[0] - 1
    iterations = 0
    while iterations < max_iterations:
        objective_row = tableau[-1, :num_structural]
        entering_candidates = np.nonzero(objective_row < -tolerance)[0]
        if entering_candidates.size == 0:
            return "optimal", iterations
        entering = int(entering_candidates[0])  # Bland's rule

        column = tableau[:num_rows, entering]
        positive = column > tolerance
        if not np.any(positive):
            return "unbounded", iterations
        ratios = np.full(num_rows, np.inf)
        rhs = tableau[:num_rows, -1]
        ratios[positive] = rhs[positive] / column[positive]
        min_ratio = ratios.min()
        # Bland's rule tie-break: among rows achieving the min ratio pick the
        # one whose basic variable has the smallest index.
        tied_rows = np.nonzero(ratios <= min_ratio + tolerance)[0]
        leaving = int(min(tied_rows, key=lambda r: basis[r]))
        _pivot(tableau, basis, leaving, entering)
        iterations += 1
    return "iteration_limit", iterations


def _warm_phase2_tableau(
    c: np.ndarray,
    A: np.ndarray,
    b: np.ndarray,
    warm_basis: np.ndarray,
    tolerance: float,
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Build a phase-2 tableau directly from a previously optimal basis.

    ``warm_basis`` is a per-row list of standard-form column indices; an
    entry ``num_cols + r`` stands for the artificial unit column of row
    ``r`` pinned at zero (how :func:`solve_standard_form` reports the
    redundant-row artificials it could not drive out).  Returns
    ``(tableau, basis)`` ready for phase 2, or ``None`` when the basis is
    unusable for this program — wrong shape, singular, primal-infeasible,
    or carrying a nonzero artificial (an inconsistent redundancy) — in
    which case the caller falls back to the cold two-phase path.
    """
    num_rows, num_cols = A.shape
    basis = np.asarray(warm_basis, dtype=int).ravel()
    if basis.shape[0] != num_rows:
        return None
    if basis.min(initial=0) < 0 or basis.max(initial=0) >= num_cols + num_rows:
        return None
    if len(set(basis.tolist())) != num_rows:
        return None
    # Artificial markers must point at their own row's unit column.
    artificial = basis >= num_cols
    if np.any(basis[artificial] - num_cols != np.nonzero(artificial)[0]):
        return None
    B = np.zeros((num_rows, num_rows), dtype=float)
    real = ~artificial
    B[:, real] = A[:, basis[real]]
    B[basis[artificial] - num_cols, artificial] = 1.0
    try:
        basis_inverse = np.linalg.inv(B)
    except np.linalg.LinAlgError:
        return None
    if not np.all(np.isfinite(basis_inverse)):
        return None
    x_basic = basis_inverse @ b
    if x_basic.min(initial=0.0) < -tolerance:
        return None  # the neighbouring optimum moved outside this basis
    if np.any(np.abs(x_basic[artificial]) > 100 * tolerance):
        return None  # a "redundant" row is not redundant for this program
    tableau = np.zeros((num_rows + 1, num_cols + 1), dtype=float)
    tableau[:num_rows, :num_cols] = basis_inverse @ A
    tableau[:num_rows, -1] = x_basic
    tableau[-1, :num_cols] = c
    for row in range(num_rows):
        col = basis[row]
        if col < num_cols and abs(tableau[-1, col]) > 0.0:
            tableau[-1, :] -= tableau[-1, col] * tableau[row, :]
    return tableau, basis.copy()


def solve_standard_form(
    c: np.ndarray,
    A: np.ndarray,
    b: np.ndarray,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: Optional[int] = None,
    warm_basis: Optional[np.ndarray] = None,
) -> SimplexResult:
    """Solve ``min c·x  s.t.  A x = b, x >= 0`` by the two-phase simplex method.

    When ``warm_basis`` (a previously optimal basis for a program of the
    same shape — typically a neighbouring ``alpha`` on the same design
    axis) is supplied and still primal-feasible here, **phase 1 is skipped
    entirely**: the solve starts from that vertex and phase 2 walks the
    few steps to the new optimum.  On the mechanism LP phase 1 is ~99% of
    cold iterations, so a usable warm basis is a order-of-magnitude-plus
    speedup.  A stale basis (singular or infeasible for this program)
    silently falls back to the cold two-phase path; the result then
    reports ``warm_started=False``.
    """
    c = np.asarray(c, dtype=float)
    A = np.asarray(A, dtype=float)
    b = np.asarray(b, dtype=float)
    num_rows, num_cols = A.shape
    if b.shape[0] != num_rows:
        raise ValueError("A and b have inconsistent shapes")
    if c.shape[0] != num_cols:
        raise ValueError("A and c have inconsistent shapes")
    if np.any(b < 0):
        raise ValueError("standard form requires b >= 0")
    if max_iterations is None:
        max_iterations = 50 * (num_rows + num_cols + 10)

    if warm_basis is not None:
        warm = _warm_phase2_tableau(c, A, b, warm_basis, tolerance)
        if warm is not None:
            phase2, basis = warm
            status, phase2_iters = _simplex_iterate(
                phase2, basis, num_cols, tolerance, max_iterations
            )
            if status == "unbounded":
                return SimplexResult(
                    "unbounded", None, None, phase2_iters,
                    "phase 2 detected unboundedness", warm_started=True,
                )
            if status == "iteration_limit":
                return SimplexResult(
                    "iteration_limit", None, None, phase2_iters,
                    "phase 2 hit iteration limit", warm_started=True,
                )
            x = np.zeros(num_cols, dtype=float)
            for row in range(num_rows):
                if basis[row] < num_cols:
                    x[basis[row]] = phase2[row, -1]
            return SimplexResult(
                "optimal", x, float(c @ x), phase2_iters,
                "warm-started from a prior basis (phase 1 skipped)",
                basis=basis.copy(), warm_started=True,
            )

    # ---------------- Phase 1: find a basic feasible solution -------------- #
    # Tableau layout: [A | I_artificial | b] with the phase-1 objective
    # (sum of artificial variables) in the last row.
    total_cols = num_cols + num_rows
    tableau = np.zeros((num_rows + 1, total_cols + 1), dtype=float)
    tableau[:num_rows, :num_cols] = A
    tableau[:num_rows, num_cols:total_cols] = np.eye(num_rows)
    tableau[:num_rows, -1] = b
    basis = np.arange(num_cols, num_cols + num_rows)

    # Phase-1 objective: minimise the sum of artificial variables.  Express it
    # in terms of the non-basic variables by subtracting the artificial rows.
    tableau[-1, num_cols:total_cols] = 1.0
    tableau[-1, :] -= tableau[:num_rows, :].sum(axis=0)

    status, phase1_iters = _simplex_iterate(
        tableau, basis, total_cols, tolerance, max_iterations
    )
    if status == "iteration_limit":
        return SimplexResult("iteration_limit", None, None, phase1_iters, "phase 1 hit iteration limit")
    phase1_value = -tableau[-1, -1]
    if phase1_value > 1e-7:
        return SimplexResult(
            "infeasible", None, None, phase1_iters, f"phase-1 objective {phase1_value:.3e} > 0"
        )

    # Drive any artificial variables that remain basic (at zero) out of the
    # basis, or drop their rows if they are redundant.
    for row in range(num_rows):
        if basis[row] >= num_cols:
            candidates = np.nonzero(np.abs(tableau[row, :num_cols]) > tolerance)[0]
            if candidates.size:
                _pivot(tableau, basis, row, int(candidates[0]))
            # If no candidate exists the row is redundant; the artificial stays
            # basic at value zero, which is harmless for phase 2.

    # ---------------- Phase 2: optimise the true objective ----------------- #
    phase2 = np.zeros((num_rows + 1, num_cols + 1), dtype=float)
    phase2[:num_rows, :num_cols] = tableau[:num_rows, :num_cols]
    phase2[:num_rows, -1] = tableau[:num_rows, -1]
    phase2[-1, :num_cols] = c
    # Express the objective in terms of non-basic variables.
    for row in range(num_rows):
        col = basis[row]
        if col < num_cols and abs(phase2[-1, col]) > 0.0:
            phase2[-1, :] -= phase2[-1, col] * phase2[row, :]

    status, phase2_iters = _simplex_iterate(
        phase2, basis, num_cols, tolerance, max_iterations
    )
    iterations = phase1_iters + phase2_iters
    if status == "unbounded":
        return SimplexResult("unbounded", None, None, iterations, "phase 2 detected unboundedness")
    if status == "iteration_limit":
        return SimplexResult("iteration_limit", None, None, iterations, "phase 2 hit iteration limit")

    x = np.zeros(num_cols, dtype=float)
    for row in range(num_rows):
        if basis[row] < num_cols:
            x[basis[row]] = phase2[row, -1]
    objective = float(c @ x)
    return SimplexResult("optimal", x, objective, iterations, basis=basis.copy())


def solve_general_form(
    c: np.ndarray,
    A_ub: np.ndarray,
    b_ub: np.ndarray,
    A_eq: np.ndarray,
    b_eq: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: Optional[int] = None,
    warm_basis: Optional[np.ndarray] = None,
) -> SimplexResult:
    """Solve a general-form LP by conversion to standard form.

    The returned solution vector is expressed in the *original* variable
    space and the objective is the original minimisation objective.  The
    returned ``basis`` (and any supplied ``warm_basis``) uses
    *standard-form* column indices — valid across programs that share a
    standard-form layout, which :func:`to_standard_form` guarantees for
    any two programs with the same dimensions, bound pattern and
    constraint ordering (the mechanism LP at fixed ``(n, properties)``
    and varying ``alpha``).
    """
    standard = to_standard_form(c, A_ub, b_ub, A_eq, b_eq, lower, upper)
    result = solve_standard_form(
        standard.c,
        standard.A,
        standard.b,
        tolerance=tolerance,
        max_iterations=max_iterations,
        warm_basis=warm_basis,
    )
    if result.status != "optimal" or result.x is None:
        return result
    x_original = standard.recover(result.x)
    objective = float(np.asarray(c, dtype=float) @ x_original)
    return SimplexResult(
        "optimal",
        x_original,
        objective,
        result.iterations,
        basis=result.basis,
        warm_started=result.warm_started,
    )
