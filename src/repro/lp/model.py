"""Linear-program modelling layer.

This module defines a small, explicit API for building linear programs:

>>> lp = LinearProgram(name="toy")
>>> x = lp.add_variable("x", lower=0.0)
>>> y = lp.add_variable("y", lower=0.0)
>>> lp.add_constraint({x: 1.0, y: 2.0}, "<=", 4.0)
>>> lp.add_constraint({x: 1.0, y: -1.0}, ">=", -1.0)
>>> lp.set_objective({x: 1.0, y: 1.0}, sense="max")

The resulting :class:`LinearProgram` is solver-agnostic; it can be exported
to dense matrix form (:meth:`LinearProgram.to_standard_arrays`) for the
pure-NumPy simplex backend or to SciPy CSR form
(:meth:`LinearProgram.to_sparse_arrays`) for HiGHS, and solved by any
backend in :mod:`repro.lp.solver`.

Constraints can be added one at a time (:meth:`LinearProgram.add_constraint`,
convenient for small models) or in vectorized batches of COO triplets
(:meth:`LinearProgram.add_constraints_from_triplets`).  The batched form is
what makes the mechanism-design pipeline scale: the paper's LP has
``(n + 1)^2`` variables but only a handful of nonzeros per row, so building
and exporting it sparsely turns an ``O(n^4)``-memory dense assembly into an
``O(n^2)`` one.
"""

from __future__ import annotations

import bisect
import enum
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

Number = Union[int, float, np.floating, np.integer]


class ConstraintSense(str, enum.Enum):
    """Direction of a linear constraint."""

    LE = "<="
    GE = ">="
    EQ = "=="

    @classmethod
    def coerce(cls, value: Union["ConstraintSense", str]) -> "ConstraintSense":
        """Accept either an enum member or one of ``<=``, ``>=``, ``==``, ``=``."""
        if isinstance(value, ConstraintSense):
            return value
        text = str(value).strip()
        if text in ("<=", "<"):
            return cls.LE
        if text in (">=", ">"):
            return cls.GE
        if text in ("==", "="):
            return cls.EQ
        raise ValueError(f"unknown constraint sense: {value!r}")


#: Integer sense codes used in the vectorized batch representation.
SENSE_LE, SENSE_GE, SENSE_EQ = 0, 1, 2

_SENSE_TO_CODE = {ConstraintSense.LE: SENSE_LE, ConstraintSense.GE: SENSE_GE, ConstraintSense.EQ: SENSE_EQ}
_CODE_TO_SENSE = {SENSE_LE: ConstraintSense.LE, SENSE_GE: ConstraintSense.GE, SENSE_EQ: ConstraintSense.EQ}


def _coerce_sense_codes(senses, num_rows: int) -> np.ndarray:
    """Normalise a scalar or per-row sense specification to an int8 code array."""
    if isinstance(senses, (str, ConstraintSense)):
        return np.full(num_rows, _SENSE_TO_CODE[ConstraintSense.coerce(senses)], dtype=np.int8)
    if isinstance(senses, (int, np.integer)):
        if int(senses) not in _CODE_TO_SENSE:
            raise ValueError(f"unknown sense code: {senses!r}")
        return np.full(num_rows, int(senses), dtype=np.int8)
    array = np.asarray(senses)
    if array.dtype.kind in ("i", "u", "b"):
        codes = array.astype(np.int8)
        if codes.size and (codes.min() < SENSE_LE or codes.max() > SENSE_EQ):
            raise ValueError("sense codes must be SENSE_LE, SENSE_GE or SENSE_EQ")
    else:
        codes = np.fromiter(
            (_SENSE_TO_CODE[ConstraintSense.coerce(s)] for s in senses),
            dtype=np.int8,
            count=len(senses),
        )
    if codes.shape != (num_rows,):
        raise ValueError(f"senses has shape {codes.shape}, expected ({num_rows},)")
    return codes


class ObjectiveSense(str, enum.Enum):
    """Whether the objective is minimised or maximised."""

    MIN = "min"
    MAX = "max"

    @classmethod
    def coerce(cls, value: Union["ObjectiveSense", str]) -> "ObjectiveSense":
        if isinstance(value, ObjectiveSense):
            return value
        text = str(value).strip().lower()
        if text in ("min", "minimize", "minimise"):
            return cls.MIN
        if text in ("max", "maximize", "maximise"):
            return cls.MAX
        raise ValueError(f"unknown objective sense: {value!r}")


@dataclass(frozen=True)
class Variable:
    """A decision variable in a :class:`LinearProgram`.

    Variables compare by index so they can be used as dictionary keys in
    coefficient mappings.
    """

    index: int
    name: str
    lower: Optional[float] = 0.0
    upper: Optional[float] = None

    def __hash__(self) -> int:
        return hash(self.index)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Variable):
            return self.index == other.index
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Variable({self.index}, {self.name!r})"


@dataclass
class Constraint:
    """A single linear constraint ``sum(coeff * var) sense rhs``."""

    coefficients: Dict[int, float]
    sense: ConstraintSense
    rhs: float
    name: str = ""

    def evaluate(self, values: Sequence[float]) -> float:
        """Return the left-hand-side value under a candidate assignment."""
        return float(sum(coeff * values[idx] for idx, coeff in self.coefficients.items()))

    def violation(self, values: Sequence[float]) -> float:
        """Return how far the constraint is from being satisfied (0 if satisfied)."""
        lhs = self.evaluate(values)
        if self.sense is ConstraintSense.LE:
            return max(0.0, lhs - self.rhs)
        if self.sense is ConstraintSense.GE:
            return max(0.0, self.rhs - lhs)
        return abs(lhs - self.rhs)


#: Per-row names for a constraint block: an explicit sequence, a callable
#: mapping the local row index to a name, or ``None`` for auto ``c{k}`` names.
BlockNames = Union[None, Sequence[str], Callable[[int], str]]


@dataclass
class ConstraintBlock:
    """A batch of constraints stored as COO triplets plus per-row sense/rhs.

    ``rows`` holds *local* row indices in ``[0, num_rows)``; the block's rows
    occupy consecutive global constraint slots starting at ``start_index``.
    """

    rows: np.ndarray
    cols: np.ndarray
    vals: np.ndarray
    senses: np.ndarray
    rhs: np.ndarray
    names: BlockNames = None
    start_index: int = 0

    @property
    def num_rows(self) -> int:
        return int(self.rhs.shape[0])

    @property
    def num_nonzeros(self) -> int:
        return int(self.vals.shape[0])

    def name_of(self, local_row: int) -> str:
        """Name of one row (auto-generated ``c{global_index}`` by default)."""
        if self.names is None:
            return f"c{self.start_index + local_row}"
        if callable(self.names):
            return self.names(local_row)
        return self.names[local_row]

    def materialize(self) -> List[Constraint]:
        """Expand the block into per-row :class:`Constraint` objects.

        Intended for inspection and testing; duplicate ``(row, col)`` entries
        are summed, matching the batched export semantics.
        """
        coefficient_maps: List[Dict[int, float]] = [dict() for _ in range(self.num_rows)]
        for row, col, val in zip(self.rows, self.cols, self.vals):
            mapping = coefficient_maps[int(row)]
            col = int(col)
            mapping[col] = mapping.get(col, 0.0) + float(val)
        return [
            Constraint(
                coefficients=coefficient_maps[k],
                sense=_CODE_TO_SENSE[int(self.senses[k])],
                rhs=float(self.rhs[k]),
                name=self.name_of(k),
            )
            for k in range(self.num_rows)
        ]


class LinearProgram:
    """A linear program with named variables and constraints.

    The class intentionally keeps the interface small and explicit: variables
    are created with :meth:`add_variable`, constraints with
    :meth:`add_constraint` (one at a time) or
    :meth:`add_constraints_from_triplets` (vectorized batches), and the
    objective with :meth:`set_objective` or :meth:`set_objective_from_array`.
    """

    def __init__(self, name: str = "lp") -> None:
        self.name = name
        self._variables: List[Variable] = []
        self._names: Dict[str, int] = {}
        # Mixed, insertion-ordered storage: scalar Constraint objects and
        # batched ConstraintBlock objects.
        self._items: List[Union[Constraint, ConstraintBlock]] = []
        self._num_rows = 0
        self._objective: Dict[int, float] = {}
        self._objective_dense: Optional[np.ndarray] = None
        self._objective_sense: ObjectiveSense = ObjectiveSense.MIN
        self._objective_constant: float = 0.0
        # Caches invalidated whenever variables or constraints change.
        self._gather_cache = None
        self._offsets_cache: Optional[List[int]] = None

    def _invalidate(self) -> None:
        self._gather_cache = None
        self._offsets_cache = None

    # ------------------------------------------------------------------ #
    # Variables
    # ------------------------------------------------------------------ #
    @property
    def variables(self) -> Tuple[Variable, ...]:
        """All variables in creation order."""
        return tuple(self._variables)

    @property
    def num_variables(self) -> int:
        return len(self._variables)

    def variable_names(self) -> Tuple[str, ...]:
        """All variable names in index order."""
        return tuple(self._names)

    def add_variable(
        self,
        name: Optional[str] = None,
        lower: Optional[Number] = 0.0,
        upper: Optional[Number] = None,
    ) -> Variable:
        """Create a new variable and return its handle.

        Parameters
        ----------
        name:
            Optional human-readable name; auto-generated when omitted.  Names
            must be unique within a program.
        lower, upper:
            Simple bounds.  ``None`` means unbounded in that direction.
        """
        index = len(self._variables)
        if name is None:
            name = f"x{index}"
        if name in self._names:
            raise ValueError(f"duplicate variable name: {name!r}")
        if lower is not None and upper is not None and float(lower) > float(upper):
            raise ValueError(f"variable {name!r} has lower bound above upper bound")
        var = Variable(
            index=index,
            name=name,
            lower=None if lower is None else float(lower),
            upper=None if upper is None else float(upper),
        )
        self._variables.append(var)
        self._names[name] = index
        self._invalidate()
        return var

    def add_variables(
        self,
        count: int,
        prefix: str = "x",
        lower: Optional[Number] = 0.0,
        upper: Optional[Number] = None,
    ) -> List[Variable]:
        """Create ``count`` variables named ``prefix0 … prefix(count-1)``.

        When the program already holds variables, numbering continues from
        the current variable count so repeated calls never collide.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        start = self.num_variables
        return [
            self.add_variable(f"{prefix}{start + i}", lower=lower, upper=upper)
            for i in range(count)
        ]

    def variable_by_name(self, name: str) -> Variable:
        """Look up a variable handle by its name."""
        try:
            return self._variables[self._names[name]]
        except KeyError as exc:
            raise KeyError(f"no variable named {name!r}") from exc

    # ------------------------------------------------------------------ #
    # Constraints
    # ------------------------------------------------------------------ #
    @property
    def constraints(self) -> Tuple[Constraint, ...]:
        """Every constraint as a :class:`Constraint` object, in insertion order.

        Batched blocks are materialized on demand; prefer the vectorized
        exports (:meth:`to_sparse_arrays`) on large programs.
        """
        flat: List[Constraint] = []
        for item in self._items:
            if isinstance(item, Constraint):
                flat.append(item)
            else:
                flat.extend(item.materialize())
        return tuple(flat)

    @property
    def num_constraints(self) -> int:
        return self._num_rows

    def add_constraint(
        self,
        coefficients: Mapping[Union[Variable, int], Number],
        sense: Union[ConstraintSense, str],
        rhs: Number,
        name: str = "",
    ) -> Constraint:
        """Add a constraint ``sum(coeff * var) sense rhs``.

        ``coefficients`` maps variables (or their indices) to coefficients.
        Zero coefficients are dropped; an empty constraint is rejected unless
        it is trivially satisfiable, in which case it is recorded as-is so the
        caller can detect modelling mistakes.
        """
        resolved: Dict[int, float] = {}
        for key, coeff in coefficients.items():
            index = key.index if isinstance(key, Variable) else int(key)
            if index < 0 or index >= self.num_variables:
                raise IndexError(f"constraint references unknown variable index {index}")
            value = float(coeff)
            if value != 0.0:
                resolved[index] = resolved.get(index, 0.0) + value
        constraint = Constraint(
            coefficients=resolved,
            sense=ConstraintSense.coerce(sense),
            rhs=float(rhs),
            name=name or f"c{self._num_rows}",
        )
        self._items.append(constraint)
        self._num_rows += 1
        self._invalidate()
        return constraint

    def add_constraints_from_triplets(
        self,
        rows,
        cols,
        vals,
        senses,
        rhs,
        names: BlockNames = None,
    ) -> ConstraintBlock:
        """Add a batch of constraints given as COO triplets.

        Parameters
        ----------
        rows, cols, vals:
            Parallel arrays of nonzero entries: constraint ``rows[k]`` (local
            to this batch, in ``[0, len(rhs))``) has coefficient ``vals[k]``
            on variable ``cols[k]``.  Duplicate ``(row, col)`` pairs are
            summed; exact zeros are dropped, matching
            :meth:`add_constraint`.
        senses:
            Either one sense for the whole batch (``"<="``/``">="``/``"=="``
            or a :class:`ConstraintSense`) or a per-row sequence / int8 code
            array (:data:`SENSE_LE`, :data:`SENSE_GE`, :data:`SENSE_EQ`).
        rhs:
            Per-row right-hand sides; its length defines the number of rows.
        names:
            Optional per-row names: a sequence, or a callable mapping the
            local row index to a name (evaluated lazily, which keeps huge
            batches cheap), or ``None`` for auto ``c{index}`` names.

        Returns the stored :class:`ConstraintBlock`.
        """
        rhs = np.atleast_1d(np.asarray(rhs, dtype=float))
        if rhs.ndim != 1:
            raise ValueError("rhs must be one-dimensional")
        num_rows = rhs.shape[0]
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        vals = np.asarray(vals, dtype=float)
        if not (rows.shape == cols.shape == vals.shape) or rows.ndim != 1:
            raise ValueError("rows, cols and vals must be one-dimensional and equal length")
        if rows.size:
            if rows.min() < 0 or rows.max() >= num_rows:
                raise IndexError("constraint block references a row outside [0, len(rhs))")
            if cols.min() < 0 or cols.max() >= self.num_variables:
                raise IndexError("constraint block references an unknown variable index")
        codes = _coerce_sense_codes(senses, num_rows)
        if names is not None and not callable(names) and len(names) != num_rows:
            raise ValueError(f"names has length {len(names)}, expected {num_rows}")
        # Drop exact zeros so the stored system matches add_constraint().
        keep = vals != 0.0
        if not keep.all():
            rows, cols, vals = rows[keep], cols[keep], vals[keep]
        block = ConstraintBlock(
            rows=rows,
            cols=cols,
            vals=vals,
            senses=codes,
            rhs=rhs,
            names=names,
            start_index=self._num_rows,
        )
        self._items.append(block)
        self._num_rows += num_rows
        self._invalidate()
        return block

    def constraint_name(self, index: int) -> str:
        """Name of the constraint at a global row index."""
        if index < 0 or index >= self._num_rows:
            raise IndexError(f"constraint index {index} out of range")
        offsets = self._item_offsets()
        item_pos = bisect.bisect_right(offsets, index) - 1
        item = self._items[item_pos]
        if isinstance(item, Constraint):
            return item.name
        return item.name_of(index - offsets[item_pos])

    def _item_offsets(self) -> List[int]:
        if self._offsets_cache is None:
            offsets: List[int] = []
            total = 0
            for item in self._items:
                offsets.append(total)
                total += 1 if isinstance(item, Constraint) else item.num_rows
            self._offsets_cache = offsets
        return self._offsets_cache

    # ------------------------------------------------------------------ #
    # Objective
    # ------------------------------------------------------------------ #
    @property
    def objective_sense(self) -> ObjectiveSense:
        return self._objective_sense

    @property
    def objective_constant(self) -> float:
        return self._objective_constant

    def set_objective(
        self,
        coefficients: Mapping[Union[Variable, int], Number],
        sense: Union[ObjectiveSense, str] = ObjectiveSense.MIN,
        constant: Number = 0.0,
    ) -> None:
        """Set the linear objective ``sense sum(coeff * var) + constant``."""
        resolved: Dict[int, float] = {}
        for key, coeff in coefficients.items():
            index = key.index if isinstance(key, Variable) else int(key)
            if index < 0 or index >= self.num_variables:
                raise IndexError(f"objective references unknown variable index {index}")
            value = float(coeff)
            if value != 0.0:
                resolved[index] = resolved.get(index, 0.0) + value
        self._objective = resolved
        self._objective_dense = None
        self._objective_sense = ObjectiveSense.coerce(sense)
        self._objective_constant = float(constant)

    def set_objective_from_array(
        self,
        coefficients: np.ndarray,
        sense: Union[ObjectiveSense, str] = ObjectiveSense.MIN,
        constant: Number = 0.0,
    ) -> None:
        """Vectorized objective: coefficient ``coefficients[i]`` on variable ``i``.

        The array may be shorter than the variable count (missing entries are
        zero), which lets callers set the objective before auxiliary
        variables exist.
        """
        array = np.asarray(coefficients, dtype=float).ravel()
        if array.shape[0] > self.num_variables:
            raise IndexError(
                f"objective has {array.shape[0]} coefficients for {self.num_variables} variables"
            )
        self._objective_dense = array
        self._objective = {}
        self._objective_sense = ObjectiveSense.coerce(sense)
        self._objective_constant = float(constant)

    def objective_vector(self) -> np.ndarray:
        """Return the objective coefficients as a dense vector (min sense sign)."""
        c = np.zeros(self.num_variables, dtype=float)
        if self._objective_dense is not None:
            c[: self._objective_dense.shape[0]] = self._objective_dense
        else:
            for index, coeff in self._objective.items():
                c[index] = coeff
        return c

    def objective_value(self, values: Sequence[float]) -> float:
        """Evaluate the objective (with constant) at a candidate assignment."""
        if self._objective_dense is not None:
            values = np.asarray(values, dtype=float)
            dense = self._objective_dense
            return float(dense @ values[: dense.shape[0]] + self._objective_constant)
        total = self._objective_constant
        for index, coeff in self._objective.items():
            total += coeff * float(values[index])
        return float(total)

    # ------------------------------------------------------------------ #
    # Export and diagnostics
    # ------------------------------------------------------------------ #
    def bounds(self) -> List[Tuple[Optional[float], Optional[float]]]:
        """Per-variable (lower, upper) bounds in index order."""
        return [(var.lower, var.upper) for var in self._variables]

    def _bound_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        lower = np.array(
            [(-np.inf if var.lower is None else var.lower) for var in self._variables],
            dtype=float,
        )
        upper = np.array(
            [(np.inf if var.upper is None else var.upper) for var in self._variables],
            dtype=float,
        )
        return lower, upper

    def _gather_triplets(self):
        """All constraints as global COO triplets plus per-row sense/rhs arrays.

        Returns ``(rows, cols, vals, senses, rhs)`` where ``rows`` indexes the
        global constraint order.  Cached until the program changes.
        """
        if self._gather_cache is None:
            rows_parts: List[np.ndarray] = []
            cols_parts: List[np.ndarray] = []
            vals_parts: List[np.ndarray] = []
            senses = np.empty(self._num_rows, dtype=np.int8)
            rhs = np.empty(self._num_rows, dtype=float)
            offset = 0
            for item in self._items:
                if isinstance(item, Constraint):
                    count = len(item.coefficients)
                    if count:
                        rows_parts.append(np.full(count, offset, dtype=np.int64))
                        cols_parts.append(
                            np.fromiter(item.coefficients.keys(), dtype=np.int64, count=count)
                        )
                        vals_parts.append(
                            np.fromiter(item.coefficients.values(), dtype=float, count=count)
                        )
                    senses[offset] = _SENSE_TO_CODE[item.sense]
                    rhs[offset] = item.rhs
                    offset += 1
                else:
                    if item.num_nonzeros:
                        rows_parts.append(item.rows + offset)
                        cols_parts.append(item.cols)
                        vals_parts.append(item.vals)
                    senses[offset : offset + item.num_rows] = item.senses
                    rhs[offset : offset + item.num_rows] = item.rhs
                    offset += item.num_rows
            rows = np.concatenate(rows_parts) if rows_parts else np.zeros(0, dtype=np.int64)
            cols = np.concatenate(cols_parts) if cols_parts else np.zeros(0, dtype=np.int64)
            vals = np.concatenate(vals_parts) if vals_parts else np.zeros(0, dtype=float)
            self._gather_cache = (rows, cols, vals, senses, rhs)
        return self._gather_cache

    def num_nonzeros(self) -> int:
        """Number of stored nonzero constraint coefficients."""
        return int(self._gather_triplets()[2].shape[0])

    def to_standard_arrays(self) -> Dict[str, np.ndarray]:
        """Export to the dense arrays used by the solver backends.

        Returns a dict with keys ``c`` (minimisation objective), ``A_ub``,
        ``b_ub``, ``A_eq``, ``b_eq``, ``lower``, ``upper``.  ``>=``
        constraints are negated into ``<=`` form.  Maximisation objectives
        are negated so that every backend minimises.
        """
        num_vars = self.num_variables
        c = self.objective_vector()
        if self._objective_sense is ObjectiveSense.MAX:
            c = -c

        rows, cols, vals, senses, rhs = self._gather_triplets()
        eq_row_mask = senses == SENSE_EQ
        ub_row_mask = ~eq_row_mask
        num_ub = int(ub_row_mask.sum())
        num_eq = int(eq_row_mask.sum())
        # Map each global row to its position inside A_ub / A_eq, preserving
        # the relative insertion order within each family.
        ub_position = np.cumsum(ub_row_mask) - 1
        eq_position = np.cumsum(eq_row_mask) - 1
        row_sign = np.where(senses == SENSE_GE, -1.0, 1.0)

        A_ub = np.zeros((num_ub, num_vars), dtype=float)
        A_eq = np.zeros((num_eq, num_vars), dtype=float)
        if rows.size:
            nz_is_eq = eq_row_mask[rows]
            ub_nz = ~nz_is_eq
            np.add.at(
                A_ub,
                (ub_position[rows[ub_nz]], cols[ub_nz]),
                vals[ub_nz] * row_sign[rows[ub_nz]],
            )
            np.add.at(A_eq, (eq_position[rows[nz_is_eq]], cols[nz_is_eq]), vals[nz_is_eq])
        b_ub = (rhs * row_sign)[ub_row_mask]
        b_eq = rhs[eq_row_mask]

        lower, upper = self._bound_arrays()
        return {
            "c": c,
            "A_ub": A_ub,
            "b_ub": b_ub,
            "A_eq": A_eq,
            "b_eq": b_eq,
            "lower": lower,
            "upper": upper,
        }

    def to_sparse_arrays(self) -> Dict[str, object]:
        """Export to SciPy CSR form for sparse-aware backends (HiGHS).

        Same keys and row ordering as :meth:`to_standard_arrays`, but
        ``A_ub`` and ``A_eq`` are ``scipy.sparse.csr_matrix`` instances, so
        memory and build time scale with the number of nonzeros instead of
        ``rows x columns``.
        """
        from scipy import sparse

        num_vars = self.num_variables
        c = self.objective_vector()
        if self._objective_sense is ObjectiveSense.MAX:
            c = -c

        rows, cols, vals, senses, rhs = self._gather_triplets()
        eq_row_mask = senses == SENSE_EQ
        ub_row_mask = ~eq_row_mask
        num_ub = int(ub_row_mask.sum())
        num_eq = int(eq_row_mask.sum())
        ub_position = np.cumsum(ub_row_mask) - 1
        eq_position = np.cumsum(eq_row_mask) - 1
        row_sign = np.where(senses == SENSE_GE, -1.0, 1.0)

        if rows.size:
            nz_is_eq = eq_row_mask[rows]
            ub_nz = ~nz_is_eq
            A_ub = sparse.coo_matrix(
                (
                    vals[ub_nz] * row_sign[rows[ub_nz]],
                    (ub_position[rows[ub_nz]], cols[ub_nz]),
                ),
                shape=(num_ub, num_vars),
            ).tocsr()
            A_eq = sparse.coo_matrix(
                (vals[nz_is_eq], (eq_position[rows[nz_is_eq]], cols[nz_is_eq])),
                shape=(num_eq, num_vars),
            ).tocsr()
        else:
            A_ub = sparse.csr_matrix((num_ub, num_vars), dtype=float)
            A_eq = sparse.csr_matrix((num_eq, num_vars), dtype=float)
        b_ub = (rhs * row_sign)[ub_row_mask]
        b_eq = rhs[eq_row_mask]

        lower, upper = self._bound_arrays()
        return {
            "c": c,
            "A_ub": A_ub,
            "b_ub": b_ub,
            "A_eq": A_eq,
            "b_eq": b_eq,
            "lower": lower,
            "upper": upper,
        }

    def check_feasible(self, values: Sequence[float], tolerance: float = 1e-7) -> bool:
        """Check whether an assignment satisfies every constraint and bound."""
        return not self.violated_constraints(values, tolerance=tolerance)

    def violated_constraints(
        self, values: Sequence[float], tolerance: float = 1e-7
    ) -> List[str]:
        """Return the names of constraints/bounds violated by an assignment.

        The check is vectorized: one scatter-accumulated matvec over the
        constraint nonzeros plus elementwise comparisons, so it costs
        ``O(nonzeros)`` rather than a Python loop over constraints.
        """
        if len(values) != self.num_variables:
            raise ValueError(
                f"assignment has {len(values)} values, expected {self.num_variables}"
            )
        values = np.asarray(values, dtype=float)
        violations: List[str] = []
        lower, upper = self._bound_arrays()
        below = values < lower - tolerance
        above = values > upper + tolerance
        for index in np.nonzero(below | above)[0]:
            name = self._variables[index].name
            if below[index]:
                violations.append(f"bound:{name}:lower")
            if above[index]:
                violations.append(f"bound:{name}:upper")

        rows, cols, vals, senses, rhs = self._gather_triplets()
        if self._num_rows:
            lhs = np.bincount(rows, weights=vals * values[cols], minlength=self._num_rows)
            residual = np.where(
                senses == SENSE_LE,
                lhs - rhs,
                np.where(senses == SENSE_GE, rhs - lhs, np.abs(lhs - rhs)),
            )
            for index in np.nonzero(residual > tolerance)[0]:
                violations.append(self.constraint_name(int(index)))
        return violations

    def summary(self) -> str:
        """One-line human-readable description of the program size."""
        num_eq = 0
        for item in self._items:
            if isinstance(item, Constraint):
                num_eq += item.sense is ConstraintSense.EQ
            else:
                num_eq += int((item.senses == SENSE_EQ).sum())
        num_ineq = self.num_constraints - num_eq
        return (
            f"LinearProgram({self.name!r}: {self.num_variables} variables, "
            f"{num_ineq} inequalities, {num_eq} equalities, "
            f"objective={self._objective_sense.value})"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.summary()


def combination(
    terms: Iterable[Tuple[Variable, Number]],
) -> Dict[Variable, float]:
    """Helper to build a coefficient mapping from (variable, coefficient) pairs.

    Repeated variables have their coefficients summed, which is convenient
    when assembling constraints programmatically.
    """
    result: Dict[Variable, float] = {}
    for var, coeff in terms:
        result[var] = result.get(var, 0.0) + float(coeff)
    return result
