"""Linear-program modelling layer.

This module defines a small, explicit API for building linear programs:

>>> lp = LinearProgram(name="toy")
>>> x = lp.add_variable("x", lower=0.0)
>>> y = lp.add_variable("y", lower=0.0)
>>> lp.add_constraint({x: 1.0, y: 2.0}, "<=", 4.0)
>>> lp.add_constraint({x: 1.0, y: -1.0}, ">=", -1.0)
>>> lp.set_objective({x: 1.0, y: 1.0}, sense="max")

The resulting :class:`LinearProgram` is solver-agnostic; it can be exported
to dense matrix form (:meth:`LinearProgram.to_standard_arrays`) and solved by
any backend in :mod:`repro.lp.solver`.

The design mirrors what the paper needed from PyLPSolve: dense programs with
a few thousand variables (``(n + 1)^2`` mechanism entries), equality and
inequality constraints, and simple bounds.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

Number = Union[int, float, np.floating, np.integer]


class ConstraintSense(str, enum.Enum):
    """Direction of a linear constraint."""

    LE = "<="
    GE = ">="
    EQ = "=="

    @classmethod
    def coerce(cls, value: Union["ConstraintSense", str]) -> "ConstraintSense":
        """Accept either an enum member or one of ``<=``, ``>=``, ``==``, ``=``."""
        if isinstance(value, ConstraintSense):
            return value
        text = str(value).strip()
        if text in ("<=", "<"):
            return cls.LE
        if text in (">=", ">"):
            return cls.GE
        if text in ("==", "="):
            return cls.EQ
        raise ValueError(f"unknown constraint sense: {value!r}")


class ObjectiveSense(str, enum.Enum):
    """Whether the objective is minimised or maximised."""

    MIN = "min"
    MAX = "max"

    @classmethod
    def coerce(cls, value: Union["ObjectiveSense", str]) -> "ObjectiveSense":
        if isinstance(value, ObjectiveSense):
            return value
        text = str(value).strip().lower()
        if text in ("min", "minimize", "minimise"):
            return cls.MIN
        if text in ("max", "maximize", "maximise"):
            return cls.MAX
        raise ValueError(f"unknown objective sense: {value!r}")


@dataclass(frozen=True)
class Variable:
    """A decision variable in a :class:`LinearProgram`.

    Variables compare by index so they can be used as dictionary keys in
    coefficient mappings.
    """

    index: int
    name: str
    lower: Optional[float] = 0.0
    upper: Optional[float] = None

    def __hash__(self) -> int:
        return hash(self.index)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Variable):
            return self.index == other.index
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Variable({self.index}, {self.name!r})"


@dataclass
class Constraint:
    """A single linear constraint ``sum(coeff * var) sense rhs``."""

    coefficients: Dict[int, float]
    sense: ConstraintSense
    rhs: float
    name: str = ""

    def evaluate(self, values: Sequence[float]) -> float:
        """Return the left-hand-side value under a candidate assignment."""
        return float(sum(coeff * values[idx] for idx, coeff in self.coefficients.items()))

    def violation(self, values: Sequence[float]) -> float:
        """Return how far the constraint is from being satisfied (0 if satisfied)."""
        lhs = self.evaluate(values)
        if self.sense is ConstraintSense.LE:
            return max(0.0, lhs - self.rhs)
        if self.sense is ConstraintSense.GE:
            return max(0.0, self.rhs - lhs)
        return abs(lhs - self.rhs)


class LinearProgram:
    """A dense linear program with named variables and constraints.

    The class intentionally keeps the interface small and explicit: variables
    are created with :meth:`add_variable`, constraints with
    :meth:`add_constraint`, and the objective with :meth:`set_objective`.
    """

    def __init__(self, name: str = "lp") -> None:
        self.name = name
        self._variables: List[Variable] = []
        self._names: Dict[str, int] = {}
        self._constraints: List[Constraint] = []
        self._objective: Dict[int, float] = {}
        self._objective_sense: ObjectiveSense = ObjectiveSense.MIN
        self._objective_constant: float = 0.0

    # ------------------------------------------------------------------ #
    # Variables
    # ------------------------------------------------------------------ #
    @property
    def variables(self) -> Tuple[Variable, ...]:
        """All variables in creation order."""
        return tuple(self._variables)

    @property
    def num_variables(self) -> int:
        return len(self._variables)

    def add_variable(
        self,
        name: Optional[str] = None,
        lower: Optional[Number] = 0.0,
        upper: Optional[Number] = None,
    ) -> Variable:
        """Create a new variable and return its handle.

        Parameters
        ----------
        name:
            Optional human-readable name; auto-generated when omitted.  Names
            must be unique within a program.
        lower, upper:
            Simple bounds.  ``None`` means unbounded in that direction.
        """
        index = len(self._variables)
        if name is None:
            name = f"x{index}"
        if name in self._names:
            raise ValueError(f"duplicate variable name: {name!r}")
        if lower is not None and upper is not None and float(lower) > float(upper):
            raise ValueError(f"variable {name!r} has lower bound above upper bound")
        var = Variable(
            index=index,
            name=name,
            lower=None if lower is None else float(lower),
            upper=None if upper is None else float(upper),
        )
        self._variables.append(var)
        self._names[name] = index
        return var

    def add_variables(
        self,
        count: int,
        prefix: str = "x",
        lower: Optional[Number] = 0.0,
        upper: Optional[Number] = None,
    ) -> List[Variable]:
        """Create ``count`` variables named ``prefix0 … prefix(count-1)``."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return [
            self.add_variable(f"{prefix}{i + self.num_variables}", lower=lower, upper=upper)
            for i in range(count)
        ]

    def variable_by_name(self, name: str) -> Variable:
        """Look up a variable handle by its name."""
        try:
            return self._variables[self._names[name]]
        except KeyError as exc:
            raise KeyError(f"no variable named {name!r}") from exc

    # ------------------------------------------------------------------ #
    # Constraints
    # ------------------------------------------------------------------ #
    @property
    def constraints(self) -> Tuple[Constraint, ...]:
        return tuple(self._constraints)

    @property
    def num_constraints(self) -> int:
        return len(self._constraints)

    def add_constraint(
        self,
        coefficients: Mapping[Union[Variable, int], Number],
        sense: Union[ConstraintSense, str],
        rhs: Number,
        name: str = "",
    ) -> Constraint:
        """Add a constraint ``sum(coeff * var) sense rhs``.

        ``coefficients`` maps variables (or their indices) to coefficients.
        Zero coefficients are dropped; an empty constraint is rejected unless
        it is trivially satisfiable, in which case it is recorded as-is so the
        caller can detect modelling mistakes.
        """
        resolved: Dict[int, float] = {}
        for key, coeff in coefficients.items():
            index = key.index if isinstance(key, Variable) else int(key)
            if index < 0 or index >= self.num_variables:
                raise IndexError(f"constraint references unknown variable index {index}")
            value = float(coeff)
            if value != 0.0:
                resolved[index] = resolved.get(index, 0.0) + value
        constraint = Constraint(
            coefficients=resolved,
            sense=ConstraintSense.coerce(sense),
            rhs=float(rhs),
            name=name or f"c{len(self._constraints)}",
        )
        self._constraints.append(constraint)
        return constraint

    # ------------------------------------------------------------------ #
    # Objective
    # ------------------------------------------------------------------ #
    @property
    def objective_sense(self) -> ObjectiveSense:
        return self._objective_sense

    @property
    def objective_constant(self) -> float:
        return self._objective_constant

    def set_objective(
        self,
        coefficients: Mapping[Union[Variable, int], Number],
        sense: Union[ObjectiveSense, str] = ObjectiveSense.MIN,
        constant: Number = 0.0,
    ) -> None:
        """Set the linear objective ``sense sum(coeff * var) + constant``."""
        resolved: Dict[int, float] = {}
        for key, coeff in coefficients.items():
            index = key.index if isinstance(key, Variable) else int(key)
            if index < 0 or index >= self.num_variables:
                raise IndexError(f"objective references unknown variable index {index}")
            value = float(coeff)
            if value != 0.0:
                resolved[index] = resolved.get(index, 0.0) + value
        self._objective = resolved
        self._objective_sense = ObjectiveSense.coerce(sense)
        self._objective_constant = float(constant)

    def objective_vector(self) -> np.ndarray:
        """Return the objective coefficients as a dense vector (min sense sign)."""
        c = np.zeros(self.num_variables, dtype=float)
        for index, coeff in self._objective.items():
            c[index] = coeff
        return c

    def objective_value(self, values: Sequence[float]) -> float:
        """Evaluate the objective (with constant) at a candidate assignment."""
        total = self._objective_constant
        for index, coeff in self._objective.items():
            total += coeff * float(values[index])
        return float(total)

    # ------------------------------------------------------------------ #
    # Export and diagnostics
    # ------------------------------------------------------------------ #
    def bounds(self) -> List[Tuple[Optional[float], Optional[float]]]:
        """Per-variable (lower, upper) bounds in index order."""
        return [(var.lower, var.upper) for var in self._variables]

    def to_standard_arrays(self) -> Dict[str, np.ndarray]:
        """Export to the dense arrays used by the solver backends.

        Returns a dict with keys ``c`` (minimisation objective), ``A_ub``,
        ``b_ub``, ``A_eq``, ``b_eq``, ``lower``, ``upper``.  ``>=``
        constraints are negated into ``<=`` form.  Maximisation objectives
        are negated so that every backend minimises.
        """
        num_vars = self.num_variables
        c = self.objective_vector()
        if self._objective_sense is ObjectiveSense.MAX:
            c = -c

        ub_rows: List[np.ndarray] = []
        ub_rhs: List[float] = []
        eq_rows: List[np.ndarray] = []
        eq_rhs: List[float] = []
        for constraint in self._constraints:
            row = np.zeros(num_vars, dtype=float)
            for index, coeff in constraint.coefficients.items():
                row[index] = coeff
            if constraint.sense is ConstraintSense.LE:
                ub_rows.append(row)
                ub_rhs.append(constraint.rhs)
            elif constraint.sense is ConstraintSense.GE:
                ub_rows.append(-row)
                ub_rhs.append(-constraint.rhs)
            else:
                eq_rows.append(row)
                eq_rhs.append(constraint.rhs)

        lower = np.array(
            [(-np.inf if var.lower is None else var.lower) for var in self._variables],
            dtype=float,
        )
        upper = np.array(
            [(np.inf if var.upper is None else var.upper) for var in self._variables],
            dtype=float,
        )
        return {
            "c": c,
            "A_ub": np.array(ub_rows, dtype=float) if ub_rows else np.zeros((0, num_vars)),
            "b_ub": np.array(ub_rhs, dtype=float),
            "A_eq": np.array(eq_rows, dtype=float) if eq_rows else np.zeros((0, num_vars)),
            "b_eq": np.array(eq_rhs, dtype=float),
            "lower": lower,
            "upper": upper,
        }

    def check_feasible(self, values: Sequence[float], tolerance: float = 1e-7) -> bool:
        """Check whether an assignment satisfies every constraint and bound."""
        return not self.violated_constraints(values, tolerance=tolerance)

    def violated_constraints(
        self, values: Sequence[float], tolerance: float = 1e-7
    ) -> List[str]:
        """Return the names of constraints/bounds violated by an assignment."""
        if len(values) != self.num_variables:
            raise ValueError(
                f"assignment has {len(values)} values, expected {self.num_variables}"
            )
        violations: List[str] = []
        for var in self._variables:
            value = float(values[var.index])
            if var.lower is not None and value < var.lower - tolerance:
                violations.append(f"bound:{var.name}:lower")
            if var.upper is not None and value > var.upper + tolerance:
                violations.append(f"bound:{var.name}:upper")
        for constraint in self._constraints:
            if constraint.violation(values) > tolerance:
                violations.append(constraint.name)
        return violations

    def summary(self) -> str:
        """One-line human-readable description of the program size."""
        num_eq = sum(1 for c in self._constraints if c.sense is ConstraintSense.EQ)
        num_ineq = self.num_constraints - num_eq
        return (
            f"LinearProgram({self.name!r}: {self.num_variables} variables, "
            f"{num_ineq} inequalities, {num_eq} equalities, "
            f"objective={self._objective_sense.value})"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.summary()


def combination(
    terms: Iterable[Tuple[Variable, Number]],
) -> Dict[Variable, float]:
    """Helper to build a coefficient mapping from (variable, coefficient) pairs.

    Repeated variables have their coefficients summed, which is convenient
    when assembling constraints programmatically.
    """
    result: Dict[Variable, float] = {}
    for var, coeff in terms:
        result[var] = result.get(var, 0.0) + float(coeff)
    return result
