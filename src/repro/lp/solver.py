"""Backend dispatch for solving :class:`~repro.lp.model.LinearProgram` objects."""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.lp import scipy_backend, simplex
from repro.lp.model import LinearProgram, ObjectiveSense

#: Names of the available solver backends, in priority order.
BACKENDS: Tuple[str, ...] = ("scipy", "simplex")

#: Default backend used when none is specified.
DEFAULT_BACKEND = "scipy"

#: Number of times :func:`solve` has run in this process.  The serving
#: layer's :class:`~repro.serving.cache.DesignCache` tests use this counter
#: to prove cache hits perform no LP work; it is a plain diagnostic, not a
#: thread-safe metric.
_SOLVE_CALLS = 0


def solve_call_count() -> int:
    """How many LP solves have run in this process (any backend)."""
    return _SOLVE_CALLS


def reset_solve_call_count() -> int:
    """Reset the solve counter to zero and return the previous value."""
    global _SOLVE_CALLS
    previous = _SOLVE_CALLS
    _SOLVE_CALLS = 0
    return previous


class LPError(RuntimeError):
    """Base class for LP solver failures."""


class LPInfeasibleError(LPError):
    """Raised when the program has no feasible solution."""


class LPUnboundedError(LPError):
    """Raised when the program is unbounded in the optimisation direction."""


class LPStatus(str, enum.Enum):
    """Termination status of a solve."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ITERATION_LIMIT = "iteration_limit"
    NUMERICAL_ERROR = "numerical_error"


@dataclass
class LPSolution:
    """Result of solving a :class:`LinearProgram`.

    ``objective`` is reported in the *original* sense of the program (so a
    maximisation problem reports the maximum, not its negation) and includes
    the objective constant.

    The name-to-value view :attr:`by_name` is materialised lazily from
    ``variable_names`` on first access: a mechanism-design LP has
    ``(n + 1)^2`` variables, and most callers only ever read the raw
    ``values`` vector.
    """

    status: LPStatus
    values: np.ndarray
    objective: float
    backend: str
    iterations: int = 0
    message: str = ""
    variable_names: Optional[Tuple[str, ...]] = field(default=None, repr=False)
    #: Optimal basis in standard-form column indices (simplex backend only).
    #: Entries ``>= num_structural_columns`` mark artificial variables kept
    #: basic at zero on redundant rows; :mod:`repro.lp.simplex` knows how to
    #: re-import them.  ``None`` for backends without a basis interface
    #: (scipy/HiGHS exposes none through ``linprog``).
    basis: Optional[Tuple[int, ...]] = field(default=None, repr=False)
    #: True when this solve skipped phase 1 by starting from a prior basis.
    warm_started: bool = False

    def __post_init__(self) -> None:
        self._by_name_cache: Optional[Dict[str, float]] = None

    @property
    def by_name(self) -> Dict[str, float]:
        """Solution values keyed by variable name (built on first access)."""
        if self._by_name_cache is None:
            names = self.variable_names or ()
            self._by_name_cache = {
                name: float(value) for name, value in zip(names, self.values)
            }
        return self._by_name_cache

    def __getitem__(self, name: str) -> float:
        return self.by_name[name]

    def value_of(self, variable) -> float:
        """Value of a :class:`~repro.lp.model.Variable` handle."""
        return float(self.values[variable.index])

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable snapshot of the solution.

        Variable names are stored once (in index order) rather than as a
        duplicate name-to-value mapping, so the payload carries each solution
        value exactly once.
        """
        payload: Dict[str, object] = {
            "status": self.status.value,
            "values": [float(v) for v in self.values],
            "objective": float(self.objective),
            "backend": self.backend,
            "iterations": int(self.iterations),
            "message": self.message,
            "variable_names": list(self.variable_names or ()),
        }
        if self.basis is not None:
            payload["basis"] = [int(i) for i in self.basis]
        if self.warm_started:
            payload["warm_started"] = True
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "LPSolution":
        """Inverse of :meth:`to_dict` (also reads the legacy ``by_name`` form)."""
        solution = cls(
            status=LPStatus(str(payload["status"])),
            values=np.asarray(payload["values"], dtype=float),
            objective=float(payload["objective"]),  # type: ignore[arg-type]
            backend=str(payload["backend"]),
            iterations=int(payload.get("iterations", 0)),  # type: ignore[arg-type]
            message=str(payload.get("message", "")),
            variable_names=tuple(str(name) for name in payload.get("variable_names", ())) or None,
            basis=tuple(int(i) for i in payload["basis"]) if payload.get("basis") else None,
            warm_started=bool(payload.get("warm_started", False)),
        )
        if solution.variable_names is None and "by_name" in payload:
            solution._by_name_cache = {
                str(k): float(v) for k, v in dict(payload["by_name"]).items()
            }
            solution.variable_names = tuple(solution._by_name_cache)
        return solution


def available_backends() -> Tuple[str, ...]:
    """Names of solver backends that can be used with :func:`solve`."""
    return BACKENDS


def warm_start_enabled() -> bool:
    """Whether LP warm-starting is allowed in this process.

    ``REPRO_NO_WARMSTART=1`` (any value other than empty or ``"0"``) disables
    warm-starting everywhere, keeping every solve byte-identical to the cold
    two-phase path regardless of what callers pass for ``warm_start``.
    """
    return os.environ.get("REPRO_NO_WARMSTART", "") in ("", "0")


def solve(
    program: LinearProgram,
    backend: str = DEFAULT_BACKEND,
    tolerance: float = 1e-9,
    max_iterations: Optional[int] = None,
    check: bool = True,
    sparse: Optional[bool] = None,
    warm_start: Optional[Sequence[int]] = None,
) -> LPSolution:
    """Solve a linear program and return an :class:`LPSolution`.

    Parameters
    ----------
    program:
        The program to solve.
    backend:
        ``"scipy"`` (default, HiGHS) or ``"simplex"`` (pure-NumPy two-phase
        simplex).
    tolerance:
        Numerical tolerance used by the simplex backend and by the optional
        feasibility check.
    max_iterations:
        Optional iteration cap for the chosen backend.
    check:
        When true (default), verify that the returned point satisfies every
        constraint of the original program to within ``100 * tolerance`` and
        raise :class:`LPError` otherwise.
    sparse:
        Whether to export the constraint matrices in SciPy CSR form rather
        than densifying them.  Defaults to ``True`` for the scipy backend
        (HiGHS consumes sparse matrices natively) and is ignored by the
        dense-only simplex backend.
    warm_start:
        Optional standard-form basis from a previous ``simplex`` solve of a
        structurally identical program (same shape after
        ``to_standard_form``; typically a neighbouring ``alpha``).  When the
        basis is still primal-feasible, phase 1 is skipped entirely.  The
        result is verified like any other solve; if a warm-started solve
        fails its feasibility check the cold path re-runs automatically, so
        a stale basis can never change the answer.  Ignored by the scipy
        backend (``linprog`` exposes no basis interface) and disabled
        globally by ``REPRO_NO_WARMSTART=1``.

    Raises
    ------
    LPInfeasibleError, LPUnboundedError, LPError
        On the corresponding failure modes.
    """
    if backend not in BACKENDS:
        raise ValueError(f"unknown LP backend {backend!r}; available: {BACKENDS}")
    global _SOLVE_CALLS
    _SOLVE_CALLS += 1
    if sparse is None:
        sparse = backend == "scipy"
    if warm_start is not None and (backend != "simplex" or not warm_start_enabled()):
        warm_start = None

    basis: Optional[Tuple[int, ...]] = None
    warm_started = False
    if backend == "scipy":
        arrays = program.to_sparse_arrays() if sparse else program.to_standard_arrays()
        raw = scipy_backend.solve_general_form(
            arrays["c"],
            arrays["A_ub"],
            arrays["b_ub"],
            arrays["A_eq"],
            arrays["b_eq"],
            arrays["lower"],
            arrays["upper"],
            tolerance=tolerance,
            max_iterations=max_iterations,
        )
        status_text = str(raw["status"])
        x = raw["x"]
        iterations = int(raw["iterations"])  # type: ignore[arg-type]
        message = str(raw["message"])
    else:
        arrays = program.to_standard_arrays()
        result = simplex.solve_general_form(
            arrays["c"],
            arrays["A_ub"],
            arrays["b_ub"],
            arrays["A_eq"],
            arrays["b_eq"],
            arrays["lower"],
            arrays["upper"],
            tolerance=tolerance,
            max_iterations=max_iterations,
            warm_basis=warm_start,
        )
        status_text = result.status
        x = result.x
        iterations = result.iterations
        message = result.message
        warm_started = bool(result.warm_started)
        if result.basis is not None:
            basis = tuple(int(i) for i in result.basis)

    if warm_started and (status_text != "optimal" or x is None):
        # Verification gate, part 1: a warm-started solve that did not reach
        # a clean optimum falls back to the cold two-phase path instead of
        # surfacing the failure — a stale basis must never change behaviour.
        return solve(
            program,
            backend=backend,
            tolerance=tolerance,
            max_iterations=max_iterations,
            check=check,
            sparse=sparse,
        )

    if status_text == "infeasible":
        raise LPInfeasibleError(f"{program.summary()}: infeasible ({message})")
    if status_text == "unbounded":
        raise LPUnboundedError(f"{program.summary()}: unbounded ({message})")
    if status_text != "optimal" or x is None:
        raise LPError(f"{program.summary()}: solver failed with status {status_text} ({message})")

    values = np.asarray(x, dtype=float)
    if check:
        violations = program.violated_constraints(values, tolerance=max(1e-6, 100 * tolerance))
        if violations:
            if warm_started:
                # Verification gate, part 2: an infeasible warm-started point
                # means the imported basis was stale — re-solve cold.
                return solve(
                    program,
                    backend=backend,
                    tolerance=tolerance,
                    max_iterations=max_iterations,
                    check=check,
                    sparse=sparse,
                )
            raise LPError(
                f"{program.summary()}: backend {backend!r} returned an infeasible point; "
                f"violated: {violations[:5]}"
            )

    objective = program.objective_value(values)
    return LPSolution(
        status=LPStatus.OPTIMAL,
        values=values,
        objective=objective,
        backend=backend,
        iterations=iterations,
        message=message,
        variable_names=program.variable_names(),
        basis=basis,
        warm_started=warm_started,
    )
