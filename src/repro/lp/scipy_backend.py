"""SciPy (HiGHS) backend for the LP substrate.

This is the default backend: ``scipy.optimize.linprog`` with the HiGHS dual
simplex is both faster and numerically more robust than the reference
NumPy simplex in :mod:`repro.lp.simplex`, especially for the larger programs
generated when the group size ``n`` reaches the tens.

``A_ub`` and ``A_eq`` may be dense NumPy arrays or ``scipy.sparse`` matrices;
sparse inputs are forwarded to HiGHS as-is, which is what lets the
mechanism-design pipeline scale to group sizes in the hundreds without ever
materialising an ``O(n^4)`` dense constraint matrix.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np
from scipy import optimize, sparse

#: scipy status codes mapped onto our status vocabulary.
_SCIPY_STATUS = {
    0: "optimal",
    1: "iteration_limit",
    2: "infeasible",
    3: "unbounded",
    4: "numerical_error",
}


def _prepare_matrix(matrix) -> Optional[object]:
    """Pass sparse matrices through untouched; densify/validate anything else."""
    if matrix is None:
        return None
    if sparse.issparse(matrix):
        return matrix if matrix.shape[0] else None
    matrix = np.asarray(matrix, dtype=float)
    return matrix if matrix.size else None


def solve_general_form(
    c: np.ndarray,
    A_ub,
    b_ub: np.ndarray,
    A_eq,
    b_eq: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
    tolerance: float = 1e-9,
    max_iterations: Optional[int] = None,
) -> Dict[str, object]:
    """Solve a general-form LP with ``scipy.optimize.linprog`` (HiGHS).

    ``A_ub``/``A_eq`` may be dense arrays or ``scipy.sparse`` matrices.
    Returns a dict with keys ``status``, ``x``, ``objective``, ``iterations``
    and ``message`` — the same vocabulary as the NumPy simplex backend so
    :mod:`repro.lp.solver` can treat backends uniformly.
    """
    bounds = list(zip(np.asarray(lower, dtype=float), np.asarray(upper, dtype=float)))
    bounds = [
        (None if not np.isfinite(lo) else float(lo), None if not np.isfinite(hi) else float(hi))
        for lo, hi in bounds
    ]
    options: Dict[str, object] = {"presolve": True}
    if max_iterations is not None:
        options["maxiter"] = int(max_iterations)

    A_ub = _prepare_matrix(A_ub)
    A_eq = _prepare_matrix(A_eq)
    result = optimize.linprog(
        c=np.asarray(c, dtype=float),
        A_ub=A_ub,
        b_ub=np.asarray(b_ub, dtype=float) if A_ub is not None else None,
        A_eq=A_eq,
        b_eq=np.asarray(b_eq, dtype=float) if A_eq is not None else None,
        bounds=bounds,
        method="highs",
        options=options,
    )
    status = _SCIPY_STATUS.get(int(result.status), "numerical_error")
    iterations = int(getattr(result, "nit", 0) or 0)
    if status != "optimal" or result.x is None:
        return {
            "status": status,
            "x": None,
            "objective": None,
            "iterations": iterations,
            "message": str(result.message),
        }
    return {
        "status": "optimal",
        "x": np.asarray(result.x, dtype=float),
        "objective": float(result.fun),
        "iterations": iterations,
        "message": str(result.message),
    }
