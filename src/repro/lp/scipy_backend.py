"""SciPy (HiGHS) backend for the LP substrate.

This is the default backend: ``scipy.optimize.linprog`` with the HiGHS dual
simplex is both faster and numerically more robust than the reference
NumPy simplex in :mod:`repro.lp.simplex`, especially for the larger programs
generated when the group size ``n`` reaches the tens.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np
from scipy import optimize

#: scipy status codes mapped onto our status vocabulary.
_SCIPY_STATUS = {
    0: "optimal",
    1: "iteration_limit",
    2: "infeasible",
    3: "unbounded",
    4: "numerical_error",
}


def solve_general_form(
    c: np.ndarray,
    A_ub: np.ndarray,
    b_ub: np.ndarray,
    A_eq: np.ndarray,
    b_eq: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
    tolerance: float = 1e-9,
    max_iterations: Optional[int] = None,
) -> Dict[str, object]:
    """Solve a general-form LP with ``scipy.optimize.linprog`` (HiGHS).

    Returns a dict with keys ``status``, ``x``, ``objective``, ``iterations``
    and ``message`` — the same vocabulary as the NumPy simplex backend so
    :mod:`repro.lp.solver` can treat backends uniformly.
    """
    bounds = list(zip(np.asarray(lower, dtype=float), np.asarray(upper, dtype=float)))
    bounds = [
        (None if not np.isfinite(lo) else float(lo), None if not np.isfinite(hi) else float(hi))
        for lo, hi in bounds
    ]
    options: Dict[str, object] = {"presolve": True}
    if max_iterations is not None:
        options["maxiter"] = int(max_iterations)

    result = optimize.linprog(
        c=np.asarray(c, dtype=float),
        A_ub=np.asarray(A_ub, dtype=float) if np.size(A_ub) else None,
        b_ub=np.asarray(b_ub, dtype=float) if np.size(b_ub) else None,
        A_eq=np.asarray(A_eq, dtype=float) if np.size(A_eq) else None,
        b_eq=np.asarray(b_eq, dtype=float) if np.size(b_eq) else None,
        bounds=bounds,
        method="highs",
        options=options,
    )
    status = _SCIPY_STATUS.get(int(result.status), "numerical_error")
    iterations = int(getattr(result, "nit", 0) or 0)
    if status != "optimal" or result.x is None:
        return {
            "status": status,
            "x": None,
            "objective": None,
            "iterations": iterations,
            "message": str(result.message),
        }
    return {
        "status": "optimal",
        "x": np.asarray(result.x, dtype=float),
        "objective": float(result.fun),
        "iterations": iterations,
        "message": str(result.message),
    }
