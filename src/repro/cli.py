"""Command-line interface for designing, inspecting and applying mechanisms.

The CLI covers the operations a practitioner needs without writing Python:

``repro-mechanisms design``
    Solve for (or construct) the optimal mechanism for a group size, privacy
    level and property set; print its scores, properties and matrix, and
    optionally save it as JSON for later use.

``repro-mechanisms compare``
    Print the Figure-6-style comparison table of GM / WM / EM / UM for a
    given (n, α), with an optional heatmap per mechanism.

``repro-mechanisms release``
    Apply a mechanism (by name, or a previously saved JSON file) to a list
    of true counts — from the command line or a single-column CSV — and
    print or save the released counts.

``repro-mechanisms serve-batch``
    The serving layer as a command: route a large batch of count-release
    requests — homogeneous (one design, many counts) or mixed (a CSV of
    per-group design requests) — through the design cache and the
    vectorised batch sampler.  ``--cache-dir`` persists designs across
    invocations so repeat traffic never re-solves the LP;
    ``--budget-alpha`` guards the whole session with a
    :class:`~repro.privacy.PrivacyAccountant`.

``repro-mechanisms serve-stream``
    The engine as a command: compile one
    :class:`~repro.engine.plan.ReleasePlan` and stream counts through a
    :class:`~repro.engine.executor.StreamExecutor` in fixed-size chunks —
    from a file or stdin, with bounded memory, optional ``--budget-alpha``
    enforcement (refusing an over-budget chunk before sampling it) and
    optional ``--max-workers`` process fan-out.

``repro-mechanisms serve``
    The long-lived multi-tenant daemon: per-tenant privacy budgets over one
    shared design cache, with a coalescing batcher that merges same-plan
    requests from different tenants into single vectorised draws
    (bit-identical to per-request serving).  Speaks line-delimited JSON
    over TCP or a unix socket; see :mod:`repro.serving.daemon`.

``repro-mechanisms experiments``
    Thin wrapper around :mod:`repro.experiments.runner`.

Examples
--------
::

    repro-mechanisms design --n 8 --alpha 0.9 --properties F --heatmap
    repro-mechanisms compare --n 4 --alpha 0.9
    repro-mechanisms release --mechanism EM --n 8 --alpha 0.9 --counts 3 5 2 8
    repro-mechanisms serve-batch --n 16 --alpha 0.9 --properties WH+CM \
        --counts-file counts.txt --seed 7 --cache-dir ~/.cache/repro-designs
    seq 0 99999 | shuf | repro-mechanisms serve-stream --n 100000 --alpha 0.9 \
        --chunk-size 8192 --budget-alpha 0.5 --seed 7 --stats
    repro-mechanisms experiments --fast --only figure-9
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

import numpy as np

from repro.core.design import design_mechanism
from repro.core.losses import l0_score, l1_score, mechanism_rmse, truth_probability
from repro.core.mechanism import Mechanism
from repro.core.properties import check_all_properties
from repro.core.selector import choose_mechanism
from repro.eval.reporting import ascii_heatmap, describe_mechanism, format_table
from repro.experiments import runner
from repro.mechanisms.registry import available_mechanisms, create_mechanism


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-mechanisms",
        description="Constrained differentially private mechanisms for count data.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    design = subparsers.add_parser(
        "design", help="design the optimal mechanism for a property set"
    )
    design.add_argument("--n", type=int, required=True, help="group size (outputs are 0..n)")
    design.add_argument("--alpha", type=float, required=True, help="privacy parameter in [0, 1]")
    design.add_argument(
        "--properties",
        default="",
        help="property set, e.g. 'F', 'WH+CM', 'all' (empty = unconstrained)",
    )
    design.add_argument(
        "--use-selector",
        action="store_true",
        help="use the Figure-5 flowchart (explicit GM/EM where possible) instead of always solving the LP",
    )
    design.add_argument("--output-alpha", type=float, default=None,
                        help="also enforce output-side DP at this level (Section VI extension)")
    design.add_argument("--representation", choices=("dense", "sparse"), default="dense",
                        help="how to store an LP-designed mechanism (sparse = CSC non-zeros only)")
    design.add_argument("--backend", choices=("scipy", "simplex"), default="scipy")
    design.add_argument("--heatmap", action="store_true", help="print an ASCII heatmap")
    design.add_argument("--matrix", action="store_true", help="print the full probability matrix")
    design.add_argument("--save", type=Path, default=None, help="write the mechanism to a JSON file")

    compare = subparsers.add_parser(
        "compare", help="compare the paper's named mechanisms (GM, WM, EM, UM)"
    )
    compare.add_argument("--n", type=int, required=True)
    compare.add_argument("--alpha", type=float, required=True)
    compare.add_argument("--heatmap", action="store_true")
    compare.add_argument("--backend", choices=("scipy", "simplex"), default="scipy")

    release = subparsers.add_parser(
        "release", help="apply a mechanism to true counts and print the noisy counts"
    )
    release.add_argument("--mechanism", default="EM",
                         help=f"mechanism name ({', '.join(available_mechanisms())}) — ignored with --load")
    release.add_argument("--load", type=Path, default=None,
                         help="load a mechanism JSON previously written by 'design --save'")
    release.add_argument("--n", type=int, default=None, help="group size (required unless --load)")
    release.add_argument("--alpha", type=float, default=None, help="privacy level (required unless --load)")
    release.add_argument("--counts", type=int, nargs="*", default=None, help="true counts")
    release.add_argument("--counts-file", type=Path, default=None,
                         help="file with one true count per line")
    release.add_argument("--seed", type=int, default=None, help="random seed")
    release.add_argument("--output", type=Path, default=None,
                         help="write released counts to this file (one per line)")

    serve = subparsers.add_parser(
        "serve-batch",
        help="serve a batch of release requests through the design cache + vectorised sampler",
        epilog="exit status: 0 — all requests released; 1 — refused (privacy "
               "budget exhausted before sampling, or invalid request): nothing "
               "was released, rerun with a fresh --budget-alpha or fewer "
               "requests.",
    )
    serve.add_argument("--n", type=int, default=None,
                       help="group size for homogeneous batches (ignored with --requests-file)")
    serve.add_argument("--alpha", type=float, default=None,
                       help="privacy level for homogeneous batches")
    serve.add_argument("--properties", default="",
                       help="property set for homogeneous batches, e.g. 'WH+CM' or 'F'")
    serve.add_argument("--counts", type=int, nargs="*", default=None, help="true counts")
    serve.add_argument("--counts-file", type=Path, default=None,
                       help="file with one true count per line")
    serve.add_argument("--random-counts", type=int, default=None, metavar="K",
                       help="serve K uniformly random true counts in [0, n] "
                            "(seeded by --seed; handy for load tests at large n)")
    serve.add_argument("--requests-file", type=Path, default=None,
                       help="CSV of mixed requests: group,count,n,alpha[,properties]")
    serve.add_argument("--seed", type=int, default=None,
                       help="seed for a shared generator (reproducible releases)")
    serve.add_argument("--cache-dir", type=Path, default=None,
                       help="directory for the on-disk design cache (shared across runs)")
    serve.add_argument("--cache-size", type=int, default=128,
                       help="in-memory LRU capacity of the design cache")
    serve.add_argument("--backend", choices=("scipy", "simplex"), default="scipy")
    serve.add_argument("--budget-alpha", type=float, default=None,
                       help="guard the session with a privacy budget: refuse any "
                            "request that would push the composed guarantee below "
                            "this alpha (refused before sampling)")
    serve.add_argument("--output", type=Path, default=None,
                       help="write results to this file instead of stdout")
    serve.add_argument("--stats", action="store_true",
                       help="print cache/solver/budget statistics after serving")
    serve.add_argument("--stats-json", action="store_true",
                       help="emit one machine-readable JSON statistics object "
                            "to stderr after serving (alpha spent/remaining, "
                            "refusals, cache hit rate, plans compiled — the "
                            "same schema the daemon's 'stats' op returns)")

    stream = subparsers.add_parser(
        "serve-stream",
        help="stream counts through a compiled release plan in fixed-size chunks",
        epilog="exit status: 0 — stream fully released; 1 — privacy budget "
               "exhausted mid-stream (the output holds every chunk released "
               "before the refusal and the ledger, if any, stays consistent); "
               "2 — durable-ledger error (corrupt ledger, resume parameters "
               "that do not match the recorded run, or an existing ledger "
               "without --resume): inspect the message, then either resume "
               "with the original parameters or delete the ledger to start "
               "over.",
    )
    stream.add_argument("--n", type=int, required=True, help="group size (counts in 0..n)")
    stream.add_argument("--alpha", type=float, required=True, help="privacy level in [0, 1]")
    stream.add_argument("--properties", default="",
                        help="property set, e.g. 'WH+CM' or 'F' (empty = unconstrained)")
    stream.add_argument("--counts-file", type=Path, default=None,
                        help="file with one true count per line, or a binary .npy "
                             "array of counts (memory-mapped, zero parse cost); "
                             "default: read stdin")
    stream.add_argument("--chunk-size", type=int, default=8192,
                        help="counts released per chunk; peak memory is O(chunk-size)")
    stream.add_argument("--seed", type=int, default=None,
                        help="seed for the release stream (reproducible runs)")
    stream.add_argument("--budget-alpha", type=float, default=None,
                        help="privacy budget: every chunk is charged alpha before "
                             "sampling; an over-budget chunk is refused with nothing drawn")
    stream.add_argument("--max-workers", type=int, default=None,
                        help="sample chunks in this many worker processes (switches to "
                             "per-chunk seed substreams: output is identical for every "
                             "worker count, but differs from the serial shared-stream "
                             "default)")
    stream.add_argument("--ledger", type=Path, default=None,
                        help="durable accountant ledger (append-only, fsync'd, "
                             "checksummed WAL): every chunk's budget charge is "
                             "persisted before sampling and every served chunk "
                             "is checkpointed, so a crashed run can be resumed "
                             "exactly; requires --budget-alpha and --output, "
                             "and switches to the per-chunk seed-substream "
                             "discipline (as --max-workers does)")
    stream.add_argument("--resume", action="store_true",
                        help="continue the run recorded in --ledger: chunks "
                             "already served are skipped (input verified "
                             "against the charged checksums), the output file "
                             "is truncated to the last durable checkpoint, and "
                             "the final output is byte-identical to an "
                             "uninterrupted run")
    stream.add_argument("--chunk-timeout", type=float, default=None,
                        help="seconds to wait for a worker chunk before "
                             "declaring the worker hung and requeueing "
                             "(seeded pool only; default: wait forever)")
    stream.add_argument("--cache-dir", type=Path, default=None,
                        help="directory for the on-disk design cache (shared across runs)")
    stream.add_argument("--cache-size", type=int, default=128,
                        help="in-memory LRU capacity of the design cache")
    stream.add_argument("--backend", choices=("scipy", "simplex"), default="scipy")
    stream.add_argument("--output", type=Path, default=None,
                        help="write released counts to this file instead of stdout "
                             "(chunk by chunk, so memory stays bounded); a .npy "
                             "suffix selects the binary protocol — the released "
                             "counts of the same seed are identical either way")
    stream.add_argument("--stats", action="store_true",
                        help="print plan/executor/budget statistics after serving")
    stream.add_argument("--stats-json", action="store_true",
                        help="emit one machine-readable JSON statistics object "
                             "to stderr after serving (same schema as "
                             "serve-batch --stats-json and the daemon)")

    daemon = subparsers.add_parser(
        "serve",
        help="run the long-lived multi-tenant serving daemon (request coalescing)",
        epilog="protocol: line-delimited JSON over TCP or a unix socket; "
               "response codes mirror serve-stream exit statuses (0 served, "
               "1 refused over budget — nothing drawn, 2 error, 3 overloaded "
               "— shed for capacity or deadline, retriable, nothing charged). "
               "With --state-dir every tenant's budget is journaled durably "
               "and a restarted daemon resumes exact spend, refusals and "
               "substream positions. See examples/daemon_client.py for a "
               "complete client.",
    )
    daemon.add_argument("--host", default="127.0.0.1", help="TCP bind address")
    daemon.add_argument("--port", type=int, default=None,
                        help="TCP port (0 or omitted = pick a free port; the "
                             "bound address is printed on startup)")
    daemon.add_argument("--unix-socket", type=Path, default=None,
                        help="serve on a unix socket at this path instead of TCP")
    daemon.add_argument("--max-tenants", type=int, default=64,
                        help="refuse hello for new tenants beyond this many sessions")
    daemon.add_argument("--batch-window-ms", type=float, default=2.0,
                        help="coalescing window: hold the first pending request "
                             "this long to merge same-plan requests from other "
                             "tenants into one draw (0 = serve each request "
                             "immediately; outputs are bit-identical either way)")
    daemon.add_argument("--max-batch", type=int, default=256,
                        help="flush the batcher once this many requests are pending")
    daemon.add_argument("--budget-alpha", type=float, default=None,
                        help="default per-tenant privacy budget: each new tenant "
                             "gets its own accountant with this target (a "
                             "tenant's hello may override); over-budget requests "
                             "are shed from the batch with a code-1 refusal, "
                             "never blocking other tenants")
    daemon.add_argument("--seed", type=int, default=None,
                        help="server seed: fixes every tenant's substream root "
                             "(absent per-tenant hello seeds) so a whole "
                             "serving run is reproducible")
    daemon.add_argument("--cache-dir", type=Path, default=None,
                        help="directory for the on-disk design cache (shared across runs)")
    daemon.add_argument("--cache-size", type=int, default=128,
                        help="in-memory LRU capacity of the shared design cache "
                             "(also bounds the compiled-plans LRU)")
    daemon.add_argument("--backend", choices=("scipy", "simplex"), default="scipy")
    daemon.add_argument("--state-dir", type=Path, default=None,
                        help="durable mode: journal every tenant's budget "
                             "charges (and refusals) to per-tenant ledgers "
                             "under this directory, fsync'd before each "
                             "batch's samples; on restart the ledgers are "
                             "replayed so tenants resume with exact spend and "
                             "bit-identical substreams (requires a budget: "
                             "--budget-alpha or per-hello budget_alpha)")
    daemon.add_argument("--no-fsync", action="store_true",
                        help="skip fsync on tenant-ledger appends (faster, "
                             "but a power loss may forget recent charges; "
                             "process crashes are still covered)")
    daemon.add_argument("--request-timeout", type=float, default=None,
                        help="seconds from admission after which an unserved "
                             "request is shed with a retriable code-3 "
                             "response, consuming no budget and no substream")
    daemon.add_argument("--client-timeout", type=float, default=None,
                        help="seconds one response write may take before the "
                             "stalled client's connection is dropped (the "
                             "batcher and other tenants never wait on a slow "
                             "reader)")
    daemon.add_argument("--max-pending", type=int, default=None,
                        help="admission cap on the batcher queue: past this "
                             "many pending requests, new ones are shed with a "
                             "retriable code-3 'overloaded' response")
    daemon.add_argument("--max-inflight", type=int, default=None,
                        help="per-tenant cap on unanswered requests; past it, "
                             "that tenant's requests shed with code 3 while "
                             "other tenants are unaffected")
    daemon.add_argument("--max-line-bytes", type=int, default=None,
                        help="bound on one request line (default 1 MiB); an "
                             "oversized request gets a clean code-2 error and "
                             "the connection is closed")
    daemon.add_argument("--stats", action="store_true",
                        help="print serving statistics on shutdown")
    daemon.add_argument("--stats-json", action="store_true",
                        help="emit the machine-readable JSON statistics object "
                             "to stderr on shutdown")

    warm = subparsers.add_parser(
        "warm",
        help="precompile a design grid into a cache directory's plan registry",
        epilog="example: repro-mechanisms warm --cache-dir ~/.cache/repro-designs "
               "--grid n=8,16,32 alpha=0.9,0.95,0.99 props=WH+CM --workers 4 "
               "-- a daemon later started with the same --cache-dir serves the "
               "whole grid with zero LP solves",
    )
    warm.add_argument("--cache-dir", type=Path, required=True,
                      help="cache directory whose plan registry to fill "
                           "(the daemon's --cache-dir)")
    warm.add_argument("--grid", nargs="+", required=True, metavar="AXIS=V1,V2,...",
                      help="grid axes as key=value tokens: n=8,16 alpha=0.9,0.95 "
                           "[props=WH+CM,...] (props defaults to WH+CM; 'none' "
                           "for the unconstrained LP)")
    warm.add_argument("--backend", choices=("scipy", "simplex"), default="scipy",
                      help="LP backend to precompile with; 'simplex' chains "
                           "warm starts along each group's alpha axis")
    warm.add_argument("--workers", type=int, default=None,
                      help="fan (n, props) groups out across this many worker "
                           "processes (default: in-process)")
    warm.add_argument("--stats-json", action="store_true",
                      help="emit the warm-run summary as one JSON object to stderr")

    experiments = subparsers.add_parser(
        "experiments", help="run the paper-figure reproduction experiments"
    )
    experiments.add_argument("--fast", action="store_true")
    experiments.add_argument("--only", nargs="*", default=None)
    experiments.add_argument("--csv-dir", type=Path, default=None)
    experiments.add_argument(
        "--max-workers", type=int, default=None,
        help="fan the sweeps' design and evaluation stages out across this "
             "many worker processes (results are bit-identical)")

    return parser


def _print_mechanism(mechanism: Mechanism, show_heatmap: bool, show_matrix: bool) -> None:
    print(describe_mechanism(mechanism))
    if show_matrix:
        print()
        print(mechanism.render())
    if show_heatmap:
        print()
        print(ascii_heatmap(mechanism))


def _command_design(args: argparse.Namespace) -> int:
    if args.use_selector and args.output_alpha is None:
        mechanism, decision = choose_mechanism(
            args.n, args.alpha, properties=args.properties, backend=args.backend
        )
        print(decision.describe())
    else:
        mechanism = design_mechanism(
            args.n,
            args.alpha,
            properties=args.properties,
            backend=args.backend,
            output_alpha=args.output_alpha,
            representation=args.representation,
        )
    _print_mechanism(mechanism, args.heatmap, args.matrix)
    if args.save is not None:
        args.save.write_text(mechanism.to_json())
        print(f"\nsaved mechanism to {args.save}")
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    from repro.mechanisms.registry import paper_mechanisms

    mechanisms = paper_mechanisms(args.n, args.alpha, backend=args.backend)
    rows = []
    for mechanism in mechanisms:
        properties = check_all_properties(mechanism)
        row = {
            "mechanism": mechanism.name,
            "L0": l0_score(mechanism),
            "L1": l1_score(mechanism),
            "RMSE": mechanism_rmse(mechanism),
            "truth prob": truth_probability(mechanism),
        }
        row.update({prop.value: value for prop, value in properties.items()})
        rows.append(row)
    print(format_table(rows, title=f"named mechanisms at n={args.n}, alpha={args.alpha}"))
    if args.heatmap:
        for mechanism in mechanisms:
            print()
            print(ascii_heatmap(mechanism))
    return 0


def _load_counts(args: argparse.Namespace) -> np.ndarray:
    if args.counts is not None and args.counts_file is not None:
        raise SystemExit("pass either --counts or --counts-file, not both")
    if args.counts is not None:
        return np.asarray(args.counts, dtype=int)
    if args.counts_file is not None:
        lines = [line.strip() for line in args.counts_file.read_text().splitlines()]
        return np.asarray([int(line) for line in lines if line], dtype=int)
    raise SystemExit("one of --counts or --counts-file is required")


def _command_release(args: argparse.Namespace) -> int:
    if args.load is not None:
        mechanism = Mechanism.from_json(args.load.read_text())
    else:
        if args.n is None or args.alpha is None:
            raise SystemExit("--n and --alpha are required unless --load is given")
        mechanism = create_mechanism(args.mechanism, n=args.n, alpha=args.alpha)
    counts = _load_counts(args)
    if counts.size == 0:
        raise SystemExit("no counts supplied")
    if counts.min() < 0 or counts.max() > mechanism.n:
        raise SystemExit(
            f"counts must lie in [0, {mechanism.n}] for this mechanism; got "
            f"[{counts.min()}, {counts.max()}]"
        )
    rng = np.random.default_rng(args.seed)
    released = mechanism.apply(counts, rng=rng)
    released = np.atleast_1d(released)
    if args.output is not None:
        args.output.write_text("\n".join(str(int(v)) for v in released) + "\n")
        print(f"wrote {released.size} released counts to {args.output}")
    else:
        print(" ".join(str(int(v)) for v in released))
    return 0


def _parse_request_rows(path: Path) -> List["ReleaseRequest"]:
    """Parse a ``group,count,n,alpha[,properties]`` CSV into release requests."""
    import csv

    from repro.serving import ReleaseRequest

    requests: List[ReleaseRequest] = []
    with path.open(newline="") as handle:
        for row_number, row in enumerate(csv.reader(handle), start=1):
            cells = [cell.strip() for cell in row]
            if not cells or not any(cells):
                continue
            if row_number == 1 and cells[0].lower() in ("group", "#group"):
                continue  # header line
            if len(cells) < 4:
                raise SystemExit(
                    f"{path}:{row_number}: expected group,count,n,alpha[,properties], got {row!r}"
                )
            properties = cells[4] if len(cells) > 4 else ""
            try:
                requests.append(
                    ReleaseRequest(
                        group=cells[0],
                        count=int(cells[1]),
                        n=int(cells[2]),
                        alpha=float(cells[3]),
                        properties=properties,
                    )
                )
            except ValueError as error:
                raise SystemExit(f"{path}:{row_number}: {error}")
    if not requests:
        raise SystemExit(f"{path}: no requests found")
    return requests


def _command_serve_batch(args: argparse.Namespace) -> int:
    from repro.engine.plan import ReleasePlan
    from repro.lp.solver import solve_call_count
    from repro.privacy import BudgetExceededError
    from repro.serving import BatchReleaseSession, DesignCache

    solves_before = solve_call_count()
    densifications_before = Mechanism.densifications
    compilations_before = ReleasePlan.compilations
    cache = DesignCache(capacity=args.cache_size, directory=args.cache_dir)
    rng = np.random.default_rng(args.seed)
    session = BatchReleaseSession(
        cache=cache, rng=rng, backend=args.backend, budget_alpha=args.budget_alpha
    )

    if args.requests_file is not None:
        if args.counts is not None or args.counts_file is not None or args.random_counts is not None:
            raise SystemExit(
                "--requests-file cannot be combined with --counts/--counts-file/--random-counts"
            )
        requests = _parse_request_rows(args.requests_file)
        try:
            results = session.release(requests)
        except BudgetExceededError as error:
            raise SystemExit(f"privacy budget exhausted (nothing released): {error}")
        except ValueError as error:  # e.g. an unknown property code in a row
            raise SystemExit(str(error))
        lines = [
            f"{result.group},{result.released},{result.mechanism},{result.branch}"
            for result in results
        ]
    else:
        if args.n is None or args.alpha is None:
            raise SystemExit("--n and --alpha are required unless --requests-file is given")
        if args.random_counts is not None:
            if args.counts is not None or args.counts_file is not None:
                raise SystemExit("--random-counts cannot be combined with --counts/--counts-file")
            if args.random_counts < 1:
                raise SystemExit("--random-counts must be positive")
            # Drawn from the same seeded generator the session samples with,
            # so a (seed, n, alpha, K) tuple fully determines the output.
            counts = rng.integers(0, args.n + 1, size=args.random_counts)
        else:
            counts = _load_counts(args)
        if counts.size == 0:
            raise SystemExit("no counts supplied")
        try:
            released = session.release_counts(
                counts, n=args.n, alpha=args.alpha, properties=args.properties
            )
        except BudgetExceededError as error:
            raise SystemExit(f"privacy budget exhausted (nothing released): {error}")
        except ValueError as error:  # e.g. an unknown property code or bad alpha
            raise SystemExit(str(error))
        lines = [str(int(value)) for value in released]

    if args.output is not None:
        args.output.write_text("\n".join(lines) + "\n")
        print(f"wrote {len(lines)} released counts to {args.output}")
    else:
        print("\n".join(lines))
    if args.stats:
        print(f"serve-batch: {session.describe()} "
              f"lp_solves={solve_call_count() - solves_before} "
              f"densifications={Mechanism.densifications - densifications_before}")
    if args.stats_json:
        # Stderr, like serve-stream's --stats: the released counts (or the
        # summary line) own stdout, and a machine consumer wants the JSON
        # object on its own clean channel.
        from repro.serving.stats import stats_payload

        print(
            json.dumps(
                stats_payload(
                    "serve-batch",
                    records=session.stats.records,
                    batches=session.stats.batches,
                    distinct_designs=session.stats.distinct_designs,
                    cache=cache.stats(),
                    accountant=session.accountant,
                    budget_refusals=session.stats.budget_refusals,
                    lp_solves=solve_call_count() - solves_before,
                    plans_compiled=ReleasePlan.compilations - compilations_before,
                    densifications=Mechanism.densifications - densifications_before,
                )
            ),
            file=sys.stderr,
        )
    return 0


def _iter_count_lines(args: argparse.Namespace):
    """Lazily yield integer counts from --counts-file (or stdin), line by line."""
    handle = args.counts_file.open() if args.counts_file is not None else sys.stdin
    try:
        for line_number, line in enumerate(handle, start=1):
            text = line.strip()
            if not text:
                continue
            try:
                yield int(text)
            except ValueError:
                source = args.counts_file if args.counts_file is not None else "<stdin>"
                raise SystemExit(f"{source}:{line_number}: expected an integer count, got {text!r}")
    finally:
        if args.counts_file is not None:
            handle.close()


def _serve_stream_ledger(args: argparse.Namespace, run_config: dict):
    """Open (or resume) the durable ledger; returns (ledger, root, resume).

    Raises :class:`~repro.engine.durability.LedgerError` subclasses for the
    caller to map to exit status 2.  The root seed is the recorded entropy
    on resume — a resumed run re-derives exactly the substreams the crashed
    run would have used, whether or not ``--seed`` was given.
    """
    from repro.engine.durability import AccountantLedger, LedgerError, ResumeState

    path = Path(args.ledger)
    exists = path.exists() and path.stat().st_size > 0
    if exists and not args.resume:
        raise LedgerError(
            f"{path}: ledger already exists; pass --resume to continue the "
            "recorded run, or delete the ledger file to start over"
        )
    if exists:
        ledger = AccountantLedger.open(
            path, alpha_target=args.budget_alpha, config=run_config
        )
        root = np.random.SeedSequence(int(ledger.config["entropy"]))
        return ledger, root, ledger.resume_state()
    root = np.random.SeedSequence(args.seed)
    config = dict(run_config)
    config["entropy"] = int(root.entropy)
    ledger = AccountantLedger.open(path, alpha_target=args.budget_alpha, config=config)
    return ledger, root, ResumeState(next_chunk=0, records=0, offset=None)


def _command_serve_stream(args: argparse.Namespace) -> int:
    import os

    from repro.core.properties import parse_properties
    from repro.engine import ReleasePlan, StreamExecutor
    from repro.engine.durability import LedgerError
    from repro.engine.stream_io import NpyCountWriter, is_npy_path, open_npy_counts
    from repro.lp.solver import solve_call_count
    from repro.privacy import BudgetExceededError, PrivacyAccountant
    from repro.serving import DesignCache

    if args.chunk_size < 1:
        raise SystemExit("--chunk-size must be positive")
    if args.ledger is not None:
        if args.budget_alpha is None:
            raise SystemExit(
                "--ledger requires --budget-alpha: the ledger exists to make "
                "the privacy budget durable, so it must know the target"
            )
        if args.output is None:
            raise SystemExit(
                "--ledger requires --output: checkpointed resume needs a "
                "seekable output file, not a pipe"
            )
    if args.resume and args.ledger is None:
        raise SystemExit("--resume requires --ledger (there is nothing to resume from)")
    solves_before = solve_call_count()
    densifications_before = Mechanism.densifications
    cache = DesignCache(capacity=args.cache_size, directory=args.cache_dir)
    try:
        plan = ReleasePlan.compile(
            args.n, args.alpha, properties=args.properties, backend=args.backend, cache=cache
        )
    except ValueError as error:  # e.g. an unknown property code or bad alpha
        raise SystemExit(str(error))

    ledger = None
    root = None
    resume_records = 0
    resume_offset = None
    if args.ledger is not None:
        # The pinned run configuration: a resume with different parameters
        # would splice two unrelated streams, so it is refused (exit 2).
        run_config = {
            "n": int(args.n),
            "alpha": float(args.alpha),
            "properties": "+".join(
                sorted(p.value for p in parse_properties(args.properties))
            ) or "none",
            "chunk_size": int(args.chunk_size),
            "backend": args.backend,
            "seed": args.seed,
            "output_format": "npy" if is_npy_path(args.output) else "text",
        }
        try:
            ledger, root, resume = _serve_stream_ledger(args, run_config)
        except LedgerError as error:
            print(f"ledger error: {error}", file=sys.stderr)
            return 2
        resume_records = resume.records
        resume_offset = resume.offset

    accountant = (
        PrivacyAccountant(alpha_target=args.budget_alpha)
        if args.budget_alpha is not None and ledger is None
        else None
    )
    executor = StreamExecutor(
        plan,
        chunk_size=args.chunk_size,
        accountant=accountant,
        max_workers=args.max_workers,
        ledger=ledger,
        chunk_timeout=args.chunk_timeout,
    )
    if is_npy_path(args.counts_file):
        # Binary input: memory-map the array and let the executor slice it
        # without copying — no per-line parsing at all.
        try:
            counts = open_npy_counts(args.counts_file)
        except (ValueError, OSError) as error:
            raise SystemExit(str(error))
    else:
        counts = _iter_count_lines(args)

    # --ledger and --max-workers both select the per-chunk seed-substream
    # discipline (the only one whose chunks are independent enough to skip
    # on resume or fan out); otherwise the serial shared-stream default.
    if ledger is not None:
        chunks = executor.stream_durable(counts, seed=root)
    elif args.max_workers is not None:
        chunks = executor.stream_durable(counts, seed=args.seed)
    else:
        chunks = executor.stream(counts, rng=np.random.default_rng(args.seed))

    text_records = resume_records
    if is_npy_path(args.output):
        try:
            out = NpyCountWriter(
                args.output,
                resume_records=resume_records if resume_records else None,
            )
        except ValueError as error:
            print(f"ledger error: {error}", file=sys.stderr)
            return 2
        write_chunk = out.write
    else:
        if resume_records and resume_offset is not None:
            # Truncate the text output back to the last durable checkpoint
            # (bytes past it belong to a chunk the crashed run never marked
            # done) and append from there.
            if not args.output.exists() or args.output.stat().st_size < resume_offset:
                print(
                    f"ledger error: {args.output}: output file is shorter than "
                    f"the ledger's checkpoint ({resume_offset} bytes); it does "
                    "not match the recorded run",
                    file=sys.stderr,
                )
                return 2
            out = args.output.open("r+")
            out.truncate(resume_offset)
            out.seek(resume_offset)
        else:
            out = args.output.open("w") if args.output is not None else sys.stdout

        def write_chunk(chunk):
            out.write("\n".join(str(int(value)) for value in chunk) + "\n")

    status = 0
    try:
        if ledger is not None:
            for index, chunk in chunks:
                write_chunk(chunk)
                # Checkpoint barrier: the chunk's bytes must be durable
                # before the ledger may promise they are.
                if isinstance(out, NpyCountWriter):
                    out.sync()
                    total, offset = out.records, out.offset
                else:
                    out.flush()
                    os.fsync(out.fileno())
                    text_records += int(np.size(chunk))
                    total, offset = text_records, out.tell()
                ledger.mark_done(index, int(np.size(chunk)), total, offset)
        elif args.max_workers is not None:
            for _index, chunk in chunks:
                write_chunk(chunk)
        else:
            for chunk in chunks:
                write_chunk(chunk)
    except BudgetExceededError as error:
        print(
            f"privacy budget exhausted after {executor.stats.records} released "
            f"counts; refusing the next chunk before sampling it: {error}"
            + (
                " (the ledger records every charge: resuming with a larger "
                "budget is not possible — start a fresh ledger)"
                if ledger is not None
                else ""
            ),
            file=sys.stderr,
        )
        status = 1
    except LedgerError as error:
        print(f"ledger error: {error}", file=sys.stderr)
        status = 2
    except ValueError as error:  # e.g. counts outside [0, n]
        raise SystemExit(str(error))
    finally:
        if args.output is not None:
            out.close()
        if ledger is not None:
            ledger.close()
    served = executor.stats.records + executor.stats.resumed_records
    if args.output is not None:
        if status == 0:
            resumed = (
                f" ({executor.stats.resumed_chunks} chunks resumed from the ledger)"
                if executor.stats.resumed_chunks
                else ""
            )
            print(f"wrote {served} released counts to {args.output}{resumed}")
        else:
            print(
                f"wrote only {served} released counts to "
                f"{args.output} before the refusal (PARTIAL output)",
                file=sys.stderr,
            )
    if args.stats:
        # Stats go to stderr: without --output the released counts own
        # stdout, and a stats line interleaved there would corrupt a
        # downstream pipe consumer.
        print(f"serve-stream: {executor.describe()} "
              f"lp_solves={solve_call_count() - solves_before} "
              f"densifications={Mechanism.densifications - densifications_before}",
              file=sys.stderr)
    if args.stats_json:
        from repro.serving.stats import stats_payload

        print(
            json.dumps(
                stats_payload(
                    "serve-stream",
                    records=served,
                    chunks=executor.stats.chunks,
                    resumed_chunks=executor.stats.resumed_chunks,
                    cache=cache.stats(),
                    accountant=executor.accountant,
                    budget_refusals=1 if status == 1 else 0,
                    lp_solves=solve_call_count() - solves_before,
                    plans_compiled=1,
                    densifications=Mechanism.densifications - densifications_before,
                )
            ),
            file=sys.stderr,
        )
    return status


def _command_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.serving.daemon import DEFAULT_MAX_LINE_BYTES, ServingDaemon

    if args.batch_window_ms < 0:
        raise SystemExit("--batch-window-ms must be non-negative")
    if args.max_batch < 1:
        raise SystemExit("--max-batch must be positive")
    if args.max_tenants < 1:
        raise SystemExit("--max-tenants must be positive")
    for flag, value in (
        ("--request-timeout", args.request_timeout),
        ("--client-timeout", args.client_timeout),
    ):
        if value is not None and not value > 0:
            raise SystemExit(f"{flag} must be positive")
    for flag, value in (
        ("--max-pending", args.max_pending),
        ("--max-inflight", args.max_inflight),
    ):
        if value is not None and value < 1:
            raise SystemExit(f"{flag} must be positive")
    if args.max_line_bytes is not None and args.max_line_bytes < 1024:
        raise SystemExit("--max-line-bytes must be at least 1024")

    async def _serve() -> ServingDaemon:
        daemon = ServingDaemon(
            batch_window_ms=args.batch_window_ms,
            max_batch=args.max_batch,
            max_tenants=args.max_tenants,
            budget_alpha=args.budget_alpha,
            seed=args.seed,
            cache_dir=args.cache_dir,
            cache_size=args.cache_size,
            backend=args.backend,
            state_dir=args.state_dir,
            request_timeout=args.request_timeout,
            client_timeout=args.client_timeout,
            max_pending=args.max_pending,
            max_inflight=args.max_inflight,
            max_line_bytes=(
                DEFAULT_MAX_LINE_BYTES
                if args.max_line_bytes is None
                else args.max_line_bytes
            ),
            fsync=not args.no_fsync,
        )
        await daemon.start(
            host=args.host, port=args.port, unix_path=args.unix_socket
        )
        # The bound address line is the startup handshake: with --port 0 a
        # harness parses the picked port from it, so flush immediately.
        print(f"serving on {daemon.address}", flush=True)
        if args.state_dir is not None:
            # The recovery summary, after the handshake, so supervisors can
            # log how many tenants resumed and how many were quarantined.
            print(f"recovered {daemon.health_payload()['recovered_tenants']} "
                  f"tenant(s), "
                  f"{daemon.health_payload()['quarantined_tenants']} "
                  f"quarantined, "
                  f"{daemon.health_payload()['config_rejected_tenants']} "
                  "config-rejected", flush=True)
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(
                    signum, lambda: asyncio.ensure_future(daemon.stop())
                )
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-unix event loop: rely on the shutdown op
        await daemon.wait_closed()
        return daemon

    daemon = asyncio.run(_serve())
    if args.unix_socket is not None:
        try:
            Path(args.unix_socket).unlink(missing_ok=True)
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
    if args.stats:
        print(f"serve: {daemon.describe()}")
    if args.stats_json:
        print(json.dumps(daemon.stats_payload()), file=sys.stderr)
    return 0


def _command_warm(args: argparse.Namespace) -> int:
    from repro.serving.warm import GridError, parse_grid, warm_grid

    try:
        axes = parse_grid(args.grid)
    except GridError as error:
        raise SystemExit(f"warm: {error}")
    summary = warm_grid(
        args.cache_dir,
        ns=axes["n"],
        alphas=axes["alpha"],
        props_list=axes["props"],
        backend=args.backend,
        max_workers=args.workers,
    )
    print(
        f"warm: {summary['solved']} solved "
        f"({summary['warm_started']} warm-started), "
        f"{summary['skipped']} already present, "
        f"{summary['registry_entries']} registry entries "
        f"in {summary['seconds']:.2f}s -> {args.cache_dir}"
    )
    if args.stats_json:
        print(json.dumps({"command": "warm", **summary}), file=sys.stderr)
    return 0


def _command_experiments(args: argparse.Namespace) -> int:
    runner.run_experiments(
        names=args.only, fast=args.fast, csv_dir=args.csv_dir, max_workers=args.max_workers
    )
    return 0


_COMMANDS = {
    "design": _command_design,
    "compare": _command_compare,
    "release": _command_release,
    "serve-batch": _command_serve_batch,
    "serve-stream": _command_serve_stream,
    "serve": _command_serve,
    "warm": _command_warm,
    "experiments": _command_experiments,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
