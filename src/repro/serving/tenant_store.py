"""Durable per-tenant budgets for the serving daemon (``--state-dir``).

PR 7 made one-shot execution crash-safe: an :class:`~repro.engine
.durability.AccountantLedger` journals every budget charge durably before
sampling.  PR 8 made serving multi-tenant — but kept every tenant's
:class:`~repro.privacy.PrivacyAccountant` in memory, so a daemon crash
silently reset all privacy budgets.  This module joins the two: a
:class:`TenantStore` gives **each tenant its own append-only ledger** under
the daemon's ``--state-dir``::

    <state-dir>/commit.bin                   # cross-tenant group-commit log
    <state-dir>/tenants/<slug>/tenant.json   # {"tenant": name} sidecar
    <state-dir>/tenants/<slug>/ledger.bin    # the tenant's AccountantLedger

The ledger's record index *is* the tenant's request sequence number, and —
because the daemon spawns a tenant's request-``k`` substream as the
``k``-th child of the tenant's root — it is also the substream spawn
position.  The header pins the root's full entropy and spawn key, so a
restarted daemon re-derives the *same* :class:`numpy.random.SeedSequence`
lineage: a reconnecting tenant's post-restart draws are bit-identical to
the uninterrupted run.  Three record types matter:

``charge``
    fsync'd (group-committed per batch) *before* the coalesced batch
    samples; carries the request's input checksum and design parameters so
    an in-doubt request can be replayed idempotently and verified.
``refusal``
    an over-budget request spent nothing but consumed its spawn; recovery
    replays refusals to land on the exact stream position.
``done``
    the response reached the client's connection; a charged-but-not-done
    index is the crash window, re-served (never re-charged) on replay.

**Group commit** (:meth:`TenantStore.group_commit`): a coalesced batch can
touch every tenant, and one device flush per touched ledger per batch is
the dominant serving cost of durability.  Instead, each batch's ledger
appends are buffered to the OS (surviving *process* crashes as-is), their
raw record bytes are copied — tagged with tenant slug and ledger byte
offset — into one store-wide ``commit.bin``, and only *that* file is
``fdatasync``'d: one flush per batch, regardless of tenant count.
Recovery re-applies the commit log's records into the ledger files at
their recorded offsets (idempotent: re-writing bytes the page cache
already persisted changes nothing) before parsing them, then resets the
log (an end-of-log sentinel at offset 0; the file keeps its preallocated
size).  Tenant ledgers get their own full flush at checkpoints
(:meth:`sync_all`, commit-log rotation) and shutdown.

Recovery is **per-tenant fail-soft**: a torn ledger *tail* (a crash
mid-append) is truncated away exactly as in ``serve-stream --resume``;
a ledger that is damaged beyond that (mid-file corruption, a failed
checksum, an impossible replay) quarantines *that tenant only* — its
``hello``/``release`` answer with a code-2 error while every other tenant
serves on.  A ledger whose pinned configuration no longer matches the
daemon's (different ``--seed`` for a derived root, different default
``--budget-alpha``) is likewise refused per-tenant with
:class:`~repro.engine.durability.LedgerConfigError` semantics rather than
silently forking the tenant's stream or budget.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.engine.durability import (
    AccountantLedger,
    LedgerConfigError,
    LedgerCorruptionError,
    LedgerError,
    datasync,
)

#: Fault-injection site of tenant-ledger appends (``torn_tenant_ledger``).
TENANT_LEDGER_SITE = "tenant_ledger_append"

#: Commit-log entry framing: ``<payload_len u32, crc32 u32>`` then payload.
_COMMIT_HEAD = struct.Struct("<II")
#: Payload prefix: ``<slug_len u16, ledger_offset u64>`` then slug + record bytes.
_COMMIT_META = struct.Struct("<HQ")
#: Preallocated commit-log size.  The file is zero-filled once at open and
#: then only ever overwritten in place: a per-batch ``fdatasync`` therefore
#: never has file metadata (size, block allocations) to journal, which on
#: ext4 turns the flush into a pure data write.  A batch that would run
#: past the end checkpoints the ledgers first and wraps to offset 0.
_COMMIT_LOG_BYTES = 1 << 20
#: An all-zero entry head marking end-of-log (``payload_len == 0``); each
#: batch write ends with one, and the next batch overwrites it.
_COMMIT_SENTINEL = b"\0" * _COMMIT_HEAD.size

_SLUG_SAFE = re.compile(r"[^A-Za-z0-9._-]+")


def tenant_slug(name: str) -> str:
    """Filesystem-safe directory name for a tenant: readable prefix + digest.

    The digest suffix makes distinct tenant names collision-free even when
    their readable prefixes coincide (``"a/b"`` vs ``"a_b"``); the sidecar
    ``tenant.json`` preserves the exact original name.
    """
    digest = hashlib.sha256(name.encode("utf-8")).hexdigest()[:10]
    prefix = _SLUG_SAFE.sub("_", name)[:48].strip("._") or "tenant"
    return f"{prefix}-{digest}"


@dataclass
class RecoveredTenant:
    """One tenant's state replayed from its ledger at daemon startup."""

    name: str
    ledger: AccountantLedger
    #: Substream root positioned at ``next_seq`` children already spawned.
    root: np.random.SeedSequence
    #: Explicit per-tenant seed from the original ``hello`` (``None`` = derived).
    tenant_seed: Optional[int]
    #: ``"hello"`` when the tenant's budget overrode the daemon default.
    budget_source: str
    #: The next request sequence number (== substream spawn position).
    next_seq: int
    refusals: int


class TenantStore:
    """The daemon's durable tenant-budget directory under ``--state-dir``.

    Construct, then call :meth:`recover` once at startup: it replays every
    tenant ledger into :attr:`recovered` and sorts the casualties into
    :attr:`quarantined` (damaged ledgers) and :attr:`config_rejected`
    (ledgers pinned to a different ``--seed``/``--budget-alpha``).  New
    tenants get a fresh ledger through :meth:`create`.
    """

    def __init__(
        self,
        state_dir: Union[str, Path],
        server_seed: Optional[int] = None,
        default_budget_alpha: Optional[float] = None,
        fsync: bool = True,
    ) -> None:
        self.state_dir = Path(state_dir)
        self.tenants_dir = self.state_dir / "tenants"
        self.server_seed = server_seed
        self.default_budget_alpha = default_budget_alpha
        self.fsync = fsync
        self.recovered: Dict[str, RecoveredTenant] = {}
        #: tenant name -> reason its ledger is unusable (damage).
        self.quarantined: Dict[str, str] = {}
        #: tenant name -> reason its pinned config mismatches this daemon.
        self.config_rejected: Dict[str, str] = {}
        self._ledgers: Dict[str, AccountantLedger] = {}
        #: ledger identity -> utf-8 tenant slug, for tagging commit-log
        #: entries (pre-encoded: the hot path concatenates it per record).
        self._slug_by_ledger: Dict[int, bytes] = {}
        self._commit_path = self.state_dir / "commit.bin"
        self._commit_fd: Optional[int] = None
        self._commit_pos = 0

    # ------------------------------------------------------------------ #
    # Startup recovery
    # ------------------------------------------------------------------ #
    def recover(self) -> Dict[str, RecoveredTenant]:
        """Replay every tenant ledger; fail-soft per tenant.

        An empty (or absent) state dir recovers nothing — a fresh daemon.
        """
        self.tenants_dir.mkdir(parents=True, exist_ok=True)
        self._replay_commit_log()
        for tenant_dir in sorted(self.tenants_dir.iterdir()):
            if not tenant_dir.is_dir():
                continue
            name = self._sidecar_name(tenant_dir)
            ledger_path = tenant_dir / "ledger.bin"
            if not ledger_path.exists() or ledger_path.stat().st_size == 0:
                # The creating process died before the header reached the
                # disk: the tenant never existed durably.  Forget it.
                continue
            try:
                self._recover_one(name, ledger_path)
            except (LedgerCorruptionError, LedgerError) as error:
                if isinstance(error, LedgerConfigError):
                    self.config_rejected[name] = str(error)
                else:
                    self.quarantined[name] = str(error)
        return self.recovered

    def _recover_one(self, name: str, ledger_path: Path) -> None:
        ledger = AccountantLedger.open(
            ledger_path, fsync=self.fsync, fault_site=TENANT_LEDGER_SITE
        )
        try:
            config = ledger.config
            stored_name = config.get("tenant")
            if stored_name != name:
                raise LedgerCorruptionError(
                    f"{ledger_path}: ledger belongs to tenant {stored_name!r} "
                    f"but sits in {name!r}'s directory; refusing to guess"
                )
            tenant_seed = config.get("tenant_seed")
            stored_server_seed = config.get("server_seed")
            if tenant_seed is None and stored_server_seed != self.server_seed:
                raise LedgerConfigError(
                    f"{ledger_path}: tenant {name!r}'s substream root was "
                    f"derived under --seed {stored_server_seed!r}, but this "
                    f"daemon runs --seed {self.server_seed!r}; restart with "
                    "the original seed or start a fresh state dir"
                )
            budget_source = config.get("budget_source", "hello")
            if budget_source == "default" and (
                self.default_budget_alpha is None
                or float(self.default_budget_alpha)
                != float(ledger.accountant.alpha_target)
            ):
                raise LedgerConfigError(
                    f"{ledger_path}: tenant {name!r} was budgeted from the "
                    f"daemon default --budget-alpha "
                    f"{ledger.accountant.alpha_target:g}, but this daemon "
                    f"runs --budget-alpha {self.default_budget_alpha!r}; "
                    "restart with the original budget"
                )
            root = np.random.SeedSequence(
                int(config["entropy"]),
                spawn_key=tuple(int(w) for w in config.get("spawn_key", ())),
                pool_size=int(config.get("pool_size", 4)),
                n_children_spawned=ledger.next_index(),
            )
        except KeyError as error:
            ledger.close()
            raise LedgerCorruptionError(
                f"{ledger_path}: header config is missing {error.args[0]!r}"
            ) from error
        except LedgerError:
            ledger.close()
            raise
        self.recovered[name] = RecoveredTenant(
            name=name,
            ledger=ledger,
            root=root,
            tenant_seed=None if tenant_seed is None else int(tenant_seed),
            budget_source=budget_source,
            next_seq=ledger.next_index(),
            refusals=ledger.refusal_count(),
        )
        self._ledgers[name] = ledger
        self._slug_by_ledger[id(ledger)] = ledger_path.parent.name.encode("utf-8")

    def _sidecar_name(self, tenant_dir: Path) -> str:
        """The tenant's exact name from its sidecar (slug when unreadable)."""
        sidecar = tenant_dir / "tenant.json"
        try:
            return str(json.loads(sidecar.read_text())["tenant"])
        except (OSError, ValueError, KeyError, TypeError):
            return tenant_dir.name

    # ------------------------------------------------------------------ #
    # New tenants
    # ------------------------------------------------------------------ #
    def create(
        self,
        name: str,
        root: np.random.SeedSequence,
        tenant_seed: Optional[int],
        budget_alpha: float,
        budget_source: str,
    ) -> AccountantLedger:
        """Open a fresh ledger for a first-seen tenant, pinning its lineage.

        The header records everything restart recovery needs: the root's
        raw entropy and spawn key (so even a fresh-entropy root restores
        bit-exactly), the seeds it was derived from, and which knob set the
        budget.  Must be called before the tenant's root spawns anything.
        """
        tenant_dir = self.tenants_dir / tenant_slug(name)
        tenant_dir.mkdir(parents=True, exist_ok=True)
        sidecar = tenant_dir / "tenant.json"
        temp = tenant_dir / "tenant.json.tmp"
        temp.write_text(json.dumps({"tenant": name}))
        os.replace(temp, sidecar)
        ledger = AccountantLedger.open(
            tenant_dir / "ledger.bin",
            alpha_target=float(budget_alpha),
            config={
                "tenant": name,
                "entropy": str(root.entropy),
                "spawn_key": [int(w) for w in root.spawn_key],
                "pool_size": int(root.pool_size),
                "tenant_seed": None if tenant_seed is None else int(tenant_seed),
                "server_seed": self.server_seed,
                "budget_source": budget_source,
            },
            fsync=self.fsync,
            fault_site=TENANT_LEDGER_SITE,
        )
        self._ledgers[name] = ledger
        self._slug_by_ledger[id(ledger)] = tenant_dir.name.encode("utf-8")
        return ledger

    # ------------------------------------------------------------------ #
    # Group commit
    # ------------------------------------------------------------------ #
    def group_commit(self, ledgers: Iterable[AccountantLedger]) -> None:
        """Make this batch's buffered ledger appends durable — one flush.

        Drains every touched ledger's ``sync=False`` appends into the
        store-wide commit log and ``fdatasync``s only that file.  The
        tenant ledgers keep their bytes in the OS page cache (a *process*
        crash loses nothing); an OS crash is covered by replaying the
        commit log into the ledger files at the recorded offsets on the
        next startup.  Raises :class:`OSError` if the commit log cannot
        be made durable — the daemon treats that as fatal.
        """
        descriptor = self.stage_commit(ledgers)
        if descriptor is not None:
            datasync(descriptor)

    def stage_commit(
        self, ledgers: Iterable[AccountantLedger]
    ) -> Optional[int]:
        """Write this batch's records to the commit log; defer the sync.

        Everything CPU-bound (drain, framing, the ``write(2)``) happens
        here; the returned file descriptor still needs a
        :func:`~repro.engine.durability.datasync` before any response may
        leave the process — the serving daemon issues it after sampling
        the batch, immediately before returning control to the event loop
        (no response can reach a socket earlier).  Returns ``None`` when
        nothing needs syncing (no-fsync mode, or no deferred appends).
        """
        ledgers = list(ledgers)
        if not self.fsync:
            for ledger in ledgers:
                ledger.sync()  # plain flush; nothing stronger was promised
            return None
        parts: list = []
        meta_pack, head_pack, crc32 = _COMMIT_META.pack, _COMMIT_HEAD.pack, zlib.crc32
        for ledger in ledgers:
            encoded = self._slug_by_ledger.get(id(ledger))
            if encoded is None:  # not ours: fall back to a direct sync
                ledger.sync()
                continue
            for offset, blob in ledger.drain_unsynced():
                payload = meta_pack(len(encoded), offset) + encoded + blob
                parts.append(head_pack(len(payload), crc32(payload)))
                parts.append(payload)
        if not parts:
            return None
        parts.append(_COMMIT_SENTINEL)
        buffer = b"".join(parts)
        descriptor = self._open_commit_log()
        if self._commit_pos + len(buffer) > _COMMIT_LOG_BYTES:
            # Wrap: checkpoint the ledgers (making every logged record
            # durable in its own file) and restart the log at offset 0.
            # The drained bytes of *this* batch were flushed by that
            # checkpoint too, so logging them again is merely redundant —
            # replay is an idempotent byte overwrite.  A single batch
            # larger than the whole log (pathological) simply extends the
            # file past its preallocation; the next wrap resets it.
            self.sync_all()
        os.pwrite(descriptor, buffer, self._commit_pos)
        self._commit_pos += len(buffer) - len(_COMMIT_SENTINEL)
        return descriptor

    def _open_commit_log(self) -> int:
        if self._commit_fd is None:
            descriptor = os.open(
                self._commit_path, os.O_RDWR | os.O_CREAT, 0o644
            )
            size = os.fstat(descriptor).st_size
            if size < _COMMIT_LOG_BYTES:
                # Materialise real zeroed blocks (not a sparse hole) so
                # steady-state batch writes never allocate — allocation is
                # metadata, and metadata is what makes fdatasync pay for
                # an ext4 journal commit.  One-time cost at daemon start.
                os.lseek(descriptor, size, os.SEEK_SET)
                os.write(descriptor, b"\0" * (_COMMIT_LOG_BYTES - size))
                os.fsync(descriptor)
            self._commit_fd = descriptor
        return self._commit_fd

    def _reset_commit_log(self) -> None:
        """Mark the log empty after its records became durable in the ledgers.

        Writes the end-of-log sentinel at offset 0 (the file keeps its
        preallocated size — shrinking it would reintroduce the metadata
        churn the preallocation exists to avoid).  Entries beyond the
        sentinel from earlier epochs are unreachable to the parser and
        harmless even if misread: replay rewrites bytes an append-only
        ledger already holds.
        """
        if self._commit_fd is None and not self._commit_path.exists():
            return
        descriptor = self._open_commit_log()
        os.pwrite(descriptor, _COMMIT_SENTINEL, 0)
        datasync(descriptor)
        self._commit_pos = 0

    def _replay_commit_log(self) -> None:
        """Re-apply commit-log records the tenant ledgers may have lost.

        Every entry carries the raw (self-checksummed) ledger record bytes
        and the exact ledger offset they were appended at; writing them
        back is idempotent over whatever suffix the page cache persisted
        before the crash.  A torn commit-log *tail* is expected — the
        batch it belonged to never sampled, let alone answered — so
        parsing simply stops there.  Applied ledger files are flushed
        before the (now redundant) log is reset.
        """
        try:
            blob = self._commit_path.read_bytes()
        except OSError:
            return
        by_slug: Dict[str, List[Tuple[int, bytes]]] = {}
        position = 0
        while position + _COMMIT_HEAD.size <= len(blob):
            length, crc = _COMMIT_HEAD.unpack_from(blob, position)
            if length == 0:
                break  # end-of-log sentinel (or preallocated zeros)
            payload = blob[
                position + _COMMIT_HEAD.size : position + _COMMIT_HEAD.size + length
            ]
            if (
                len(payload) < length
                or length < _COMMIT_META.size
                or zlib.crc32(payload) != crc
            ):
                break  # torn tail: an unacknowledged batch — drop it
            slug_len, offset = _COMMIT_META.unpack_from(payload, 0)
            slug = payload[
                _COMMIT_META.size : _COMMIT_META.size + slug_len
            ].decode("utf-8", errors="replace")
            record = payload[_COMMIT_META.size + slug_len :]
            by_slug.setdefault(slug, []).append((offset, bytes(record)))
            position += _COMMIT_HEAD.size + length
        for slug, entries in by_slug.items():
            tenant_dir = self.tenants_dir / slug
            tenant_dir.mkdir(parents=True, exist_ok=True)
            descriptor = os.open(
                tenant_dir / "ledger.bin", os.O_RDWR | os.O_CREAT, 0o644
            )
            try:
                for offset, record in entries:
                    os.lseek(descriptor, offset, os.SEEK_SET)
                    os.write(descriptor, record)
                datasync(descriptor)
            finally:
                os.close(descriptor)
        self._reset_commit_log()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def rejection_reason(self, name: str) -> Optional[str]:
        """Why ``name`` cannot be served (``None`` when it can)."""
        return self.quarantined.get(name) or self.config_rejected.get(name)

    def sync_all(self) -> None:
        """Checkpoint: flush every open tenant ledger, then drop the log."""
        for ledger in self._ledgers.values():
            ledger.sync()
        self._reset_commit_log()

    def close_all(self) -> None:
        """Checkpoint and close every open tenant ledger (drain/shutdown)."""
        for ledger in self._ledgers.values():
            ledger.close()
        if self._commit_fd is not None:
            os.close(self._commit_fd)
            self._commit_fd = None

    def describe(self) -> str:
        """One-line summary for startup/shutdown logging."""
        return (
            f"state_dir={self.state_dir} recovered={len(self.recovered)} "
            f"quarantined={len(self.quarantined)} "
            f"config_rejected={len(self.config_rejected)}"
        )
