"""Memoising designed mechanisms so repeated requests skip the LP solver.

A mechanism design is fully determined by the tuple ``(n, alpha, properties,
objective, backend)``; nothing about the data enters the design.  Serving
workloads therefore see a tiny set of distinct designs under a huge stream of
requests, and the LP solve — milliseconds to seconds per design — is the
entire marginal cost.  :class:`DesignCache` keys designs by the canonical
request string (:func:`design_key`), keeps the most recently used ones in
memory (LRU), and can mirror every design to a directory of JSON files so
later processes skip the solver too.

Entries store each mechanism's *representation descriptor* — a closed-form
factory call for the Figure-5 GM/EM branches, CSC arrays for LP-designed
mechanisms — rather than a dense matrix blob, so cached designs stay small
at any group size.  A corrupt or truncated disk entry (killed writer, full
disk) is treated as a cache miss: the design is re-solved and the bad file
overwritten.

>>> from repro.serving import DesignCache
>>> cache = DesignCache(capacity=64)
>>> mech, decision = cache.get_or_design(8, 0.9, properties="WH+CM")
>>> _ = cache.get_or_design(8, 0.9, properties="WH+CM")  # no LP solve
>>> cache.stats().hits
1
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, Optional, Tuple, Union

from repro.core.losses import Objective
from repro.core.mechanism import Mechanism
from repro.core.properties import StructuralProperty, parse_properties
from repro.core.selector import SelectorDecision
from repro.lp.solver import DEFAULT_BACKEND

PropertiesLike = Union[None, str, Iterable[Union[str, StructuralProperty]]]


def _objective_key(objective: Optional[Objective]) -> str:
    """Canonical string for an objective, including the prior weights."""
    if objective is None:
        return "L0-default"
    weights = "uniform"
    if objective.weights is not None:
        weights = ",".join(repr(float(w)) for w in objective.weights)
    return f"p={objective.p:g};d={objective.d};agg={objective.aggregator};w={weights}"


def design_key(
    n: int,
    alpha: float,
    properties: PropertiesLike = (),
    objective: Optional[Objective] = None,
    backend: str = DEFAULT_BACKEND,
) -> str:
    """Canonical cache key for a design request.

    Property sets are parsed and sorted so ``"WH+CM"``, ``"CM+WH"`` and the
    equivalent enum collections all map to the same key.
    """
    props = "+".join(sorted(p.value for p in parse_properties(properties))) or "none"
    return f"n={int(n)}|alpha={repr(float(alpha))}|props={props}|obj={_objective_key(objective)}|backend={backend}"


@dataclass(frozen=True)
class CacheStats:
    """Counters describing how a :class:`DesignCache` has been used."""

    hits: int
    misses: int
    evictions: int
    disk_hits: int
    size: int
    #: Disk-tier stores that failed (I/O error) and were swallowed; the
    #: in-memory tier keeps serving, so these are observability, not errors.
    disk_errors: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.requests
        return self.hits / total if total else 0.0


class DesignCache:
    """LRU + optional on-disk memo of :func:`~repro.core.selector.choose_mechanism`.

    Parameters
    ----------
    capacity:
        Maximum number of designs held in memory; the least recently used
        entry is evicted beyond this.  Must be at least 1.
    directory:
        Optional directory for the on-disk tier.  Every design (fresh or
        loaded) is mirrored there as one JSON file per key, so a new process
        pointed at the same directory serves every previously seen request
        without an LP solve.  The directory is created on first write.

    Notes
    -----
    Cache hits return a *fresh* :class:`~repro.core.mechanism.Mechanism`
    rebuilt from the stored payload, so callers may mutate metadata freely
    without polluting the cache.  ``metadata["design_cache"]`` records
    whether the instance came from ``"solve"``, ``"memory"`` or ``"disk"``.

    The cache is thread-safe: one re-entrant lock guards the LRU order,
    the counters and the design resolution itself, so concurrent tenants
    sharing a cache (the serving daemon, a thread-pool client) can never
    corrupt the ``OrderedDict`` — and concurrent misses on the same key
    serialise into exactly one LP solve process-wide.
    """

    def __init__(self, capacity: int = 128, directory: Optional[Union[str, Path]] = None):
        if capacity < 1:
            raise ValueError("cache capacity must be at least 1")
        self.capacity = int(capacity)
        self.directory = Path(directory) if directory is not None else None
        self._entries: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._disk_hits = 0
        self._disk_errors = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def stats(self) -> CacheStats:
        """Current hit/miss/eviction counters (a consistent snapshot)."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                disk_hits=self._disk_hits,
                size=len(self._entries),
                disk_errors=self._disk_errors,
            )

    def clear(self, disk: bool = False) -> None:
        """Drop every in-memory entry (and the on-disk tier when ``disk``)."""
        with self._lock:
            self._entries.clear()
            if disk and self.directory is not None and self.directory.exists():
                for path in self.directory.glob("design-*.json"):
                    path.unlink()

    # ------------------------------------------------------------------ #
    # The main entry point
    # ------------------------------------------------------------------ #
    def get_or_design(
        self,
        n: int,
        alpha: float,
        properties: PropertiesLike = (),
        objective: Optional[Objective] = None,
        backend: str = DEFAULT_BACKEND,
    ) -> Tuple[Mechanism, SelectorDecision]:
        """The cached equivalent of :func:`~repro.core.selector.choose_mechanism`.

        On a miss the Figure-5 selector runs (solving the LP only on the WM
        branches) and the result is stored in memory and, when configured,
        on disk.  On a hit no selector or solver work happens at all.

        The whole lookup-or-solve runs under the cache lock, so two threads
        missing on the same key cannot race into two LP solves: the second
        thread blocks until the first has stored the entry, then hits it.
        """
        key = design_key(n, alpha, properties, objective, backend)
        with self._lock:
            entry = self._entries.get(key)
            source = "memory"
            if entry is None:
                entry = self._load_from_disk(key)
                if entry is not None:
                    source = "disk"
            if entry is not None:
                # A stored payload that no longer materialises (corrupt disk
                # write, schema from an incompatible version) is treated as a
                # miss: drop it, re-solve below and overwrite the bad entry.
                try:
                    materialised = self._materialise(entry, key, source)
                except Exception:
                    self._entries.pop(key, None)
                    self._remove_from_disk(key)
                else:
                    self._hits += 1
                    if source == "disk":
                        self._disk_hits += 1
                    self._entries[key] = entry
                    self._entries.move_to_end(key)
                    self._evict()
                    return materialised

            self._misses += 1
            from repro.core.selector import choose_mechanism  # deferred: avoids import cycle

            mechanism, decision = choose_mechanism(
                n, alpha, properties=properties, objective=objective, backend=backend
            )
            entry = {
                "key": key,
                "mechanism": mechanism.to_dict(),
                "decision": _decision_to_dict(decision),
            }
            self._entries[key] = entry
            self._entries.move_to_end(key)
            self._evict()
            self._store_to_disk(key, entry)
            mechanism.metadata["design_cache"] = "solve"
            mechanism.metadata["design_cache_key"] = key
            return mechanism, decision

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _evict(self) -> None:
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self._evictions += 1

    def _materialise(
        self, entry: Dict[str, Any], key: str, source: str
    ) -> Tuple[Mechanism, SelectorDecision]:
        mechanism = Mechanism.from_dict(entry["mechanism"])
        mechanism.metadata["design_cache"] = source
        mechanism.metadata["design_cache_key"] = key
        return mechanism, _decision_from_dict(entry["decision"])

    def _disk_path(self, key: str) -> Optional[Path]:
        if self.directory is None:
            return None
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:24]
        return self.directory / f"design-{digest}.json"

    def _load_from_disk(self, key: str) -> Optional[Dict[str, Any]]:
        """Read a disk entry; any corrupt or truncated file is a cache miss.

        A partially written file (process killed mid-write, disk full) may
        be invalid JSON, valid JSON of the wrong shape, or a stale payload
        for a colliding hash — all of these return ``None`` so the caller
        re-solves and overwrites the bad file.
        """
        path = self._disk_path(key)
        if path is None or not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        if not isinstance(payload, dict) or payload.get("key") != key:
            return None  # hash collision, stale or truncated file
        if "mechanism" not in payload or "decision" not in payload:
            return None
        return payload

    def _remove_from_disk(self, key: str) -> None:
        path = self._disk_path(key)
        if path is None:
            return
        try:
            path.unlink(missing_ok=True)
        except OSError:  # pragma: no cover - best-effort cleanup
            pass

    def _store_to_disk(self, key: str, entry: Dict[str, Any]) -> None:
        """Mirror one entry to disk atomically (temp file + ``os.replace``).

        A crash mid-write must never leave a truncated entry at the final
        path: the payload goes to a same-directory temp file first and is
        renamed over the target only once fully written, so readers see
        either the old entry, the new entry, or nothing — never half a
        file.  Disk-tier failures (I/O errors, full disk) are counted and
        swallowed: the cache result itself is already in memory, and a
        cache that cannot persist must not fail the design it memoises.
        """
        path = self._disk_path(key)
        if path is None:
            return
        from repro.engine import faults as _faults

        injector = _faults.get_injector()
        path.parent.mkdir(parents=True, exist_ok=True)
        temp = path.with_name(path.name + f".tmp.{os.getpid()}")
        payload = json.dumps(entry)
        try:
            if injector.io_error("cache_store"):
                raise OSError(f"injected I/O error storing {path}")
            with temp.open("w") as handle:
                if injector.torn("cache_store"):
                    # Crash mid-write: half the payload lands in the temp
                    # file and the process dies — the final path is never
                    # touched, so a restart sees a clean miss.
                    handle.write(payload[: max(1, len(payload) // 2)])
                    handle.flush()
                    os.fsync(handle.fileno())
                    raise _faults.InjectedCrash(f"torn cache store injected at {temp}")
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp, path)
        except OSError:
            self._disk_errors += 1
            try:
                temp.unlink(missing_ok=True)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass


def _decision_to_dict(decision: SelectorDecision) -> Dict[str, Any]:
    return {
        "branch": decision.branch,
        "requested": sorted(p.value for p in decision.requested),
        "closure": sorted(p.value for p in decision.closure),
        "n": decision.n,
        "alpha": decision.alpha,
        "reason": decision.reason,
    }


def _decision_from_dict(payload: Dict[str, Any]) -> SelectorDecision:
    return SelectorDecision(
        branch=str(payload["branch"]),
        requested=parse_properties(payload["requested"]),
        closure=parse_properties(payload["closure"]),
        n=int(payload["n"]),
        alpha=float(payload["alpha"]),
        reason=str(payload["reason"]),
    )
