"""Memoising designed mechanisms so repeated requests skip the LP solver.

A mechanism design is fully determined by the tuple ``(n, alpha, properties,
objective, backend)``; nothing about the data enters the design.  Serving
workloads therefore see a tiny set of distinct designs under a huge stream of
requests, and the LP solve — milliseconds to seconds per design — is the
entire marginal cost.  :class:`DesignCache` keys designs by the canonical
request string (:func:`design_key`), keeps the most recently used ones in
memory (LRU), and can mirror every design to a directory of JSON files so
later processes skip the solver too.

Entries store each mechanism's *representation descriptor* — a closed-form
factory call for the Figure-5 GM/EM branches, CSC arrays for LP-designed
mechanisms — rather than a dense matrix blob, so cached designs stay small
at any group size.  The persistent tier is a
:class:`~repro.serving.registry.PlanRegistry` (one WAL-mode sqlite file per
cache directory, safe for concurrent multi-process readers and a writer); a
corrupt row (killed writer, bad disk) is treated as a cache miss: the
design is re-solved and the bad row overwritten.  Legacy loose
``design-*.json`` directories are imported into the registry on first open.

On a cold miss with the ``simplex`` backend, the cache additionally asks
the registry for the *nearest cached neighbour* on the alpha axis and
warm-starts the simplex from that neighbour's optimal basis — skipping
phase 1 entirely when the basis is still feasible, with automatic fallback
to the cold path otherwise (``REPRO_NO_WARMSTART=1`` disables this).

>>> from repro.serving import DesignCache
>>> cache = DesignCache(capacity=64)
>>> mech, decision = cache.get_or_design(8, 0.9, properties="WH+CM")
>>> _ = cache.get_or_design(8, 0.9, properties="WH+CM")  # no LP solve
>>> cache.stats().hits
1
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.core.losses import Objective
from repro.core.mechanism import Mechanism
from repro.core.properties import StructuralProperty, parse_properties
from repro.core.selector import SelectorDecision
from repro.lp.solver import DEFAULT_BACKEND, warm_start_enabled
from repro.serving.registry import PlanRegistry, parse_design_key

PropertiesLike = Union[None, str, Iterable[Union[str, StructuralProperty]]]


def _objective_key(objective: Optional[Objective]) -> str:
    """Canonical string for an objective, including the prior weights."""
    if objective is None:
        return "L0-default"
    weights = "uniform"
    if objective.weights is not None:
        weights = ",".join(repr(float(w)) for w in objective.weights)
    return f"p={objective.p:g};d={objective.d};agg={objective.aggregator};w={weights}"


def design_key(
    n: int,
    alpha: float,
    properties: PropertiesLike = (),
    objective: Optional[Objective] = None,
    backend: str = DEFAULT_BACKEND,
) -> str:
    """Canonical cache key for a design request.

    Property sets are parsed and sorted so ``"WH+CM"``, ``"CM+WH"`` and the
    equivalent enum collections all map to the same key.
    """
    props = "+".join(sorted(p.value for p in parse_properties(properties))) or "none"
    return f"n={int(n)}|alpha={repr(float(alpha))}|props={props}|obj={_objective_key(objective)}|backend={backend}"


@dataclass(frozen=True)
class CacheStats:
    """Counters describing how a :class:`DesignCache` has been used."""

    hits: int
    misses: int
    evictions: int
    disk_hits: int
    size: int
    #: Registry stores that failed (I/O error) and were swallowed; the
    #: in-memory tier keeps serving, so these are observability, not errors.
    disk_errors: int = 0
    #: Cold simplex misses where a neighbour basis was found and tried.
    warm_attempts: int = 0
    #: Warm attempts whose basis was accepted (phase 1 skipped).
    warm_hits: int = 0
    #: Warm attempts that fell back to the cold two-phase path.
    warm_fallbacks: int = 0
    #: Registry rows that failed checksum/shape verification and were
    #: dropped (each one became a miss and a re-solve).
    corrupt_rows: int = 0
    #: Legacy loose ``design-*.json`` entries imported on registry open.
    imported_legacy: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.requests
        return self.hits / total if total else 0.0

    @property
    def tiers(self) -> Dict[str, int]:
        """Requests served per tier: in-process memory, registry, LP solve."""
        return {
            "memory": self.hits - self.disk_hits,
            "registry": self.disk_hits,
            "solve": self.misses,
        }


class DesignCache:
    """LRU + optional on-disk memo of :func:`~repro.core.selector.choose_mechanism`.

    Parameters
    ----------
    capacity:
        Maximum number of designs held in memory; the least recently used
        entry is evicted beyond this.  Must be at least 1.
    directory:
        Optional directory for the persistent tier.  Every design (fresh or
        loaded) is mirrored into the directory's
        :class:`~repro.serving.registry.PlanRegistry` (``registry.sqlite``),
        so a new process pointed at the same directory serves every
        previously seen request without an LP solve.  A directory holding
        legacy loose ``design-*.json`` files is imported once on open, the
        loose files left untouched.

    Notes
    -----
    Cache hits return a *fresh* :class:`~repro.core.mechanism.Mechanism`
    rebuilt from the stored payload, so callers may mutate metadata freely
    without polluting the cache.  ``metadata["design_cache"]`` records
    whether the instance came from ``"solve"``, ``"memory"`` or ``"disk"``.

    The cache is thread-safe: one re-entrant lock guards the LRU order,
    the counters and the design resolution itself, so concurrent tenants
    sharing a cache (the serving daemon, a thread-pool client) can never
    corrupt the ``OrderedDict`` — and concurrent misses on the same key
    serialise into exactly one LP solve process-wide.
    """

    def __init__(self, capacity: int = 128, directory: Optional[Union[str, Path]] = None):
        if capacity < 1:
            raise ValueError("cache capacity must be at least 1")
        self.capacity = int(capacity)
        self.directory = Path(directory) if directory is not None else None
        self.registry: Optional[PlanRegistry] = (
            PlanRegistry(self.directory) if self.directory is not None else None
        )
        self._entries: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._disk_hits = 0
        self._disk_errors = 0
        self._warm_attempts = 0
        self._warm_hits = 0
        self._warm_fallbacks = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def stats(self) -> CacheStats:
        """Current hit/miss/eviction counters (a consistent snapshot)."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                disk_hits=self._disk_hits,
                size=len(self._entries),
                disk_errors=self._disk_errors,
                warm_attempts=self._warm_attempts,
                warm_hits=self._warm_hits,
                warm_fallbacks=self._warm_fallbacks,
                corrupt_rows=self.registry.corrupt_rows if self.registry else 0,
                imported_legacy=self.registry.imported_legacy if self.registry else 0,
            )

    def clear(self, disk: bool = False) -> None:
        """Drop every in-memory entry (and the registry tier when ``disk``)."""
        with self._lock:
            self._entries.clear()
            if disk and self.registry is not None:
                self.registry.clear()

    def close(self) -> None:
        """Release the registry connection (the in-memory tier keeps working)."""
        if self.registry is not None:
            self.registry.close()

    # ------------------------------------------------------------------ #
    # The main entry point
    # ------------------------------------------------------------------ #
    def get_or_design(
        self,
        n: int,
        alpha: float,
        properties: PropertiesLike = (),
        objective: Optional[Objective] = None,
        backend: str = DEFAULT_BACKEND,
    ) -> Tuple[Mechanism, SelectorDecision]:
        """The cached equivalent of :func:`~repro.core.selector.choose_mechanism`.

        On a miss the Figure-5 selector runs (solving the LP only on the WM
        branches) and the result is stored in memory and, when configured,
        on disk.  On a hit no selector or solver work happens at all.

        The whole lookup-or-solve runs under the cache lock, so two threads
        missing on the same key cannot race into two LP solves: the second
        thread blocks until the first has stored the entry, then hits it.
        """
        key = design_key(n, alpha, properties, objective, backend)
        with self._lock:
            entry = self._entries.get(key)
            source = "memory"
            if entry is None:
                entry = self._load_from_disk(key)
                if entry is not None:
                    source = "disk"
            if entry is not None:
                # A stored payload that no longer materialises (corrupt disk
                # write, schema from an incompatible version) is treated as a
                # miss: drop it, re-solve below and overwrite the bad entry.
                try:
                    materialised = self._materialise(entry, key, source)
                except Exception:
                    self._entries.pop(key, None)
                    self._remove_from_disk(key)
                else:
                    self._hits += 1
                    if source == "disk":
                        self._disk_hits += 1
                    self._entries[key] = entry
                    self._entries.move_to_end(key)
                    self._evict()
                    return materialised

            self._misses += 1
            from repro.core.selector import choose_mechanism  # deferred: avoids import cycle

            warm_basis = self._neighbour_basis(key, backend)
            if warm_basis is not None:
                self._warm_attempts += 1
            mechanism, decision = choose_mechanism(
                n,
                alpha,
                properties=properties,
                objective=objective,
                backend=backend,
                warm_start=warm_basis,
            )
            if warm_basis is not None:
                if mechanism.metadata.get("lp_warm_started"):
                    self._warm_hits += 1
                else:
                    self._warm_fallbacks += 1
            entry = {
                "key": key,
                "mechanism": mechanism.to_dict(),
                "decision": _decision_to_dict(decision),
            }
            self._entries[key] = entry
            self._entries.move_to_end(key)
            self._evict()
            self._store_to_disk(key, entry)
            mechanism.metadata["design_cache"] = "solve"
            mechanism.metadata["design_cache_key"] = key
            return mechanism, decision

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _evict(self) -> None:
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self._evictions += 1

    def _materialise(
        self, entry: Dict[str, Any], key: str, source: str
    ) -> Tuple[Mechanism, SelectorDecision]:
        mechanism = Mechanism.from_dict(entry["mechanism"])
        mechanism.metadata["design_cache"] = source
        mechanism.metadata["design_cache_key"] = key
        return mechanism, _decision_from_dict(entry["decision"])

    def _neighbour_basis(self, key: str, backend: str) -> Optional[List[int]]:
        """Nearest-neighbour simplex basis for a cold miss, if usable.

        Only the ``simplex`` backend has a basis interface; scipy rows
        carry no ``lp_basis`` so they can never seed a warm start.  The
        neighbour search is keyed on everything but alpha: a basis is
        valid across alphas because ``to_standard_form`` gives every
        ``(n, properties, objective)`` program the same column layout.
        """
        if self.registry is None or backend != "simplex" or not warm_start_enabled():
            return None
        fields = parse_design_key(key)
        if fields is None:
            return None
        neighbour = self.registry.nearest(
            fields["n"],
            fields["props"],
            fields["objective"],
            fields["backend"],
            fields["alpha"],
            exclude_key=key,
        )
        if neighbour is None:
            return None
        metadata = neighbour[1].get("mechanism", {}).get("metadata", {})
        basis = metadata.get("lp_basis")
        if not basis:
            return None
        try:
            return [int(i) for i in basis]
        except (TypeError, ValueError):
            return None

    def _load_from_disk(self, key: str) -> Optional[Dict[str, Any]]:
        """Read a registry entry; a corrupt row is dropped and is a miss.

        The registry verifies checksum, JSON shape and recorded key before
        returning anything, so a killed writer or bit-rotted row surfaces
        here as ``None`` and the caller re-solves and overwrites it.
        """
        if self.registry is None:
            return None
        return self.registry.get(key)

    def _remove_from_disk(self, key: str) -> None:
        if self.registry is not None:
            self.registry.delete(key)

    def _store_to_disk(self, key: str, entry: Dict[str, Any]) -> None:
        """Mirror one entry into the registry (one atomic transaction).

        Registry failures (I/O errors, full disk) are counted and
        swallowed: the cache result itself is already in memory, and a
        cache that cannot persist must not fail the design it memoises.
        An injected crash (``torn_cache``) propagates — it models process
        death, and the rolled-back transaction guarantees a restart sees
        a clean miss, never a partial row.
        """
        if self.registry is None:
            return
        try:
            self.registry.put(key, entry)
        except OSError:
            self._disk_errors += 1


def _decision_to_dict(decision: SelectorDecision) -> Dict[str, Any]:
    return {
        "branch": decision.branch,
        "requested": sorted(p.value for p in decision.requested),
        "closure": sorted(p.value for p in decision.closure),
        "n": decision.n,
        "alpha": decision.alpha,
        "reason": decision.reason,
    }


def _decision_from_dict(payload: Dict[str, Any]) -> SelectorDecision:
    return SelectorDecision(
        branch=str(payload["branch"]),
        requested=parse_properties(payload["requested"]),
        closure=parse_properties(payload["closure"]),
        n=int(payload["n"]),
        alpha=float(payload["alpha"]),
        reason=str(payload["reason"]),
    )
