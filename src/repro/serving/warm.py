"""Offline grid precompilation: fill the plan registry before serving.

``repro-mechanisms warm --cache-dir DIR --grid n=... alpha=... props=...``
solves every design point of a grid and stores the results in the
directory's :class:`~repro.serving.registry.PlanRegistry`, so a freshly
started daemon (or any later process pointed at the same ``--cache-dir``)
serves the whole grid with **zero LP solves**.

The grid fans out process-parallel with the same worker discipline as the
figure sweeps: one task per ``(n, properties)`` group, because points in a
group share a standard-form layout and can chain LP warm starts — each
alpha is solved from the previous alpha's optimal basis, so only the first
point of a group pays a phase-1 solve.  Workers return plain entry dicts;
the parent process is the registry's single writer.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Union

from repro.core.losses import Objective
from repro.lp.solver import DEFAULT_BACKEND
from repro.serving.cache import _decision_to_dict, design_key
from repro.serving.registry import PlanRegistry


class GridError(ValueError):
    """A ``--grid`` specification that cannot be parsed."""


def parse_grid(tokens: Sequence[str]) -> Dict[str, List[Any]]:
    """Parse ``--grid`` tokens (``key=v1,v2,...``) into axis lists.

    Recognised axes: ``n`` (ints), ``alpha`` (floats), ``props`` (property
    strings such as ``WH+CM``; ``none`` for the unconstrained LP).

    >>> parse_grid(["n=8,16", "alpha=0.9,0.95", "props=WH+CM"])
    {'n': [8, 16], 'alpha': [0.9, 0.95], 'props': ['WH+CM']}
    """
    axes: Dict[str, List[Any]] = {}
    for token in tokens:
        name, sep, value = token.partition("=")
        if not sep or not value:
            raise GridError(f"grid token {token!r} is not of the form key=v1,v2,...")
        values = [item for item in value.split(",") if item]
        if name == "n":
            try:
                axes["n"] = [int(item) for item in values]
            except ValueError as exc:
                raise GridError(f"grid axis n: {exc}") from None
        elif name == "alpha":
            try:
                axes["alpha"] = [float(item) for item in values]
            except ValueError as exc:
                raise GridError(f"grid axis alpha: {exc}") from None
        elif name == "props":
            axes["props"] = values
        else:
            raise GridError(f"unknown grid axis {name!r} (expected n, alpha or props)")
    for required in ("n", "alpha"):
        if required not in axes:
            raise GridError(f"grid is missing the {required}= axis")
    axes.setdefault("props", ["WH+CM"])
    return axes


def _warm_group_task(task: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """Solve one ``(n, props)`` group's alphas, chaining warm starts.

    Module-level so :func:`warm_grid` tasks can pickle.  Returns the entry
    dicts in alpha order; the parent writes them into the registry.
    """
    from repro.core.selector import choose_mechanism

    n = int(task["n"])
    props = task["props"]
    backend = task["backend"]
    objective = task["objective"]
    skip = set(task["skip"])
    entries: List[Dict[str, Any]] = []
    warm_basis: Optional[List[int]] = None
    for alpha in sorted(task["alphas"]):
        key = design_key(n, alpha, props, objective, backend)
        if key in skip:
            continue
        mechanism, decision = choose_mechanism(
            n,
            alpha,
            properties=None if props == "none" else props,
            objective=objective,
            backend=backend,
            warm_start=warm_basis,
        )
        entries.append(
            {
                "key": key,
                "mechanism": mechanism.to_dict(),
                "decision": _decision_to_dict(decision),
            }
        )
        basis = mechanism.metadata.get("lp_basis")
        if basis:
            warm_basis = [int(i) for i in basis]
    return entries


def warm_grid(
    directory: Union[str, Any],
    ns: Iterable[int],
    alphas: Iterable[float],
    props_list: Iterable[str] = ("WH+CM",),
    objective: Optional[Objective] = None,
    backend: str = DEFAULT_BACKEND,
    max_workers: Optional[int] = None,
) -> Dict[str, Any]:
    """Precompile a design grid into ``directory``'s plan registry.

    Points already present in the registry are skipped (warming is
    idempotent and incremental).  With ``max_workers`` unset or <= 1 every
    group solves in-process; otherwise ``(n, props)`` groups fan out across
    worker processes.  Returns a summary dict: total grid points, how many
    were solved vs already present, and the wall time.
    """
    ns = sorted({int(n) for n in ns})
    alphas = sorted({float(a) for a in alphas})
    props_list = list(dict.fromkeys(props_list))
    started = time.perf_counter()
    with PlanRegistry(directory) as registry:
        tasks = []
        total = 0
        skipped = 0
        for n in ns:
            for props in props_list:
                group_skip = []
                for alpha in alphas:
                    total += 1
                    key = design_key(n, alpha, props, objective, backend)
                    if key in registry:
                        skipped += 1
                        group_skip.append(key)
                if len(group_skip) == len(alphas):
                    continue
                tasks.append(
                    {
                        "n": n,
                        "props": props,
                        "alphas": alphas,
                        "objective": objective,
                        "backend": backend,
                        "skip": group_skip,
                    }
                )
        if max_workers is None or int(max_workers) <= 1 or len(tasks) <= 1:
            results = [_warm_group_task(task) for task in tasks]
        else:
            from concurrent.futures import ProcessPoolExecutor

            with ProcessPoolExecutor(max_workers=int(max_workers)) as pool:
                results = list(pool.map(_warm_group_task, tasks))
        solved = 0
        warm_started = 0
        for entries in results:
            for entry in entries:
                registry.put(entry["key"], entry)
                solved += 1
                if entry["mechanism"].get("metadata", {}).get("lp_warm_started"):
                    warm_started += 1
        stored = len(registry)
    return {
        "grid_points": total,
        "solved": solved,
        "skipped": skipped,
        "warm_started": warm_started,
        "registry_entries": stored,
        "seconds": time.perf_counter() - started,
    }
