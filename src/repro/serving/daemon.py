"""Long-lived multi-tenant serving daemon with cross-tenant request coalescing.

Every CLI invocation of ``serve-batch``/``serve-stream`` pays process
startup and plan compilation before releasing a single count.  The daemon
amortises both across a process lifetime — and across *tenants*:

* **Per-tenant sessions.**  Each tenant (bound by the ``hello`` op) owns a
  :class:`~repro.privacy.PrivacyAccountant` (budget isolation: one tenant
  exhausting its budget never affects another) and a substream root from
  :func:`~repro.serving.protocol.tenant_seed_sequence`.  Request ``k`` of a
  tenant always samples from the ``k``-th spawn of that root, regardless of
  how requests are batched — the worker-invariance discipline of
  :meth:`~repro.engine.executor.StreamExecutor.stream_seeded` applied to
  tenants instead of chunks.

* **One shared plans-LRU.**  A single :class:`~repro.serving.cache
  .DesignCache` plus one compiled :class:`~repro.engine.plan.ReleasePlan`
  per distinct ``(n, alpha, properties)`` serve *all* tenants.

* **Coalescing batcher.**  In-flight requests are collected for a short
  window (``batch_window_ms``, default 2 ms) and same-plan requests from
  different tenants merge into **one** vectorised draw.  Identity is
  preserved exactly: each request's uniforms are drawn from its *own*
  substream generator, concatenated, and pushed through a single
  :meth:`~repro.engine.plan.ReleasePlan.execute_with_uniforms` call — the
  samplers are elementwise in ``(count, uniform)`` pairs, so the merged
  batch is bit-identical to serving each request alone (``batch_window_ms
  = 0``).  The window is a *cap*: a batch flushes early when every open
  connection has a request waiting or when ``max_batch`` requests are
  pending.

* **Budget shedding.**  Each batched request is charged against its
  tenant's accountant *before* any sampling, in arrival order.  An
  over-budget request is shed from the batch with a code-1 refusal —
  consuming its substream spawn but zero uniforms — while the rest of the
  batch proceeds untouched.

* **Durable budgets** (``state_dir``).  Each tenant's accountant is backed
  by its own :class:`~repro.engine.durability.AccountantLedger` through a
  :class:`~repro.serving.tenant_store.TenantStore`: every charge (and every
  refusal — refusals consume spawns) is group-committed to disk *before*
  the batch samples, and the ledger header pins the tenant's substream-root
  lineage.  A restarted daemon replays the ledgers, restoring each tenant's
  exact ``alpha_spent``, refusal count and stream position, so post-restart
  draws are bit-identical to an uninterrupted run.  A request that was
  charged but whose response was lost to the crash is *replayed* — client
  re-sends its ``seq``; the daemon re-derives the same substream and
  answers with the same bits, charged exactly once.  Damaged ledgers
  quarantine only their tenant; everyone else serves on.

* **Deadlines and backpressure.**  ``request_timeout`` sheds requests that
  expire before the batcher reaches them; ``max_pending``/``max_inflight``
  shed for capacity — all with retriable code-3 ``overloaded`` responses
  that consume nothing.  ``client_timeout`` bounds each response write so
  a stalled client is reaped without blocking the batcher, and
  ``max_line_bytes`` bounds request framing.

* **Graceful shutdown.**  ``stop()`` (or the ``shutdown``/``drain`` ops,
  or SIGTERM via the CLI) stops accepting connections, flushes the
  in-flight batch so every admitted request is answered, checkpoints the
  tenant ledgers, then closes.

See ``docs/architecture.md`` (daemon-durability section) for the recovery
state machine and ``benchmarks/test_bench_daemon.py`` for the
throughput/p99 harness (including the durable-mode overhead gate).
"""

from __future__ import annotations

import asyncio
import os
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.mechanism import Mechanism
from repro.engine import faults as _faults
from repro.engine.durability import (
    AccountantLedger,
    LedgerError,
    chunk_crc,
    datasync as _datasync,
)
from repro.engine.plan import ReleasePlan
from repro.lp.solver import DEFAULT_BACKEND, solve_call_count
from repro.privacy import BudgetExceededError, PrivacyAccountant
from repro.serving.cache import DesignCache, design_key
from repro.serving.protocol import (
    DEFAULT_MAX_LINE_BYTES,
    LineTooLongError,
    ProtocolError,
    ReleaseCommand,
    decode_message,
    encode_message,
    error_response,
    ok_response,
    overloaded_response,
    parse_release,
    read_message_line,
    refusal_response,
    tenant_seed_sequence,
)
from repro.serving.stats import budget_payload, health_payload, stats_payload
from repro.serving.tenant_store import TenantStore

#: Default coalescing window in milliseconds.
DEFAULT_BATCH_WINDOW_MS = 2.0

#: Default cap on requests merged into one flush.
DEFAULT_MAX_BATCH = 256

#: Default cap on distinct tenant sessions.
DEFAULT_MAX_TENANTS = 64

#: The response a served request's connection runs after the bytes are on
#: the wire (durable daemons: the ledger's ``done`` mark).
_OnWritten = Optional[Callable[[], None]]


class TenantSession:
    """One tenant's serving state: accountant, substream root, counters."""

    def __init__(
        self,
        name: str,
        root: np.random.SeedSequence,
        accountant: Optional[PrivacyAccountant],
        seed: Optional[int] = None,
        budget_alpha: Optional[float] = None,
        ledger: Optional[AccountantLedger] = None,
    ) -> None:
        self.name = name
        self.root = root
        self.accountant = accountant
        self.seed = seed
        self.budget_alpha = budget_alpha
        #: Durable backing for the accountant (``None`` = in-memory only).
        self.ledger = ledger
        self.requests = 0
        self.records = 0
        self.refusals = 0
        #: Releases currently admitted but unanswered (``max_inflight``).
        self.inflight = 0

    def next_substream(self) -> np.random.SeedSequence:
        """The substream of this tenant's next consumed sequence number.

        Spawned in flush order == admission order, so request ``k`` is
        always the ``k``-th spawn — whether it is served alone, coalesced
        with other tenants, or shed over budget (a shed request consumes
        its spawn but zero uniforms, exactly as in per-request serving).
        On a durable daemon the spawn happens only *after* the charge or
        refusal record reached the ledger, so a failed append burns no
        sequence number and a retry converges bit-identically.
        """
        self.requests += 1
        return self.root.spawn(1)[0]

    def substream_at(self, seq: int) -> np.random.SeedSequence:
        """Re-derive the ``seq``-th spawn without advancing the root.

        This is :meth:`numpy.random.SeedSequence.spawn`'s child derivation
        applied at an explicit position — the replay path's way to re-draw
        an already-charged request's exact uniforms.
        """
        return np.random.SeedSequence(
            self.root.entropy,
            spawn_key=tuple(self.root.spawn_key) + (int(seq),),
            pool_size=self.root.pool_size,
        )

    def payload(self) -> Dict[str, Any]:
        """This tenant's slice of the ``stats`` response."""
        return {
            "tenant": self.name,
            "requests": self.requests,
            "records": self.records,
            "inflight": self.inflight,
            "durable": self.ledger is not None,
            "budget": budget_payload(self.accountant, self.refusals),
        }


@dataclass
class _PendingRequest:
    """One admitted release waiting in the batcher."""

    tenant: TenantSession
    key: str
    plan: ReleasePlan
    command: ReleaseCommand
    future: "asyncio.Future[Tuple[dict, _OnWritten]]"
    #: ``time.monotonic()`` moment after which the request is shed unserved.
    deadline: Optional[float] = None
    #: Assigned at flush time, after the durable charge/refusal record.
    seq: Optional[int] = None
    child: Optional[np.random.SeedSequence] = None


@dataclass
class DaemonStats:
    """Process-wide serving totals (see :meth:`ServingDaemon.stats_payload`)."""

    requests: int = 0
    records: int = 0
    #: Batcher flushes (each is one merged draw per distinct plan present).
    batches: int = 0
    #: Requests that were served in a flush of more than one request.
    coalesced_requests: int = 0
    max_batch: int = 0
    budget_refusals: int = 0
    protocol_errors: int = 0
    #: Code-3 sheds: queue full, per-tenant in-flight cap, expired deadline.
    overloaded: int = 0
    #: The subset of ``overloaded`` shed for an expired ``request_timeout``.
    deadline_expired: int = 0
    #: Connections aborted because a response write exceeded ``client_timeout``.
    clients_reaped: int = 0
    #: Already-charged sequence numbers re-served without re-charging.
    replays: int = 0
    #: Tolerated ledger append failures (failed charge = nothing consumed).
    ledger_errors: int = 0


class ServingDaemon:
    """The asyncio front-end over the engine (``repro-mechanisms serve``).

    Parameters
    ----------
    batch_window_ms:
        Coalescing window: how long the batcher may hold the first pending
        request while waiting for more.  ``0`` disables coalescing.
        Outputs are bit-identical either way.
    max_batch:
        Flush immediately once this many requests are pending.
    max_tenants:
        Refuse ``hello`` for new tenants beyond this many sessions.
    budget_alpha:
        Default per-tenant budget: every new tenant gets a fresh
        :class:`~repro.privacy.PrivacyAccountant` with this target unless
        its ``hello`` overrides it.  ``None`` = unmetered tenants
        (disallowed when ``state_dir`` is set — a durable daemon must have
        a budget to journal).
    seed:
        Server seed for :func:`~repro.serving.protocol.tenant_seed_sequence`
        — fixes every tenant's substream root (absent per-tenant seeds) so
        whole serving runs are reproducible.  A durable daemon pins this
        into each tenant ledger; restarting with a different seed rejects
        the affected tenants instead of silently forking their streams.
    cache / cache_dir / cache_size / backend:
        The shared :class:`~repro.serving.cache.DesignCache` (or the
        parameters to build one) and the LP backend for cold designs.
    state_dir:
        Durable-mode root (``--state-dir``): per-tenant budget ledgers live
        under ``<state_dir>/tenants/``; construction replays them (see
        :class:`~repro.serving.tenant_store.TenantStore`).
    request_timeout:
        Seconds from admission after which an unserved request is shed with
        a retriable code-3 response, consuming nothing.
    client_timeout:
        Seconds one response write may take before the stalled client's
        connection is aborted (the batcher and other tenants never wait).
    max_pending / max_inflight:
        Admission caps: total batcher queue depth / per-tenant unanswered
        requests.  Past either, requests shed with code 3.
    max_line_bytes:
        Server-side bound on one request line (code-2 + close past it).
    fsync:
        Whether tenant ledgers fsync (tests may disable for speed; real
        durability requires it).
    """

    def __init__(
        self,
        batch_window_ms: float = DEFAULT_BATCH_WINDOW_MS,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_tenants: int = DEFAULT_MAX_TENANTS,
        budget_alpha: Optional[float] = None,
        seed: Optional[int] = None,
        cache: Optional[DesignCache] = None,
        cache_dir: Optional[Union[str, Path]] = None,
        cache_size: int = 128,
        backend: str = DEFAULT_BACKEND,
        state_dir: Optional[Union[str, Path]] = None,
        request_timeout: Optional[float] = None,
        client_timeout: Optional[float] = None,
        max_pending: Optional[int] = None,
        max_inflight: Optional[int] = None,
        max_line_bytes: int = DEFAULT_MAX_LINE_BYTES,
        fsync: bool = True,
    ) -> None:
        if batch_window_ms < 0:
            raise ValueError("batch_window_ms must be non-negative")
        if int(max_batch) != max_batch or max_batch < 1:
            raise ValueError("max_batch must be a positive integer")
        if int(max_tenants) != max_tenants or max_tenants < 1:
            raise ValueError("max_tenants must be a positive integer")
        if request_timeout is not None and not request_timeout > 0:
            raise ValueError("request_timeout must be positive (or None)")
        if client_timeout is not None and not client_timeout > 0:
            raise ValueError("client_timeout must be positive (or None)")
        if max_pending is not None and (
            int(max_pending) != max_pending or max_pending < 1
        ):
            raise ValueError("max_pending must be a positive integer (or None)")
        if max_inflight is not None and (
            int(max_inflight) != max_inflight or max_inflight < 1
        ):
            raise ValueError("max_inflight must be a positive integer (or None)")
        if int(max_line_bytes) != max_line_bytes or max_line_bytes < 1024:
            raise ValueError("max_line_bytes must be an integer >= 1024")
        self.batch_window = float(batch_window_ms) / 1000.0
        self.max_batch = int(max_batch)
        self.max_tenants = int(max_tenants)
        self.budget_alpha = budget_alpha
        self.seed = seed
        self.backend = backend
        self.request_timeout = (
            None if request_timeout is None else float(request_timeout)
        )
        self.client_timeout = (
            None if client_timeout is None else float(client_timeout)
        )
        self.max_pending = None if max_pending is None else int(max_pending)
        self.max_inflight = None if max_inflight is None else int(max_inflight)
        self.max_line_bytes = int(max_line_bytes)
        self.cache = (
            cache
            if cache is not None
            else DesignCache(capacity=cache_size, directory=cache_dir)
        )
        self.stats = DaemonStats()
        self._tenants: Dict[str, TenantSession] = {}
        self._store: Optional[TenantStore] = None
        if state_dir is not None:
            self._store = TenantStore(
                state_dir,
                server_seed=seed,
                default_budget_alpha=budget_alpha,
                fsync=fsync,
            )
            for recovered in self._store.recover().values():
                session = TenantSession(
                    recovered.name,
                    recovered.root,
                    recovered.ledger.accountant,
                    seed=recovered.tenant_seed,
                    budget_alpha=(
                        float(recovered.ledger.accountant.alpha_target)
                        if recovered.budget_source == "hello"
                        else None
                    ),
                    ledger=recovered.ledger,
                )
                session.requests = recovered.next_seq
                session.refusals = recovered.refusals
                self._tenants[recovered.name] = session
        #: Shared compiled plans, LRU-bounded by the cache capacity (the
        #: same knob that bounds the design cache itself).
        self._plans: "OrderedDict[str, ReleasePlan]" = OrderedDict()
        self._plans_compiled = 0
        self._pending: List[_PendingRequest] = []
        self._flush_handle: Optional[asyncio.TimerHandle] = None
        self._connections = 0
        self._inflight = 0
        self._closing = False
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopped = asyncio.Event()
        self._solves_at_start = solve_call_count()
        self._densifications_at_start = Mechanism.densifications
        self.address: Optional[str] = None
        self.port: Optional[int] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(
        self,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        unix_path: Optional[Union[str, Path]] = None,
    ) -> None:
        """Bind the listening socket (unix when ``unix_path``, else TCP)."""
        if self._server is not None:
            raise RuntimeError("daemon already started")
        if unix_path is not None:
            self._server = await asyncio.start_unix_server(
                self._handle_connection,
                path=str(unix_path),
                limit=self.max_line_bytes,
            )
            self.address = str(unix_path)
        else:
            self._server = await asyncio.start_server(
                self._handle_connection,
                host=host,
                port=0 if port is None else int(port),
                limit=self.max_line_bytes,
            )
            name = self._server.sockets[0].getsockname()
            self.address = f"{name[0]}:{name[1]}"
            self.port = int(name[1])

    async def stop(self) -> None:
        """Graceful shutdown: flush, answer, checkpoint ledgers, close."""
        if self._closing:
            await self._stopped.wait()
            return
        self._closing = True
        if self._server is not None:
            self._server.close()
        # Flush whatever the batcher is holding so every admitted request
        # is answered, then give the connection handlers a chance to write
        # the resolved responses out before the loop is torn down.
        self._flush()
        for _ in range(400):
            if self._inflight == 0:
                break
            await asyncio.sleep(0.005)
        if self._server is not None:
            await self._server.wait_closed()
        if self._store is not None:
            try:
                self._store.sync_all()
                self._store.close_all()
            except OSError:  # pragma: no cover - best-effort checkpoint
                pass
        self._stopped.set()

    async def wait_closed(self) -> None:
        """Block until :meth:`stop` has completed."""
        await self._stopped.wait()

    @staticmethod
    def _hard_exit() -> None:
        """Simulated crash (``kill_daemon`` / torn tenant-ledger faults)."""
        os._exit(_faults.KILLED_DAEMON_EXIT)

    # ------------------------------------------------------------------ #
    # Tenants and plans
    # ------------------------------------------------------------------ #
    def _hello(self, message: dict) -> TenantSession:
        name = message.get("tenant")
        if not isinstance(name, str) or not name:
            raise ProtocolError("hello requires a non-empty 'tenant' string")
        seed = message.get("seed")
        budget = message.get("budget_alpha")
        if self._store is not None:
            reason = self._store.rejection_reason(name)
            if reason is not None:
                raise ProtocolError(
                    f"tenant {name!r} cannot be served by this daemon: {reason}"
                )
        existing = self._tenants.get(name)
        if existing is not None:
            # Reconnecting resumes the session; conflicting parameters
            # would silently fork the tenant's stream or budget, so refuse.
            if seed is not None and seed != existing.seed:
                raise ProtocolError(
                    f"tenant {name!r} already exists with a different seed"
                )
            if budget is not None and budget != existing.budget_alpha:
                raise ProtocolError(
                    f"tenant {name!r} already exists with a different budget_alpha"
                )
            return existing
        if len(self._tenants) >= self.max_tenants:
            raise ProtocolError(
                f"tenant limit reached ({self.max_tenants}); "
                "raise --max-tenants or retire a session"
            )
        effective_budget = self.budget_alpha if budget is None else float(budget)
        if self._store is not None and effective_budget is None:
            raise ProtocolError(
                "a durable daemon (--state-dir) meters every tenant: pass "
                "budget_alpha in hello or start the daemon with --budget-alpha"
            )
        root = tenant_seed_sequence(
            name,
            server_seed=self.seed,
            tenant_seed=None if seed is None else int(seed),
        )
        ledger: Optional[AccountantLedger] = None
        if self._store is not None:
            # The ledger (pinning the root's lineage) must exist before the
            # root spawns anything, or a crash here could lose the stream.
            try:
                ledger = self._store.create(
                    name,
                    root,
                    tenant_seed=None if seed is None else int(seed),
                    budget_alpha=float(effective_budget),
                    budget_source="default" if budget is None else "hello",
                )
            except OSError as error:
                raise ProtocolError(
                    f"cannot create tenant {name!r}'s ledger: {error}"
                ) from error
            accountant: Optional[PrivacyAccountant] = ledger.accountant
        else:
            accountant = (
                PrivacyAccountant(alpha_target=float(effective_budget))
                if effective_budget is not None
                else None
            )
        session = TenantSession(
            name,
            root,
            accountant,
            seed=None if seed is None else int(seed),
            budget_alpha=None if budget is None else float(budget),
            ledger=ledger,
        )
        self._tenants[name] = session
        return session

    def _plan_for(self, command: ReleaseCommand) -> ReleasePlan:
        """The shared compiled plan for a design request (one per key)."""
        try:
            key = design_key(
                command.n, command.alpha, command.properties, None, self.backend
            )
        except ValueError as error:  # unknown property code
            raise ProtocolError(str(error)) from error
        plan = self._plans.get(key)
        if plan is None:
            try:
                mechanism, decision = self.cache.get_or_design(
                    command.n,
                    command.alpha,
                    properties=command.properties,
                    backend=self.backend,
                )
            except ValueError as error:
                raise ProtocolError(str(error)) from error
            plan = ReleasePlan(
                mechanism,
                decision=decision,
                alpha_cost=float(command.alpha),
                key=key,
            )
            self._plans[key] = plan
            self._plans_compiled += 1
        self._plans.move_to_end(key)
        while len(self._plans) > self.cache.capacity:
            self._plans.popitem(last=False)
        return plan

    # ------------------------------------------------------------------ #
    # The coalescing batcher
    # ------------------------------------------------------------------ #
    async def _admit(
        self, tenant: TenantSession, command: ReleaseCommand
    ) -> Tuple[dict, _OnWritten]:
        """Queue one validated release and await its ``(response, on_written)``.

        Capacity sheds (code 3) and already-charged ``seq`` replays answer
        immediately without entering the batcher; everything else waits for
        its flush.
        """
        plan = self._plan_for(command)  # ProtocolError propagates to the handler
        if (
            tenant.ledger is not None
            and command.seq is not None
            and command.seq < tenant.requests
        ):
            return self._replay(tenant, plan, command)
        if self.max_pending is not None and len(self._pending) >= self.max_pending:
            self.stats.overloaded += 1
            return (
                overloaded_response(
                    f"daemon queue is full ({self.max_pending} pending "
                    "requests, --max-pending); retry shortly",
                    id=command.request_id,
                ),
                None,
            )
        if self.max_inflight is not None and tenant.inflight >= self.max_inflight:
            self.stats.overloaded += 1
            return (
                overloaded_response(
                    f"tenant {tenant.name!r} already has {tenant.inflight} "
                    f"requests in flight (--max-inflight {self.max_inflight}); "
                    "retry shortly",
                    id=command.request_id,
                ),
                None,
            )
        self.stats.requests += 1
        tenant.inflight += 1
        deadline = (
            None
            if self.request_timeout is None
            else time.monotonic() + self.request_timeout
        )
        future: "asyncio.Future[Tuple[dict, _OnWritten]]" = (
            asyncio.get_running_loop().create_future()
        )
        self._pending.append(
            _PendingRequest(
                tenant=tenant, key=plan.key, plan=plan,
                command=command, future=future, deadline=deadline,
            )
        )
        self._maybe_flush()
        try:
            return await future
        finally:
            tenant.inflight -= 1

    def _replay(
        self, tenant: TenantSession, plan: ReleasePlan, command: ReleaseCommand
    ) -> Tuple[dict, _OnWritten]:
        """Re-serve an already-consumed sequence number, charged exactly once.

        The crash window of a durable daemon is charged-but-not-done: the
        budget was durably spent but the response never reached the client.
        The client re-sends the request with its ``seq``; the recorded
        charge is verified against the re-sent parameters (checksum and
        design), the same substream is re-derived, and the same bits go
        out — no re-charge, no new spawn.  A recorded refusal replays as a
        refusal.
        """
        assert tenant.ledger is not None and command.seq is not None
        ledger = tenant.ledger
        seq = int(command.seq)
        self.stats.requests += 1
        if ledger.refused(seq):
            self.stats.replays += 1
            return (
                refusal_response(
                    f"replayed refusal: sequence {seq} was refused over "
                    "budget before the restart; nothing was spent",
                    id=command.request_id, seq=seq, replayed=True,
                ),
                None,
            )
        record = ledger.charge_record(seq)
        if record is None:  # pragma: no cover - defensive: indices are dense
            return (
                error_response(
                    f"sequence {seq} precedes tenant {tenant.name!r}'s next "
                    f"sequence {tenant.requests} but has no ledger record",
                    id=command.request_id,
                ),
                None,
            )
        size = int(command.counts.shape[0])
        mismatch = None
        if int(record["size"]) != size:
            mismatch = "counts size"
        elif "crc" in record and int(record["crc"]) != chunk_crc(command.counts):
            mismatch = "counts checksum"
        elif float(record["alpha"]) != float(command.alpha):
            mismatch = "alpha"
        elif "n" in record and int(record["n"]) != int(command.n):
            mismatch = "n"
        elif "properties" in record and record["properties"] != command.properties:
            mismatch = "properties"
        if mismatch is not None:
            return (
                error_response(
                    f"replay of sequence {seq} does not match the recorded "
                    f"request ({mismatch} differs); refusing to serve a "
                    "diverged replay",
                    id=command.request_id,
                ),
                None,
            )
        uniforms = np.random.default_rng(tenant.substream_at(seq)).random(size)
        try:
            released = plan.execute_with_uniforms(command.counts, uniforms)
        except Exception as error:  # pragma: no cover - defensive
            return (
                error_response(
                    f"internal error while sampling: {error}",
                    id=command.request_id,
                ),
                None,
            )
        self.stats.replays += 1
        tenant.records += size
        self.stats.records += size
        response = ok_response(
            id=command.request_id,
            released=[int(value) for value in released],
            mechanism=plan.mechanism.name,
            branch=plan.branch,
            alpha=command.alpha,
            coalesced=1,
            seq=seq,
            replayed=True,
        )
        return response, self._done_callback(ledger, seq, size)

    def _done_callback(
        self, ledger: AccountantLedger, seq: int, size: int
    ) -> Callable[[], None]:
        """The post-write ``done`` mark for one durably-charged request.

        Losing a done mark (crash, tolerated I/O error, ledger already
        checkpointed by ``stop()``) only widens the replay window by one
        bit-identical re-serve — never a double charge — so failures here
        are counted, not raised; ``defer=True`` keeps the mark out of the
        hot path entirely (appended at the next checkpoint/shutdown sync).
        """

        def _mark() -> None:
            try:
                ledger.mark_done(seq, size=size, records=size, offset=0, defer=True)
            except (LedgerError, OSError):
                self.stats.ledger_errors += 1
            except _faults.InjectedCrash:
                self._hard_exit()

        return _mark

    def _maybe_flush(self) -> None:
        """Flush now, or arm the window timer for the first pending request.

        Immediate flush when coalescing is off, the batch is full, the
        daemon is closing, or every open connection already has a request
        waiting (the protocol allows one in-flight request per connection,
        so no further request can arrive before a response goes out —
        waiting the window out would be pure added latency).
        """
        if (
            self.batch_window <= 0.0
            or self._closing
            or len(self._pending) >= self.max_batch
            or len(self._pending) >= self._connections
        ):
            self._flush()
            return
        if self._flush_handle is None:
            self._flush_handle = asyncio.get_running_loop().call_later(
                self.batch_window, self._flush
            )

    def _flush(self) -> None:
        """Serve everything pending: charge per request, merge per plan, draw once.

        Phase 1 walks the batch in admission order: expired deadlines are
        shed first (code 3, nothing consumed), then each request is charged
        — durably, on a ledger-backed tenant, with the charge (or refusal)
        record appended *before* the sequence number's substream spawn is
        consumed, so a failed append burns nothing and a retry converges.
        A group-commit barrier then flushes the batch's ledger appends
        through the store's commit log (one ``fdatasync`` per batch): all
        charging strictly precedes all sampling, durably.  Phase 2 groups
        the survivors by plan, draws each request's uniforms from its own
        substream, and answers every group with a single merged
        ``execute_with_uniforms`` call, scattering the released slices back
        to the per-request futures.
        """
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None
        batch, self._pending = self._pending, []
        if not batch:
            return
        self.stats.batches += 1
        self.stats.max_batch = max(self.stats.max_batch, len(batch))
        if len(batch) > 1:
            self.stats.coalesced_requests += len(batch)

        now = time.monotonic()
        survivors: List[_PendingRequest] = []
        touched: Dict[int, AccountantLedger] = {}
        for item in batch:
            if item.deadline is not None and now > item.deadline:
                self.stats.overloaded += 1
                self.stats.deadline_expired += 1
                self._resolve(
                    item,
                    overloaded_response(
                        "deadline expired before serving (--request-timeout); "
                        "nothing was charged or drawn",
                        id=item.command.request_id,
                    ),
                )
                continue
            tenant = item.tenant
            seq = tenant.requests
            if item.command.seq is not None and item.command.seq != seq:
                # Raced: another connection of this tenant consumed the
                # sequence first.  Re-sending either replays (seq now in
                # the past) or lands fresh — the client converges.
                self._resolve(
                    item,
                    error_response(
                        f"seq {item.command.seq} raced: tenant "
                        f"{tenant.name!r} is now at sequence {seq}; re-send",
                        id=item.command.request_id, retriable=True,
                    ),
                )
                continue
            label = (
                f"{tenant.name}: {item.plan.mechanism.name} "
                f"release ({item.command.counts.shape[0]} counts)"
            )
            if tenant.ledger is not None:
                try:
                    tenant.ledger.charge(
                        seq,
                        alpha=float(item.command.alpha),
                        size=int(item.command.counts.shape[0]),
                        label=label,
                        crc=chunk_crc(item.command.counts),
                        extra={
                            "n": int(item.command.n),
                            "properties": item.command.properties,
                        },
                        sync=False,
                    )
                except BudgetExceededError as error:
                    try:
                        tenant.ledger.record_refusal(seq, label=label, sync=False)
                    except OSError as append_error:
                        self.stats.ledger_errors += 1
                        self._resolve(
                            item,
                            error_response(
                                f"tenant ledger append failed: {append_error}",
                                id=item.command.request_id, retriable=True,
                            ),
                        )
                        continue
                    except _faults.InjectedCrash:
                        self._hard_exit()
                    touched[id(tenant.ledger)] = tenant.ledger
                    tenant.next_substream()  # the refusal consumes its spawn
                    tenant.refusals += 1
                    self.stats.budget_refusals += 1
                    self._resolve(
                        item,
                        refusal_response(
                            str(error), id=item.command.request_id, seq=seq
                        ),
                    )
                    continue
                except OSError as error:
                    # The charge never reached the log: nothing durable,
                    # nothing consumed — a retry lands on this same seq.
                    self.stats.ledger_errors += 1
                    self._resolve(
                        item,
                        error_response(
                            f"tenant ledger append failed: {error}",
                            id=item.command.request_id, retriable=True,
                        ),
                    )
                    continue
                except _faults.InjectedCrash:
                    # Torn tenant-ledger append: the half-record is on disk
                    # and the process is "dead" — exit as hard as a crash
                    # would, leaving the torn tail for restart recovery.
                    self._hard_exit()
                touched[id(tenant.ledger)] = tenant.ledger
            else:
                try:
                    item.plan.charge(tenant.accountant, label=label)
                except BudgetExceededError as error:
                    tenant.next_substream()  # the refusal consumes its spawn
                    tenant.refusals += 1
                    self.stats.budget_refusals += 1
                    self._resolve(
                        item,
                        refusal_response(
                            str(error), id=item.command.request_id
                        ),
                    )
                    continue
            item.seq = seq
            item.child = tenant.next_substream()
            survivors.append(item)

        # Group-commit barrier: every buffered charge/refusal must be
        # durable before any *response* leaves the process.  The store
        # copies the batch's record bytes into its commit log (one file
        # regardless of how many tenants the batch touched); the single
        # device flush runs after sampling, still strictly before any
        # response reaches a socket — resolved futures cannot write until
        # this (synchronous) method returns to the event loop.  A store
        # that cannot commit can no longer promise
        # durability-before-release; crash now (crash-only design) so
        # restart recovery re-derives a consistent state from disk and
        # clients converge via seq replay.
        descriptor = None
        if touched:
            try:
                descriptor = self._store.stage_commit(touched.values())
            except OSError:  # pragma: no cover - disk-level write failure
                os._exit(2)

        groups: "OrderedDict[str, List[_PendingRequest]]" = OrderedDict()
        for item in survivors:
            groups.setdefault(item.key, []).append(item)
        for items in groups.values():
            self._serve_group(items)

        if descriptor is not None:
            try:
                _datasync(descriptor)
            except OSError:  # pragma: no cover - disk-level sync failure
                os._exit(2)

        injector = _faults.get_injector()
        if injector.should_kill_daemon(self.stats.batches):
            # The batch's charges are durably on disk and its samples are
            # drawn, but no response has reached any client: every request
            # of this batch dies in the charged-but-not-done window.
            self._hard_exit()

    def _serve_group(self, items: List[_PendingRequest]) -> None:
        """One merged draw for every same-plan request in a flush.

        Each request's uniforms come from its own substream generator —
        exactly the uniforms per-request serving would draw — so the
        concatenated ``sample_with_uniforms`` call (elementwise in
        ``(count, uniform)`` pairs for every representation) releases
        bit-identical counts to serving the requests one at a time.
        """
        plan = items[0].plan
        try:
            uniforms = [
                np.random.default_rng(item.child).random(
                    item.command.counts.shape[0]
                )
                for item in items
            ]
            merged = plan.execute_with_uniforms(
                np.concatenate([item.command.counts for item in items]),
                np.concatenate(uniforms),
            )
        except Exception as error:  # pragma: no cover - defensive: keep serving
            for item in items:
                self._resolve(
                    item,
                    error_response(
                        f"internal error while sampling: {error}",
                        id=item.command.request_id,
                    ),
                )
            return
        offset = 0
        for item in items:
            size = item.command.counts.shape[0]
            released = merged[offset : offset + size]
            offset += size
            item.tenant.records += size
            self.stats.records += size
            response = ok_response(
                id=item.command.request_id,
                released=[int(value) for value in released],
                mechanism=plan.mechanism.name,
                branch=plan.branch,
                alpha=item.command.alpha,
                coalesced=len(items),
            )
            on_written: _OnWritten = None
            if item.tenant.ledger is not None and item.seq is not None:
                response["seq"] = item.seq
                on_written = self._done_callback(
                    item.tenant.ledger, item.seq, size
                )
            self._resolve(item, response, on_written)

    @staticmethod
    def _resolve(
        item: _PendingRequest, response: dict, on_written: _OnWritten = None
    ) -> None:
        if not item.future.done():
            item.future.set_result((response, on_written))

    # ------------------------------------------------------------------ #
    # Connections
    # ------------------------------------------------------------------ #
    async def _drain_response(self, writer: asyncio.StreamWriter) -> None:
        """One response write's drain, bounded by ``client_timeout``.

        The injected ``client_stall`` fault sleeps here — inside the timed
        region — standing in for a peer that stopped reading (a real stall
        parks ``drain()`` on the transport's high-water mark instead).
        """
        injector = _faults.get_injector()

        async def _drain() -> None:
            if injector.should_stall_client():
                await asyncio.sleep(injector.hang_seconds)
            await writer.drain()

        if self.client_timeout is None:
            await _drain()
        else:
            await asyncio.wait_for(_drain(), timeout=self.client_timeout)

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections += 1
        tenant: Optional[TenantSession] = None
        try:
            while True:
                try:
                    line = await read_message_line(reader, self.max_line_bytes)
                except LineTooLongError as error:
                    # Framing is untrustworthy past an overlong line:
                    # answer once, then close instead of resyncing.
                    self.stats.protocol_errors += 1
                    writer.write(encode_message(error_response(str(error))))
                    try:
                        await writer.drain()
                    except (ConnectionError, OSError):
                        pass
                    break
                if not line:
                    break
                closing = False
                message: Any = None
                on_written: _OnWritten = None
                try:
                    message = decode_message(line)
                    op = message.get("op", "release")
                    if op == "hello":
                        tenant = self._hello(message)
                        response = ok_response(
                            tenant=tenant.name,
                            budget_alpha=(
                                None
                                if tenant.accountant is None
                                else tenant.accountant.alpha_target
                            ),
                            budget=budget_payload(
                                tenant.accountant, tenant.refusals
                            ),
                            next_seq=tenant.requests,
                            durable=tenant.ledger is not None,
                        )
                    elif op == "release":
                        if self._closing:
                            raise ProtocolError("daemon is shutting down")
                        if tenant is None:
                            raise ProtocolError("send 'hello' before 'release'")
                        command = parse_release(message)
                        self._inflight += 1
                        try:
                            response, on_written = await self._admit(
                                tenant, command
                            )
                        finally:
                            self._inflight -= 1
                    elif op == "stats":
                        response = ok_response(
                            stats=self.stats_payload(),
                            tenant=None if tenant is None else tenant.payload(),
                        )
                    elif op == "health":
                        response = ok_response(health=self.health_payload())
                    elif op == "drain":
                        response = ok_response(
                            message="draining", stats=self.stats_payload()
                        )
                        closing = True
                    elif op == "shutdown":
                        response = ok_response(message="shutting down")
                        closing = True
                    elif op in ("quit", "bye"):
                        response = ok_response(message="bye")
                        closing = True
                    else:
                        raise ProtocolError(f"unknown op {op!r}")
                except ProtocolError as error:
                    self.stats.protocol_errors += 1
                    request_id = (
                        message.get("id") if isinstance(message, dict) else None
                    )
                    response = error_response(str(error), id=request_id)
                writer.write(encode_message(response))
                try:
                    await self._drain_response(writer)
                except asyncio.TimeoutError:
                    # Slow-client protection: this peer stopped reading.
                    # Abort its transport; the batcher, the other tenants
                    # and this request's durable charge are unaffected
                    # (the skipped done-mark only means one replay).
                    self.stats.clients_reaped += 1
                    transport = writer.transport
                    if transport is not None:
                        transport.abort()
                    break
                if on_written is not None:
                    on_written()
                if closing:
                    if message.get("op") in ("shutdown", "drain"):
                        asyncio.get_running_loop().create_task(self.stop())
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._connections -= 1
            # A connection that died mid-batch changed the every-connection-
            # has-a-request-waiting arithmetic: re-check, or the survivors
            # would idle out the full window for a peer that is gone.
            if self._pending and len(self._pending) >= self._connections:
                self._maybe_flush()
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def health_payload(self) -> Dict[str, Any]:
        """The ``health`` op's answer: liveness, load, durability state."""
        extras: Dict[str, Any] = {
            "overloaded": self.stats.overloaded,
            "clients_reaped": self.stats.clients_reaped,
            "replays": self.stats.replays,
            "ledger_errors": self.stats.ledger_errors,
        }
        if self._store is not None:
            extras["recovered_tenants"] = len(self._store.recovered)
            extras["quarantined_tenants"] = len(self._store.quarantined)
            extras["config_rejected_tenants"] = len(self._store.config_rejected)
        return health_payload(
            draining=self._closing,
            pending=len(self._pending),
            inflight=self._inflight,
            connections=self._connections,
            tenants=len(self._tenants),
            durable=self._store is not None,
            **extras,
        )

    def stats_payload(self) -> Dict[str, Any]:
        """The daemon-wide stats object (``--stats-json`` schema)."""
        return stats_payload(
            "serve",
            records=self.stats.records,
            requests=self.stats.requests,
            batches=self.stats.batches,
            coalesced_requests=self.stats.coalesced_requests,
            max_batch=self.stats.max_batch,
            tenants=len(self._tenants),
            protocol_errors=self.stats.protocol_errors,
            batch_window_ms=round(self.batch_window * 1000.0, 3),
            overloaded=self.stats.overloaded,
            deadline_expired=self.stats.deadline_expired,
            clients_reaped=self.stats.clients_reaped,
            replays=self.stats.replays,
            ledger_errors=self.stats.ledger_errors,
            durable=self._store is not None,
            cache=self.cache.stats(),
            accountant=None,
            budget_refusals=self.stats.budget_refusals,
            lp_solves=solve_call_count() - self._solves_at_start,
            plans_compiled=self._plans_compiled,
            densifications=Mechanism.densifications - self._densifications_at_start,
        )

    def describe(self) -> str:
        """One-line human summary (the CLI prints it on shutdown)."""
        cache = self.cache.stats()
        line = (
            f"requests={self.stats.requests} records={self.stats.records} "
            f"batches={self.stats.batches} "
            f"coalesced={self.stats.coalesced_requests} "
            f"max_batch={self.stats.max_batch} tenants={len(self._tenants)} "
            f"budget_refusals={self.stats.budget_refusals} "
            f"overloaded={self.stats.overloaded} "
            f"replays={self.stats.replays} "
            f"cache_hits={cache.hits} plans_compiled={self._plans_compiled}"
        )
        if self._store is not None:
            line += f" {self._store.describe()}"
        return line
