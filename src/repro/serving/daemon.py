"""Long-lived multi-tenant serving daemon with cross-tenant request coalescing.

Every CLI invocation of ``serve-batch``/``serve-stream`` pays process
startup and plan compilation before releasing a single count.  The daemon
amortises both across a process lifetime — and across *tenants*:

* **Per-tenant sessions.**  Each tenant (bound by the ``hello`` op) owns a
  :class:`~repro.privacy.PrivacyAccountant` (budget isolation: one tenant
  exhausting its budget never affects another) and a substream root from
  :func:`~repro.serving.protocol.tenant_seed_sequence`.  Request ``k`` of a
  tenant always samples from the ``k``-th spawn of that root, regardless of
  how requests are batched — the worker-invariance discipline of
  :meth:`~repro.engine.executor.StreamExecutor.stream_seeded` applied to
  tenants instead of chunks.

* **One shared plans-LRU.**  A single :class:`~repro.serving.cache
  .DesignCache` (thread-safe since this PR) plus one compiled
  :class:`~repro.engine.plan.ReleasePlan` per distinct ``(n, alpha,
  properties)`` serve *all* tenants: the second tenant to request a design
  never compiles, let alone solves, anything.

* **Coalescing batcher.**  In-flight requests are collected for a short
  window (``batch_window_ms``, default 2 ms) and same-plan requests from
  different tenants merge into **one** vectorised draw.  Identity is
  preserved exactly: each request's uniforms are drawn from its *own*
  substream generator, concatenated, and pushed through a single
  :meth:`~repro.engine.plan.ReleasePlan.execute_with_uniforms` call — the
  samplers are elementwise in ``(count, uniform)`` pairs, so the merged
  batch is bit-identical to serving each request alone (``batch_window_ms
  = 0``).  The window is a *cap*: a batch flushes early when every open
  connection has a request waiting (closed-loop traffic never idles the
  window out) or when ``max_batch`` requests are pending.

* **Budget shedding.**  Each batched request is charged against its
  tenant's accountant *before* any sampling, in arrival order.  An
  over-budget request is shed from the batch with a code-1 refusal —
  consuming zero uniforms from its substream — while the rest of the batch
  proceeds untouched.  Charges against distinct tenants' accountants
  commute, so batching order cannot change any tenant's spend.

* **Graceful shutdown.**  ``stop()`` (or the ``shutdown`` op, or SIGTERM
  via the CLI) stops accepting connections, flushes the in-flight batch so
  every admitted request is answered, then closes.

See ``docs/architecture.md`` (serving-daemon section) for the lifecycle
diagram and ``benchmarks/test_bench_daemon.py`` for the throughput/p99
harness.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

import numpy as np

from repro.core.mechanism import Mechanism
from repro.engine.plan import ReleasePlan
from repro.lp.solver import DEFAULT_BACKEND, solve_call_count
from repro.privacy import BudgetExceededError, PrivacyAccountant
from repro.serving.cache import DesignCache, design_key
from repro.serving.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    ReleaseCommand,
    decode_message,
    encode_message,
    error_response,
    ok_response,
    parse_release,
    refusal_response,
    tenant_seed_sequence,
)
from repro.serving.stats import budget_payload, stats_payload

#: Default coalescing window in milliseconds.
DEFAULT_BATCH_WINDOW_MS = 2.0

#: Default cap on requests merged into one flush.
DEFAULT_MAX_BATCH = 256

#: Default cap on distinct tenant sessions.
DEFAULT_MAX_TENANTS = 64


class TenantSession:
    """One tenant's serving state: accountant, substream root, counters."""

    def __init__(
        self,
        name: str,
        root: np.random.SeedSequence,
        accountant: Optional[PrivacyAccountant],
        seed: Optional[int] = None,
        budget_alpha: Optional[float] = None,
    ) -> None:
        self.name = name
        self.root = root
        self.accountant = accountant
        self.seed = seed
        self.budget_alpha = budget_alpha
        self.requests = 0
        self.records = 0
        self.refusals = 0

    def next_substream(self) -> np.random.SeedSequence:
        """The substream of this tenant's next admitted request.

        Spawned in admission order, so request ``k`` is always the ``k``-th
        spawn — whether it is later served alone, coalesced with other
        tenants, or shed over budget (a shed request consumes its spawn but
        zero uniforms, exactly as in per-request serving).
        """
        self.requests += 1
        return self.root.spawn(1)[0]

    def payload(self) -> Dict[str, Any]:
        """This tenant's slice of the ``stats`` response."""
        return {
            "tenant": self.name,
            "requests": self.requests,
            "records": self.records,
            "budget": budget_payload(self.accountant, self.refusals),
        }


@dataclass
class _PendingRequest:
    """One admitted release waiting in the batcher."""

    tenant: TenantSession
    key: str
    plan: ReleasePlan
    command: ReleaseCommand
    child: np.random.SeedSequence
    future: "asyncio.Future[dict]"


@dataclass
class DaemonStats:
    """Process-wide serving totals (see :meth:`ServingDaemon.stats_payload`)."""

    requests: int = 0
    records: int = 0
    #: Batcher flushes (each is one merged draw per distinct plan present).
    batches: int = 0
    #: Requests that were served in a flush of more than one request.
    coalesced_requests: int = 0
    max_batch: int = 0
    budget_refusals: int = 0
    protocol_errors: int = 0


class ServingDaemon:
    """The asyncio front-end over the engine (``repro-mechanisms serve``).

    Parameters
    ----------
    batch_window_ms:
        Coalescing window: how long the batcher may hold the first pending
        request while waiting for more.  ``0`` disables coalescing (each
        request is served the moment it arrives — the per-request baseline
        the benchmark compares against).  Outputs are bit-identical either
        way.
    max_batch:
        Flush immediately once this many requests are pending.
    max_tenants:
        Refuse ``hello`` for new tenants beyond this many sessions.
    budget_alpha:
        Default per-tenant budget: every new tenant gets a fresh
        :class:`~repro.privacy.PrivacyAccountant` with this target unless
        its ``hello`` overrides it.  ``None`` = unmetered tenants.
    seed:
        Server seed for :func:`~repro.serving.protocol.tenant_seed_sequence`
        — fixes every tenant's substream root (absent per-tenant seeds) so
        whole serving runs are reproducible.
    cache / cache_dir / cache_size / backend:
        The shared :class:`~repro.serving.cache.DesignCache` (or the
        parameters to build one) and the LP backend for cold designs.
    """

    def __init__(
        self,
        batch_window_ms: float = DEFAULT_BATCH_WINDOW_MS,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_tenants: int = DEFAULT_MAX_TENANTS,
        budget_alpha: Optional[float] = None,
        seed: Optional[int] = None,
        cache: Optional[DesignCache] = None,
        cache_dir: Optional[Union[str, Path]] = None,
        cache_size: int = 128,
        backend: str = DEFAULT_BACKEND,
    ) -> None:
        if batch_window_ms < 0:
            raise ValueError("batch_window_ms must be non-negative")
        if int(max_batch) != max_batch or max_batch < 1:
            raise ValueError("max_batch must be a positive integer")
        if int(max_tenants) != max_tenants or max_tenants < 1:
            raise ValueError("max_tenants must be a positive integer")
        self.batch_window = float(batch_window_ms) / 1000.0
        self.max_batch = int(max_batch)
        self.max_tenants = int(max_tenants)
        self.budget_alpha = budget_alpha
        self.seed = seed
        self.backend = backend
        self.cache = (
            cache
            if cache is not None
            else DesignCache(capacity=cache_size, directory=cache_dir)
        )
        self.stats = DaemonStats()
        self._tenants: Dict[str, TenantSession] = {}
        #: Shared compiled plans, LRU-bounded by the cache capacity (the
        #: same knob that bounds the design cache itself).
        self._plans: "OrderedDict[str, ReleasePlan]" = OrderedDict()
        self._plans_compiled = 0
        self._pending: List[_PendingRequest] = []
        self._flush_handle: Optional[asyncio.TimerHandle] = None
        self._connections = 0
        self._inflight = 0
        self._closing = False
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopped = asyncio.Event()
        self._solves_at_start = solve_call_count()
        self._densifications_at_start = Mechanism.densifications
        self.address: Optional[str] = None
        self.port: Optional[int] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(
        self,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        unix_path: Optional[Union[str, Path]] = None,
    ) -> None:
        """Bind the listening socket (unix when ``unix_path``, else TCP)."""
        if self._server is not None:
            raise RuntimeError("daemon already started")
        if unix_path is not None:
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=str(unix_path), limit=MAX_LINE_BYTES
            )
            self.address = str(unix_path)
        else:
            self._server = await asyncio.start_server(
                self._handle_connection,
                host=host,
                port=0 if port is None else int(port),
                limit=MAX_LINE_BYTES,
            )
            name = self._server.sockets[0].getsockname()
            self.address = f"{name[0]}:{name[1]}"
            self.port = int(name[1])

    async def stop(self) -> None:
        """Graceful shutdown: flush in-flight batches, answer, then close."""
        if self._closing:
            await self._stopped.wait()
            return
        self._closing = True
        if self._server is not None:
            self._server.close()
        # Flush whatever the batcher is holding so every admitted request
        # is answered, then give the connection handlers a chance to write
        # the resolved responses out before the loop is torn down.
        self._flush()
        for _ in range(400):
            if self._inflight == 0:
                break
            await asyncio.sleep(0.005)
        if self._server is not None:
            await self._server.wait_closed()
        self._stopped.set()

    async def wait_closed(self) -> None:
        """Block until :meth:`stop` has completed."""
        await self._stopped.wait()

    # ------------------------------------------------------------------ #
    # Tenants and plans
    # ------------------------------------------------------------------ #
    def _hello(self, message: dict) -> TenantSession:
        name = message.get("tenant")
        if not isinstance(name, str) or not name:
            raise ProtocolError("hello requires a non-empty 'tenant' string")
        seed = message.get("seed")
        budget = message.get("budget_alpha")
        existing = self._tenants.get(name)
        if existing is not None:
            # Reconnecting resumes the session; conflicting parameters
            # would silently fork the tenant's stream or budget, so refuse.
            if seed is not None and seed != existing.seed:
                raise ProtocolError(
                    f"tenant {name!r} already exists with a different seed"
                )
            if budget is not None and budget != existing.budget_alpha:
                raise ProtocolError(
                    f"tenant {name!r} already exists with a different budget_alpha"
                )
            return existing
        if len(self._tenants) >= self.max_tenants:
            raise ProtocolError(
                f"tenant limit reached ({self.max_tenants}); "
                "raise --max-tenants or retire a session"
            )
        effective_budget = self.budget_alpha if budget is None else float(budget)
        accountant = (
            PrivacyAccountant(alpha_target=float(effective_budget))
            if effective_budget is not None
            else None
        )
        root = tenant_seed_sequence(
            name,
            server_seed=self.seed,
            tenant_seed=None if seed is None else int(seed),
        )
        session = TenantSession(
            name,
            root,
            accountant,
            seed=None if seed is None else int(seed),
            budget_alpha=None if budget is None else float(budget),
        )
        self._tenants[name] = session
        return session

    def _plan_for(self, command: ReleaseCommand) -> ReleasePlan:
        """The shared compiled plan for a design request (one per key).

        Compilation (and any LP solve, through the shared cache) happens
        once per distinct ``(n, alpha, properties)`` across *all* tenants;
        repeat traffic from any tenant reuses the same prepared plan
        instance and its warmed sampling state.
        """
        try:
            key = design_key(
                command.n, command.alpha, command.properties, None, self.backend
            )
        except ValueError as error:  # unknown property code
            raise ProtocolError(str(error)) from error
        plan = self._plans.get(key)
        if plan is None:
            try:
                mechanism, decision = self.cache.get_or_design(
                    command.n,
                    command.alpha,
                    properties=command.properties,
                    backend=self.backend,
                )
            except ValueError as error:
                raise ProtocolError(str(error)) from error
            plan = ReleasePlan(
                mechanism,
                decision=decision,
                alpha_cost=float(command.alpha),
                key=key,
            )
            self._plans[key] = plan
            self._plans_compiled += 1
        self._plans.move_to_end(key)
        while len(self._plans) > self.cache.capacity:
            self._plans.popitem(last=False)
        return plan

    # ------------------------------------------------------------------ #
    # The coalescing batcher
    # ------------------------------------------------------------------ #
    async def _admit(self, tenant: TenantSession, command: ReleaseCommand) -> dict:
        """Queue one validated release and await its response.

        The tenant's substream spawn happens here, in admission order, so
        batching can never permute a tenant's per-request substreams.
        """
        plan = self._plan_for(command)  # ProtocolError propagates to the handler
        child = tenant.next_substream()
        self.stats.requests += 1
        future: "asyncio.Future[dict]" = asyncio.get_running_loop().create_future()
        self._pending.append(
            _PendingRequest(
                tenant=tenant, key=plan.key, plan=plan,
                command=command, child=child, future=future,
            )
        )
        self._maybe_flush()
        return await future

    def _maybe_flush(self) -> None:
        """Flush now, or arm the window timer for the first pending request.

        Immediate flush when coalescing is off, the batch is full, the
        daemon is closing, or every open connection already has a request
        waiting (the protocol allows one in-flight request per connection,
        so no further request can arrive before a response goes out —
        waiting the window out would be pure added latency).
        """
        if (
            self.batch_window <= 0.0
            or self._closing
            or len(self._pending) >= self.max_batch
            or len(self._pending) >= self._connections
        ):
            self._flush()
            return
        if self._flush_handle is None:
            self._flush_handle = asyncio.get_running_loop().call_later(
                self.batch_window, self._flush
            )

    def _flush(self) -> None:
        """Serve everything pending: charge per request, merge per plan, draw once.

        Phase 1 charges every request against its tenant's accountant in
        admission order — all charging strictly precedes all sampling, and
        a refused request is shed with a code-1 response having consumed
        zero uniforms.  Phase 2 groups the survivors by plan, draws each
        request's uniforms from its own substream, and answers every group
        with a single merged ``execute_with_uniforms`` call, scattering the
        released slices back to the per-request futures.
        """
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None
        batch, self._pending = self._pending, []
        if not batch:
            return
        self.stats.batches += 1
        self.stats.max_batch = max(self.stats.max_batch, len(batch))
        if len(batch) > 1:
            self.stats.coalesced_requests += len(batch)

        survivors: List[_PendingRequest] = []
        for item in batch:
            try:
                item.plan.charge(
                    item.tenant.accountant,
                    label=(
                        f"{item.tenant.name}: {item.plan.mechanism.name} "
                        f"release ({item.command.counts.shape[0]} counts)"
                    ),
                )
            except BudgetExceededError as error:
                item.tenant.refusals += 1
                self.stats.budget_refusals += 1
                self._resolve(
                    item, refusal_response(str(error), id=item.command.request_id)
                )
                continue
            survivors.append(item)

        groups: "OrderedDict[str, List[_PendingRequest]]" = OrderedDict()
        for item in survivors:
            groups.setdefault(item.key, []).append(item)
        for items in groups.values():
            self._serve_group(items)

    def _serve_group(self, items: List[_PendingRequest]) -> None:
        """One merged draw for every same-plan request in a flush.

        Each request's uniforms come from its own substream generator —
        exactly the uniforms per-request serving would draw — so the
        concatenated ``sample_with_uniforms`` call (elementwise in
        ``(count, uniform)`` pairs for every representation) releases
        bit-identical counts to serving the requests one at a time.
        """
        plan = items[0].plan
        try:
            uniforms = [
                np.random.default_rng(item.child).random(
                    item.command.counts.shape[0]
                )
                for item in items
            ]
            merged = plan.execute_with_uniforms(
                np.concatenate([item.command.counts for item in items]),
                np.concatenate(uniforms),
            )
        except Exception as error:  # pragma: no cover - defensive: keep serving
            for item in items:
                self._resolve(
                    item,
                    error_response(
                        f"internal error while sampling: {error}",
                        id=item.command.request_id,
                    ),
                )
            return
        offset = 0
        for item in items:
            size = item.command.counts.shape[0]
            released = merged[offset : offset + size]
            offset += size
            item.tenant.records += size
            self.stats.records += size
            self._resolve(
                item,
                ok_response(
                    id=item.command.request_id,
                    released=[int(value) for value in released],
                    mechanism=plan.mechanism.name,
                    branch=plan.branch,
                    alpha=item.command.alpha,
                    coalesced=len(items),
                ),
            )

    @staticmethod
    def _resolve(item: _PendingRequest, response: dict) -> None:
        if not item.future.done():
            item.future.set_result(response)

    # ------------------------------------------------------------------ #
    # Connections
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections += 1
        tenant: Optional[TenantSession] = None
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                closing = False
                message: Any = None
                try:
                    message = decode_message(line)
                    op = message.get("op", "release")
                    if op == "hello":
                        tenant = self._hello(message)
                        response = ok_response(
                            tenant=tenant.name,
                            budget_alpha=(
                                None
                                if tenant.accountant is None
                                else tenant.accountant.alpha_target
                            ),
                        )
                    elif op == "release":
                        if self._closing:
                            raise ProtocolError("daemon is shutting down")
                        if tenant is None:
                            raise ProtocolError("send 'hello' before 'release'")
                        command = parse_release(message)
                        self._inflight += 1
                        try:
                            response = await self._admit(tenant, command)
                        finally:
                            self._inflight -= 1
                    elif op == "stats":
                        response = ok_response(
                            stats=self.stats_payload(),
                            tenant=None if tenant is None else tenant.payload(),
                        )
                    elif op == "shutdown":
                        response = ok_response(message="shutting down")
                        closing = True
                    elif op in ("quit", "bye"):
                        response = ok_response(message="bye")
                        closing = True
                    else:
                        raise ProtocolError(f"unknown op {op!r}")
                except ProtocolError as error:
                    self.stats.protocol_errors += 1
                    request_id = (
                        message.get("id") if isinstance(message, dict) else None
                    )
                    response = error_response(str(error), id=request_id)
                writer.write(encode_message(response))
                await writer.drain()
                if closing:
                    if message.get("op") == "shutdown":
                        asyncio.get_running_loop().create_task(self.stop())
                    break
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        finally:
            self._connections -= 1
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def stats_payload(self) -> Dict[str, Any]:
        """The daemon-wide stats object (``--stats-json`` schema)."""
        return stats_payload(
            "serve",
            records=self.stats.records,
            requests=self.stats.requests,
            batches=self.stats.batches,
            coalesced_requests=self.stats.coalesced_requests,
            max_batch=self.stats.max_batch,
            tenants=len(self._tenants),
            protocol_errors=self.stats.protocol_errors,
            batch_window_ms=round(self.batch_window * 1000.0, 3),
            cache=self.cache.stats(),
            accountant=None,
            budget_refusals=self.stats.budget_refusals,
            lp_solves=solve_call_count() - self._solves_at_start,
            plans_compiled=self._plans_compiled,
            densifications=Mechanism.densifications - self._densifications_at_start,
        )

    def describe(self) -> str:
        """One-line human summary (the CLI prints it on shutdown)."""
        cache = self.cache.stats()
        return (
            f"requests={self.stats.requests} records={self.stats.records} "
            f"batches={self.stats.batches} "
            f"coalesced={self.stats.coalesced_requests} "
            f"max_batch={self.stats.max_batch} tenants={len(self._tenants)} "
            f"budget_refusals={self.stats.budget_refusals} "
            f"cache_hits={cache.hits} plans_compiled={self._plans_compiled}"
        )
