"""The persistent plan registry: one sqlite artifact instead of loose JSON.

:class:`~repro.serving.cache.DesignCache`'s disk tier began life as a
directory of ``design-*.json`` blobs — fine for a single writer mirroring a
handful of designs, but never designed as the serving daemon's backing
store.  :class:`PlanRegistry` promotes that tier into a real artifact
store: a single WAL-mode sqlite file that is

* **safe for concurrent multi-process readers and a writer** — WAL mode
  lets readers proceed during a write, a busy timeout absorbs writer
  contention, and every store is one atomic transaction (a killed writer
  can never expose half a row);
* **self-verifying** — every row carries a SHA-256 checksum of its
  payload, and a row that fails the checksum, fails to parse, or carries
  the wrong key is *deleted and treated as a miss*, exactly matching the
  corrupt-file→miss→re-solve semantics of the old disk tier;
* **versioned** — the schema version is pinned in a ``meta`` table; a
  registry written by a future incompatible version is refused loudly
  (:class:`RegistryVersionError`) instead of being misread;
* **indexed for warm-starting** — rows are keyed by the canonical design
  key but also indexed on ``(n, props, objective, backend, alpha)`` so a
  cold ``(n, alpha)`` miss can find its nearest cached neighbour on the
  alpha axis and warm-start the simplex from that neighbour's optimal
  basis (see :mod:`repro.lp.simplex`).

Legacy ``design-*.json`` files found next to the sqlite file are imported
once, on first open (the loose files are left untouched), so existing
``--cache-dir`` state directories keep working unchanged.

Fault injection: stores honour the same :mod:`repro.engine.faults` sites
as the old disk tier — ``io_error:`` at site ``cache_store`` raises
``OSError`` (the caller counts it and keeps serving from memory) and
``torn_cache`` simulates a crash mid-transaction: the pending row is
rolled back and :class:`~repro.engine.faults.InjectedCrash` unwinds, so a
restarted process sees a clean miss, never a partial row.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import threading
import time
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Tuple, Union

#: Current schema version; bump on incompatible schema changes.
SCHEMA_VERSION = 1

#: Filename of the registry artifact inside a cache directory.
REGISTRY_FILENAME = "registry.sqlite"

#: How many nearest-neighbour candidate rows to inspect before giving up
#: (a corrupt candidate is deleted and the next one tried).
_NEIGHBOUR_CANDIDATES = 4


class RegistryError(RuntimeError):
    """Base class for registry failures."""


class RegistryVersionError(RegistryError):
    """The sqlite file was written by an incompatible schema version."""


def _checksum(payload: str) -> str:
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class PlanRegistry:
    """A WAL-mode sqlite store of compiled design-cache entries.

    Parameters
    ----------
    directory:
        Directory holding (or to hold) the ``registry.sqlite`` artifact.
        Created on first use.  Legacy ``design-*.json`` files in it are
        imported on first open.

    Notes
    -----
    One connection per instance, guarded by a lock so a shared registry
    (the daemon's) is thread-safe; cross-*process* safety comes from
    sqlite's WAL journaling.  All methods that read rows verify the
    payload checksum and key before returning anything, deleting bad rows
    so the caller re-solves and overwrites them.
    """

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)
        self.path = self.directory / REGISTRY_FILENAME
        self._lock = threading.RLock()
        self.corrupt_rows = 0
        self.imported_legacy = 0
        self.directory.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(
            str(self.path), timeout=10.0, check_same_thread=False
        )
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute("PRAGMA busy_timeout=10000")
        self._init_schema()
        self._import_legacy_files()

    # ------------------------------------------------------------------ #
    # Schema
    # ------------------------------------------------------------------ #
    def _init_schema(self) -> None:
        with self._lock, self._conn:
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT)"
            )
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
            if row is not None and int(row[0]) > SCHEMA_VERSION:
                raise RegistryVersionError(
                    f"{self.path}: registry schema version {row[0]} is newer than "
                    f"this build's {SCHEMA_VERSION}; refusing to misread it"
                )
            self._conn.execute(
                """
                CREATE TABLE IF NOT EXISTS plans (
                    key TEXT PRIMARY KEY,
                    n INTEGER NOT NULL,
                    alpha REAL NOT NULL,
                    props TEXT NOT NULL,
                    objective TEXT NOT NULL,
                    backend TEXT NOT NULL,
                    payload TEXT NOT NULL,
                    checksum TEXT NOT NULL,
                    created REAL NOT NULL
                )
                """
            )
            self._conn.execute(
                "CREATE INDEX IF NOT EXISTS idx_plans_point "
                "ON plans (n, props, objective, backend, alpha)"
            )
            if row is None:
                self._conn.execute(
                    "INSERT OR REPLACE INTO meta (key, value) VALUES "
                    "('schema_version', ?)",
                    (str(SCHEMA_VERSION),),
                )

    def _import_legacy_files(self) -> None:
        """One-time import of old loose ``design-*.json`` entries.

        The loose files are read, inserted under their recorded keys (rows
        already present win — the sqlite tier is newer by construction)
        and *left untouched* on disk, so rolling back to an older build
        loses nothing.  Unparseable or truncated legacy files are skipped:
        they were already misses under the old tier's semantics.
        """
        with self._lock:
            done = self._conn.execute(
                "SELECT value FROM meta WHERE key = 'legacy_import_done'"
            ).fetchone()
            if done is not None:
                return
            imported = 0
            for path in sorted(self.directory.glob("design-*.json")):
                try:
                    payload = json.loads(path.read_text())
                except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                    continue
                if not isinstance(payload, dict) or "key" not in payload:
                    continue
                if "mechanism" not in payload or "decision" not in payload:
                    continue
                key = str(payload["key"])
                fields = parse_design_key(key)
                if fields is None:
                    continue
                try:
                    self._insert(key, payload, fields, replace=False)
                    imported += 1
                except sqlite3.Error:  # pragma: no cover - best-effort import
                    continue
            with self._conn:
                self._conn.execute(
                    "INSERT OR REPLACE INTO meta (key, value) VALUES "
                    "('legacy_import_done', ?)",
                    (str(int(time.time())),),
                )
            self.imported_legacy = imported

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #
    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored entry for ``key``, or ``None`` (miss).

        A row whose checksum, JSON or recorded key does not verify is
        deleted and reported as a miss — the caller re-solves and
        overwrites it, exactly like a corrupt loose file under the old
        disk tier.
        """
        with self._lock:
            row = self._conn.execute(
                "SELECT payload, checksum FROM plans WHERE key = ?", (key,)
            ).fetchone()
            if row is None:
                return None
            entry = self._verify(key, row[0], row[1])
            if entry is None:
                self._drop_row(key)
            return entry

    def __contains__(self, key: str) -> bool:
        with self._lock:
            row = self._conn.execute(
                "SELECT 1 FROM plans WHERE key = ?", (key,)
            ).fetchone()
            return row is not None

    def __len__(self) -> int:
        with self._lock:
            return int(
                self._conn.execute("SELECT COUNT(*) FROM plans").fetchone()[0]
            )

    def keys(self) -> Iterator[str]:
        with self._lock:
            rows = self._conn.execute("SELECT key FROM plans ORDER BY key").fetchall()
        return iter([row[0] for row in rows])

    def nearest(
        self,
        n: int,
        props: str,
        objective: str,
        backend: str,
        alpha: float,
        exclude_key: Optional[str] = None,
    ) -> Optional[Tuple[float, Dict[str, Any]]]:
        """The cached neighbour closest to ``alpha`` on the same design axis.

        Searches the ``(n, props, objective, backend)`` index for the row
        whose ``alpha`` is nearest the requested one — the candidate whose
        optimal basis the simplex warm-start tries first.  Corrupt
        candidates are deleted and the next-nearest tried.  Returns
        ``(neighbour_alpha, entry)`` or ``None``.
        """
        with self._lock:
            rows = self._conn.execute(
                "SELECT key, alpha, payload, checksum FROM plans "
                "WHERE n = ? AND props = ? AND objective = ? AND backend = ? "
                "AND key != ? ORDER BY ABS(alpha - ?) LIMIT ?",
                (
                    int(n),
                    props,
                    objective,
                    backend,
                    exclude_key or "",
                    float(alpha),
                    _NEIGHBOUR_CANDIDATES,
                ),
            ).fetchall()
            for key, row_alpha, payload, checksum in rows:
                entry = self._verify(key, payload, checksum)
                if entry is None:
                    self._drop_row(key)
                    continue
                return float(row_alpha), entry
        return None

    def _verify(
        self, key: str, payload: str, checksum: str
    ) -> Optional[Dict[str, Any]]:
        if _checksum(payload) != checksum:
            return None
        try:
            entry = json.loads(payload)
        except (json.JSONDecodeError, UnicodeDecodeError):
            return None
        if not isinstance(entry, dict) or entry.get("key") != key:
            return None
        if "mechanism" not in entry or "decision" not in entry:
            return None
        return entry

    def _drop_row(self, key: str) -> None:
        self.corrupt_rows += 1
        try:
            with self._conn:
                self._conn.execute("DELETE FROM plans WHERE key = ?", (key,))
        except sqlite3.Error:  # pragma: no cover - read-only fs etc.
            pass

    # ------------------------------------------------------------------ #
    # Writes
    # ------------------------------------------------------------------ #
    def put(self, key: str, entry: Dict[str, Any]) -> None:
        """Store one entry atomically (insert-or-replace in one transaction).

        Raises ``OSError`` on an injected I/O failure (site
        ``cache_store``) — the caller counts the error and keeps serving —
        and :class:`~repro.engine.faults.InjectedCrash` on ``torn_cache``,
        after rolling the pending row back: the simulated process death
        leaves the registry exactly as it was, which is what a real
        mid-transaction kill leaves after WAL recovery.
        """
        fields = parse_design_key(key)
        if fields is None:
            raise RegistryError(f"cannot parse design key {key!r}")
        from repro.engine import faults as _faults

        injector = _faults.get_injector()
        if injector.io_error("cache_store"):
            raise OSError(f"injected I/O error storing {key!r} in {self.path}")
        with self._lock:
            if injector.torn("cache_store"):
                # Crash mid-write: stage the row in an open transaction and
                # die before COMMIT.  Rolling back models WAL recovery — a
                # restarted process (or any concurrent reader) sees the
                # registry without the half-written row.
                try:
                    self._conn.execute("BEGIN IMMEDIATE")
                    self._insert_row(key, entry, fields)
                finally:
                    self._conn.rollback()
                raise _faults.InjectedCrash(
                    f"torn cache store injected mid-transaction at {self.path}"
                )
            self._insert(key, entry, fields, replace=True)

    def _insert(
        self,
        key: str,
        entry: Dict[str, Any],
        fields: Dict[str, Any],
        replace: bool,
    ) -> None:
        with self._conn:
            if not replace:
                row = self._conn.execute(
                    "SELECT 1 FROM plans WHERE key = ?", (key,)
                ).fetchone()
                if row is not None:
                    return
            self._insert_row(key, entry, fields)

    def _insert_row(self, key: str, entry: Dict[str, Any], fields: Dict[str, Any]) -> None:
        payload = json.dumps(entry)
        self._conn.execute(
            "INSERT OR REPLACE INTO plans "
            "(key, n, alpha, props, objective, backend, payload, checksum, created) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                key,
                int(fields["n"]),
                float(fields["alpha"]),
                fields["props"],
                fields["objective"],
                fields["backend"],
                payload,
                _checksum(payload),
                time.time(),
            ),
        )

    def delete(self, key: str) -> None:
        """Remove one entry (used when a stored payload fails to materialise)."""
        with self._lock:
            try:
                with self._conn:
                    self._conn.execute("DELETE FROM plans WHERE key = ?", (key,))
            except sqlite3.Error:  # pragma: no cover - best-effort cleanup
                pass

    def clear(self) -> None:
        """Drop every stored plan (the ``meta`` table survives)."""
        with self._lock, self._conn:
            self._conn.execute("DELETE FROM plans")

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle
    # ------------------------------------------------------------------ #
    def corrupt_row(self, key: str) -> None:
        """Flip one stored checksum (test helper for corrupt-row recovery)."""
        with self._lock, self._conn:
            self._conn.execute(
                "UPDATE plans SET checksum = 'deadbeef' WHERE key = ?", (key,)
            )

    def describe(self) -> str:
        return (
            f"registry[{self.path.name} entries={len(self)} "
            f"corrupt_rows={self.corrupt_rows} imported={self.imported_legacy}]"
        )

    def close(self) -> None:
        with self._lock:
            try:
                self._conn.close()
            except sqlite3.Error:  # pragma: no cover
                pass

    def __enter__(self) -> "PlanRegistry":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def parse_design_key(key: str) -> Optional[Dict[str, Any]]:
    """Split a canonical design key into its indexed registry columns.

    The key format is owned by :func:`repro.serving.cache.design_key`:
    ``n=..|alpha=..|props=..|obj=..|backend=..``.  Returns ``None`` for a
    key that does not parse (such entries cannot be indexed, so they are
    not stored).
    """
    fields: Dict[str, str] = {}
    for part in key.split("|"):
        name, sep, value = part.partition("=")
        if not sep:
            return None
        fields[name] = value
    try:
        return {
            "n": int(fields["n"]),
            "alpha": float(fields["alpha"]),
            "props": fields["props"],
            "objective": fields["obj"],
            "backend": fields["backend"],
        }
    except (KeyError, ValueError):
        return None
