"""One machine-readable statistics schema for every serving surface.

``serve-batch --stats-json``, ``serve-stream --stats-json`` and the
daemon's ``{"op": "stats"}`` response all emit the same JSON object shape,
so dashboards and the CI smoke checks parse one schema regardless of which
front-end served the traffic:

.. code-block:: json

    {
      "command": "serve-stream",
      "records": 100000,
      "chunks": 13,
      "budget": {"alpha_target": 0.5, "alpha_spent": 0.81,
                 "alpha_remaining": 0.617, "releases": 2,
                 "budget_refusals": 0},
      "cache": {"hits": 0, "misses": 1, "hit_rate": 0.0, "disk_hits": 0,
                "evictions": 0, "size": 1, "disk_errors": 0},
      "lp_solves": 0,
      "plans_compiled": 1,
      "densifications": 0
    }

``budget`` fields are ``null`` on unmetered sessions (except
``budget_refusals``, which is always a number); ``cache`` is ``null`` when
no design cache was involved.  Extra per-surface counters (``batches``,
``coalesced_requests``, ``tenants``, ``overloaded``, ``replays`` …) appear
as additional top-level keys — consumers must ignore keys they do not
know.

The daemon's ``{"op": "health"}`` answer uses the sibling
:func:`health_payload` schema — the small, fast object a supervisor polls
between ``drain`` and SIGKILL.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.privacy import PrivacyAccountant
from repro.serving.cache import CacheStats


def cache_payload(stats: Optional[CacheStats]) -> Optional[Dict[str, Any]]:
    """The ``cache`` sub-object from a :class:`~repro.serving.cache.CacheStats`."""
    if stats is None:
        return None
    return {
        "hits": int(stats.hits),
        "misses": int(stats.misses),
        "hit_rate": round(float(stats.hit_rate), 6),
        "disk_hits": int(stats.disk_hits),
        "evictions": int(stats.evictions),
        "size": int(stats.size),
        "disk_errors": int(stats.disk_errors),
    }


def budget_payload(
    accountant: Optional[PrivacyAccountant], budget_refusals: int = 0
) -> Dict[str, Any]:
    """The ``budget`` sub-object; ``null`` fields on unmetered sessions."""
    if accountant is None:
        return {
            "alpha_target": None,
            "alpha_spent": None,
            "alpha_remaining": None,
            "releases": None,
            "budget_refusals": int(budget_refusals),
        }
    return {
        "alpha_target": float(accountant.alpha_target),
        "alpha_spent": float(accountant.spent_alpha()),
        "alpha_remaining": float(accountant.remaining_alpha()),
        "releases": len(accountant.history()),
        "budget_refusals": int(budget_refusals),
    }


def health_payload(
    *,
    draining: bool,
    pending: int,
    inflight: int,
    connections: int,
    tenants: int,
    durable: bool,
    **extras: Any,
) -> Dict[str, Any]:
    """The daemon ``health`` op's answer: cheap liveness/readiness state.

    Deliberately tiny and allocation-light — a supervisor polls it between
    ``drain`` and SIGKILL, and a load balancer may poll it per second.
    ``extras`` lands as additional sorted keys (shed counters, durability
    recovery totals …); consumers must ignore keys they do not know.
    """
    payload: Dict[str, Any] = {
        "status": "draining" if draining else "ok",
        "draining": bool(draining),
        "pending": int(pending),
        "inflight": int(inflight),
        "connections": int(connections),
        "tenants": int(tenants),
        "durable": bool(durable),
    }
    for key in sorted(extras):
        payload[key] = extras[key]
    return payload


def stats_payload(
    command: str,
    *,
    records: int,
    cache: Optional[CacheStats] = None,
    accountant: Optional[PrivacyAccountant] = None,
    budget_refusals: int = 0,
    lp_solves: Optional[int] = None,
    plans_compiled: Optional[int] = None,
    densifications: Optional[int] = None,
    **counters: Any,
) -> Dict[str, Any]:
    """Assemble the shared stats object for one serving surface.

    ``counters`` lands as extra top-level keys (sorted, for stable output);
    pass surface-specific totals such as ``chunks=`` or ``batches=`` there.
    """
    payload: Dict[str, Any] = {"command": command, "records": int(records)}
    for key in sorted(counters):
        payload[key] = counters[key]
    payload["budget"] = budget_payload(accountant, budget_refusals)
    payload["cache"] = cache_payload(cache)
    payload["lp_solves"] = None if lp_solves is None else int(lp_solves)
    payload["plans_compiled"] = (
        None if plans_compiled is None else int(plans_compiled)
    )
    payload["densifications"] = (
        None if densifications is None else int(densifications)
    )
    return payload
