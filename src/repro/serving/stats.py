"""One machine-readable statistics schema for every serving surface.

``serve-batch --stats-json``, ``serve-stream --stats-json`` and the
daemon's ``{"op": "stats"}`` response all emit the same JSON object shape,
so dashboards and the CI smoke checks parse one schema regardless of which
front-end served the traffic:

.. code-block:: json

    {
      "command": "serve-stream",
      "records": 100000,
      "chunks": 13,
      "budget": {"alpha_target": 0.5, "alpha_spent": 0.81,
                 "alpha_remaining": 0.617, "releases": 2,
                 "budget_refusals": 0},
      "cache": {"hits": 0, "misses": 1, "hit_rate": 0.0, "disk_hits": 0,
                "evictions": 0, "size": 1, "disk_errors": 0,
                "warm_attempts": 0, "warm_hits": 0, "warm_fallbacks": 0,
                "corrupt_rows": 0, "imported_legacy": 0,
                "tiers": {"memory": 0, "registry": 0, "solve": 1}},
      "lp_solves": 0,
      "lp_build_seconds": 0.0,
      "lp_solve_seconds": 0.0,
      "plans_compiled": 1,
      "densifications": 0
    }

The ``cache`` sub-object's registry keys: ``warm_attempts`` /
``warm_hits`` / ``warm_fallbacks`` count cold simplex misses that tried a
nearest-neighbour warm start, those whose basis was accepted (phase 1
skipped), and those that fell back to the cold path; ``corrupt_rows``
counts registry rows dropped on checksum/shape failure (each became a
re-solve); ``imported_legacy`` counts loose ``design-*.json`` entries
migrated on first open; ``tiers`` breaks requests down by serving tier
(in-process ``memory``, persistent ``registry``, fresh LP ``solve``).
The top-level ``lp_build_seconds`` / ``lp_solve_seconds`` are cumulative
process-wide LP wall-times from :func:`repro.core.design.lp_timing_totals`.

``budget`` fields are ``null`` on unmetered sessions (except
``budget_refusals``, which is always a number); ``cache`` is ``null`` when
no design cache was involved.  Extra per-surface counters (``batches``,
``coalesced_requests``, ``tenants``, ``overloaded``, ``replays`` …) appear
as additional top-level keys — consumers must ignore keys they do not
know.

The daemon's ``{"op": "health"}`` answer uses the sibling
:func:`health_payload` schema — the small, fast object a supervisor polls
between ``drain`` and SIGKILL.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.privacy import PrivacyAccountant
from repro.serving.cache import CacheStats


def cache_payload(stats: Optional[CacheStats]) -> Optional[Dict[str, Any]]:
    """The ``cache`` sub-object from a :class:`~repro.serving.cache.CacheStats`."""
    if stats is None:
        return None
    return {
        "hits": int(stats.hits),
        "misses": int(stats.misses),
        "hit_rate": round(float(stats.hit_rate), 6),
        "disk_hits": int(stats.disk_hits),
        "evictions": int(stats.evictions),
        "size": int(stats.size),
        "disk_errors": int(stats.disk_errors),
        "warm_attempts": int(stats.warm_attempts),
        "warm_hits": int(stats.warm_hits),
        "warm_fallbacks": int(stats.warm_fallbacks),
        "corrupt_rows": int(stats.corrupt_rows),
        "imported_legacy": int(stats.imported_legacy),
        "tiers": {key: int(value) for key, value in stats.tiers.items()},
    }


def budget_payload(
    accountant: Optional[PrivacyAccountant], budget_refusals: int = 0
) -> Dict[str, Any]:
    """The ``budget`` sub-object; ``null`` fields on unmetered sessions."""
    if accountant is None:
        return {
            "alpha_target": None,
            "alpha_spent": None,
            "alpha_remaining": None,
            "releases": None,
            "budget_refusals": int(budget_refusals),
        }
    return {
        "alpha_target": float(accountant.alpha_target),
        "alpha_spent": float(accountant.spent_alpha()),
        "alpha_remaining": float(accountant.remaining_alpha()),
        "releases": len(accountant.history()),
        "budget_refusals": int(budget_refusals),
    }


def health_payload(
    *,
    draining: bool,
    pending: int,
    inflight: int,
    connections: int,
    tenants: int,
    durable: bool,
    **extras: Any,
) -> Dict[str, Any]:
    """The daemon ``health`` op's answer: cheap liveness/readiness state.

    Deliberately tiny and allocation-light — a supervisor polls it between
    ``drain`` and SIGKILL, and a load balancer may poll it per second.
    ``extras`` lands as additional sorted keys (shed counters, durability
    recovery totals …); consumers must ignore keys they do not know.
    """
    payload: Dict[str, Any] = {
        "status": "draining" if draining else "ok",
        "draining": bool(draining),
        "pending": int(pending),
        "inflight": int(inflight),
        "connections": int(connections),
        "tenants": int(tenants),
        "durable": bool(durable),
    }
    for key in sorted(extras):
        payload[key] = extras[key]
    return payload


def stats_payload(
    command: str,
    *,
    records: int,
    cache: Optional[CacheStats] = None,
    accountant: Optional[PrivacyAccountant] = None,
    budget_refusals: int = 0,
    lp_solves: Optional[int] = None,
    lp_build_seconds: Optional[float] = None,
    lp_solve_seconds: Optional[float] = None,
    plans_compiled: Optional[int] = None,
    densifications: Optional[int] = None,
    **counters: Any,
) -> Dict[str, Any]:
    """Assemble the shared stats object for one serving surface.

    ``counters`` lands as extra top-level keys (sorted, for stable output);
    pass surface-specific totals such as ``chunks=`` or ``batches=`` there.

    ``lp_build_seconds`` / ``lp_solve_seconds`` default to the process-wide
    accumulators from :func:`repro.core.design.lp_timing_totals`; pass
    explicit values to report a delta instead.
    """
    from repro.core.design import lp_timing_totals  # deferred: avoids import cycle

    totals = lp_timing_totals()
    if lp_build_seconds is None:
        lp_build_seconds = totals["lp_build_seconds"]
    if lp_solve_seconds is None:
        lp_solve_seconds = totals["lp_solve_seconds"]
    payload: Dict[str, Any] = {"command": command, "records": int(records)}
    for key in sorted(counters):
        payload[key] = counters[key]
    payload["budget"] = budget_payload(accountant, budget_refusals)
    payload["cache"] = cache_payload(cache)
    payload["lp_solves"] = None if lp_solves is None else int(lp_solves)
    payload["lp_build_seconds"] = round(float(lp_build_seconds), 6)
    payload["lp_solve_seconds"] = round(float(lp_solve_seconds), 6)
    payload["plans_compiled"] = (
        None if plans_compiled is None else int(plans_compiled)
    )
    payload["densifications"] = (
        None if densifications is None else int(densifications)
    )
    return payload
