"""Wire protocol of the multi-tenant serving daemon (``repro-mechanisms serve``).

One connection carries line-delimited JSON: every request is a single JSON
object on its own line, and every request gets exactly one JSON response
line.  The protocol is deliberately tiny — four operations — because the
daemon's value is in *how* it serves (cross-tenant coalescing, per-tenant
budgets), not in a rich RPC surface:

``{"op": "hello", "tenant": "t1", "seed": 7, "budget_alpha": 0.5}``
    Bind this connection to a tenant session (creating it on first sight).
    ``seed`` pins the tenant's substream root for reproducible serving;
    ``budget_alpha`` overrides the daemon's default per-tenant budget.
    Reconnecting to an existing tenant resumes its session — accountant,
    substream position and counters carry over.

``{"op": "release", "id": 3, "counts": [1, 4], "n": 16, "alpha": 0.9,
"properties": "WH+CM", "seq": 7}``
    Release a batch of true counts through the requested design.  ``id``
    is echoed back verbatim so clients may pipeline.  ``seq`` (optional)
    is the tenant's request sequence number; against a durable daemon
    (``--state-dir``) re-sending an already-charged ``seq`` after a crash
    *replays* it — same substream, same released bits, charged exactly
    once — instead of spending budget again.

``{"op": "stats"}``
    One machine-readable statistics object (the same schema as the CLI's
    ``--stats-json``; see :mod:`repro.serving.stats`) plus this tenant's
    budget and traffic counters.

``{"op": "health"}``
    Liveness/readiness for supervisors: pending queue depth, in-flight
    count, tenant totals, durability state, draining flag.

``{"op": "drain"}``
    Stop accepting new work, flush in-flight batches, checkpoint every
    tenant ledger, then exit 0 — the supervisor-friendly shutdown.

``{"op": "shutdown"}``
    Gracefully stop the daemon: in-flight batches are flushed and answered
    before the process exits (ledgers are checkpointed exactly as for
    ``drain``).

Responses carry ``status`` and a numeric ``code`` mirroring the
``serve-stream`` exit-status conventions: ``0`` — served; ``1`` — refused
(privacy budget exhausted before sampling; nothing was drawn); ``2`` —
error (malformed request, unknown design parameters, tenant limit,
quarantined tenant ledger); ``3`` — overloaded (queue full, per-tenant
in-flight cap, or deadline expired before serving — *retriable*, nothing
was charged or drawn, no substream spawn was consumed).

The module also provides :class:`AsyncDaemonClient`, the asyncio client the
benchmarks, tests and ``examples/daemon_client.py`` drive the daemon with,
and :func:`tenant_seed_sequence`, the substream-root derivation that makes
per-tenant streams independent and reproducible.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import os
from dataclasses import dataclass
from typing import Any, Optional, Sequence, Union

import numpy as np

#: Response codes, aligned with the ``serve-stream`` CLI exit statuses.
OK = 0
REFUSED = 1
ERROR = 2
#: Shed for capacity (queue depth, in-flight cap, deadline): retriable.
OVERLOADED = 3

STATUS_BY_CODE = {OK: "ok", REFUSED: "refused", ERROR: "error", OVERLOADED: "overloaded"}

#: Client-side StreamReader limit: a served release of 10^5 counts is
#: ~700 KB of JSON, so allow generous headroom on the *response* path.
MAX_LINE_BYTES = 8 * 1024 * 1024

#: Default server-side bound on one request line (``--max-line-bytes``):
#: a buggy or hostile client cannot grow the reader's buffer without
#: bound — past this, the request is answered with a clean code-2 error
#: and the connection is closed.
DEFAULT_MAX_LINE_BYTES = 1024 * 1024


class ProtocolError(ValueError):
    """A malformed or unserveable request (mapped to a code-2 response)."""


class LineTooLongError(ProtocolError):
    """A request line exceeded the server's ``--max-line-bytes`` bound.

    Framing cannot be trusted past an overlong line, so the daemon answers
    with code 2 and then closes the connection instead of resyncing.
    """


async def read_message_line(
    reader: asyncio.StreamReader, max_bytes: int = DEFAULT_MAX_LINE_BYTES
) -> bytes:
    """One request line from ``reader``, bounded by the reader's limit.

    Returns ``b""`` at a clean EOF.  Raises :class:`LineTooLongError`
    when the peer sends more than the reader's configured limit without a
    newline (``asyncio`` raises a bare ``ValueError`` for that; the bound
    itself comes from the ``limit=`` the listening socket was created
    with — pass the same value here for an accurate message).
    """
    try:
        return await reader.readline()
    except ValueError as error:
        raise LineTooLongError(
            f"request line exceeds the {max_bytes}-byte bound "
            "(--max-line-bytes); closing the connection"
        ) from error


def encode_message(message: dict) -> bytes:
    """One protocol line: compact JSON + newline, UTF-8."""
    return (json.dumps(message, separators=(",", ":")) + "\n").encode("utf-8")


def decode_message(line: Union[bytes, str]) -> dict:
    """Parse one protocol line into a message dict.

    Raises :class:`ProtocolError` (never a bare ``json`` error) so the
    daemon can answer malformed input with a code-2 response instead of
    dropping the connection.
    """
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"invalid JSON: {error}") from error
    if not isinstance(message, dict):
        raise ProtocolError(
            f"expected a JSON object per line, got {type(message).__name__}"
        )
    return message


def ok_response(**fields: Any) -> dict:
    return {"status": STATUS_BY_CODE[OK], "code": OK, **fields}


def refusal_response(error: str, **fields: Any) -> dict:
    return {"status": STATUS_BY_CODE[REFUSED], "code": REFUSED, "error": error, **fields}


def error_response(error: str, **fields: Any) -> dict:
    return {"status": STATUS_BY_CODE[ERROR], "code": ERROR, "error": error, **fields}


def overloaded_response(error: str, **fields: Any) -> dict:
    """A retriable capacity shed: nothing charged, drawn, or spawned."""
    return {
        "status": STATUS_BY_CODE[OVERLOADED],
        "code": OVERLOADED,
        "error": error,
        "retriable": True,
        **fields,
    }


@dataclass(frozen=True)
class ReleaseCommand:
    """A validated ``release`` request, ready for the batcher."""

    request_id: Any
    counts: np.ndarray
    n: int
    alpha: float
    properties: str
    #: Tenant request sequence number (durable daemons: replay/exactly-once).
    seq: Optional[int] = None


def parse_release(message: dict) -> ReleaseCommand:
    """Validate a ``release`` message (raises :class:`ProtocolError`).

    Count-range validation against ``n`` happens here — *before* the
    request is admitted to a batch — so an invalid request can never burn
    budget or consume a substream spawn.
    """
    raw_counts = message.get("counts")
    if raw_counts is None and "count" in message:
        raw_counts = [message["count"]]
    if not isinstance(raw_counts, (list, tuple)) or not raw_counts:
        raise ProtocolError("release requires a non-empty 'counts' array")
    try:
        counts = np.asarray(raw_counts, dtype=np.int64)
    except (TypeError, ValueError, OverflowError) as error:
        raise ProtocolError(f"counts must be integers: {error}") from error
    if counts.ndim != 1:
        raise ProtocolError("counts must be a flat array")
    try:
        n = int(message["n"])
        alpha = float(message["alpha"])
    except KeyError as error:
        raise ProtocolError(f"release requires {error.args[0]!r}") from error
    except (TypeError, ValueError) as error:
        raise ProtocolError(f"invalid design parameters: {error}") from error
    if n < 1:
        raise ProtocolError(f"group size n must be positive, got {n}")
    if not (0.0 <= alpha <= 1.0):
        raise ProtocolError(f"alpha must lie in [0, 1], got {alpha!r}")
    if counts.min() < 0 or counts.max() > n:
        raise ProtocolError(
            f"counts must lie in [0, {n}]; got [{counts.min()}, {counts.max()}]"
        )
    properties = message.get("properties", "")
    if not isinstance(properties, str):
        raise ProtocolError("properties must be a string such as 'WH+CM'")
    seq = message.get("seq")
    if seq is not None:
        if isinstance(seq, bool) or not isinstance(seq, int) or seq < 0:
            raise ProtocolError(
                f"seq must be a non-negative integer, got {seq!r}"
            )
    return ReleaseCommand(
        request_id=message.get("id"),
        counts=counts,
        n=n,
        alpha=alpha,
        properties=properties,
        seq=seq,
    )


def tenant_seed_sequence(
    name: str,
    server_seed: Optional[int] = None,
    tenant_seed: Optional[int] = None,
) -> np.random.SeedSequence:
    """The substream root of one tenant session.

    An explicit ``tenant_seed`` (from the ``hello``) wins.  Otherwise the
    root is derived from the daemon's ``--seed`` plus a SHA-256 digest of
    the tenant name used as the spawn key, so distinct tenants get
    independent, collision-resistant streams while a fixed ``(server seed,
    tenant name)`` pair is fully reproducible across daemon restarts.
    With neither seed the root is fresh OS entropy.
    """
    if tenant_seed is not None:
        return np.random.SeedSequence(int(tenant_seed))
    if server_seed is None:
        return np.random.SeedSequence()
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    words = np.frombuffer(digest[:16], dtype=np.uint32)
    return np.random.SeedSequence(
        entropy=int(server_seed), spawn_key=tuple(int(word) for word in words)
    )


class AsyncDaemonClient:
    """Minimal asyncio client for the daemon protocol.

    >>> client = await AsyncDaemonClient.connect(path="/tmp/repro.sock")
    >>> await client.hello("tenant-a", seed=7)
    >>> response = await client.release([3, 5], n=16, alpha=0.9)
    >>> response["released"]
    [4, 5]

    One request is in flight per client at a time (the closed-loop shape
    the benchmark harness measures); open several clients for concurrency.
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer

    @classmethod
    async def connect(
        cls,
        path: Optional[Union[str, os.PathLike]] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
    ) -> "AsyncDaemonClient":
        """Connect over a unix socket (``path``) or TCP (``host``/``port``)."""
        if path is not None:
            reader, writer = await asyncio.open_unix_connection(
                str(path), limit=MAX_LINE_BYTES
            )
        else:
            if host is None or port is None:
                raise ValueError("pass either path= or both host= and port=")
            reader, writer = await asyncio.open_connection(
                host, port, limit=MAX_LINE_BYTES
            )
        return cls(reader, writer)

    async def request(self, message: dict) -> dict:
        """Send one message and await its one response line."""
        self._writer.write(encode_message(message))
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("daemon closed the connection")
        return decode_message(line)

    async def hello(
        self,
        tenant: str,
        seed: Optional[int] = None,
        budget_alpha: Optional[float] = None,
    ) -> dict:
        message: dict = {"op": "hello", "tenant": tenant}
        if seed is not None:
            message["seed"] = int(seed)
        if budget_alpha is not None:
            message["budget_alpha"] = float(budget_alpha)
        return await self.request(message)

    async def release(
        self,
        counts: Union[Sequence[int], np.ndarray],
        n: int,
        alpha: float,
        properties: str = "",
        request_id: Any = None,
        seq: Optional[int] = None,
    ) -> dict:
        message: dict = {
            "op": "release",
            "counts": [int(c) for c in np.asarray(counts).ravel()],
            "n": int(n),
            "alpha": float(alpha),
        }
        if properties:
            message["properties"] = properties
        if request_id is not None:
            message["id"] = request_id
        if seq is not None:
            message["seq"] = int(seq)
        return await self.request(message)

    async def stats(self) -> dict:
        return await self.request({"op": "stats"})

    async def health(self) -> dict:
        return await self.request({"op": "health"})

    async def drain(self) -> dict:
        return await self.request({"op": "drain"})

    async def shutdown(self) -> dict:
        return await self.request({"op": "shutdown"})

    async def close(self) -> None:
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - already gone
            pass
