"""Batch release sessions: many groups, mixed design requests, one pass.

A serving deployment sees a stream of records — "group ``g`` has true count
``c`` and wants privacy ``(n, alpha)`` with properties ``P``" — where only a
handful of distinct design requests occur.  :class:`BatchReleaseSession`
answers such a stream in three vectorised steps:

1. bucket the records by canonical design key (:func:`~repro.serving.cache
   .design_key`);
2. fetch each bucket's mechanism from the :class:`~repro.serving.cache
   .DesignCache` (solving the LP only the first time a design is seen);
3. release each bucket's counts with one
   :meth:`~repro.core.mechanism.Mechanism.apply_batch` call, then scatter
   the results back into input order.

With a seeded generator the whole session is reproducible: the same records
in the same order yield the same released counts, because buckets consume
the uniform stream in first-appearance order of their design key.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.losses import Objective
from repro.core.mechanism import Mechanism
from repro.core.properties import StructuralProperty
from repro.lp.solver import DEFAULT_BACKEND
from repro.serving.cache import DesignCache, design_key

PropertiesLike = Union[None, str, Iterable[Union[str, StructuralProperty]]]


@dataclass(frozen=True)
class ReleaseRequest:
    """One record of a mixed release stream.

    ``group`` is an opaque identifier echoed back on the result; ``count``
    is the group's true count; the remaining fields are the design request
    served through the cache.
    """

    group: Any
    count: int
    n: int
    alpha: float
    properties: PropertiesLike = ()
    objective: Optional[Objective] = None

    def __post_init__(self) -> None:
        if int(self.count) != self.count or not (0 <= self.count <= self.n):
            raise ValueError(
                f"count {self.count!r} for group {self.group!r} outside [0, {self.n}]"
            )


@dataclass(frozen=True)
class ReleasedCount:
    """The served counterpart of one :class:`ReleaseRequest`."""

    group: Any
    true_count: int
    released: int
    mechanism: str
    branch: str
    alpha: float


@dataclass
class SessionStats:
    """Running totals for one :class:`BatchReleaseSession`."""

    records: int = 0
    batches: int = 0
    distinct_designs: int = 0
    _keys: set = field(default_factory=set, repr=False)


class BatchReleaseSession:
    """Serve mixed streams of count-release records through cache + batch sampler.

    Parameters
    ----------
    cache:
        The :class:`DesignCache` to serve designs from; a fresh in-memory
        cache is created when omitted.  Pass one configured with a
        ``directory`` to share designs across processes.
    rng:
        Shared generator for every draw the session makes.  Pass
        ``np.random.default_rng(seed)`` for reproducible releases; the
        default is a fresh unseeded generator.
    backend:
        LP backend used for designs the cache has not seen.
    """

    def __init__(
        self,
        cache: Optional[DesignCache] = None,
        rng: Optional[np.random.Generator] = None,
        backend: str = DEFAULT_BACKEND,
    ) -> None:
        self.cache = cache if cache is not None else DesignCache()
        self.rng = rng if rng is not None else np.random.default_rng()
        self.backend = backend
        self.stats = SessionStats()
        # Session-local materialised designs so repeat traffic reuses the
        # same Mechanism instance (and its precomputed column CDFs) instead
        # of rebuilding one from the cache payload per batch.  Bounded by
        # the cache's LRU capacity so a long-lived session's memory stays
        # governed by the same knob as the cache itself.
        self._designs: "OrderedDict[str, Tuple[Mechanism, Any]]" = OrderedDict()
        # Raw-request -> canonical-key memo: design_key() re-parses and
        # re-sorts the property spec on every call, which dominates the
        # per-record serving cost once sampling is vectorised.  Keyed on the
        # request fields as given (falling back to recomputing when a field
        # is unhashable, e.g. a list of properties) and cleared when it
        # outgrows a multiple of the design-cache capacity so a long-lived
        # session's memory stays bounded.
        self._key_memo: Dict[Any, str] = {}
        self._key_memo_limit = max(1024, 8 * self.cache.capacity)

    def _design_key(self, n, alpha, properties, objective) -> str:
        memo_key = (n, alpha, properties, objective)
        try:
            cached = self._key_memo.get(memo_key)
        except TypeError:
            return design_key(n, alpha, properties, objective, self.backend)
        if cached is None:
            cached = design_key(n, alpha, properties, objective, self.backend)
            if len(self._key_memo) >= self._key_memo_limit:
                self._key_memo.clear()
            self._key_memo[memo_key] = cached
        return cached

    def _design(
        self,
        n: int,
        alpha: float,
        properties: PropertiesLike,
        objective: Optional[Objective],
        key: str,
    ) -> Tuple[Mechanism, Any]:
        entry = self._designs.get(key)
        if entry is None:
            entry = self.cache.get_or_design(
                n, alpha, properties=properties, objective=objective, backend=self.backend
            )
            # Representation-aware warm-up: dense mechanisms precompute
            # their (n+1)^2 CDF table; closed-form / sparse mechanisms warm
            # per-column caches lazily and need (and must do) nothing here.
            entry[0].prepare_sampling()
            self._designs[key] = entry
        self._designs.move_to_end(key)
        while len(self._designs) > self.cache.capacity:
            self._designs.popitem(last=False)
        return entry

    # ------------------------------------------------------------------ #
    # Serving
    # ------------------------------------------------------------------ #
    def release(self, requests: Iterable[ReleaseRequest]) -> List[ReleasedCount]:
        """Serve one batch of records, preserving input order in the result."""
        records = list(requests)
        if not records:
            return []
        # Bucket by canonical design key, keeping first-appearance order so
        # RNG consumption (and therefore reproducibility) is well defined.
        buckets: "Dict[str, List[int]]" = {}
        for index, record in enumerate(records):
            key = self._design_key(
                record.n, record.alpha, record.properties, record.objective
            )
            buckets.setdefault(key, []).append(index)

        results: List[Optional[ReleasedCount]] = [None] * len(records)
        for key, indices in buckets.items():
            first = records[indices[0]]
            mechanism, decision = self._design(
                first.n, first.alpha, first.properties, first.objective, key
            )
            counts = np.asarray([records[i].count for i in indices], dtype=int)
            released = mechanism.apply_batch(counts, rng=self.rng)
            for i, value in zip(indices, released):
                record = records[i]
                results[i] = ReleasedCount(
                    group=record.group,
                    true_count=int(record.count),
                    released=int(value),
                    mechanism=mechanism.name,
                    branch=decision.branch,
                    alpha=float(first.alpha),
                )
            self.stats.batches += 1
            self.stats._keys.add(key)
        self.stats.records += len(records)
        self.stats.distinct_designs = len(self.stats._keys)
        return [r for r in results if r is not None]

    def release_counts(
        self,
        counts: Union[Sequence[int], np.ndarray],
        n: int,
        alpha: float,
        properties: PropertiesLike = (),
        objective: Optional[Objective] = None,
    ) -> np.ndarray:
        """Homogeneous fast path: one design request, a raw vector of counts.

        Skips the per-record bucketing entirely — the design is fetched once
        and the whole vector goes through a single ``apply_batch``.
        """
        values = np.asarray(counts, dtype=int)
        if values.ndim != 1:
            raise ValueError("counts must be a 1-D sequence")
        key = design_key(n, alpha, properties, objective, self.backend)
        mechanism, _ = self._design(n, alpha, properties, objective, key)
        released = mechanism.apply_batch(values, rng=self.rng)
        self.stats.records += int(values.size)
        self.stats.batches += 1
        self.stats._keys.add(key)
        self.stats.distinct_designs = len(self.stats._keys)
        return released

    def mechanism_for(
        self,
        n: int,
        alpha: float,
        properties: PropertiesLike = (),
        objective: Optional[Objective] = None,
    ) -> Mechanism:
        """The mechanism this session would use for a design request."""
        key = design_key(n, alpha, properties, objective, self.backend)
        mechanism, _ = self._design(n, alpha, properties, objective, key)
        return mechanism

    def describe(self) -> str:
        """One-line summary of traffic served and cache behaviour."""
        cache = self.cache.stats()
        return (
            f"records={self.stats.records} batches={self.stats.batches} "
            f"designs={self.stats.distinct_designs} cache_hits={cache.hits} "
            f"cache_misses={cache.misses} hit_rate={cache.hit_rate:.1%}"
        )
