"""Batch release sessions: many groups, mixed design requests, one pass.

A serving deployment sees a stream of records — "group ``g`` has true count
``c`` and wants privacy ``(n, alpha)`` with properties ``P``" — where only a
handful of distinct design requests occur.  :class:`BatchReleaseSession`
answers such a stream in three vectorised steps:

1. bucket the records by canonical design key (:func:`~repro.serving.cache
   .design_key`);
2. fetch each bucket's compiled :class:`~repro.engine.plan.ReleasePlan`
   (resolving the design through the :class:`~repro.serving.cache
   .DesignCache` — and solving the LP — only the first time it is seen);
3. execute each bucket's counts through its plan in one vectorised call,
   then scatter the results back into input order.

The session is a thin adapter over the engine: plans own mechanism
resolution and sampling preparation, and an optional
:class:`~repro.privacy.PrivacyAccountant` is charged for every executed
batch *before* any sampling happens — an over-budget request raises
:class:`~repro.privacy.BudgetExceededError` without drawing a single
uniform.

With a seeded generator the whole session is reproducible: the same records
in the same order yield the same released counts, because buckets consume
the uniform stream in first-appearance order of their design key.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.losses import Objective
from repro.core.mechanism import Mechanism
from repro.core.properties import StructuralProperty
from repro.engine.plan import ReleasePlan
from repro.lp.solver import DEFAULT_BACKEND
from repro.privacy import PrivacyAccountant
from repro.serving.cache import DesignCache, design_key

PropertiesLike = Union[None, str, Iterable[Union[str, StructuralProperty]]]


@dataclass(frozen=True)
class ReleaseRequest:
    """One record of a mixed release stream.

    ``group`` is an opaque identifier echoed back on the result; ``count``
    is the group's true count; the remaining fields are the design request
    served through the cache.
    """

    group: Any
    count: int
    n: int
    alpha: float
    properties: PropertiesLike = ()
    objective: Optional[Objective] = None

    def __post_init__(self) -> None:
        if int(self.count) != self.count or not (0 <= self.count <= self.n):
            raise ValueError(
                f"count {self.count!r} for group {self.group!r} outside [0, {self.n}]"
            )


@dataclass(frozen=True)
class ReleasedCount:
    """The served counterpart of one :class:`ReleaseRequest`."""

    group: Any
    true_count: int
    released: int
    mechanism: str
    branch: str
    alpha: float


@dataclass
class SessionStats:
    """Running totals for one :class:`BatchReleaseSession`.

    ``alpha_spent`` / ``alpha_remaining`` mirror the session's
    :class:`~repro.privacy.PrivacyAccountant` after every charge and stay
    ``None`` on unmetered sessions; ``budget_refusals`` counts requests
    refused (before sampling) because they would overrun the budget.
    """

    records: int = 0
    batches: int = 0
    distinct_designs: int = 0
    alpha_spent: Optional[float] = None
    alpha_remaining: Optional[float] = None
    budget_refusals: int = 0
    _keys: set = field(default_factory=set, repr=False)


class BatchReleaseSession:
    """Serve mixed streams of count-release records through cached release plans.

    Parameters
    ----------
    cache:
        The :class:`DesignCache` to serve designs from; a fresh in-memory
        cache is created when omitted.  Pass one configured with a
        ``directory`` to share designs across processes.
    rng:
        Shared generator for every draw the session makes.  Pass
        ``np.random.default_rng(seed)`` for reproducible releases; the
        default is a fresh unseeded generator.
    backend:
        LP backend used for designs the cache has not seen.
    accountant:
        Optional :class:`~repro.privacy.PrivacyAccountant` charged for every
        executed batch (sequential composition — conservative: successive
        batches are assumed to observe the same individuals).  Charging
        happens before sampling; an over-budget request raises
        :class:`~repro.privacy.BudgetExceededError` with nothing drawn.
    budget_alpha:
        Convenience: ``budget_alpha=a`` creates a fresh accountant with
        target ``a``.  Mutually exclusive with ``accountant``.
    """

    def __init__(
        self,
        cache: Optional[DesignCache] = None,
        rng: Optional[np.random.Generator] = None,
        backend: str = DEFAULT_BACKEND,
        accountant: Optional[PrivacyAccountant] = None,
        budget_alpha: Optional[float] = None,
    ) -> None:
        self.cache = cache if cache is not None else DesignCache()
        self.rng = rng if rng is not None else np.random.default_rng()
        self.backend = backend
        if budget_alpha is not None:
            if accountant is not None:
                raise ValueError("pass either accountant or budget_alpha, not both")
            accountant = PrivacyAccountant(alpha_target=float(budget_alpha))
        self.accountant = accountant
        self.stats = SessionStats()
        self._sync_budget_stats()
        # Session-local compiled plans so repeat traffic reuses the same
        # ReleasePlan instance (and its mechanism's precomputed sampling
        # state) instead of rebuilding one from the cache payload per batch.
        # Bounded by the cache's LRU capacity so a long-lived session's
        # memory stays governed by the same knob as the cache itself.
        self._plans: "OrderedDict[str, ReleasePlan]" = OrderedDict()
        # Raw-request -> canonical-key memo: design_key() re-parses and
        # re-sorts the property spec on every call, which dominates the
        # per-record serving cost once sampling is vectorised.  Keyed on the
        # request fields as given (falling back to recomputing when a field
        # is unhashable, e.g. a list of properties) and cleared when it
        # outgrows a multiple of the design-cache capacity so a long-lived
        # session's memory stays bounded.
        self._key_memo: Dict[Any, str] = {}
        self._key_memo_limit = max(1024, 8 * self.cache.capacity)

    def _design_key(self, n, alpha, properties, objective) -> str:
        memo_key = (n, alpha, properties, objective)
        try:
            cached = self._key_memo.get(memo_key)
        except TypeError:
            return design_key(n, alpha, properties, objective, self.backend)
        if cached is None:
            cached = design_key(n, alpha, properties, objective, self.backend)
            if len(self._key_memo) >= self._key_memo_limit:
                self._key_memo.clear()
            self._key_memo[memo_key] = cached
        return cached

    def _plan(
        self,
        n: int,
        alpha: float,
        properties: PropertiesLike,
        objective: Optional[Objective],
        key: str,
    ) -> ReleasePlan:
        plan = self._plans.get(key)
        if plan is None:
            mechanism, decision = self.cache.get_or_design(
                n, alpha, properties=properties, objective=objective, backend=self.backend
            )
            # Compiling the plan runs the representation-aware sampling
            # warm-up eagerly: dense mechanisms precompute their (n+1)^2
            # CDF table; closed-form / sparse mechanisms warm per-column
            # caches lazily and need (and must do) nothing here.
            plan = ReleasePlan(
                mechanism,
                decision=decision,
                alpha_cost=float(alpha),
                key=key,
            )
            self._plans[key] = plan
        self._plans.move_to_end(key)
        while len(self._plans) > self.cache.capacity:
            self._plans.popitem(last=False)
        return plan

    def _charge(self, plans_and_labels: Sequence[Tuple[ReleasePlan, str]]) -> None:
        """Charge a set of about-to-execute batches, refusing all-or-nothing.

        Delegates to the engine's shared enforcement point
        (:func:`~repro.engine.plan.charge_release_group`): the whole request
        is checked against the budget *before* anything is recorded or
        sampled, so a refusal leaves both the accountant and the generator
        untouched.
        """
        from repro.engine.plan import charge_release_group
        from repro.privacy import BudgetExceededError

        try:
            charge_release_group(
                self.accountant,
                [(plan.alpha_cost, label) for plan, label in plans_and_labels],
            )
        except BudgetExceededError:
            self.stats.budget_refusals += 1
            raise
        self._sync_budget_stats()

    def _sync_budget_stats(self) -> None:
        if self.accountant is not None:
            self.stats.alpha_spent = self.accountant.spent_alpha()
            self.stats.alpha_remaining = self.accountant.remaining_alpha()

    # ------------------------------------------------------------------ #
    # Serving
    # ------------------------------------------------------------------ #
    def release(self, requests: Iterable[ReleaseRequest]) -> List[ReleasedCount]:
        """Serve one batch of records, preserving input order in the result."""
        records = list(requests)
        if not records:
            return []
        # Bucket by canonical design key, keeping first-appearance order so
        # RNG consumption (and therefore reproducibility) is well defined.
        buckets: "Dict[str, List[int]]" = {}
        for index, record in enumerate(records):
            key = self._design_key(
                record.n, record.alpha, record.properties, record.objective
            )
            buckets.setdefault(key, []).append(index)

        # Resolve every bucket's plan, then charge the whole request before
        # any bucket samples: a refusal must not leak a partial release.
        plans: Dict[str, ReleasePlan] = {}
        for key, indices in buckets.items():
            first = records[indices[0]]
            plans[key] = self._plan(
                first.n, first.alpha, first.properties, first.objective, key
            )
        self._charge(
            [
                (plans[key], f"{plans[key].mechanism.name} batch ({len(indices)} records)")
                for key, indices in buckets.items()
            ]
        )

        results: List[Optional[ReleasedCount]] = [None] * len(records)
        for key, indices in buckets.items():
            plan = plans[key]
            first = records[indices[0]]
            counts = np.asarray([records[i].count for i in indices], dtype=int)
            released = plan.execute(counts, rng=self.rng)
            for i, value in zip(indices, released):
                record = records[i]
                results[i] = ReleasedCount(
                    group=record.group,
                    true_count=int(record.count),
                    released=int(value),
                    mechanism=plan.mechanism.name,
                    branch=plan.branch,
                    alpha=float(first.alpha),
                )
            self.stats.batches += 1
            self.stats._keys.add(key)
        self.stats.records += len(records)
        self.stats.distinct_designs = len(self.stats._keys)
        return [r for r in results if r is not None]

    def release_counts(
        self,
        counts: Union[Sequence[int], np.ndarray],
        n: int,
        alpha: float,
        properties: PropertiesLike = (),
        objective: Optional[Objective] = None,
    ) -> np.ndarray:
        """Homogeneous fast path: one design request, a raw vector of counts.

        Skips the per-record bucketing entirely — the plan is fetched once
        and the whole vector goes through a single
        :meth:`~repro.engine.plan.ReleasePlan.execute`.
        """
        values = np.asarray(counts, dtype=int)
        if values.ndim != 1:
            raise ValueError("counts must be a 1-D sequence")
        # Reject out-of-range counts before the accountant is charged: a
        # request that cannot release anything must not burn budget.
        if values.size and (values.min() < 0 or values.max() > int(n)):
            raise ValueError(
                f"counts must lie in [0, {int(n)}]; got [{values.min()}, {values.max()}]"
            )
        key = design_key(n, alpha, properties, objective, self.backend)
        plan = self._plan(n, alpha, properties, objective, key)
        self._charge([(plan, f"{plan.mechanism.name} batch ({values.size} records)")])
        released = plan.execute(values, rng=self.rng)
        self.stats.records += int(values.size)
        self.stats.batches += 1
        self.stats._keys.add(key)
        self.stats.distinct_designs = len(self.stats._keys)
        return released

    def plan_for(
        self,
        n: int,
        alpha: float,
        properties: PropertiesLike = (),
        objective: Optional[Objective] = None,
    ) -> ReleasePlan:
        """The compiled :class:`~repro.engine.plan.ReleasePlan` for a request."""
        key = design_key(n, alpha, properties, objective, self.backend)
        return self._plan(n, alpha, properties, objective, key)

    def mechanism_for(
        self,
        n: int,
        alpha: float,
        properties: PropertiesLike = (),
        objective: Optional[Objective] = None,
    ) -> Mechanism:
        """The mechanism this session would use for a design request."""
        return self.plan_for(n, alpha, properties=properties, objective=objective).mechanism

    def describe(self) -> str:
        """One-line summary of traffic served, cache behaviour and budget."""
        cache = self.cache.stats()
        budget = ""
        if self.accountant is not None:
            budget = (
                f" {self.accountant.describe()}"
                f" budget_refusals={self.stats.budget_refusals}"
            )
        return (
            f"records={self.stats.records} batches={self.stats.batches} "
            f"designs={self.stats.distinct_designs} cache_hits={cache.hits} "
            f"cache_misses={cache.misses} hit_rate={cache.hit_rate:.1%}{budget}"
        )
