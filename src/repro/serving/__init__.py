"""Batch serving layer: design caching and vectorised release sessions.

The core library answers one design question at a time: ``choose_mechanism``
runs the Figure-5 flowchart and, on the two WM branches, solves an LP from
scratch; ``Mechanism.sample`` draws one noisy count.  Production traffic —
many users, many groups, a handful of distinct ``(n, alpha, properties)``
configurations — needs neither repeated: this package adds

* :class:`~repro.serving.cache.DesignCache` — an LRU memo of designed
  mechanisms keyed by the full design request, so repeated requests never
  touch the LP solver; its persistent tier is
* :class:`~repro.serving.registry.PlanRegistry` — one WAL-mode sqlite
  artifact store per cache directory, safe for concurrent multi-process
  readers and a writer, with per-row checksums, schema versioning and a
  ``(n, alpha)`` index that feeds LP warm-starting (a cold miss starts the
  simplex from its nearest cached neighbour's optimal basis);
* :func:`~repro.serving.warm.warm_grid` — the offline grid precompiler
  behind ``repro-mechanisms warm``, which fills a registry so a freshly
  started daemon serves every grid point with zero LP solves;
* :class:`~repro.serving.session.BatchReleaseSession` — routes mixed streams
  of ``(group, count, design request)`` records through the cache into
  compiled :class:`~repro.engine.plan.ReleasePlan` executions, optionally
  guarded by a :class:`~repro.privacy.PrivacyAccountant` budget;
* :class:`~repro.serving.session.ReleaseRequest` /
  :class:`~repro.serving.session.ReleasedCount` — the record types of that
  stream;
* :class:`~repro.serving.daemon.ServingDaemon` — the long-lived asyncio
  front-end (``repro-mechanisms serve``): per-tenant
  :class:`~repro.privacy.PrivacyAccountant` sessions over one shared
  cache/plans-LRU, with a coalescing batcher that merges same-plan
  requests from different tenants into single vectorised draws while
  staying bit-identical to per-request serving — with durable per-tenant
  budgets (:class:`~repro.serving.tenant_store.TenantStore` under
  ``--state-dir``), restart recovery, deadlines and backpressure;
* :class:`~repro.serving.protocol.AsyncDaemonClient` and the line-delimited
  JSON protocol helpers (:mod:`repro.serving.protocol`), plus the shared
  machine-readable statistics schema (:mod:`repro.serving.stats`).

The session is a thin adapter over :mod:`repro.engine`; use
:class:`~repro.engine.executor.StreamExecutor` directly (or the
``serve-stream`` CLI) for chunked streams of unbounded length.

See ``docs/architecture.md`` for the data-flow diagram and
``benchmarks/test_bench_serving.py`` / ``benchmarks/test_bench_daemon.py``
for the throughput guarantees.
"""

from repro.serving.cache import CacheStats, DesignCache, design_key
from repro.serving.daemon import DaemonStats, ServingDaemon, TenantSession
from repro.serving.registry import (
    PlanRegistry,
    RegistryError,
    RegistryVersionError,
    parse_design_key,
)
from repro.serving.warm import parse_grid, warm_grid
from repro.serving.protocol import (
    AsyncDaemonClient,
    ProtocolError,
    tenant_seed_sequence,
)
from repro.serving.session import BatchReleaseSession, ReleaseRequest, ReleasedCount
from repro.serving.stats import health_payload, stats_payload
from repro.serving.tenant_store import RecoveredTenant, TenantStore, tenant_slug

__all__ = [
    "AsyncDaemonClient",
    "BatchReleaseSession",
    "CacheStats",
    "DaemonStats",
    "DesignCache",
    "PlanRegistry",
    "ProtocolError",
    "RecoveredTenant",
    "RegistryError",
    "RegistryVersionError",
    "ReleaseRequest",
    "ReleasedCount",
    "ServingDaemon",
    "TenantSession",
    "TenantStore",
    "design_key",
    "health_payload",
    "parse_design_key",
    "parse_grid",
    "stats_payload",
    "warm_grid",
    "tenant_seed_sequence",
    "tenant_slug",
]
