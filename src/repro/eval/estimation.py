"""Statistical estimation from released counts.

A mechanism's output is a noisy version of each group's true count; analysts
usually want aggregate statistics of the *true* counts back.  Because the
mechanism matrix ``P`` is public, the distribution of released counts is a
known linear transformation of the distribution of true counts
(``released_dist = P · true_dist``), which makes unbiased estimation
straightforward:

* :func:`estimate_true_histogram` — invert (or least-squares invert) ``P`` on
  the empirical released histogram and project back onto the probability
  simplex, recovering the distribution of true counts across groups;
* :func:`estimate_true_mean` — the corresponding estimate of the mean true
  count;
* :func:`debias_released_mean` — a direct bias correction of the released
  mean using the mechanism's per-input expected outputs (exact when the
  expected output is an affine function of the input, as for additive-noise
  mechanisms away from the clamping region).

These utilities are what the paper's introduction calls "downstream
processing": they let every experiment close the loop from private release
back to usable statistics.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.core.mechanism import Mechanism

MatrixLike = Union[np.ndarray, Mechanism]


def _as_matrix(mechanism: MatrixLike) -> np.ndarray:
    if isinstance(mechanism, Mechanism):
        return mechanism.matrix
    matrix = np.asarray(mechanism, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"expected a square matrix, got shape {matrix.shape}")
    return matrix


def released_histogram(released_counts: Sequence[int], n: int) -> np.ndarray:
    """Empirical distribution of released counts over ``{0, …, n}``."""
    counts = np.asarray(released_counts, dtype=int)
    if counts.size == 0:
        raise ValueError("no released counts supplied")
    if counts.min() < 0 or counts.max() > n:
        raise ValueError(f"released counts must lie in [0, {n}]")
    histogram = np.bincount(counts, minlength=n + 1).astype(float)
    return histogram / histogram.sum()


def project_to_simplex(vector: Sequence[float]) -> np.ndarray:
    """Euclidean projection of a vector onto the probability simplex.

    Used to turn the (possibly negative) inverse estimate into a proper
    distribution; the standard sort-and-threshold algorithm.
    """
    values = np.asarray(vector, dtype=float)
    if values.ndim != 1 or values.size == 0:
        raise ValueError("expected a non-empty vector")
    sorted_desc = np.sort(values)[::-1]
    cumulative = np.cumsum(sorted_desc) - 1.0
    indices = np.arange(1, values.size + 1)
    feasible = sorted_desc - cumulative / indices > 0
    rho = int(np.nonzero(feasible)[0][-1]) + 1
    threshold = cumulative[rho - 1] / rho
    return np.clip(values - threshold, 0.0, None)


def estimate_true_histogram(
    mechanism: MatrixLike,
    released_counts: Sequence[int],
    method: str = "least_squares",
    ridge: float = 1e-8,
) -> np.ndarray:
    """Estimate the distribution of *true* counts from released counts.

    Parameters
    ----------
    mechanism:
        The mechanism (matrix ``P``) that produced the releases.
    released_counts:
        One released count per group.
    method:
        ``"least_squares"`` (default): solve ``min ||P q − released_hist||``
        with a tiny ridge for numerical stability, then project onto the
        simplex.  ``"inverse"``: multiply by ``P^{-1}`` directly (only
        sensible when ``P`` is well conditioned) and project.
    """
    matrix = _as_matrix(mechanism)
    n = matrix.shape[0] - 1
    observed = released_histogram(released_counts, n)
    if method == "inverse":
        try:
            raw = np.linalg.solve(matrix, observed)
        except np.linalg.LinAlgError as exc:
            raise ValueError("mechanism matrix is singular; use method='least_squares'") from exc
    elif method == "least_squares":
        gram = matrix.T @ matrix + ridge * np.eye(matrix.shape[0])
        raw = np.linalg.solve(gram, matrix.T @ observed)
    else:
        raise ValueError("method must be 'least_squares' or 'inverse'")
    return project_to_simplex(raw)


def estimate_true_mean(
    mechanism: MatrixLike,
    released_counts: Sequence[int],
    method: str = "least_squares",
) -> float:
    """Estimate the mean true count across groups from the released counts."""
    matrix = _as_matrix(mechanism)
    n = matrix.shape[0] - 1
    distribution = estimate_true_histogram(mechanism, released_counts, method=method)
    return float(np.dot(np.arange(n + 1), distribution))


def debias_released_mean(
    mechanism: MatrixLike, released_counts: Sequence[int]
) -> float:
    """Bias-correct the released mean using the mechanism's expected outputs.

    Fits the affine map ``j -> E[output | j]`` by least squares over the
    input range and inverts it at the observed mean.  For mechanisms whose
    expected output is exactly affine in the input (e.g. randomized response
    or additive noise without clamping) the correction is exact; for clamped
    mechanisms it removes the bulk of the bias away from the boundary.
    """
    matrix = _as_matrix(mechanism)
    n = matrix.shape[0] - 1
    counts = np.asarray(released_counts, dtype=float)
    if counts.size == 0:
        raise ValueError("no released counts supplied")
    inputs = np.arange(n + 1, dtype=float)
    expected_outputs = np.arange(n + 1, dtype=float) @ matrix
    slope, intercept = np.polyfit(inputs, expected_outputs, deg=1)
    if abs(slope) < 1e-12:
        raise ValueError("mechanism output carries no information about the input")
    estimate = (counts.mean() - intercept) / slope
    return float(np.clip(estimate, 0.0, n))
