"""Empirical evaluation harness for mechanisms (Section V).

* :mod:`repro.eval.metrics` — error metrics computed on released vs true
  counts (empirical ``L0``, ``L0,d``, RMSE, MAE, bias).
* :mod:`repro.eval.empirical` — running a mechanism over grouped data for
  many repetitions and summarising the metrics with error bars.
* :mod:`repro.eval.sweep` — parameter sweeps over α, group size and data
  skew, producing tabular results.
* :mod:`repro.eval.reporting` — plain-text tables, ASCII heatmaps and CSV
  export for experiment outputs.
"""

from repro.eval.empirical import EmpiricalResult, evaluate_mechanism, evaluate_mechanisms
from repro.eval.metrics import (
    distance_metric,
    distance_metrics,
    empirical_l0,
    empirical_l0d,
    error_rate,
    exceeds_distance_rate,
    exceeds_rate_profile,
    mean_absolute_error,
    mean_signed_error,
    root_mean_square_error,
    signed_differences,
)
from repro.eval.reporting import ascii_heatmap, format_table, rows_to_csv
from repro.eval.sweep import SweepResult, sweep

__all__ = [
    "EmpiricalResult",
    "evaluate_mechanism",
    "evaluate_mechanisms",
    "distance_metric",
    "distance_metrics",
    "exceeds_rate_profile",
    "signed_differences",
    "empirical_l0",
    "empirical_l0d",
    "error_rate",
    "exceeds_distance_rate",
    "mean_absolute_error",
    "mean_signed_error",
    "root_mean_square_error",
    "ascii_heatmap",
    "format_table",
    "rows_to_csv",
    "SweepResult",
    "sweep",
]
