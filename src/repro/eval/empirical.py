"""Running mechanisms over grouped data and summarising the results.

The paper's empirical methodology (Sections V-B and V-C) is: take the true
count of every group, release a noisy count through the mechanism, compute
an error metric over all groups, repeat the whole process 30–50 times and
report the mean with one standard error / standard deviation.  This module
implements exactly that loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.core.mechanism import Mechanism
from repro.data.groups import GroupedCounts
from repro.eval import metrics as metrics_module

MetricFunction = Callable[[Sequence[int], Sequence[int]], float]

#: Metrics computed by default in every empirical run.
DEFAULT_METRICS: Dict[str, MetricFunction] = {
    "error_rate": metrics_module.error_rate,
    "exceeds_1_rate": metrics_module.distance_metric(1),
    "mae": metrics_module.mean_absolute_error,
    "rmse": metrics_module.root_mean_square_error,
}


@dataclass
class EmpiricalResult:
    """Summary of repeated empirical evaluation of one mechanism on one workload.

    ``per_repetition[metric]`` holds the metric value of every repetition;
    ``mean``/``std``/``standard_error`` summarise them.
    """

    mechanism_name: str
    group_size: int
    num_groups: int
    repetitions: int
    per_repetition: Dict[str, np.ndarray] = field(default_factory=dict)

    def mean(self, metric: str) -> float:
        """Mean of a metric over repetitions."""
        return float(np.mean(self._values(metric)))

    def std(self, metric: str) -> float:
        """Standard deviation of a metric over repetitions."""
        return float(np.std(self._values(metric), ddof=1)) if self.repetitions > 1 else 0.0

    def standard_error(self, metric: str) -> float:
        """Standard error of the mean (the paper's Figure-10 error bars)."""
        if self.repetitions <= 1:
            return 0.0
        return self.std(metric) / float(np.sqrt(self.repetitions))

    def metrics(self) -> List[str]:
        """Names of the metrics recorded in this result."""
        return sorted(self.per_repetition)

    def as_row(self) -> Dict[str, float]:
        """Flatten to a single dict row (mean and std of every metric)."""
        row: Dict[str, Union[str, float, int]] = {
            "mechanism": self.mechanism_name,
            "group_size": self.group_size,
            "num_groups": self.num_groups,
            "repetitions": self.repetitions,
        }
        for metric in self.metrics():
            row[metric] = self.mean(metric)
            row[f"{metric}_std"] = self.std(metric)
        return row

    def _values(self, metric: str) -> np.ndarray:
        try:
            return self.per_repetition[metric]
        except KeyError as exc:
            raise KeyError(
                f"metric {metric!r} was not recorded; available: {self.metrics()}"
            ) from exc


def _resolve_counts(data: Union[GroupedCounts, Sequence[int], np.ndarray], group_size: Optional[int]):
    if isinstance(data, GroupedCounts):
        return data.counts, data.group_size
    counts = np.asarray(data, dtype=int)
    if group_size is None:
        raise ValueError("group_size is required when passing raw counts")
    return counts, int(group_size)


def evaluate_mechanism(
    mechanism: Mechanism,
    data: Union[GroupedCounts, Sequence[int], np.ndarray],
    group_size: Optional[int] = None,
    repetitions: int = 30,
    metrics: Optional[Mapping[str, MetricFunction]] = None,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> EmpiricalResult:
    """Apply a mechanism to every group's true count, repeatedly, and summarise.

    Parameters
    ----------
    mechanism:
        The mechanism under test; its size must match ``group_size``.
    data:
        Either a :class:`~repro.data.groups.GroupedCounts` or a raw sequence
        of per-group true counts (in which case ``group_size`` is required).
    repetitions:
        Number of independent releases of the whole dataset (30 in the
        synthetic experiments, 50 for Adult).
    metrics:
        Mapping from metric name to ``f(true, released) -> float``; defaults
        to error rate, miss-by-more-than-1 rate, MAE and RMSE.
    rng, seed:
        Randomness control; pass one or neither.
    """
    counts, size = _resolve_counts(data, group_size)
    if mechanism.n != size:
        raise ValueError(
            f"mechanism covers groups of size {mechanism.n} but data has group size {size}"
        )
    if repetitions < 1:
        raise ValueError("repetitions must be a positive integer")
    if counts.size == 0:
        raise ValueError("no groups to evaluate")
    if rng is None:
        rng = np.random.default_rng(seed)
    elif seed is not None:
        raise ValueError("pass either rng or seed, not both")
    metric_functions = dict(DEFAULT_METRICS if metrics is None else metrics)

    per_repetition: Dict[str, List[float]] = {name: [] for name in metric_functions}
    for _ in range(repetitions):
        released = mechanism.apply(counts, rng=rng)
        for name, function in metric_functions.items():
            per_repetition[name].append(function(counts, released))
    return EmpiricalResult(
        mechanism_name=mechanism.name,
        group_size=size,
        num_groups=int(counts.shape[0]),
        repetitions=repetitions,
        per_repetition={name: np.asarray(values) for name, values in per_repetition.items()},
    )


def evaluate_mechanisms(
    mechanisms: Iterable[Mechanism],
    data: Union[GroupedCounts, Sequence[int], np.ndarray],
    group_size: Optional[int] = None,
    repetitions: int = 30,
    metrics: Optional[Mapping[str, MetricFunction]] = None,
    seed: Optional[int] = None,
) -> Dict[str, EmpiricalResult]:
    """Evaluate several mechanisms on the same workload with a shared seed.

    Each mechanism receives its own random stream derived from ``seed`` so
    results are reproducible and adding a mechanism does not change the
    numbers of the others.
    """
    results: Dict[str, EmpiricalResult] = {}
    seed_sequence = np.random.SeedSequence(seed)
    mechanisms = list(mechanisms)
    children = seed_sequence.spawn(len(mechanisms))
    for mechanism, child in zip(mechanisms, children):
        results[mechanism.name] = evaluate_mechanism(
            mechanism,
            data,
            group_size=group_size,
            repetitions=repetitions,
            metrics=metrics,
            rng=np.random.default_rng(child),
        )
    return results
