"""Running mechanisms over grouped data and summarising the results.

The paper's empirical methodology (Sections V-B and V-C) is: take the true
count of every group, release a noisy count through the mechanism, compute
an error metric over all groups, repeat the whole process 30–50 times and
report the mean with one standard error / standard deviation.

This module implements that methodology *without* the loop: all
``repetitions × num_groups`` releases are drawn in one
:meth:`~repro.core.mechanism.Mechanism.sample_tiled` call, and every metric
that advertises a matrix kernel (a ``diff_kernel`` attribute, see
:mod:`repro.eval.metrics`) is reduced from the shared ``released − true``
difference matrix in a single pass.  The results are bit-identical to the
original repetition loop — the exact sampler consumes uniforms in the same
stream order either way — which :func:`_evaluate_loop` is kept around to
prove.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.core.mechanism import Mechanism
from repro.data.groups import GroupedCounts
from repro.engine.plan import ReleasePlan
from repro.eval import metrics as metrics_module

MetricFunction = Callable[[Sequence[int], Sequence[int]], float]

MechanismOrPlan = Union[Mechanism, ReleasePlan]


def _as_plan(mechanism: MechanismOrPlan) -> ReleasePlan:
    """Normalise the evaluator's input to a compiled release plan.

    Passing a plan reuses its prepared sampling state (and counts the
    evaluation in its stats); passing a bare mechanism compiles a throwaway
    plan around it — the evaluator draws through the engine either way.
    """
    if isinstance(mechanism, ReleasePlan):
        return mechanism
    return ReleasePlan.from_mechanism(mechanism)

#: Metrics computed by default in every empirical run.
DEFAULT_METRICS: Dict[str, MetricFunction] = {
    "error_rate": metrics_module.error_rate,
    "exceeds_1_rate": metrics_module.distance_metric(1),
    "mae": metrics_module.mean_absolute_error,
    "rmse": metrics_module.root_mean_square_error,
}


@dataclass
class EmpiricalResult:
    """Summary of repeated empirical evaluation of one mechanism on one workload.

    ``per_repetition[metric]`` holds the metric value of every repetition;
    ``mean``/``std``/``standard_error`` summarise them.
    """

    mechanism_name: str
    group_size: int
    num_groups: int
    repetitions: int
    per_repetition: Dict[str, np.ndarray] = field(default_factory=dict)

    def mean(self, metric: str) -> float:
        """Mean of a metric over repetitions."""
        return float(np.mean(self._values(metric)))

    def std(self, metric: str) -> float:
        """Standard deviation of a metric over repetitions."""
        return float(np.std(self._values(metric), ddof=1)) if self.repetitions > 1 else 0.0

    def standard_error(self, metric: str) -> float:
        """Standard error of the mean (the paper's Figure-10 error bars)."""
        if self.repetitions <= 1:
            return 0.0
        return self.std(metric) / float(np.sqrt(self.repetitions))

    def metrics(self) -> List[str]:
        """Names of the metrics recorded in this result."""
        return sorted(self.per_repetition)

    def as_row(self) -> Dict[str, float]:
        """Flatten to a single dict row (mean and std of every metric)."""
        row: Dict[str, Union[str, float, int]] = {
            "mechanism": self.mechanism_name,
            "group_size": self.group_size,
            "num_groups": self.num_groups,
            "repetitions": self.repetitions,
        }
        for metric in self.metrics():
            row[metric] = self.mean(metric)
            row[f"{metric}_std"] = self.std(metric)
        return row

    def _values(self, metric: str) -> np.ndarray:
        try:
            return self.per_repetition[metric]
        except KeyError as exc:
            raise KeyError(
                f"metric {metric!r} was not recorded; available: {self.metrics()}"
            ) from exc


def _resolve_counts(data: Union[GroupedCounts, Sequence[int], np.ndarray], group_size: Optional[int]):
    if isinstance(data, GroupedCounts):
        return data.counts, data.group_size
    counts = np.asarray(data, dtype=int)
    if group_size is None:
        raise ValueError("group_size is required when passing raw counts")
    return counts, int(group_size)


def _prepare_evaluation(
    mechanism: MechanismOrPlan,
    data: Union[GroupedCounts, Sequence[int], np.ndarray],
    group_size: Optional[int],
    repetitions: int,
    metrics: Optional[Mapping[str, MetricFunction]],
    rng: Optional[np.random.Generator],
    seed: Optional[int],
):
    """Shared validation/normalisation for the vectorised and loop evaluators."""
    counts, size = _resolve_counts(data, group_size)
    if isinstance(mechanism, ReleasePlan):
        mechanism = mechanism.mechanism
    if mechanism.n != size:
        raise ValueError(
            f"mechanism covers groups of size {mechanism.n} but data has group size {size}"
        )
    if repetitions < 1:
        raise ValueError("repetitions must be a positive integer")
    if counts.size == 0:
        raise ValueError("no groups to evaluate")
    if rng is None:
        rng = np.random.default_rng(seed)
    elif seed is not None:
        raise ValueError("pass either rng or seed, not both")
    metric_functions = dict(DEFAULT_METRICS if metrics is None else metrics)
    return counts, size, metric_functions, rng


def _metric_matrix(
    counts: np.ndarray,
    released: np.ndarray,
    metric_functions: Mapping[str, MetricFunction],
) -> Dict[str, np.ndarray]:
    """Per-repetition metric vectors from the ``(repetitions, groups)`` releases.

    Metrics advertising a matrix kernel (``diff_kernel``) are reduced from
    the shared ``released − true`` difference matrix in one pass each;
    several :class:`~repro.eval.metrics.ExceedsDistanceRate` thresholds are
    additionally answered together from a single histogram pass
    (:func:`~repro.eval.metrics.exceeds_rate_profile`).  Metrics without a
    kernel fall back to one scalar call per repetition — still on the
    one-sample release matrix.
    """
    diff = metrics_module.signed_differences(counts, released)
    per_repetition: Dict[str, np.ndarray] = {}
    # The Figure-12 case: many exceeds-d thresholds answered in one pass.
    exceed_group = {
        name: function
        for name, function in metric_functions.items()
        if isinstance(function, metrics_module.ExceedsDistanceRate)
    }
    if len(exceed_group) > 1:
        names = list(exceed_group)
        profile = metrics_module.exceeds_rate_profile(
            diff, [exceed_group[name].d for name in names]
        )
        exceed_values = {name: profile[k] for k, name in enumerate(names)}
    else:
        exceed_values = {}
    for name, function in metric_functions.items():
        if name in exceed_values:
            values = exceed_values[name]
        else:
            kernel = getattr(function, "diff_kernel", None)
            if kernel is not None:
                values = np.asarray(kernel(diff), dtype=float)
            else:
                values = np.asarray(
                    [function(counts, released[r]) for r in range(released.shape[0])]
                )
        per_repetition[name] = np.atleast_1d(values)
    return per_repetition


def evaluate_mechanism(
    mechanism: MechanismOrPlan,
    data: Union[GroupedCounts, Sequence[int], np.ndarray],
    group_size: Optional[int] = None,
    repetitions: int = 30,
    metrics: Optional[Mapping[str, MetricFunction]] = None,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> EmpiricalResult:
    """Apply a mechanism to every group's true count, repeatedly, and summarise.

    The evaluator is an adapter over the release engine: all repetitions
    are drawn in one vectorised
    :meth:`~repro.engine.plan.ReleasePlan.execute_tiled` call and the
    metrics reduced from one shared difference matrix; the numbers are
    bit-identical to the sequential repetition loop (:func:`_evaluate_loop`)
    on the same generator.

    Parameters
    ----------
    mechanism:
        The mechanism under test — a bare
        :class:`~repro.core.mechanism.Mechanism` or a compiled
        :class:`~repro.engine.plan.ReleasePlan`; its size must match
        ``group_size``.
    data:
        Either a :class:`~repro.data.groups.GroupedCounts` or a raw sequence
        of per-group true counts (in which case ``group_size`` is required).
    repetitions:
        Number of independent releases of the whole dataset (30 in the
        synthetic experiments, 50 for Adult).
    metrics:
        Mapping from metric name to ``f(true, released) -> float``; defaults
        to error rate, miss-by-more-than-1 rate, MAE and RMSE.  Metrics with
        a ``diff_kernel`` attribute (everything in
        :mod:`repro.eval.metrics`) are computed matrix-at-a-time; plain
        functions are called once per repetition.
    rng, seed:
        Randomness control; pass one or neither.
    """
    plan = _as_plan(mechanism)
    counts, size, metric_functions, rng = _prepare_evaluation(
        plan, data, group_size, repetitions, metrics, rng, seed
    )
    released = plan.execute_tiled(counts, repetitions, rng=rng)
    return EmpiricalResult(
        mechanism_name=plan.mechanism.name,
        group_size=size,
        num_groups=int(counts.shape[0]),
        repetitions=repetitions,
        per_repetition=_metric_matrix(counts, released, metric_functions),
    )


def _evaluate_loop(
    mechanism: Mechanism,
    data: Union[GroupedCounts, Sequence[int], np.ndarray],
    group_size: Optional[int] = None,
    repetitions: int = 30,
    metrics: Optional[Mapping[str, MetricFunction]] = None,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> EmpiricalResult:
    """The original sequential repetition loop (regression reference).

    One ``mechanism.apply`` call and one Python metric call per
    (repetition, metric).  Kept as the ground truth
    :func:`evaluate_mechanism` is proven bit-identical against; do not use
    on large workloads.
    """
    if isinstance(mechanism, ReleasePlan):
        mechanism = mechanism.mechanism
    counts, size, metric_functions, rng = _prepare_evaluation(
        mechanism, data, group_size, repetitions, metrics, rng, seed
    )
    per_repetition: Dict[str, List[float]] = {name: [] for name in metric_functions}
    for _ in range(repetitions):
        released = mechanism.apply(counts, rng=rng)
        for name, function in metric_functions.items():
            per_repetition[name].append(function(counts, released))
    return EmpiricalResult(
        mechanism_name=mechanism.name,
        group_size=size,
        num_groups=int(counts.shape[0]),
        repetitions=repetitions,
        per_repetition={name: np.asarray(values) for name, values in per_repetition.items()},
    )


def evaluate_mechanisms(
    mechanisms: Iterable[Mechanism],
    data: Union[GroupedCounts, Sequence[int], np.ndarray],
    group_size: Optional[int] = None,
    repetitions: int = 30,
    metrics: Optional[Mapping[str, MetricFunction]] = None,
    seed: Optional[int] = None,
) -> Dict[str, EmpiricalResult]:
    """Evaluate several mechanisms on the same workload with a shared seed.

    Each mechanism receives its own random stream derived from ``seed`` so
    results are reproducible and adding a mechanism does not change the
    numbers of the others.
    """
    results: Dict[str, EmpiricalResult] = {}
    seed_sequence = np.random.SeedSequence(seed)
    mechanisms = list(mechanisms)
    children = seed_sequence.spawn(len(mechanisms))
    for mechanism, child in zip(mechanisms, children):
        results[mechanism.name] = evaluate_mechanism(
            mechanism,
            data,
            group_size=group_size,
            repetitions=repetitions,
            metrics=metrics,
            rng=np.random.default_rng(child),
        )
    return results
