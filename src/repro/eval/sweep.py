"""Parameter sweeps over privacy level, group size and data skew.

The paper's evaluation repeatedly runs the same experiment over grids of
``(α, n, p)``; this module provides a small generic sweep driver used by the
figure-specific experiment modules and directly usable from user code:

>>> from repro.eval.sweep import sweep
>>> result = sweep(alphas=[0.67, 0.91], group_sizes=[4, 8], probabilities=[0.5],
...                mechanisms=("GM", "EM", "UM"), repetitions=5, num_groups=200, seed=1)
>>> len(result.rows) > 0
True
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.mechanism import Mechanism
from repro.data.groups import GroupedCounts
from repro.data.synthetic import binomial_group_counts
from repro.eval.empirical import DEFAULT_METRICS, MetricFunction, evaluate_mechanism
from repro.eval.reporting import format_table, rows_to_csv
from repro.mechanisms.registry import create_mechanism


@dataclass
class SweepResult:
    """Tabular result of a sweep: one row per (mechanism, parameter point)."""

    rows: List[Dict[str, Union[str, float, int]]] = field(default_factory=list)

    def filter(self, **criteria) -> "SweepResult":
        """Rows matching every key=value criterion (values compared with ==)."""
        selected = [
            row
            for row in self.rows
            if all(row.get(key) == value for key, value in criteria.items())
        ]
        return SweepResult(rows=selected)

    def column(self, name: str) -> List[Union[str, float, int]]:
        """Extract one column across all rows."""
        return [row[name] for row in self.rows]

    def series(
        self, x: str, y: str, group_by: str = "mechanism"
    ) -> Dict[str, List[Tuple[float, float]]]:
        """Group rows into (x, y) series keyed by ``group_by`` — plot-ready."""
        series: Dict[str, List[Tuple[float, float]]] = {}
        for row in self.rows:
            series.setdefault(str(row[group_by]), []).append((row[x], row[y]))
        for values in series.values():
            values.sort()
        return series

    def to_table(self, columns: Optional[Sequence[str]] = None, title: Optional[str] = None) -> str:
        """Render as an aligned text table."""
        return format_table(self.rows, columns=columns, title=title)

    def to_csv(self, path=None, columns: Optional[Sequence[str]] = None) -> str:
        """Serialise to CSV text (optionally written to ``path``)."""
        return rows_to_csv(self.rows, path=path, columns=columns)

    def extend(self, other: "SweepResult") -> None:
        """Append another sweep's rows in place."""
        self.rows.extend(other.rows)


def _resolve_mechanism(
    name_or_mechanism: Union[str, Mechanism], n: int, alpha: float, backend: str
) -> Mechanism:
    if isinstance(name_or_mechanism, Mechanism):
        return name_or_mechanism
    if str(name_or_mechanism).upper() in ("WM", "WEAKLY_HONEST", "WEAK_HONEST"):
        return create_mechanism("WM", n=n, alpha=alpha, backend=backend)
    return create_mechanism(str(name_or_mechanism), n=n, alpha=alpha)


def sweep(
    alphas: Sequence[float],
    group_sizes: Sequence[int],
    probabilities: Sequence[float],
    mechanisms: Sequence[Union[str, Mechanism]] = ("GM", "WM", "EM", "UM"),
    repetitions: int = 30,
    num_groups: int = 1000,
    metrics: Optional[Mapping[str, MetricFunction]] = None,
    seed: Optional[int] = None,
    backend: str = "scipy",
    data: Optional[Mapping[Tuple[int, float], GroupedCounts]] = None,
) -> SweepResult:
    """Run every mechanism over the grid of (α, n, p) and collect metric rows.

    Parameters
    ----------
    alphas, group_sizes, probabilities:
        The parameter grid.  ``probabilities`` controls the Binomial data
        model; it is ignored for any ``(n, p)`` pair supplied in ``data``.
    mechanisms:
        Mechanism names (resolved through the registry; ``"WM"`` triggers an
        LP solve) or pre-built :class:`Mechanism` objects.
    repetitions, num_groups:
        Empirical evaluation parameters.
    metrics:
        Metric functions; default set from :mod:`repro.eval.empirical`.
    seed:
        Root seed; every grid point / mechanism combination receives an
        independent child stream.
    data:
        Optional pre-computed workloads keyed by ``(group_size, probability)``
        overriding the Binomial generator (used by the Adult experiments).
    """
    result = SweepResult()
    metric_functions = dict(DEFAULT_METRICS if metrics is None else metrics)
    seed_sequence = np.random.SeedSequence(seed)
    for alpha in alphas:
        for group_size in group_sizes:
            # Mechanisms depend only on (n, alpha): build them once per pair.
            built = [
                _resolve_mechanism(mechanism, group_size, alpha, backend)
                for mechanism in mechanisms
            ]
            for probability in probabilities:
                if data is not None and (group_size, probability) in data:
                    workload = data[(group_size, probability)]
                else:
                    data_seed, seed_sequence = _split_seed(seed_sequence)
                    workload = GroupedCounts(
                        counts=binomial_group_counts(
                            num_groups, group_size, probability, rng=np.random.default_rng(data_seed)
                        ),
                        group_size=group_size,
                        label=f"binomial(p={probability})",
                    )
                for mechanism in built:
                    eval_seed, seed_sequence = _split_seed(seed_sequence)
                    evaluation = evaluate_mechanism(
                        mechanism,
                        workload,
                        repetitions=repetitions,
                        metrics=metric_functions,
                        rng=np.random.default_rng(eval_seed),
                    )
                    row: Dict[str, Union[str, float, int]] = {
                        "mechanism": mechanism.name,
                        "alpha": float(alpha),
                        "group_size": int(group_size),
                        "probability": float(probability),
                        "num_groups": evaluation.num_groups,
                        "repetitions": repetitions,
                    }
                    for metric in evaluation.metrics():
                        row[metric] = evaluation.mean(metric)
                        row[f"{metric}_std"] = evaluation.std(metric)
                    result.rows.append(row)
    return result


def _split_seed(seed_sequence: np.random.SeedSequence):
    """Return (child, advanced parent) so successive calls yield fresh streams."""
    child, replacement = seed_sequence.spawn(2)
    return child, replacement
