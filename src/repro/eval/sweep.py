"""Parameter sweeps over privacy level, group size and data skew.

The paper's evaluation repeatedly runs the same experiment over grids of
``(α, n, p)``; this module provides a small generic sweep driver used by the
figure-specific experiment modules and directly usable from user code:

>>> from repro.eval.sweep import sweep
>>> result = sweep(alphas=[0.67, 0.91], group_sizes=[4, 8], probabilities=[0.5],
...                mechanisms=("GM", "EM", "UM"), repetitions=5, num_groups=200, seed=1)
>>> len(result.rows) > 0
True
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.mechanism import Mechanism
from repro.data.groups import GroupedCounts
from repro.data.synthetic import binomial_group_counts
from repro.engine.plan import ReleasePlan
from repro.eval.empirical import DEFAULT_METRICS, MetricFunction, evaluate_mechanism
from repro.eval.reporting import format_table, rows_to_csv
from repro.mechanisms.registry import create_mechanism


@dataclass
class SweepResult:
    """Tabular result of a sweep: one row per (mechanism, parameter point)."""

    rows: List[Dict[str, Union[str, float, int]]] = field(default_factory=list)

    def filter(self, **criteria) -> "SweepResult":
        """Rows matching every key=value criterion (values compared with ==)."""
        selected = [
            row
            for row in self.rows
            if all(row.get(key) == value for key, value in criteria.items())
        ]
        return SweepResult(rows=selected)

    def column(self, name: str) -> List[Union[str, float, int]]:
        """Extract one column across all rows."""
        return [row[name] for row in self.rows]

    def series(
        self, x: str, y: str, group_by: str = "mechanism"
    ) -> Dict[str, List[Tuple[float, float]]]:
        """Group rows into (x, y) series keyed by ``group_by`` — plot-ready."""
        series: Dict[str, List[Tuple[float, float]]] = {}
        for row in self.rows:
            series.setdefault(str(row[group_by]), []).append((row[x], row[y]))
        for values in series.values():
            values.sort()
        return series

    def to_table(self, columns: Optional[Sequence[str]] = None, title: Optional[str] = None) -> str:
        """Render as an aligned text table."""
        return format_table(self.rows, columns=columns, title=title)

    def to_csv(self, path=None, columns: Optional[Sequence[str]] = None) -> str:
        """Serialise to CSV text (optionally written to ``path``)."""
        return rows_to_csv(self.rows, path=path, columns=columns)

    def extend(self, other: "SweepResult") -> None:
        """Append another sweep's rows in place."""
        self.rows.extend(other.rows)


#: Process-level default for the parallel design + evaluation stages;
#: ``None`` means run in-process.  Set via :func:`set_default_max_workers`
#: (the experiment runner's ``--max-workers`` flag threads through here) so
#: every sweep in a run picks up the setting without each call site growing
#: a parameter.
DEFAULT_MAX_WORKERS: Optional[int] = None


def set_default_max_workers(max_workers: Optional[int]) -> Optional[int]:
    """Set the default worker count for sweep design/evaluation; returns the old value."""
    global DEFAULT_MAX_WORKERS
    previous = DEFAULT_MAX_WORKERS
    DEFAULT_MAX_WORKERS = None if max_workers is None else int(max_workers)
    return previous


def _resolve_mechanism(
    name_or_mechanism: Union[str, Mechanism], n: int, alpha: float, backend: str
) -> Mechanism:
    if isinstance(name_or_mechanism, Mechanism):
        return name_or_mechanism
    if str(name_or_mechanism).upper() in ("WM", "WEAKLY_HONEST", "WEAK_HONEST"):
        return create_mechanism("WM", n=n, alpha=alpha, backend=backend)
    return create_mechanism(str(name_or_mechanism), n=n, alpha=alpha)


def _resolve_mechanism_task(task) -> Mechanism:
    """Module-level worker so the parallel design stage can pickle its jobs."""
    name, n, alpha, backend = task
    return _resolve_mechanism(name, n, alpha, backend)


def _build_mechanism_grid(
    alphas: Sequence[float],
    group_sizes: Sequence[int],
    mechanisms: Sequence[Union[str, Mechanism]],
    backend: str,
    max_workers: Optional[int],
) -> Dict[Tuple[float, int], List[Mechanism]]:
    """Build every ``(alpha, n)`` mechanism list, optionally across processes.

    Mechanism design depends only on ``(n, alpha)``, not on the random
    streams, so this stage can fan out to worker processes without touching
    reproducibility: results are keyed and ordered deterministically, and the
    data/evaluation seeds are drawn later exactly as in the serial path.
    """
    pairs = [(float(alpha), int(size)) for alpha in alphas for size in group_sizes]
    built: Dict[Tuple[float, int], List[Mechanism]] = {pair: [] for pair in pairs}
    if max_workers is not None and int(max_workers) > 1:
        jobs = []
        for pair in pairs:
            for mechanism in mechanisms:
                if not isinstance(mechanism, Mechanism):
                    jobs.append((str(mechanism), pair[1], pair[0], backend))
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=int(max_workers)) as pool:
            resolved = iter(list(pool.map(_resolve_mechanism_task, jobs)))
        for pair in pairs:
            built[pair] = [
                mechanism if isinstance(mechanism, Mechanism) else next(resolved)
                for mechanism in mechanisms
            ]
    else:
        for alpha, group_size in pairs:
            built[(alpha, group_size)] = [
                _resolve_mechanism(mechanism, group_size, alpha, backend)
                for mechanism in mechanisms
            ]
    return built


def sweep(
    alphas: Sequence[float],
    group_sizes: Sequence[int],
    probabilities: Sequence[float],
    mechanisms: Sequence[Union[str, Mechanism]] = ("GM", "WM", "EM", "UM"),
    repetitions: int = 30,
    num_groups: int = 1000,
    metrics: Optional[Mapping[str, MetricFunction]] = None,
    seed: Optional[int] = None,
    backend: str = "scipy",
    data: Optional[Mapping[Tuple[int, float], GroupedCounts]] = None,
    max_workers: Optional[int] = None,
) -> SweepResult:
    """Run every mechanism over the grid of (α, n, p) and collect metric rows.

    Parameters
    ----------
    alphas, group_sizes, probabilities:
        The parameter grid.  ``probabilities`` controls the Binomial data
        model; it is ignored for any ``(n, p)`` pair supplied in ``data``.
    mechanisms:
        Mechanism names (resolved through the registry; ``"WM"`` triggers an
        LP solve) or pre-built :class:`Mechanism` objects.
    repetitions, num_groups:
        Empirical evaluation parameters.
    metrics:
        Metric functions; default set from :mod:`repro.eval.empirical`.
    seed:
        Root seed; every grid point / mechanism combination receives an
        independent child stream.
    data:
        Optional pre-computed workloads keyed by ``(group_size, probability)``
        overriding the Binomial generator (used by the Adult experiments).
    max_workers:
        Opt-in process parallelism for the design *and* evaluation stages:
        when > 1, the mechanisms for every ``(alpha, n)`` grid point are
        designed concurrently in worker processes, and the per-(grid point,
        mechanism) empirical evaluations are then fanned out across the same
        worker count.  Results are identical to the serial path row-for-row:
        design is deterministic, every evaluation receives the same
        independent child seed it would serially (the seeds are drawn in
        serial order *before* the fan-out), and rows are collected in task
        order.  Metrics, mechanisms and workloads must be picklable to
        ship to the workers (everything this library produces is); sweeps
        with unpicklable custom state (e.g. lambda metrics) fall back to
        serial evaluation.  Defaults to the module-level
        :data:`DEFAULT_MAX_WORKERS`.
    """
    metric_functions = dict(DEFAULT_METRICS if metrics is None else metrics)
    seed_sequence = np.random.SeedSequence(seed)
    if max_workers is None:
        max_workers = DEFAULT_MAX_WORKERS
    # Mechanisms depend only on (n, alpha): build them once per pair, in
    # parallel when requested.
    mechanism_grid = _build_mechanism_grid(alphas, group_sizes, mechanisms, backend, max_workers)
    # Walk the grid in serial order, drawing every data/evaluation seed
    # exactly as the serial path would, yielding the (independent)
    # evaluation tasks lazily.  The serial path keeps only one workload
    # alive at a time; the parallel path submits every task up front
    # (Executor.map consumes the generator eagerly), an accepted
    # O(grid cells) memory cost of opting into worker processes.
    def tasks() -> Iterable[Tuple]:
        sequence = seed_sequence
        for alpha in alphas:
            for group_size in group_sizes:
                built = mechanism_grid[(float(alpha), int(group_size))]
                for probability in probabilities:
                    if data is not None and (group_size, probability) in data:
                        workload = data[(group_size, probability)]
                    else:
                        data_seed, sequence = _split_seed(sequence)
                        workload = GroupedCounts(
                            counts=binomial_group_counts(
                                num_groups,
                                group_size,
                                probability,
                                rng=np.random.default_rng(data_seed),
                            ),
                            group_size=group_size,
                            label=f"binomial(p={probability})",
                        )
                    for mechanism in built:
                        eval_seed, sequence = _split_seed(sequence)
                        base_row: Dict[str, Union[str, float, int]] = {
                            "mechanism": mechanism.name,
                            "alpha": float(alpha),
                            "group_size": int(group_size),
                            "probability": float(probability),
                        }
                        yield (
                            mechanism, workload, repetitions, metric_functions,
                            eval_seed, base_row,
                        )

    grid_cells = len(alphas) * len(group_sizes) * len(probabilities)
    if (
        max_workers is not None
        and int(max_workers) > 1
        and grid_cells * len(mechanisms) > 1
        and _picklable((metric_functions, mechanism_grid, data))
    ):
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=int(max_workers)) as pool:
            rows = list(pool.map(_evaluate_sweep_task, tasks()))
    else:
        rows = [_evaluate_sweep_task(task) for task in tasks()]
    return SweepResult(rows=rows)


def _picklable(payload) -> bool:
    """Whether the evaluation tasks' shared state can ship to workers.

    Everything this library produces pickles (module-level metric
    functions, :class:`~repro.eval.metrics.ExceedsDistanceRate` instances,
    all three mechanism representations, array workloads), but a
    caller-supplied lambda metric — or a mechanism carrying unpicklable
    metadata — does not; those sweeps silently fall back to serial
    evaluation rather than crash mid-run — the rows are identical either
    way.
    """
    import pickle

    try:
        pickle.dumps(payload)
    except Exception:
        return False
    return True


def _evaluate_sweep_task(task) -> Dict[str, Union[str, float, int]]:
    """Run one (grid point, mechanism) evaluation and build its result row.

    Module-level so the parallel evaluation stage can pickle its jobs; the
    serial path runs the very same function in-process, which is what makes
    the two paths identical row-for-row.
    """
    mechanism, workload, repetitions, metric_functions, eval_seed, base_row = task
    # Compile the mechanism into a release plan locally (in the worker, for
    # the parallel path): the evaluator draws through the engine, and the
    # plan's sampling warm-up runs once per task instead of per repetition.
    plan = ReleasePlan.from_mechanism(mechanism)
    evaluation = evaluate_mechanism(
        plan,
        workload,
        repetitions=repetitions,
        metrics=metric_functions,
        rng=np.random.default_rng(eval_seed),
    )
    row = dict(base_row)
    row["num_groups"] = evaluation.num_groups
    row["repetitions"] = repetitions
    for metric in evaluation.metrics():
        row[metric] = evaluation.mean(metric)
        row[f"{metric}_std"] = evaluation.std(metric)
    return row


def _split_seed(seed_sequence: np.random.SeedSequence):
    """Return (child, advanced parent) so successive calls yield fresh streams."""
    child, replacement = seed_sequence.spawn(2)
    return child, replacement
