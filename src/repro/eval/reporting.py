"""Plain-text and CSV reporting for experiment outputs.

The paper presents its results as heatmaps, line plots and bar charts; in a
library context the same information is rendered as ASCII heatmaps and
aligned text tables, and exported as CSV rows so users can plot with their
tool of choice.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.core.mechanism import Mechanism

Row = Mapping[str, Union[str, float, int]]


def format_value(value: Union[str, float, int], precision: int = 4) -> str:
    """Format a cell: floats to fixed precision, everything else via str()."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    rows: Sequence[Row],
    columns: Optional[Sequence[str]] = None,
    precision: int = 4,
    title: Optional[str] = None,
) -> str:
    """Render rows of dictionaries as an aligned plain-text table."""
    rows = list(rows)
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    rendered = [[format_value(row.get(column, ""), precision) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), *(len(line[index]) for line in rendered))
        for index, column in enumerate(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(str(column).ljust(width) for column, width in zip(columns, widths))
    lines.append(header)
    lines.append("  ".join("-" * width for width in widths))
    for line in rendered:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(line, widths)))
    return "\n".join(lines)


def rows_to_csv(
    rows: Sequence[Row],
    path: Optional[Union[str, Path]] = None,
    columns: Optional[Sequence[str]] = None,
) -> str:
    """Serialise rows to CSV text; optionally also write them to ``path``."""
    rows = list(rows)
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    buffer = io.StringIO()
    writer = csv.DictWriter(
        buffer, fieldnames=list(columns), extrasaction="ignore", lineterminator="\n"
    )
    writer.writeheader()
    for row in rows:
        writer.writerow({column: row.get(column, "") for column in columns})
    text = buffer.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text


def ascii_heatmap(
    matrix: Union[np.ndarray, Mechanism],
    title: Optional[str] = None,
    levels: str = " .:-=+*#%@",
) -> str:
    """ASCII heatmap of a probability matrix (rows = outputs, columns = inputs).

    The rendering mirrors the paper's Figures 1, 2 and 7: darker cells carry
    more probability, making gaps (blank rows) and spikes (dark rows far
    from the diagonal) immediately visible.
    """
    if isinstance(matrix, Mechanism):
        if title is None:
            title = f"{matrix.name} (n={matrix.n})"
        matrix = matrix.matrix
    matrix = np.asarray(matrix, dtype=float)
    peak = float(matrix.max()) if matrix.size else 1.0
    if peak <= 0:
        peak = 1.0
    lines: List[str] = []
    if title:
        lines.append(title)
    size_rows, size_cols = matrix.shape
    for i in range(size_rows):
        cells = ""
        for j in range(size_cols):
            level = int(round((len(levels) - 1) * matrix[i, j] / peak))
            cells += levels[level] * 2
        lines.append(f"out {i:>2d} |{cells}|")
    lines.append("        " + "".join(f"{j:<2d}" for j in range(size_cols)))
    lines.append("        (columns = true count)")
    return "\n".join(lines)


#: Above this group size the quadratic-work scores (L1, RMSE — full column
#: scans even columns-on-demand) are skipped by :func:`describe_mechanism`;
#: the O(n) scores (L0, alpha, properties) are always reported.
LARGE_N_DESCRIBE_LIMIT = 10_000


def describe_mechanism(mechanism: Mechanism, precision: int = 4) -> str:
    """A compact textual profile of a mechanism: scores, properties, privacy."""
    from repro.core.losses import l0_score, l1_score, mechanism_rmse
    from repro.core.properties import check_all_properties

    properties = check_all_properties(mechanism)
    property_text = ", ".join(
        f"{prop.value}={'yes' if value else 'no'}" for prop, value in properties.items()
    )
    if mechanism.n > LARGE_N_DESCRIBE_LIMIT:
        scores = (
            f"  L0={l0_score(mechanism):.{precision}f}  "
            f"L1/RMSE skipped (n > {LARGE_N_DESCRIBE_LIMIT}: full column scan)"
        )
    else:
        scores = (
            f"  L0={l0_score(mechanism):.{precision}f}  L1={l1_score(mechanism):.{precision}f}  "
            f"RMSE={mechanism_rmse(mechanism):.{precision}f}"
        )
    lines = [
        f"{mechanism.name}: n={mechanism.n}, designed alpha={mechanism.alpha}",
        f"  achieved alpha={mechanism.max_alpha():.{precision}f} (epsilon={mechanism.epsilon():.{precision}f})",
        scores,
        f"  properties: {property_text}",
    ]
    return "\n".join(lines)
