"""Error metrics on released versus true counts.

These are the empirical counterparts of the analytic losses in
:mod:`repro.core.losses`: the paper's experiments apply a mechanism to every
group's true count and then measure how often (and by how much) the released
count differs from the truth.

Two layers are provided:

* **Matrix kernels** (``*_from_diff``) reduce a shared ``released − true``
  difference array over its last (group) axis in one vectorised pass.  Fed
  a ``(repetitions, num_groups)`` matrix they return the per-repetition
  metric vector the empirical harness records; fed a 1-D array they return
  a scalar.  :func:`exceeds_rate_profile` answers *every* distance
  threshold from one histogram pass.
* **Scalar metrics** (:func:`error_rate`, :func:`mean_absolute_error`, …)
  keep the original ``f(true, released) -> float`` signatures as thin
  wrappers over the kernels.  Each carries its kernel as a ``diff_kernel``
  attribute, which is how :func:`repro.eval.empirical.evaluate_mechanism`
  recognises metrics it can compute from the shared difference matrix
  instead of once per repetition.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np


def _as_pair(true_counts: Sequence[int], released_counts: Sequence[int]):
    true = np.asarray(true_counts, dtype=float)
    released = np.asarray(released_counts, dtype=float)
    if true.shape != released.shape:
        raise ValueError(
            f"true and released counts must have the same shape, got {true.shape} vs {released.shape}"
        )
    if true.size == 0:
        raise ValueError("cannot compute metrics on empty inputs")
    return true, released


def signed_differences(true_counts: Sequence[int], released_counts) -> np.ndarray:
    """The shared ``released − true`` difference array every kernel reduces.

    ``released_counts`` may be a 1-D array matching ``true_counts`` or a
    ``(repetitions, num_groups)`` matrix of repeated releases; the 1-D true
    counts broadcast across the repetition axis.
    """
    true = np.asarray(true_counts, dtype=float)
    released = np.asarray(released_counts, dtype=float)
    if true.size == 0 or released.size == 0:
        raise ValueError("cannot compute metrics on empty inputs")
    if released.shape[-1:] != true.shape[-1:]:
        raise ValueError(
            f"released counts with shape {released.shape} do not match "
            f"true counts with shape {true.shape}"
        )
    return released - true


# --------------------------------------------------------------------- #
# Matrix kernels: one pass over the difference array, group axis last
# --------------------------------------------------------------------- #
def _mean_last_axis(values: np.ndarray) -> np.ndarray:
    """``np.mean(values, axis=-1)`` with the summation order of a 1-D mean.

    numpy's pairwise summation walks memory, not logical rows: reducing the
    last axis of an array whose last axis is *not* contiguous (e.g. an
    F-ordered repetition matrix) can associate the additions differently
    from a 1-D mean of each row, shifting float results by ~1 ulp.  The
    matrix kernels promise to be bit-identical to the scalar wrappers row
    by row, so non-contiguous inputs are compacted first — after which the
    last-axis reduction is exactly the 1-D loop applied per row.  (The same
    pitfall is handled for the histogram query path in
    ``repro.histogram.queries``.)
    """
    values = np.asarray(values)
    if values.ndim > 1 and values.strides[-1] != values.itemsize:
        values = np.ascontiguousarray(values)
    return np.mean(values, axis=-1)


def error_rate_from_diff(diff: np.ndarray) -> np.ndarray:
    """Fraction of groups with a non-zero difference, per repetition."""
    return _mean_last_axis(np.asarray(diff) != 0.0)


def exceeds_rate_from_diff(diff: np.ndarray, d: int) -> np.ndarray:
    """Fraction of groups whose |difference| exceeds ``d``, per repetition."""
    if d < 0:
        raise ValueError("d must be non-negative")
    return _mean_last_axis(np.abs(np.asarray(diff)) > d)


def mae_from_diff(diff: np.ndarray) -> np.ndarray:
    """Mean absolute difference over groups, per repetition."""
    return _mean_last_axis(np.abs(np.asarray(diff)))


def rmse_from_diff(diff: np.ndarray) -> np.ndarray:
    """Root-mean-square difference over groups, per repetition."""
    return np.sqrt(_mean_last_axis(np.asarray(diff) ** 2))


def bias_from_diff(diff: np.ndarray) -> np.ndarray:
    """Mean signed difference (released − true) over groups, per repetition."""
    return _mean_last_axis(np.asarray(diff))


def exceeds_rate_profile(diff: np.ndarray, distances: Sequence[int]) -> np.ndarray:
    """Exceed-rates for *every* distance threshold from one pass over |diff|.

    Counts are integers, so instead of one comparison sweep per threshold
    (the old Figure-12 inner loop) the kernel histograms ``|diff|`` once per
    repetition and reads every threshold's tail mass off the reversed
    cumulative sum.  Returns an array of shape
    ``(len(distances),) + diff.shape[:-1]`` whose slice ``k`` is exactly
    ``exceeds_rate_from_diff(diff, distances[k])`` (bit-identical: both are
    the same integer count divided by the same group count).
    """
    distances = np.asarray(distances, dtype=int)
    if distances.ndim != 1:
        raise ValueError("distances must be a 1-D sequence")
    if distances.size and distances.min() < 0:
        raise ValueError("d must be non-negative")
    magnitudes = np.abs(np.asarray(diff)).astype(np.int64)
    groups = magnitudes.shape[-1]
    flat = magnitudes.reshape(-1, groups)
    width = int(magnitudes.max()) + 1 if magnitudes.size else 1
    offsets = np.arange(flat.shape[0], dtype=np.int64) * width
    histogram = np.bincount(
        (flat + offsets[:, None]).ravel(), minlength=flat.shape[0] * width
    ).reshape(flat.shape[0], width)
    # tails[r, v] = #groups with |diff| >= v; a final zero column answers
    # thresholds at or beyond the largest observed magnitude.
    tails = np.zeros((flat.shape[0], width + 1), dtype=np.int64)
    tails[:, :width] = histogram[:, ::-1].cumsum(axis=1)[:, ::-1]
    rates = tails[:, np.minimum(distances + 1, width)].T / groups
    return rates.reshape((distances.shape[0],) + magnitudes.shape[:-1])


# --------------------------------------------------------------------- #
# Scalar metrics: the original signatures, now thin kernel wrappers
# --------------------------------------------------------------------- #
def error_rate(true_counts: Sequence[int], released_counts: Sequence[int]) -> float:
    """Fraction of groups whose released count differs from the true count.

    This is the quantity plotted in Figure 10 (the empirical ``L0`` before
    the paper's ``(n+1)/n`` rescaling).
    """
    true, released = _as_pair(true_counts, released_counts)
    return float(error_rate_from_diff(released - true))


def exceeds_distance_rate(
    true_counts: Sequence[int], released_counts: Sequence[int], d: int
) -> float:
    """Fraction of groups whose released count is more than ``d`` away from the truth.

    ``d = 0`` recovers :func:`error_rate`; ``d = 1`` is the measure of
    Figure 11, and sweeping ``d`` gives the histograms of Figure 12.
    """
    if d < 0:
        raise ValueError("d must be non-negative")
    true, released = _as_pair(true_counts, released_counts)
    return float(exceeds_rate_from_diff(released - true, d))


def empirical_l0(
    true_counts: Sequence[int], released_counts: Sequence[int], group_size: int
) -> float:
    """Empirical rescaled ``L0``: the wrong-answer rate scaled by ``(n+1)/n``."""
    if group_size < 1:
        raise ValueError("group size must be positive")
    return (group_size + 1) / group_size * error_rate(true_counts, released_counts)


def empirical_l0d(
    true_counts: Sequence[int], released_counts: Sequence[int], d: int, group_size: int
) -> float:
    """Empirical rescaled ``L0,d``: miss-by-more-than-``d`` rate scaled by ``(n+1)/n``."""
    if group_size < 1:
        raise ValueError("group size must be positive")
    return (group_size + 1) / group_size * exceeds_distance_rate(true_counts, released_counts, d)


def mean_absolute_error(true_counts: Sequence[int], released_counts: Sequence[int]) -> float:
    """Mean absolute deviation of released counts from true counts."""
    true, released = _as_pair(true_counts, released_counts)
    return float(mae_from_diff(released - true))


def root_mean_square_error(true_counts: Sequence[int], released_counts: Sequence[int]) -> float:
    """Root-mean-square deviation (the Figure 13 metric)."""
    true, released = _as_pair(true_counts, released_counts)
    return float(rmse_from_diff(released - true))


def mean_signed_error(true_counts: Sequence[int], released_counts: Sequence[int]) -> float:
    """Mean of (released − true): the empirical bias of the mechanism on this data."""
    true, released = _as_pair(true_counts, released_counts)
    return float(bias_from_diff(released - true))


#: Attach each scalar metric's matrix kernel; the empirical harness uses
#: these to compute every default metric from one shared difference matrix.
error_rate.diff_kernel = error_rate_from_diff
mean_absolute_error.diff_kernel = mae_from_diff
root_mean_square_error.diff_kernel = rmse_from_diff
mean_signed_error.diff_kernel = bias_from_diff


def summarise(true_counts: Sequence[int], released_counts: Sequence[int]) -> Dict[str, float]:
    """All scalar metrics at once, keyed by name.

    The inputs are validated once and every scalar is derived from a single
    shared difference array — five metrics, one subtraction.
    """
    true, released = _as_pair(true_counts, released_counts)
    diff = released - true
    return {
        "error_rate": float(error_rate_from_diff(diff)),
        "exceeds_1_rate": float(exceeds_rate_from_diff(diff, 1)),
        "mae": float(mae_from_diff(diff)),
        "rmse": float(rmse_from_diff(diff)),
        "bias": float(bias_from_diff(diff)),
    }


#: Metric registry used by the empirical evaluation harness.  Every metric
#: maps (true, released) to a scalar; parametrised metrics are provided as
#: factories below.
METRICS = {
    "error_rate": error_rate,
    "mae": mean_absolute_error,
    "rmse": root_mean_square_error,
    "bias": mean_signed_error,
}


class ExceedsDistanceRate:
    """A named ``exceeds_distance_rate`` metric for a fixed threshold ``d``.

    A module-level class (rather than a closure) so instances pickle into
    the parallel sweep's worker processes, and carry both the scalar
    signature and the matrix kernel.  The empirical harness additionally
    groups several instances into one :func:`exceeds_rate_profile` pass
    (the Figure-12 sweep over ``d``).
    """

    def __init__(self, d: int) -> None:
        if d < 0:
            raise ValueError("d must be non-negative")
        self.d = int(d)
        self.__name__ = f"exceeds_{self.d}_rate"

    def __call__(self, true_counts: Sequence[int], released_counts: Sequence[int]) -> float:
        return exceeds_distance_rate(true_counts, released_counts, self.d)

    def diff_kernel(self, diff: np.ndarray) -> np.ndarray:
        return exceeds_rate_from_diff(diff, self.d)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ExceedsDistanceRate(d={self.d})"


def distance_metric(d: int) -> ExceedsDistanceRate:
    """A named ``exceeds_distance_rate`` metric for a fixed threshold ``d``."""
    return ExceedsDistanceRate(d)


def distance_metrics(distances: Sequence[int]) -> Dict[str, ExceedsDistanceRate]:
    """Named exceed-rate metrics for every threshold, keyed ``exceeds_{d}_rate``.

    Passing the whole family to ``evaluate_mechanism`` lets it answer every
    threshold from one histogram pass (:func:`exceeds_rate_profile`).
    """
    metrics = {}
    for d in distances:
        metric = ExceedsDistanceRate(d)
        metrics[metric.__name__] = metric
    return metrics
