"""Error metrics on released versus true counts.

These are the empirical counterparts of the analytic losses in
:mod:`repro.core.losses`: the paper's experiments apply a mechanism to every
group's true count and then measure how often (and by how much) the released
count differs from the truth.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np


def _as_pair(true_counts: Sequence[int], released_counts: Sequence[int]):
    true = np.asarray(true_counts, dtype=float)
    released = np.asarray(released_counts, dtype=float)
    if true.shape != released.shape:
        raise ValueError(
            f"true and released counts must have the same shape, got {true.shape} vs {released.shape}"
        )
    if true.size == 0:
        raise ValueError("cannot compute metrics on empty inputs")
    return true, released


def error_rate(true_counts: Sequence[int], released_counts: Sequence[int]) -> float:
    """Fraction of groups whose released count differs from the true count.

    This is the quantity plotted in Figure 10 (the empirical ``L0`` before
    the paper's ``(n+1)/n`` rescaling).
    """
    true, released = _as_pair(true_counts, released_counts)
    return float(np.mean(true != released))


def exceeds_distance_rate(
    true_counts: Sequence[int], released_counts: Sequence[int], d: int
) -> float:
    """Fraction of groups whose released count is more than ``d`` away from the truth.

    ``d = 0`` recovers :func:`error_rate`; ``d = 1`` is the measure of
    Figure 11, and sweeping ``d`` gives the histograms of Figure 12.
    """
    if d < 0:
        raise ValueError("d must be non-negative")
    true, released = _as_pair(true_counts, released_counts)
    return float(np.mean(np.abs(true - released) > d))


def empirical_l0(
    true_counts: Sequence[int], released_counts: Sequence[int], group_size: int
) -> float:
    """Empirical rescaled ``L0``: the wrong-answer rate scaled by ``(n+1)/n``."""
    if group_size < 1:
        raise ValueError("group size must be positive")
    return (group_size + 1) / group_size * error_rate(true_counts, released_counts)


def empirical_l0d(
    true_counts: Sequence[int], released_counts: Sequence[int], d: int, group_size: int
) -> float:
    """Empirical rescaled ``L0,d``: miss-by-more-than-``d`` rate scaled by ``(n+1)/n``."""
    if group_size < 1:
        raise ValueError("group size must be positive")
    return (group_size + 1) / group_size * exceeds_distance_rate(true_counts, released_counts, d)


def mean_absolute_error(true_counts: Sequence[int], released_counts: Sequence[int]) -> float:
    """Mean absolute deviation of released counts from true counts."""
    true, released = _as_pair(true_counts, released_counts)
    return float(np.mean(np.abs(true - released)))


def root_mean_square_error(true_counts: Sequence[int], released_counts: Sequence[int]) -> float:
    """Root-mean-square deviation (the Figure 13 metric)."""
    true, released = _as_pair(true_counts, released_counts)
    return float(np.sqrt(np.mean((true - released) ** 2)))


def mean_signed_error(true_counts: Sequence[int], released_counts: Sequence[int]) -> float:
    """Mean of (released − true): the empirical bias of the mechanism on this data."""
    true, released = _as_pair(true_counts, released_counts)
    return float(np.mean(released - true))


def summarise(true_counts: Sequence[int], released_counts: Sequence[int]) -> Dict[str, float]:
    """All scalar metrics at once, keyed by name."""
    return {
        "error_rate": error_rate(true_counts, released_counts),
        "exceeds_1_rate": exceeds_distance_rate(true_counts, released_counts, 1),
        "mae": mean_absolute_error(true_counts, released_counts),
        "rmse": root_mean_square_error(true_counts, released_counts),
        "bias": mean_signed_error(true_counts, released_counts),
    }


#: Metric registry used by the empirical evaluation harness.  Every metric
#: maps (true, released) to a scalar; parametrised metrics are provided as
#: factories below.
METRICS = {
    "error_rate": error_rate,
    "mae": mean_absolute_error,
    "rmse": root_mean_square_error,
    "bias": mean_signed_error,
}


def distance_metric(d: int):
    """A named ``exceeds_distance_rate`` metric for a fixed threshold ``d``."""

    def metric(true_counts: Sequence[int], released_counts: Sequence[int]) -> float:
        return exceeds_distance_rate(true_counts, released_counts, d)

    metric.__name__ = f"exceeds_{d}_rate"
    return metric
