"""Privacy accounting: composition of α-DP count releases.

The paper analyses a single release of one group's count.  Deployments
rarely stop there: the same group's count may be re-released every week, or
many disjoint groups may be released together.  This module provides the
standard composition rules in the paper's α-parameterisation
(``α = e^{−ε}``, so ε's *add* ⇔ α's *multiply*) and a small budget
accountant that tracks a sequence of releases against a target guarantee.

* **Sequential composition** — releases that all depend on the same
  individual's bit multiply their α's (ε's add).
* **Parallel composition** — releases over disjoint groups of individuals
  compose for free: the overall guarantee is the weakest (smallest ε /
  largest... i.e. the *minimum* α is not needed; the guarantee is the
  maximum ε among them, equivalently the minimum α).

These helpers are deliberately simple (pure ε-DP, no advanced composition or
δ slack) to stay within the paper's model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

import math


def _check_alpha(alpha: float) -> float:
    # The interval test already excludes NaN (all comparisons false) and
    # ±inf, but spell the finiteness check out so the rejection of a
    # poisoned alpha is a contract, not a side effect of comparison rules.
    if not math.isfinite(alpha) or not (0.0 < alpha <= 1.0):
        raise ValueError("alpha must be a finite value in (0, 1] for composition")
    return float(alpha)


def compose_sequential(alphas: Iterable[float]) -> float:
    """Overall α of releases that all observe the same individuals.

    ε's add, so α's multiply: ``α_total = Π α_i``.
    """
    total = 1.0
    count = 0
    for alpha in alphas:
        total *= _check_alpha(alpha)
        count += 1
    if count == 0:
        raise ValueError("at least one release is required")
    return total


def compose_parallel(alphas: Iterable[float]) -> float:
    """Overall α of releases over *disjoint* sets of individuals.

    Each individual is touched by at most one release, so the guarantee is
    the worst single release: ``α_total = min α_i``.
    """
    values = [_check_alpha(alpha) for alpha in alphas]
    if not values:
        raise ValueError("at least one release is required")
    return min(values)


def releases_supported(alpha_per_release: float, alpha_target: float) -> int:
    """How many sequential releases at ``alpha_per_release`` fit within a target.

    Returns the largest ``k`` with ``alpha_per_release^k >= alpha_target``
    (equivalently ``k · ε_release <= ε_target``); zero if even one release
    exceeds the budget.
    """
    alpha_per_release = _check_alpha(alpha_per_release)
    alpha_target = _check_alpha(alpha_target)
    if alpha_per_release == 1.0:
        raise ValueError("a release with alpha = 1 carries no privacy cost; the budget is infinite")
    if alpha_per_release < alpha_target:
        return 0
    return int(math.floor(math.log(alpha_target) / math.log(alpha_per_release) + 1e-12))


def per_release_alpha(alpha_target: float, num_releases: int) -> float:
    """The per-release α needed so ``num_releases`` sequential releases meet a target.

    ``α_release = α_target^{1/k}`` (equivalently ε_target split evenly).
    """
    alpha_target = _check_alpha(alpha_target)
    if num_releases < 1:
        raise ValueError("num_releases must be at least 1")
    return float(alpha_target ** (1.0 / num_releases))


@dataclass
class BudgetExceededError(RuntimeError):
    """Raised by :class:`PrivacyAccountant` when a release would overrun the budget."""

    message: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.message


@dataclass
class PrivacyAccountant:
    """Tracks sequential α-DP releases against a target guarantee.

    Parameters
    ----------
    alpha_target:
        The overall guarantee that must still hold after every recorded
        release (``α_total >= alpha_target``).

    Example
    -------
    >>> accountant = PrivacyAccountant(alpha_target=0.5)
    >>> accountant.record(0.9, label="week 1")
    >>> accountant.record(0.9, label="week 2")
    >>> round(accountant.spent_alpha(), 3)
    0.81
    >>> accountant.remaining_releases(0.9)
    4
    """

    alpha_target: float
    _releases: List[Tuple[str, float]] = field(default_factory=list)
    #: Running left-to-right product of the recorded α's — exactly what
    #: ``compose_sequential`` would recompute, kept incrementally so the
    #: serving hot path (one budget check per request) is O(1) in the
    #: number of past releases instead of O(history).
    _spent: float = field(default=1.0, repr=False)

    def __post_init__(self) -> None:
        self.alpha_target = _check_alpha(self.alpha_target)
        self._spent = (
            compose_sequential(alpha for _, alpha in self._releases)
            if self._releases
            else 1.0
        )

    def spent_alpha(self) -> float:
        """The composed α of everything recorded so far (1.0 if nothing yet)."""
        return self._spent

    def spent_epsilon(self) -> float:
        """The composed ε of everything recorded so far."""
        return float(-math.log(self.spent_alpha()))

    def remaining_alpha(self) -> float:
        """The α still available: target divided by what has been spent."""
        return float(min(1.0, self.alpha_target / self.spent_alpha()))

    def can_release(self, alpha: float) -> bool:
        """Whether a further release at ``alpha`` keeps the target intact."""
        return self.spent_alpha() * _check_alpha(alpha) >= self.alpha_target - 1e-15

    def record(self, alpha: float, label: str = "") -> None:
        """Record a release, refusing it if the budget would be exceeded."""
        if not self.can_release(alpha):
            raise BudgetExceededError(
                f"release at alpha={alpha:g} would push the guarantee below the "
                f"target {self.alpha_target:g} (already spent alpha={self.spent_alpha():g})"
            )
        self.record_admitted(alpha, label=label)

    def record_admitted(self, alpha: float, label: str = "") -> None:
        """Record a release the caller has *already* checked with
        :meth:`can_release` — the second half of a check-then-record pair.

        Skips the redundant budget re-check; the serving hot path pays for
        exactly one :meth:`can_release` per request.
        """
        self._releases.append((label or f"release {len(self._releases) + 1}", float(alpha)))
        self._spent *= float(alpha)

    def remaining_releases(self, alpha: float) -> int:
        """How many further releases at ``alpha`` the remaining budget supports.

        The future releases must keep ``spent · future >= target``, i.e. their
        composed α must stay at or above :meth:`remaining_alpha`; when the
        budget is exactly exhausted this is zero for any ``alpha < 1``.
        """
        return releases_supported(alpha, self.remaining_alpha())

    def history(self) -> List[Tuple[str, float]]:
        """The recorded releases as (label, alpha) pairs, in order."""
        return list(self._releases)

    def describe(self) -> str:
        """One-line budget summary used by the engine/serving ``--stats`` output."""
        return (
            f"alpha_spent={self.spent_alpha():g} "
            f"alpha_remaining={self.remaining_alpha():g} "
            f"releases={len(self._releases)}"
        )
