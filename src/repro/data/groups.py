"""Grouping individuals and computing per-group true counts (Section V-B).

The paper forms small groups by gathering dataset rows "arbitrarily into
groups of a desired size" and then asks each mechanism for a private version
of every group's count of a sensitive binary attribute.  This module holds
the grouping logic shared by the real-data (Adult) and synthetic pipelines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class GroupedCounts:
    """True counts of a sensitive bit within fixed-size groups.

    Attributes
    ----------
    counts:
        Integer array, one true count per group, each in ``[0, group_size]``.
    group_size:
        The common group size ``n``.
    label:
        Name of the sensitive attribute the counts refer to (for reporting).
    """

    counts: np.ndarray
    group_size: int
    label: str = "sensitive"

    def __post_init__(self) -> None:
        counts = np.asarray(self.counts, dtype=int)
        if counts.ndim != 1:
            raise ValueError("counts must be one-dimensional")
        if self.group_size < 1 or int(self.group_size) != self.group_size:
            raise ValueError("group size must be a positive integer")
        if counts.size and (counts.min() < 0 or counts.max() > self.group_size):
            raise ValueError("counts must lie in [0, group_size]")
        object.__setattr__(self, "counts", counts)

    @property
    def num_groups(self) -> int:
        return int(self.counts.shape[0])

    def histogram(self) -> np.ndarray:
        """Empirical distribution of true counts over ``{0, …, n}``."""
        histogram = np.bincount(self.counts, minlength=self.group_size + 1).astype(float)
        return histogram / histogram.sum() if histogram.sum() else histogram

    def empirical_prior(self) -> np.ndarray:
        """Alias for :meth:`histogram`, named for use as a mechanism prior."""
        return self.histogram()


def partition_into_groups(
    bits: Sequence[int],
    group_size: int,
    shuffle: bool = False,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Arrange individual bits into consecutive groups of ``group_size``.

    Returns a 2-D array of shape ``(num_groups, group_size)``; a trailing
    partial group is dropped.  With ``shuffle=True`` the individuals are
    permuted first, which matches the paper's "arbitrary" grouping while
    keeping the result reproducible through ``rng``.
    """
    bits = np.asarray(bits, dtype=int)
    if bits.ndim != 1:
        raise ValueError("bits must be one-dimensional")
    if group_size < 1 or int(group_size) != group_size:
        raise ValueError("group size must be a positive integer")
    if shuffle:
        rng = rng if rng is not None else np.random.default_rng()
        bits = rng.permutation(bits)
    usable = (bits.shape[0] // group_size) * group_size
    if usable == 0:
        return np.zeros((0, group_size), dtype=int)
    return bits[:usable].reshape(-1, group_size)


def group_counts(
    bits: Sequence[int],
    group_size: int,
    label: str = "sensitive",
    shuffle: bool = False,
    rng: Optional[np.random.Generator] = None,
) -> GroupedCounts:
    """Partition a population and return the per-group true counts."""
    groups = partition_into_groups(bits, group_size, shuffle=shuffle, rng=rng)
    counts = groups.sum(axis=1) if groups.size else np.zeros(0, dtype=int)
    return GroupedCounts(counts=counts, group_size=group_size, label=label)
