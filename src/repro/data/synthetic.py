"""Synthetic populations with a private bit (Section V-C).

The paper's synthetic study generates a population of 10,000 individuals,
each holding a private bit that is one with probability ``p``, and divides
them into groups of size ``n``; the per-group counts are then Binomial(n, p).
This module provides that generator, plus helpers for producing the skewed /
balanced distributions the figures sweep over.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

#: Population size used throughout the paper's synthetic experiments.
DEFAULT_POPULATION = 10_000


def _require_probability(p: float, name: str = "p") -> float:
    if not (0.0 <= p <= 1.0):
        raise ValueError(f"{name} must lie in [0, 1], got {p}")
    return float(p)


def bernoulli_population(
    size: int, p: float, rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    """A population of private bits, each one with probability ``p``."""
    if size < 0:
        raise ValueError("population size must be non-negative")
    _require_probability(p)
    rng = rng if rng is not None else np.random.default_rng()
    return (rng.random(size) < p).astype(int)


def population_to_groups(bits: Sequence[int], group_size: int) -> np.ndarray:
    """Split a population of bits into consecutive groups and sum each group.

    Individuals that do not fill the final group are dropped (matching the
    paper's "divide them into small groups of the same size").
    """
    bits = np.asarray(bits, dtype=int)
    if bits.ndim != 1:
        raise ValueError("bits must be a one-dimensional array")
    if np.any((bits != 0) & (bits != 1)):
        raise ValueError("bits must be 0/1 valued")
    if group_size < 1 or int(group_size) != group_size:
        raise ValueError("group size must be a positive integer")
    usable = (bits.shape[0] // group_size) * group_size
    if usable == 0:
        return np.zeros(0, dtype=int)
    return bits[:usable].reshape(-1, group_size).sum(axis=1)


def binomial_group_counts(
    num_groups: int,
    group_size: int,
    p: float,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Directly draw per-group true counts from Binomial(group_size, p).

    Equivalent in distribution to generating a population with
    :func:`bernoulli_population` and grouping it, but cheaper for sweeps.
    """
    if num_groups < 0:
        raise ValueError("number of groups must be non-negative")
    if group_size < 1 or int(group_size) != group_size:
        raise ValueError("group size must be a positive integer")
    _require_probability(p)
    rng = rng if rng is not None else np.random.default_rng()
    return rng.binomial(group_size, p, size=num_groups).astype(int)


def groups_from_population(
    population: int,
    group_size: int,
    p: float,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """The paper's Section V-C workload: a population of ``population``
    individuals with bit-probability ``p``, split into groups of ``group_size``."""
    bits = bernoulli_population(population, p, rng=rng)
    return population_to_groups(bits, group_size)


def skewed_probabilities(levels: int = 9) -> List[float]:
    """A sweep of bit-probabilities from heavily skewed to balanced and back.

    Figure 11/13 vary the input distribution parameter ``p``; this helper
    returns an evenly spaced sweep over ``(0, 1)`` (endpoints excluded so
    every group count remains random), e.g. ``[0.1, 0.2, …, 0.9]`` for the
    default nine levels.
    """
    if levels < 1:
        raise ValueError("levels must be a positive integer")
    return [round((k + 1) / (levels + 1), 10) for k in range(levels)]


def biased_and_balanced_probabilities() -> dict:
    """Named probability settings used when describing results in the paper.

    "Balanced" inputs concentrate group counts near ``n/2`` (where GM does
    poorly); "biased" inputs concentrate counts near the extremes (where GM
    recovers).
    """
    return {
        "balanced": [0.4, 0.5, 0.6],
        "moderate": [0.2, 0.3, 0.7, 0.8],
        "biased": [0.05, 0.1, 0.9, 0.95],
    }


def true_count_histogram(counts: Sequence[int], group_size: int) -> np.ndarray:
    """Empirical distribution of true counts over ``{0, …, n}`` (sums to 1)."""
    counts = np.asarray(counts, dtype=int)
    if counts.size and (counts.min() < 0 or counts.max() > group_size):
        raise ValueError("counts fall outside [0, group_size]")
    histogram = np.bincount(counts, minlength=group_size + 1).astype(float)
    total = histogram.sum()
    if total == 0:
        return histogram
    return histogram / total
