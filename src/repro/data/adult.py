"""A synthetic Adult-like demographic dataset (Section V-B substitution).

The paper's real-data experiments (Figure 10) use the UCI Adult dataset:
32,561 census records with 15 columns, from which three sensitive binary
targets are derived — *young* (age under 30), *gender* (male) and *income*
(above 50K).  The raw file is not available in this offline environment, so
this module generates a synthetic population that reproduces the published
marginal statistics of Adult and the qualitative correlations between the
three targets:

* ages roughly follow Adult's distribution (mean ≈ 38.6, sd ≈ 13.6, clipped
  to 17–90), so about one quarter of records are "young";
* the gender split is roughly 2:1 male;
* about 24% of records have high income, and the high-income probability
  rises with age, education and hours worked and is higher for men — the
  logistic model below matches the Adult marginal rates by subgroup to
  within a few percentage points.

What Figure 10 actually needs from the data is only the *shape of the
per-group true-count distribution*: for arbitrary groups of moderate size,
counts of these attributes concentrate in the middle of the range rather
than at the extremes 0 or n (because the attribute rates are far from 0 and
1 and groups mix individuals).  That shape — which drives the paper's
conclusion that GM underperforms uniform guessing while EM fares best — is
preserved by this generator.  Users with the real ``adult.data`` file can
load it instead via :func:`load_adult_csv`; the experiment drivers accept
either source.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

#: The three sensitive binary targets of Figure 10.
ADULT_TARGETS: Tuple[str, ...] = ("young", "gender", "income")

#: Number of records in the paper's instance of the Adult dataset.
DEFAULT_NUM_RECORDS = 32_561

#: Categorical vocabularies, mirroring the UCI Adult columns that matter for
#: realism of the generated records (values beyond the binary targets are
#: carried only so the dataset "looks like" Adult to downstream users).
WORKCLASSES = (
    "Private",
    "Self-emp-not-inc",
    "Self-emp-inc",
    "Federal-gov",
    "Local-gov",
    "State-gov",
    "Without-pay",
)
EDUCATION_LEVELS = (
    "HS-grad",
    "Some-college",
    "Bachelors",
    "Masters",
    "Assoc-voc",
    "11th",
    "Assoc-acdm",
    "10th",
    "7th-8th",
    "Prof-school",
    "9th",
    "Doctorate",
)
MARITAL_STATUSES = (
    "Married-civ-spouse",
    "Never-married",
    "Divorced",
    "Separated",
    "Widowed",
)
OCCUPATIONS = (
    "Prof-specialty",
    "Craft-repair",
    "Exec-managerial",
    "Adm-clerical",
    "Sales",
    "Other-service",
    "Machine-op-inspct",
    "Transport-moving",
    "Handlers-cleaners",
    "Farming-fishing",
    "Tech-support",
    "Protective-serv",
)

#: Approximate marginal probabilities for the categorical columns (UCI Adult).
_WORKCLASS_WEIGHTS = (0.75, 0.08, 0.04, 0.03, 0.07, 0.04, 0.001)
_EDUCATION_WEIGHTS = (0.32, 0.22, 0.16, 0.05, 0.04, 0.04, 0.03, 0.03, 0.02, 0.02, 0.015, 0.015)
_MARITAL_WEIGHTS = (0.46, 0.33, 0.14, 0.03, 0.04)
_OCCUPATION_WEIGHTS = (0.13, 0.13, 0.13, 0.12, 0.11, 0.10, 0.06, 0.05, 0.04, 0.03, 0.05, 0.05)

#: Education-years lookup used by the income model (mirrors Adult's education-num).
_EDUCATION_YEARS: Dict[str, int] = {
    "7th-8th": 4,
    "9th": 5,
    "10th": 6,
    "11th": 7,
    "HS-grad": 9,
    "Some-college": 10,
    "Assoc-voc": 11,
    "Assoc-acdm": 12,
    "Bachelors": 13,
    "Masters": 14,
    "Prof-school": 15,
    "Doctorate": 16,
}


@dataclass(frozen=True)
class AdultDataset:
    """A demographic dataset exposing the paper's three binary targets.

    The binary targets are stored as 0/1 integer arrays of equal length:

    * ``young`` — 1 if the individual is under 30 years old;
    * ``gender`` — 1 for male (matching the paper's "gender balance" target);
    * ``income`` — 1 for high income (> 50K).
    """

    young: np.ndarray
    gender: np.ndarray
    income: np.ndarray
    source: str = "synthetic"
    attributes: Dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        arrays = {name: np.asarray(getattr(self, name), dtype=int) for name in ADULT_TARGETS}
        lengths = {array.shape[0] for array in arrays.values()}
        if len(lengths) != 1:
            raise ValueError("target arrays must all have the same length")
        for name, array in arrays.items():
            if array.ndim != 1 or np.any((array != 0) & (array != 1)):
                raise ValueError(f"target {name!r} must be a one-dimensional 0/1 array")
            object.__setattr__(self, name, array)

    @property
    def num_records(self) -> int:
        return int(self.young.shape[0])

    def target(self, name: str) -> np.ndarray:
        """Return one of the three binary target columns by name."""
        if name not in ADULT_TARGETS:
            raise KeyError(f"unknown target {name!r}; available: {ADULT_TARGETS}")
        return getattr(self, name)

    def target_rates(self) -> Dict[str, float]:
        """Fraction of ones per target (used to sanity-check the generator)."""
        return {name: float(self.target(name).mean()) for name in ADULT_TARGETS}

    def subset(self, size: int, rng: Optional[np.random.Generator] = None) -> "AdultDataset":
        """A uniformly sampled subset of records (without replacement)."""
        if size < 0 or size > self.num_records:
            raise ValueError("subset size must lie in [0, num_records]")
        rng = rng if rng is not None else np.random.default_rng()
        indices = rng.choice(self.num_records, size=size, replace=False)
        return AdultDataset(
            young=self.young[indices],
            gender=self.gender[indices],
            income=self.income[indices],
            source=f"{self.source}[subset:{size}]",
            attributes={key: np.asarray(value)[indices] for key, value in self.attributes.items()},
        )


def _income_probability(
    age: np.ndarray, education_years: np.ndarray, male: np.ndarray, hours: np.ndarray
) -> np.ndarray:
    """Logistic model for Pr[income > 50K | demographics].

    Coefficients were chosen so the implied marginal rates match the UCI
    Adult dataset: ≈24% overall, ≈30% for men vs ≈11% for women, rising from
    a few percent for under-25s to ≈35% for 45-55 year olds, and strongly
    increasing in education.
    """
    logit = (
        -7.8
        + 0.045 * np.clip(age, 17, 65)
        + 0.33 * education_years
        + 1.15 * male
        + 0.013 * hours
        - 0.00035 * (np.clip(age, 17, 90) - 45.0) ** 2
    )
    return 1.0 / (1.0 + np.exp(-logit))


def generate_adult_like(
    num_records: int = DEFAULT_NUM_RECORDS,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> AdultDataset:
    """Generate a synthetic Adult-like dataset with the three binary targets.

    Either pass an explicit NumPy generator or a seed; with neither, a fresh
    non-deterministic generator is used.
    """
    if num_records < 0:
        raise ValueError("num_records must be non-negative")
    if rng is None:
        rng = np.random.default_rng(seed)
    elif seed is not None:
        raise ValueError("pass either rng or seed, not both")

    # Age: clipped normal matching Adult's mean/sd, with a mild right skew.
    age = rng.normal(loc=37.0, scale=13.5, size=num_records) + rng.exponential(
        1.5, size=num_records
    )
    age = np.clip(np.rint(age), 17, 90).astype(int)

    # Sex: roughly two-thirds male, as in Adult.
    male = (rng.random(num_records) < 0.669).astype(int)

    # Categorical demographics (carried for realism and for downstream users).
    workclass = rng.choice(WORKCLASSES, size=num_records, p=_normalise(_WORKCLASS_WEIGHTS))
    education = rng.choice(EDUCATION_LEVELS, size=num_records, p=_normalise(_EDUCATION_WEIGHTS))
    marital = rng.choice(MARITAL_STATUSES, size=num_records, p=_normalise(_MARITAL_WEIGHTS))
    occupation = rng.choice(OCCUPATIONS, size=num_records, p=_normalise(_OCCUPATION_WEIGHTS))
    education_years = np.array([_EDUCATION_YEARS[level] for level in education], dtype=float)

    # Weekly hours: centred on 40 with mild dependence on sex.
    hours = np.clip(
        np.rint(rng.normal(40.0 + 2.5 * male, 11.0, size=num_records)), 1, 99
    ).astype(int)

    # Income from the logistic model above.
    income_probability = _income_probability(age.astype(float), education_years, male, hours)
    income = (rng.random(num_records) < income_probability).astype(int)

    young = (age < 30).astype(int)
    return AdultDataset(
        young=young,
        gender=male,
        income=income,
        source="synthetic-adult",
        attributes={
            "age": age,
            "workclass": workclass,
            "education": education,
            "education_years": education_years.astype(int),
            "marital_status": marital,
            "occupation": occupation,
            "hours_per_week": hours,
        },
    )


def load_adult_csv(path: Union[str, Path]) -> AdultDataset:
    """Load the real UCI Adult ``adult.data`` CSV, if the user has it.

    Only the columns needed for the paper's three binary targets are parsed:
    age (column 0), sex (column 9) and income (column 14).  Rows with
    missing values in those columns are kept (missingness in Adult is
    concentrated in other columns); malformed rows are skipped.
    """
    path = Path(path)
    young: List[int] = []
    gender: List[int] = []
    income: List[int] = []
    ages: List[int] = []
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        for row in reader:
            if len(row) < 15:
                continue
            try:
                age = int(row[0].strip())
            except ValueError:
                continue
            sex = row[9].strip()
            label = row[14].strip()
            ages.append(age)
            young.append(1 if age < 30 else 0)
            gender.append(1 if sex == "Male" else 0)
            income.append(1 if label.startswith(">50K") else 0)
    if not young:
        raise ValueError(f"no parsable Adult records found in {path}")
    return AdultDataset(
        young=np.asarray(young, dtype=int),
        gender=np.asarray(gender, dtype=int),
        income=np.asarray(income, dtype=int),
        source=str(path),
        attributes={"age": np.asarray(ages, dtype=int)},
    )


def _normalise(weights: Sequence[float]) -> np.ndarray:
    array = np.asarray(weights, dtype=float)
    return array / array.sum()
