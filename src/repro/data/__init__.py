"""Data substrates for the experimental study (Section V).

* :mod:`repro.data.synthetic` — populations of individuals with a private
  bit, Bernoulli/binomial group models, and skew-controlled distributions
  (Section V-C).
* :mod:`repro.data.adult` — a synthetic Adult-like demographic dataset
  with the paper's three binary targets (young / gender / income), replacing
  the UCI Adult file which is not available offline (Section V-B; see
  DESIGN.md for the substitution argument).  A loader for the real Adult CSV
  is provided for users who have the file.
* :mod:`repro.data.groups` — partitioning individuals into fixed-size
  groups and computing per-group true counts.
"""

from repro.data.adult import (
    ADULT_TARGETS,
    AdultDataset,
    generate_adult_like,
    load_adult_csv,
)
from repro.data.groups import GroupedCounts, group_counts, partition_into_groups
from repro.data.synthetic import (
    bernoulli_population,
    binomial_group_counts,
    population_to_groups,
    skewed_probabilities,
)

__all__ = [
    "ADULT_TARGETS",
    "AdultDataset",
    "generate_adult_like",
    "load_adult_csv",
    "GroupedCounts",
    "group_counts",
    "partition_into_groups",
    "bernoulli_population",
    "binomial_group_counts",
    "population_to_groups",
    "skewed_probabilities",
]
