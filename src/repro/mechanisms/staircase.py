"""A truncated discrete staircase mechanism (Geng et al., referenced in Section IV-A).

The staircase mechanism adds integer noise whose probability decays
geometrically in *plateaus* of a configurable width ``r`` rather than at
every step:

    ``Pr[noise = δ] ∝ α^{floor(|δ| / r)}``

With plateau width 1 this is exactly the two-sided geometric distribution,
so the staircase mechanism with ``width=1`` coincides with GM (the
test-suite checks this).  Wider plateaus trade a flatter centre for thinner
tails, which is the behaviour the original (continuous) staircase mechanism
exploits for low ``L1``/``L2`` error at weak privacy levels.

As with GM, outputs outside ``[0, n]`` are clamped to the range; clamping is
post-processing and therefore preserves the α-DP guarantee of the additive
noise.  The paper cites the staircase mechanism as an example of a *fair*
mechanism from prior work; the untruncated noise is indeed input-independent,
though (like GM) the clamped version loses fairness at the boundary, which
our property checks make visible.

The geometric-family structure gives every column and its CDF a closed form
(the infinite plateau tails sum analytically), so
:func:`staircase_mechanism` returns a
:class:`~repro.core.mechanism.ClosedFormMechanism`.  Property answers and
``max_alpha`` are left to the generic streaming checks, which cost O(n) per
column pair — unlike GM/EM, the staircase boundary interactions are not
worth hand-deriving.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.core.mechanism import ClosedFormMechanism, ClosedFormSpec, Mechanism


def _check_parameters(n: int, alpha: float, width: int) -> None:
    if int(n) != n or n < 1:
        raise ValueError("group size n must be a positive integer")
    if not (0.0 < alpha < 1.0):
        raise ValueError("the staircase mechanism requires alpha in (0, 1)")
    if width < 1 or int(width) != width:
        raise ValueError("plateau width must be a positive integer")


def _unnormalised_weight(delta: int, alpha: float, width: int) -> float:
    """Unnormalised probability weight ``α^{floor(|δ| / width)}``."""
    return alpha ** (abs(delta) // width)


def _unnormalised_upper_tail(threshold: int, alpha: float, width: int) -> float:
    """Unnormalised mass of all noise values ``δ >= threshold`` (threshold >= 1).

    The values between ``threshold`` and the end of its plateau share one
    exponent; every later plateau contributes ``width`` values at the next
    exponent, which sums in closed form.
    """
    if threshold < 1:
        raise ValueError("threshold must be at least 1")
    level = threshold // width
    next_boundary = (level + 1) * width
    partial_plateau = (next_boundary - threshold) * alpha**level
    remaining_plateaus = width * alpha ** (level + 1) / (1.0 - alpha)
    return partial_plateau + remaining_plateaus


def _upper_tail_array(thresholds: np.ndarray, alpha: float, width: int) -> np.ndarray:
    """Vectorised :func:`_unnormalised_upper_tail` over a threshold array (>= 1)."""
    thresholds = np.asarray(thresholds, dtype=np.int64)
    level = thresholds // width
    next_boundary = (level + 1) * width
    partial_plateau = (next_boundary - thresholds) * alpha ** level.astype(float)
    remaining_plateaus = width * alpha ** (level + 1.0) / (1.0 - alpha)
    return partial_plateau + remaining_plateaus


def staircase_noise_pmf(alpha: float, width: int, support: int) -> np.ndarray:
    """PMF of staircase noise on ``{-support, …, +support}``, renormalised.

    Intended for inspection and plotting; :func:`staircase_matrix` folds the
    infinite tails exactly rather than truncating them.
    """
    _check_parameters(1, alpha, width)
    if support < 0:
        raise ValueError("support must be non-negative")
    offsets = np.arange(-support, support + 1)
    weights = alpha ** (np.abs(offsets) // width)
    return weights / weights.sum()


def staircase_column(n: int, alpha: float, width: int, j: int) -> np.ndarray:
    """Column ``j`` of the truncated staircase matrix, evaluated directly.

    Interior outputs carry the plateau weight of their offset from the true
    count; the clamping outputs 0 and ``n`` absorb the exact mass of the two
    infinite tails, so each column sums to one with no truncation error.
    This one function backs both the dense matrix and the closed form.
    """
    size = n + 1
    normaliser = 1.0 + 2.0 * _unnormalised_upper_tail(1, alpha, width)
    column = np.zeros(size)
    interior = np.arange(1, size - 1)
    column[1 : size - 1] = alpha ** (np.abs(interior - j) // width).astype(float)
    # Output 0 absorbs all noise <= -j; by symmetry of the noise this is
    # the upper tail at threshold j (plus the point mass at 0 when j = 0).
    if j == 0:
        column[0] = 1.0 + _unnormalised_upper_tail(1, alpha, width)
    else:
        column[0] = _unnormalised_upper_tail(j, alpha, width)
    # Output n absorbs all noise >= n - j.
    if j == n:
        column[n] = 1.0 + _unnormalised_upper_tail(1, alpha, width)
    else:
        column[n] = _unnormalised_upper_tail(n - j, alpha, width)
    return column / normaliser


def staircase_matrix(n: int, alpha: float, width: int = 1) -> np.ndarray:
    """Transition matrix of the truncated discrete staircase mechanism."""
    _check_parameters(n, alpha, width)
    return np.column_stack([staircase_column(n, alpha, width, j) for j in range(n + 1)])


def _staircase_cdf(
    n: int, alpha: float, width: int, i: np.ndarray, j: np.ndarray
) -> np.ndarray:
    """Analytic column CDF of the truncated staircase mechanism.

    Clamping makes the CDF a pure tail expression of the additive noise:
    ``F(i | j) = tail(j − i) / Z`` below the true count and
    ``1 − tail(i − j + 1) / Z`` at or above it.
    """
    i = np.asarray(i, dtype=np.int64)
    j = np.asarray(j, dtype=np.int64)
    normaliser = 1.0 + 2.0 * _unnormalised_upper_tail(1, alpha, width)
    below = _upper_tail_array(np.maximum(j - i, 1), alpha, width) / normaliser
    above = 1.0 - _upper_tail_array(np.maximum(i - j + 1, 1), alpha, width) / normaliser
    cdf = np.where(i < j, below, above)
    cdf = np.where(i >= n, 1.0, cdf)
    return np.where(i < 0, 0.0, cdf)


def staircase_mechanism(n: int, alpha: float, width: int = 1) -> Mechanism:
    """The truncated discrete staircase mechanism as a closed-form mechanism."""
    _check_parameters(n, alpha, width)
    n = int(n)
    alpha = float(alpha)
    width = int(width)
    spec = ClosedFormSpec(
        factory="STAIRCASE",
        params={"alpha": alpha, "width": width},
        column_fn=lambda j: staircase_column(n, alpha, width, j),
        cdf_fn=lambda i, j: _staircase_cdf(n, alpha, width, i, j),
    )
    mechanism = ClosedFormMechanism(
        n=n,
        spec=spec,
        name=f"STAIRCASE[{width}]" if width != 1 else "STAIRCASE",
        alpha=None,
        metadata={
            "source": "closed-form",
            "representation": "closed-form",
            "definition": "truncated discrete staircase mechanism",
            "width": width,
        },
    )
    mechanism.alpha = mechanism.max_alpha()
    return mechanism


def sample_staircase_mechanism(
    true_count: int,
    n: int,
    alpha: float,
    width: int = 1,
    rng: Optional[np.random.Generator] = None,
    size: Optional[int] = None,
    support_multiplier: int = 64,
) -> Union[int, np.ndarray]:
    """Operational form: draw staircase noise, add, clamp to ``[0, n]``.

    Sampling materialises the noise PMF out to ``support_multiplier * width``
    plateaus on each side, which leaves a tail mass far below 1e-12 for any
    α bounded away from 1; clamping then maps that remote tail to the same
    outputs it would have reached anyway.
    """
    _check_parameters(n, alpha, width)
    if not (0 <= true_count <= n):
        raise ValueError(f"true count {true_count} outside [0, {n}]")
    rng = rng if rng is not None else np.random.default_rng()
    support = max(n + 1, support_multiplier * width)
    pmf = staircase_noise_pmf(alpha, width, support)
    offsets = np.arange(-support, support + 1)
    noise = rng.choice(offsets, size=size, p=pmf)
    released = np.clip(true_count + noise, 0, n)
    if size is None:
        return int(released)
    return released.astype(int)
