"""The uniform mechanism UM (Definition 5).

UM ignores its input and reports a uniformly random value from ``{0, …, n}``.
It is the feasibility witness of Theorem 2 — it satisfies every structural
property and any α-DP constraint simultaneously — and the trivial baseline
against which the paper normalises the ``L0`` score (UM scores exactly 1).

:func:`uniform_mechanism` returns a
:class:`~repro.core.mechanism.ClosedFormMechanism`: the column, CDF,
diagonal and every property answer are trivially analytic, so UM costs O(1)
memory at any group size.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.mechanism import ClosedFormMechanism, ClosedFormSpec, Mechanism


def uniform_column(n: int, j: int) -> np.ndarray:
    """Column ``j`` of UM: the constant vector ``1 / (n + 1)``."""
    return np.full(n + 1, 1.0 / (n + 1))


def uniform_matrix(n: int) -> np.ndarray:
    """The constant matrix ``Pr[i | j] = 1 / (n + 1)``."""
    if int(n) != n or n < 1:
        raise ValueError("group size n must be a positive integer")
    size = n + 1
    return np.full((size, size), 1.0 / size)


def _uniform_cdf(n: int, i: np.ndarray, j: np.ndarray) -> np.ndarray:
    """Analytic column CDF of UM: ``F(i | j) = (i + 1) / (n + 1)``."""
    i = np.asarray(i, dtype=np.int64)
    cdf = (i + 1.0) / (n + 1.0)
    cdf = np.where(i >= n, 1.0, cdf)
    return np.where(i < 0, 0.0, cdf)


def _uniform_properties(tolerance: float) -> Dict[str, bool]:
    """UM satisfies every structural property (Theorem 2's witness)."""
    return {"RH": True, "RM": True, "CH": True, "CM": True, "F": True, "WH": True, "S": True}


def uniform_mechanism(n: int, alpha: float = 1.0) -> Mechanism:
    """The uniform mechanism UM as a closed-form mechanism.

    ``alpha`` is accepted (and recorded) only so UM can be constructed
    through the same factory interface as the other mechanisms; UM satisfies
    every α ∈ [0, 1].
    """
    if int(n) != n or n < 1:
        raise ValueError("group size n must be a positive integer")
    n = int(n)
    spec = ClosedFormSpec(
        factory="UM",
        params={"alpha": float(alpha)},
        column_fn=lambda j: uniform_column(n, j),
        cdf_fn=lambda i, j: _uniform_cdf(n, i, j),
        diagonal_fn=lambda: np.full(n + 1, 1.0 / (n + 1)),
        # Every column is identical, so every adjacent ratio is exactly 1.
        max_alpha_fn=lambda: 1.0,
        properties_fn=_uniform_properties,
    )
    return ClosedFormMechanism(
        n=n,
        spec=spec,
        name="UM",
        alpha=alpha,
        metadata={
            "source": "closed-form",
            "representation": "closed-form",
            "definition": "uniform mechanism (Def. 5)",
        },
    )
