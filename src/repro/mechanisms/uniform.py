"""The uniform mechanism UM (Definition 5).

UM ignores its input and reports a uniformly random value from ``{0, …, n}``.
It is the feasibility witness of Theorem 2 — it satisfies every structural
property and any α-DP constraint simultaneously — and the trivial baseline
against which the paper normalises the ``L0`` score (UM scores exactly 1).
"""

from __future__ import annotations

import numpy as np

from repro.core.mechanism import Mechanism


def uniform_matrix(n: int) -> np.ndarray:
    """The constant matrix ``Pr[i | j] = 1 / (n + 1)``."""
    if int(n) != n or n < 1:
        raise ValueError("group size n must be a positive integer")
    size = n + 1
    return np.full((size, size), 1.0 / size)


def uniform_mechanism(n: int, alpha: float = 1.0) -> Mechanism:
    """The uniform mechanism UM as a :class:`Mechanism`.

    ``alpha`` is accepted (and recorded) only so UM can be constructed
    through the same factory interface as the other mechanisms; UM satisfies
    every α ∈ [0, 1].
    """
    matrix = uniform_matrix(n)
    return Mechanism(
        matrix,
        name="UM",
        alpha=alpha,
        metadata={"source": "closed-form", "definition": "uniform mechanism (Def. 5)"},
    )
