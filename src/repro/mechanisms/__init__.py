"""Named mechanisms from the paper and standard baselines.

The paper's analysis (Section IV-D, Figure 6) reduces constrained mechanism
design for the ``L0`` objective to four named mechanisms:

* **GM** — the range-restricted geometric mechanism (:mod:`geometric`),
  optimal for BASICDP alone.
* **EM** — the explicit fair mechanism introduced by the paper
  (:mod:`fair`), optimal among fair mechanisms and satisfying all seven
  structural properties.
* **WM** — the weakly honest mechanism found by solving an LP
  (:mod:`weakly_honest`), sandwiched between GM and EM.
* **UM** — the uniform mechanism (:mod:`uniform`), the trivial baseline.

For comparison and for the prior-work discussion of Section II-B the package
also implements binary and n-ary randomized response
(:mod:`randomized_response`), the exponential mechanism (:mod:`exponential`),
the rounded/truncated Laplace mechanism (:mod:`laplace`) and a truncated
discrete staircase mechanism (:mod:`staircase`).  :mod:`registry` exposes all
of them behind a single ``create(name, n, alpha)`` factory.
"""

from repro.mechanisms.geometric import geometric_mechanism, two_sided_geometric_noise
from repro.mechanisms.fair import explicit_fair_mechanism, fair_exponent_matrix
from repro.mechanisms.uniform import uniform_mechanism
from repro.mechanisms.weakly_honest import weakly_honest_mechanism
from repro.mechanisms.randomized_response import (
    binary_randomized_response,
    nary_randomized_response,
)
from repro.mechanisms.exponential import exponential_mechanism
from repro.mechanisms.laplace import laplace_mechanism
from repro.mechanisms.staircase import staircase_mechanism
from repro.mechanisms.registry import available_mechanisms, create_mechanism

__all__ = [
    "geometric_mechanism",
    "two_sided_geometric_noise",
    "explicit_fair_mechanism",
    "fair_exponent_matrix",
    "uniform_mechanism",
    "weakly_honest_mechanism",
    "binary_randomized_response",
    "nary_randomized_response",
    "exponential_mechanism",
    "laplace_mechanism",
    "staircase_mechanism",
    "available_mechanisms",
    "create_mechanism",
]
