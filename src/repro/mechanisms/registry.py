"""A single factory for every named mechanism in the library.

The experiments and examples frequently need "the four paper mechanisms for
this (n, α)" or "mechanism X by name from the command line"; this registry
keeps that lookup in one place.

>>> from repro.mechanisms.registry import create_mechanism
>>> gm = create_mechanism("GM", n=8, alpha=0.9)
>>> em = create_mechanism("EM", n=8, alpha=0.9)
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from repro.core.mechanism import Mechanism
from repro.mechanisms.exponential import exponential_mechanism
from repro.mechanisms.fair import explicit_fair_mechanism
from repro.mechanisms.geometric import geometric_mechanism
from repro.mechanisms.laplace import laplace_mechanism
from repro.mechanisms.randomized_response import nary_randomized_response
from repro.mechanisms.staircase import staircase_mechanism
from repro.mechanisms.uniform import uniform_mechanism
from repro.mechanisms.weakly_honest import weakly_honest_mechanism

#: Factories keyed by canonical name.  Every factory takes (n, alpha) plus
#: optional keyword arguments specific to the mechanism.
_FACTORIES: Dict[str, Callable[..., Mechanism]] = {
    "GM": geometric_mechanism,
    "EM": explicit_fair_mechanism,
    "UM": lambda n, alpha=1.0, **kw: uniform_mechanism(n, alpha=alpha),
    "WM": weakly_honest_mechanism,
    "NRR": nary_randomized_response,
    "EXP": exponential_mechanism,
    "LAPLACE": laplace_mechanism,
    "STAIRCASE": staircase_mechanism,
}

#: Aliases accepted by :func:`create_mechanism`.
_ALIASES: Dict[str, str] = {
    "GEOMETRIC": "GM",
    "FAIR": "EM",
    "EXPLICIT_FAIR": "EM",
    "UNIFORM": "UM",
    "WEAKLY_HONEST": "WM",
    "WEAK_HONEST": "WM",
    "RANDOMIZED_RESPONSE": "NRR",
    "EXPONENTIAL": "EXP",
    "LAP": "LAPLACE",
}

#: The four mechanisms compared throughout the paper's evaluation.
PAPER_MECHANISMS: Tuple[str, ...] = ("GM", "WM", "EM", "UM")

#: Factories that build closed-form (matrix-free) representations.  The
#: remaining factories (EXP with arbitrary quality functions, LAPLACE's
#: transcendental CDF differences, WM's LP solve) stay dense/sparse.
CLOSED_FORM_MECHANISMS: Tuple[str, ...] = ("GM", "EM", "UM", "NRR", "STAIRCASE")


def is_closed_form(name: str) -> bool:
    """Whether the named factory produces a closed-form representation."""
    return canonical_name(name) in CLOSED_FORM_MECHANISMS


def rebuild_closed_form(payload) -> Mechanism:
    """Rebuild a closed-form mechanism from its serialised descriptor.

    Inverse of :meth:`~repro.core.mechanism.ClosedFormMechanism.to_dict`:
    the descriptor stores the factory key plus the keyword arguments that
    reproduce the factory call, so deserialisation re-runs the factory and
    restores the recorded name/alpha/metadata.
    """
    factory = canonical_name(str(payload["factory"]))
    if factory not in CLOSED_FORM_MECHANISMS:
        raise ValueError(f"{factory!r} is not a closed-form factory")
    mechanism = _FACTORIES[factory](n=int(payload["n"]), **dict(payload.get("params", {})))
    mechanism.name = str(payload.get("name", mechanism.name))
    mechanism.alpha = payload.get("alpha", mechanism.alpha)
    mechanism.metadata = dict(payload.get("metadata", {}))
    return mechanism


def available_mechanisms() -> List[str]:
    """Canonical names of every mechanism the registry can build."""
    return sorted(_FACTORIES)


def canonical_name(name: str) -> str:
    """Resolve aliases and case to a canonical registry key."""
    key = name.strip().upper().replace("-", "_").replace(" ", "_")
    key = _ALIASES.get(key, key)
    if key not in _FACTORIES:
        raise KeyError(
            f"unknown mechanism {name!r}; available: {', '.join(available_mechanisms())}"
        )
    return key


def create_mechanism(name: str, n: int, alpha: float, **kwargs) -> Mechanism:
    """Build a mechanism by name for the given group size and privacy level."""
    return _FACTORIES[canonical_name(name)](n=n, alpha=alpha, **kwargs)


def paper_mechanisms(n: int, alpha: float, backend: str = "scipy") -> List[Mechanism]:
    """The four mechanisms of the paper's experiments (GM, WM, EM, UM), in order.

    WM requires an LP solve; ``backend`` selects which LP backend performs it.
    """
    mechanisms: List[Mechanism] = []
    for name in PAPER_MECHANISMS:
        if name == "WM":
            mechanisms.append(weakly_honest_mechanism(n=n, alpha=alpha, backend=backend))
        else:
            mechanisms.append(create_mechanism(name, n=n, alpha=alpha))
    return mechanisms
