"""Randomized response mechanisms (Section II-B, "mechanisms from coin-tossing").

Two variants are implemented:

* **Binary randomized response** — the classical Warner design for a single
  private bit (the ``n = 1`` case).  The respondent reports the truth with
  probability ``p > 1/2`` and lies otherwise, achieving ``α = (1 − p)/p``
  differential privacy.  The paper notes this is the unique optimal
  mechanism for ``n = 1`` under any objective ``O_{p,Σ}``.
* **n-ary randomized response** — the extension of Geng et al. used by
  RAPPOR-style systems: report the true count with probability ``p``,
  otherwise report a uniformly random *other* value.  The paper remarks it
  "gives low utility for count queries"; including it lets the experiments
  quantify that remark.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.mechanism import Mechanism
from repro.core.theory import (
    nary_randomized_response_truth_probability,
    randomized_response_truth_probability,
)


def binary_randomized_response(
    alpha: Optional[float] = None, truth_probability: Optional[float] = None
) -> Mechanism:
    """Binary randomized response over a single private bit (group size 1).

    Exactly one of ``alpha`` or ``truth_probability`` must be given: either
    the target privacy level (from which the optimal truth probability
    ``p = 1 / (1 + α)`` is derived), or the truth probability directly.
    """
    if (alpha is None) == (truth_probability is None):
        raise ValueError("provide exactly one of alpha or truth_probability")
    if truth_probability is None:
        if not (0.0 <= alpha <= 1.0):
            raise ValueError("alpha must lie in [0, 1]")
        truth_probability = randomized_response_truth_probability(alpha)
    if not (0.5 <= truth_probability <= 1.0):
        raise ValueError("truth probability must lie in [0.5, 1]")
    p = float(truth_probability)
    matrix = np.array([[p, 1.0 - p], [1.0 - p, p]])
    achieved_alpha = (1.0 - p) / p if p > 0 else 0.0
    return Mechanism(
        matrix,
        name="RR",
        alpha=achieved_alpha,
        metadata={
            "source": "closed-form",
            "definition": "binary randomized response",
            "truth_probability": p,
        },
    )


def nary_randomized_response(
    n: int, alpha: float, truth_probability: Optional[float] = None
) -> Mechanism:
    """n-ary randomized response of Geng et al. over the outputs ``{0, …, n}``.

    Reports the input with probability ``p`` and otherwise a uniformly
    random other output.  When ``truth_probability`` is omitted the largest
    ``p`` compatible with α-DP in our neighbouring-input sense is used,
    ``p = 1 / (1 + n α)``.
    """
    if int(n) != n or n < 1:
        raise ValueError("group size n must be a positive integer")
    if not (0.0 <= alpha <= 1.0):
        raise ValueError("alpha must lie in [0, 1]")
    size = n + 1
    if truth_probability is None:
        truth_probability = nary_randomized_response_truth_probability(n, alpha)
    p = float(truth_probability)
    if not (0.0 < p <= 1.0):
        raise ValueError("truth probability must lie in (0, 1]")
    off_diagonal = (1.0 - p) / n if n > 0 else 0.0
    matrix = np.full((size, size), off_diagonal)
    np.fill_diagonal(matrix, p)
    mechanism = Mechanism(
        matrix,
        name="NRR",
        alpha=None,
        metadata={
            "source": "closed-form",
            "definition": "n-ary randomized response (Geng et al.)",
            "truth_probability": p,
        },
    )
    # Record the privacy level the matrix actually achieves rather than the
    # requested one, so callers can see when a supplied p is too aggressive.
    mechanism.alpha = mechanism.max_alpha()
    return mechanism
