"""Randomized response mechanisms (Section II-B, "mechanisms from coin-tossing").

Two variants are implemented:

* **Binary randomized response** — the classical Warner design for a single
  private bit (the ``n = 1`` case).  The respondent reports the truth with
  probability ``p > 1/2`` and lies otherwise, achieving ``α = (1 − p)/p``
  differential privacy.  The paper notes this is the unique optimal
  mechanism for ``n = 1`` under any objective ``O_{p,Σ}``.
* **n-ary randomized response** — the extension of Geng et al. used by
  RAPPOR-style systems: report the true count with probability ``p``,
  otherwise report a uniformly random *other* value.  The paper remarks it
  "gives low utility for count queries"; including it lets the experiments
  quantify that remark.

The n-ary variant has a two-valued column (``p`` on the diagonal, a constant
off-diagonal mass), so :func:`nary_randomized_response` returns a
:class:`~repro.core.mechanism.ClosedFormMechanism` with analytic column,
CDF, ``max_alpha`` and property answers — it scales to any group size in
O(1) memory.  The binary variant is a 2x2 matrix and stays dense.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core.mechanism import ClosedFormMechanism, ClosedFormSpec, Mechanism
from repro.core.theory import (
    nary_randomized_response_truth_probability,
    randomized_response_truth_probability,
)


def binary_randomized_response(
    alpha: Optional[float] = None, truth_probability: Optional[float] = None
) -> Mechanism:
    """Binary randomized response over a single private bit (group size 1).

    Exactly one of ``alpha`` or ``truth_probability`` must be given: either
    the target privacy level (from which the optimal truth probability
    ``p = 1 / (1 + α)`` is derived), or the truth probability directly.
    """
    if (alpha is None) == (truth_probability is None):
        raise ValueError("provide exactly one of alpha or truth_probability")
    if truth_probability is None:
        if not (0.0 <= alpha <= 1.0):
            raise ValueError("alpha must lie in [0, 1]")
        truth_probability = randomized_response_truth_probability(alpha)
    if not (0.5 <= truth_probability <= 1.0):
        raise ValueError("truth probability must lie in [0.5, 1]")
    p = float(truth_probability)
    matrix = np.array([[p, 1.0 - p], [1.0 - p, p]])
    achieved_alpha = (1.0 - p) / p if p > 0 else 0.0
    return Mechanism(
        matrix,
        name="RR",
        alpha=achieved_alpha,
        metadata={
            "source": "closed-form",
            "definition": "binary randomized response",
            "truth_probability": p,
        },
    )


def nary_column(n: int, p: float, j: int) -> np.ndarray:
    """Column ``j`` of n-ary randomized response: ``p`` at ``j``, constant elsewhere."""
    off_diagonal = (1.0 - p) / n if n > 0 else 0.0
    column = np.full(n + 1, off_diagonal)
    column[j] = p
    return column


def _nary_cdf(n: int, p: float, i: np.ndarray, j: np.ndarray) -> np.ndarray:
    """Analytic column CDF: a uniform ramp with one step of height ``p − q`` at ``j``."""
    i = np.asarray(i, dtype=np.int64)
    j = np.asarray(j, dtype=np.int64)
    off_diagonal = (1.0 - p) / n if n > 0 else 0.0
    cdf = (i + 1.0) * off_diagonal + np.where(i >= j, p - off_diagonal, 0.0)
    cdf = np.where(i >= n, 1.0, cdf)
    return np.where(i < 0, 0.0, cdf)


def _nary_max_alpha(n: int, p: float) -> float:
    """Analytic :meth:`Mechanism.max_alpha` for n-ary randomized response.

    Adjacent columns differ only in the two rows holding their diagonals,
    where the entries are ``p`` and ``q = (1 − p)/n``; the binding ratio is
    ``min(p, q) / max(p, q)`` (zero when only one of them is zero).
    """
    q = (1.0 - p) / n if n > 0 else 0.0
    if p == q:
        return 1.0
    if p == 0.0 or q == 0.0:
        return 0.0
    return float(min(p / q, q / p))


def _nary_properties(n: int, p: float, tolerance: float) -> Dict[str, bool]:
    """Analytic structural-property verdicts for n-ary randomized response.

    With ``q = (1 − p)/n``: fairness and symmetry are structural; the
    row/column honesty and monotonicity family holds exactly when the
    diagonal dominates (``q <= p + tol``); weak honesty needs
    ``p >= 1/(n+1)``.
    """
    q = (1.0 - p) / n if n > 0 else 0.0
    dominant = q <= p + tolerance
    return {
        "RH": dominant,
        "RM": dominant,
        "CH": dominant,
        "CM": dominant,
        "F": True,
        "WH": p >= 1.0 / (n + 1) - tolerance,
        "S": True,
    }


def nary_randomized_response(
    n: int, alpha: float, truth_probability: Optional[float] = None
) -> Mechanism:
    """n-ary randomized response of Geng et al. over the outputs ``{0, …, n}``.

    Reports the input with probability ``p`` and otherwise a uniformly
    random other output.  When ``truth_probability`` is omitted the largest
    ``p`` compatible with α-DP in our neighbouring-input sense is used,
    ``p = 1 / (1 + n α)``.
    """
    if int(n) != n or n < 1:
        raise ValueError("group size n must be a positive integer")
    if not (0.0 <= alpha <= 1.0):
        raise ValueError("alpha must lie in [0, 1]")
    n = int(n)
    params = {"alpha": float(alpha)}
    if truth_probability is not None:
        params["truth_probability"] = float(truth_probability)
    if truth_probability is None:
        truth_probability = nary_randomized_response_truth_probability(n, alpha)
    p = float(truth_probability)
    if not (0.0 < p <= 1.0):
        raise ValueError("truth probability must lie in (0, 1]")
    spec = ClosedFormSpec(
        factory="NRR",
        params=params,
        column_fn=lambda j: nary_column(n, p, j),
        cdf_fn=lambda i, j: _nary_cdf(n, p, i, j),
        diagonal_fn=lambda: np.full(n + 1, p),
        max_alpha_fn=lambda: _nary_max_alpha(n, p),
        properties_fn=lambda tol: _nary_properties(n, p, tol),
    )
    mechanism = ClosedFormMechanism(
        n=n,
        spec=spec,
        name="NRR",
        alpha=None,
        metadata={
            "source": "closed-form",
            "representation": "closed-form",
            "definition": "n-ary randomized response (Geng et al.)",
            "truth_probability": p,
        },
    )
    # Record the privacy level the matrix actually achieves rather than the
    # requested one, so callers can see when a supplied p is too aggressive.
    mechanism.alpha = mechanism.max_alpha()
    return mechanism
