"""The weakly honest mechanism WM (Sections IV-D and V-A).

WM is not an explicit construction: it is the solution of the constrained LP
with the weak-honesty property (plus, in the paper's final usage, row and
column monotonicity — "From now on, we use WM to refer to the mechanism with
WH, RM and CM properties").  Its ``L0`` cost is sandwiched between GM's and
EM's, and it coincides with GM whenever GM itself is weakly honest
(``n >= 2α / (1 − α)``, Lemma 2).

Two variants are exposed, matching the two LP-solved boxes of the Figure-5
flowchart:

* ``weakly_honest_mechanism(..., column_monotone=False)`` — WH only;
* ``weakly_honest_mechanism(..., column_monotone=True)`` — WH + CM (+ RM),
  the default and the paper's WM.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.design import design_mechanism
from repro.core.losses import Objective
from repro.core.mechanism import Mechanism
from repro.core.properties import StructuralProperty
from repro.lp.solver import DEFAULT_BACKEND


def weakly_honest_mechanism(
    n: int,
    alpha: float,
    column_monotone: bool = True,
    row_monotone: bool = True,
    symmetric: bool = True,
    objective: Optional[Objective] = None,
    backend: str = DEFAULT_BACKEND,
    representation: str = "dense",
    warm_start: Optional[Sequence[int]] = None,
) -> Mechanism:
    """Solve the LP for the weakly honest mechanism WM.

    Parameters
    ----------
    n, alpha:
        Group size and privacy parameter.
    column_monotone:
        Include the CM property (the paper's WM does; the "WH only" branch of
        Figure 5 does not).
    row_monotone:
        Include RM.  The paper notes RM (and S) come "for free" — including
        them does not change the optimal cost — but they pin down a unique,
        well-structured solution among the optima.
    symmetric:
        Include S, for the same reason.
    objective:
        Loss to minimise; defaults to ``L0``.
    backend:
        LP backend name.
    representation:
        ``"dense"`` or ``"sparse"`` (WM solutions are banded; the serving
        layer requests sparse storage).
    warm_start:
        Optional simplex basis from a neighbouring design, forwarded to
        :func:`repro.core.design.design_mechanism`.
    """
    properties = {StructuralProperty.WEAK_HONESTY}
    if column_monotone:
        properties.add(StructuralProperty.COLUMN_MONOTONE)
    if row_monotone:
        properties.add(StructuralProperty.ROW_MONOTONE)
    if symmetric:
        properties.add(StructuralProperty.SYMMETRY)
    mechanism = design_mechanism(
        n=n,
        alpha=alpha,
        properties=properties,
        objective=objective,
        backend=backend,
        name="WM" if column_monotone else "WM[WH]",
        representation=representation,
        warm_start=warm_start,
    )
    mechanism.metadata["definition"] = (
        "weakly honest mechanism (LP with WH"
        + (", CM" if column_monotone else "")
        + (", RM" if row_monotone else "")
        + (", S" if symmetric else "")
        + ")"
    )
    return mechanism
