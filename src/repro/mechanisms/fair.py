"""The explicit fair mechanism EM (Section IV-C, Equation 16, Figure 4).

EM is the paper's new construction: a mechanism that is simultaneously fair,
weakly honest, row/column honest and monotone, and symmetric, at an ``L0``
cost only a factor ``(n + 1)/n`` above GM's optimum.

Every entry is ``y`` times a power of α; the exponent pattern (Equation 16)
is

    ``e(i, j) = |i − j|``                                if ``|i − j| < min(j, n − j)``
    ``e(i, j) = ceil((|i − j| + min(j, n − j)) / 2)``    otherwise

and ``y`` is chosen so each column sums to one, which makes the Lemma-4
fairness bound tight.  Every column contains the same multiset of powers, so
the single normaliser works for all columns, and row-adjacent exponents
differ by at most one, which is exactly the differential-privacy condition.

:func:`explicit_fair_mechanism` returns a
:class:`~repro.core.mechanism.ClosedFormMechanism`: columns are evaluated on
demand from the exponent pattern, the column CDF has a closed form (the
pattern decomposes into three geometric segments, each of which sums
analytically), and all seven structural properties are known a priori —
Theorem 4's whole point is that EM carries them all.
"""

from __future__ import annotations

import math
from typing import Dict

import numpy as np

from repro.core.mechanism import ClosedFormMechanism, ClosedFormSpec, Mechanism
from repro.core.theory import em_diagonal


def _check_parameters(n: int, alpha: float) -> None:
    if int(n) != n or n < 1:
        raise ValueError("group size n must be a positive integer")
    if not (0.0 <= alpha <= 1.0):
        raise ValueError("alpha must lie in [0, 1]")


def fair_exponent_matrix(n: int) -> np.ndarray:
    """The integer exponent pattern ``e(i, j)`` of Equation 16.

    Independent of α; Figure 4 of the paper is this matrix for ``n = 7``
    (multiplied through by ``y α^{e}``).
    """
    if int(n) != n or n < 1:
        raise ValueError("group size n must be a positive integer")
    size = n + 1
    exponents = np.zeros((size, size), dtype=int)
    for j in range(size):
        edge_distance = min(j, n - j)
        for i in range(size):
            distance = abs(i - j)
            if distance < edge_distance:
                exponents[i, j] = distance
            else:
                exponents[i, j] = math.ceil((distance + edge_distance) / 2)
    return exponents


def fair_exponent_column(n: int, j: int) -> np.ndarray:
    """Column ``j`` of the Equation-16 exponent pattern (integer array)."""
    distance = np.abs(np.arange(n + 1) - j)
    edge_distance = min(j, n - j)
    return np.where(distance < edge_distance, distance, (distance + edge_distance + 1) // 2)


def fair_column(n: int, alpha: float, j: int) -> np.ndarray:
    """Column ``j`` of EM's matrix, evaluated directly from Equation 16.

    Backs both the dense :func:`fair_matrix` and the closed-form mechanism;
    the elementwise power/scale operations match the full-matrix build
    bit-for-bit.
    """
    _check_parameters(n, alpha)
    if alpha == 0.0:
        column = np.zeros(n + 1)
        column[j] = 1.0
        return column
    return _fair_column(n, alpha, em_diagonal(n, alpha), j)


def _fair_column(n: int, alpha: float, y: float, j: int) -> np.ndarray:
    """:func:`fair_column` with the normaliser ``y`` precomputed by the caller."""
    if alpha == 0.0:
        column = np.zeros(n + 1)
        column[j] = 1.0
        return column
    exponents = fair_exponent_column(n, j).astype(float)
    return y * alpha**exponents


def fair_matrix(n: int, alpha: float) -> np.ndarray:
    """Exact probability matrix of EM.

    For ``α = 0`` the construction degenerates to the identity mechanism
    (only the zero exponent survives); for ``α = 1`` every power equals one
    and EM coincides with the uniform mechanism.
    """
    _check_parameters(n, alpha)
    size = n + 1
    if alpha == 0.0:
        return np.eye(size)
    exponents = fair_exponent_matrix(n)
    unnormalised = alpha ** exponents.astype(float)
    diagonal_value = em_diagonal(n, alpha)
    matrix = diagonal_value * unnormalised
    return matrix


def _geometric_sum(alpha: float, terms: np.ndarray) -> np.ndarray:
    """``1 + α + … + α^{t−1}`` for a non-negative integer array ``t`` (α < 1)."""
    return (1.0 - alpha ** np.maximum(terms, 0).astype(float)) / (1.0 - alpha)


def _fair_tail_sum(alpha: float, r: np.ndarray) -> np.ndarray:
    """``Σ_{s=0}^{r} α^{ceil(s/2)}`` for a non-negative integer array ``r``.

    The exponents pair up (1, α, α, α², α², …): ``r = 2q`` gives
    ``1 + 2 α (1 + … + α^{q−1})`` and an odd remainder adds ``α^{q+1}``.
    """
    r = np.maximum(r, 0)
    q = r // 2
    total = 1.0 + 2.0 * alpha * _geometric_sum(alpha, q)
    return total + np.where(r % 2 == 1, alpha ** (q + 1.0), 0.0)


def _fair_cdf_left(n: int, alpha: float, y: float, i: np.ndarray, j: np.ndarray) -> np.ndarray:
    """Analytic ``F(i | j)`` for columns in the left half (``j <= n − j``).

    The Equation-16 column splits into the clamped entry at 0 (exponent
    ``j``), the two-sided geometric interior ``k ∈ [1, 2j − 1]`` (exponent
    ``|k − j|``) and the paired tail ``k ∈ [max(2j, 1), n]`` (exponent
    ``ceil(k/2)``); each piece has a geometric closed form.
    """
    i = np.asarray(i, dtype=np.int64)
    j = np.asarray(j, dtype=np.int64)
    # Entry k = 0 carries exponent j (for j = 0 this is the tail's r = 0 term).
    head = alpha ** j.astype(float)
    # Interior k in [1, min(i, 2j - 1)] — empty when j == 0 or i < 1.
    interior_top = np.minimum(i, 2 * j - 1)
    rising = alpha ** np.maximum(j - interior_top, 0).astype(float) * _geometric_sum(
        alpha, interior_top
    )
    falling = _geometric_sum(alpha, j) + alpha * _geometric_sum(alpha, interior_top - j)
    interior = np.where(interior_top <= j, rising, falling)
    interior = np.where(interior_top < 1, 0.0, interior)
    # Tail k in [max(2j, 1), i]: exponent ceil(k/2) = j + ceil(r/2) with
    # k = 2j + r.  For j = 0 the r = 0 term is the head entry, so drop it.
    tail_terms = _fair_tail_sum(alpha, i - 2 * j)
    tail_terms = np.where(j == 0, tail_terms - 1.0, tail_terms)
    tail = alpha ** j.astype(float) * tail_terms
    tail = np.where(i < np.maximum(2 * j, 1), 0.0, tail)
    cdf = y * (head + interior + tail)
    cdf = np.where(i >= n, 1.0, cdf)
    return np.where(i < 0, 0.0, cdf)


def _fair_cdf(n: int, alpha: float, y: float, i: np.ndarray, j: np.ndarray) -> np.ndarray:
    """Analytic column CDF of EM, vectorised over (i, j) arrays.

    Right-half columns reduce to left-half ones through EM's
    centro-symmetry: ``F(i | j) = 1 − F(n − i − 1 | n − j)``.
    """
    i = np.asarray(i, dtype=np.int64)
    j = np.asarray(j, dtype=np.int64)
    if alpha == 0.0:
        return (i >= j).astype(float)
    if alpha == 1.0:
        cdf = (i + 1.0) / (n + 1.0)
        cdf = np.where(i >= n, 1.0, cdf)
        return np.where(i < 0, 0.0, cdf)
    flip = j > n - j
    jj = np.where(flip, n - j, j)
    ii = np.where(flip, n - i - 1, i)
    left = _fair_cdf_left(n, alpha, y, ii, jj)
    cdf = np.where(flip, 1.0 - left, left)
    cdf = np.where(i >= n, 1.0, cdf)
    return np.where(i < 0, 0.0, cdf)


def _fair_properties(tolerance: float) -> Dict[str, bool]:
    """EM satisfies all seven structural properties for every (n, α) — Theorem 4."""
    return {"RH": True, "RM": True, "CH": True, "CM": True, "F": True, "WH": True, "S": True}


def explicit_fair_mechanism(n: int, alpha: float) -> Mechanism:
    """The explicit fair mechanism EM as a closed-form mechanism."""
    _check_parameters(n, alpha)
    n = int(n)
    alpha = float(alpha)
    y = em_diagonal(n, alpha)
    spec = ClosedFormSpec(
        factory="EM",
        params={"alpha": alpha},
        column_fn=lambda j: _fair_column(n, alpha, y, j),
        cdf_fn=lambda i, j: _fair_cdf(n, alpha, y, i, j),
        # The diagonal is the constant fair value y (1 for the identity
        # limit α = 0).
        diagonal_fn=lambda: np.full(n + 1, 1.0 if alpha == 0.0 else y * alpha**0.0),
        # Row-adjacent exponents differ by at most one and by exactly one
        # somewhere in every column pair, so DP is tight at α.
        max_alpha_fn=lambda: alpha,
        properties_fn=_fair_properties,
    )
    return ClosedFormMechanism(
        n=n,
        spec=spec,
        name="EM",
        alpha=alpha,
        metadata={
            "source": "closed-form",
            "representation": "closed-form",
            "definition": "explicit fair mechanism (Eq. 16)",
        },
    )
