"""The explicit fair mechanism EM (Section IV-C, Equation 16, Figure 4).

EM is the paper's new construction: a mechanism that is simultaneously fair,
weakly honest, row/column honest and monotone, and symmetric, at an ``L0``
cost only a factor ``(n + 1)/n`` above GM's optimum.

Every entry is ``y`` times a power of α; the exponent pattern (Equation 16)
is

    ``e(i, j) = |i − j|``                                if ``|i − j| < min(j, n − j)``
    ``e(i, j) = ceil((|i − j| + min(j, n − j)) / 2)``    otherwise

and ``y`` is chosen so each column sums to one, which makes the Lemma-4
fairness bound tight.  Every column contains the same multiset of powers, so
the single normaliser works for all columns, and row-adjacent exponents
differ by at most one, which is exactly the differential-privacy condition.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.mechanism import Mechanism
from repro.core.theory import em_diagonal


def _check_parameters(n: int, alpha: float) -> None:
    if int(n) != n or n < 1:
        raise ValueError("group size n must be a positive integer")
    if not (0.0 <= alpha <= 1.0):
        raise ValueError("alpha must lie in [0, 1]")


def fair_exponent_matrix(n: int) -> np.ndarray:
    """The integer exponent pattern ``e(i, j)`` of Equation 16.

    Independent of α; Figure 4 of the paper is this matrix for ``n = 7``
    (multiplied through by ``y α^{e}``).
    """
    if int(n) != n or n < 1:
        raise ValueError("group size n must be a positive integer")
    size = n + 1
    exponents = np.zeros((size, size), dtype=int)
    for j in range(size):
        edge_distance = min(j, n - j)
        for i in range(size):
            distance = abs(i - j)
            if distance < edge_distance:
                exponents[i, j] = distance
            else:
                exponents[i, j] = math.ceil((distance + edge_distance) / 2)
    return exponents


def fair_matrix(n: int, alpha: float) -> np.ndarray:
    """Exact probability matrix of EM.

    For ``α = 0`` the construction degenerates to the identity mechanism
    (only the zero exponent survives); for ``α = 1`` every power equals one
    and EM coincides with the uniform mechanism.
    """
    _check_parameters(n, alpha)
    size = n + 1
    if alpha == 0.0:
        return np.eye(size)
    exponents = fair_exponent_matrix(n)
    unnormalised = alpha ** exponents.astype(float)
    diagonal_value = em_diagonal(n, alpha)
    matrix = diagonal_value * unnormalised
    return matrix


def explicit_fair_mechanism(n: int, alpha: float) -> Mechanism:
    """The explicit fair mechanism EM as a :class:`Mechanism`."""
    matrix = fair_matrix(n, alpha)
    return Mechanism(
        matrix,
        name="EM",
        alpha=alpha,
        metadata={"source": "closed-form", "definition": "explicit fair mechanism (Eq. 16)"},
    )
