"""The rounded and truncated Laplace mechanism (Section II-B).

The classical Laplace mechanism adds continuous noise ``Lap(1/ε)`` to the
true count.  To fit Definition 1 — outputs must be integers in ``[0, n]`` —
the noisy value is rounded to the nearest integer and clamped to the range,
exactly as the paper describes when explaining why the discrete geometric
mechanism is the more natural fit.

The induced transition matrix is computed analytically from the Laplace CDF:
output ``i`` (for ``0 < i < n``) collects the probability that the noisy
value falls in ``[i − 1/2, i + 1/2)``, while the clamping outputs 0 and n
absorb the corresponding tails.  A sampling form is provided as well and
tested against the matrix.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.core.mechanism import Mechanism
from repro.core.theory import epsilon_from_alpha


def _laplace_cdf(x: np.ndarray, location: float, scale: float) -> np.ndarray:
    """CDF of the Laplace distribution with the given location and scale."""
    centred = (np.asarray(x, dtype=float) - location) / scale
    return np.where(centred < 0, 0.5 * np.exp(centred), 1.0 - 0.5 * np.exp(-centred))


def laplace_matrix(n: int, alpha: float) -> np.ndarray:
    """Transition matrix of the rounded, truncated Laplace mechanism."""
    if int(n) != n or n < 1:
        raise ValueError("group size n must be a positive integer")
    if not (0.0 < alpha < 1.0):
        raise ValueError("the Laplace mechanism requires alpha in (0, 1)")
    epsilon = epsilon_from_alpha(alpha)
    scale = 1.0 / epsilon
    size = n + 1
    matrix = np.zeros((size, size))
    for j in range(size):
        # Rounding boundaries between successive integer outputs.
        boundaries = np.arange(size - 1) + 0.5
        cdf = _laplace_cdf(boundaries, location=float(j), scale=scale)
        probabilities = np.empty(size)
        probabilities[0] = cdf[0]
        probabilities[1:-1] = np.diff(cdf)
        probabilities[-1] = 1.0 - cdf[-1]
        matrix[:, j] = probabilities
    return matrix


def laplace_mechanism(n: int, alpha: float) -> Mechanism:
    """The rounded/truncated Laplace mechanism as a :class:`Mechanism`."""
    matrix = laplace_matrix(n, alpha)
    mechanism = Mechanism(
        matrix,
        name="LAPLACE",
        alpha=None,
        metadata={
            "source": "closed-form",
            # Stays dense: the rounded/truncated CDF differences have no
            # usefully invertible closed form.
            "representation": "dense",
            "definition": "rounded + truncated Laplace mechanism",
        },
    )
    mechanism.alpha = mechanism.max_alpha()
    return mechanism


def sample_laplace_mechanism(
    true_count: int,
    n: int,
    alpha: float,
    rng: Optional[np.random.Generator] = None,
    size: Optional[int] = None,
) -> Union[int, np.ndarray]:
    """Operational form: add Laplace noise, round to nearest, clamp to ``[0, n]``."""
    if not (0 <= true_count <= n):
        raise ValueError(f"true count {true_count} outside [0, {n}]")
    if not (0.0 < alpha < 1.0):
        raise ValueError("the Laplace mechanism requires alpha in (0, 1)")
    rng = rng if rng is not None else np.random.default_rng()
    scale = 1.0 / epsilon_from_alpha(alpha)
    noise = rng.laplace(loc=0.0, scale=scale, size=size)
    released = np.clip(np.rint(true_count + noise), 0, n)
    if size is None:
        return int(released)
    return released.astype(int)
