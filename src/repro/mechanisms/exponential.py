"""The exponential mechanism of McSherry and Talwar (Section II-B, Eq. 2).

For count queries the natural quality function is ``Q(j, r) = −|j − r|``
(closer outputs are better) with sensitivity 1, giving

    ``Pr[r | j] ∝ exp(ε Q(j, r) / 2) = α^{|j − r| / 2}``    with α = e^{−ε}.

The paper points out two limitations that our experiments make concrete:
the factor 2 in the definition effectively halves the privacy budget spent
on utility (so the exponential mechanism is noticeably flatter than EM at
the same α), and quality functions cannot directly express constraints such
as weak honesty.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.core.mechanism import Mechanism
from repro.core.theory import epsilon_from_alpha


def exponential_matrix(
    n: int,
    alpha: float,
    quality: Optional[Callable[[int, int], float]] = None,
    sensitivity: float = 1.0,
) -> np.ndarray:
    """Probability matrix of the exponential mechanism for count release.

    Parameters
    ----------
    n, alpha:
        Group size and privacy parameter (``α = e^{−ε}``).
    quality:
        ``Q(input, output)``; defaults to the negative distance
        ``−|input − output|``.
    sensitivity:
        Worst-case change of ``Q`` when one individual's bit flips; 1 for the
        default quality function.
    """
    if int(n) != n or n < 1:
        raise ValueError("group size n must be a positive integer")
    if not (0.0 < alpha <= 1.0):
        raise ValueError("the exponential mechanism requires alpha in (0, 1]")
    if sensitivity <= 0:
        raise ValueError("sensitivity must be positive")
    if quality is None:
        quality = lambda j, r: -abs(j - r)  # noqa: E731 - small local default
    epsilon = epsilon_from_alpha(alpha)
    size = n + 1
    matrix = np.zeros((size, size))
    for j in range(size):
        scores = np.array([quality(j, r) for r in range(size)], dtype=float)
        # Stabilise the exponentials by subtracting the maximum score.
        weights = np.exp(epsilon * (scores - scores.max()) / (2.0 * sensitivity))
        matrix[:, j] = weights / weights.sum()
    return matrix


def exponential_mechanism(
    n: int,
    alpha: float,
    quality: Optional[Callable[[int, int], float]] = None,
    sensitivity: float = 1.0,
) -> Mechanism:
    """The exponential mechanism as a :class:`Mechanism`."""
    matrix = exponential_matrix(n, alpha, quality=quality, sensitivity=sensitivity)
    mechanism = Mechanism(
        matrix,
        name="EXP",
        alpha=None,
        metadata={
            "source": "closed-form",
            # Stays dense: arbitrary quality functions have no closed CDF.
            "representation": "dense",
            "definition": "exponential mechanism (McSherry-Talwar)",
            "sensitivity": float(sensitivity),
        },
    )
    mechanism.alpha = mechanism.max_alpha()
    return mechanism
