"""The range-restricted (truncated) geometric mechanism GM (Definition 4).

GM adds two-sided geometric noise to the true count and clamps the result to
``[0, n]``.  Its matrix (Figure 3 of the paper) has truncation rows at the
extremes, ``x α^j`` and ``x α^{n−j}`` with ``x = 1 / (1 + α)``, and interior
entries ``y α^{|i−j|}`` with ``y = (1 − α) / (1 + α)``.

Ghosh et al. proved GM is the basis of utility-optimal mechanisms; the paper
additionally shows (Theorem 3) that GM is the unique optimum of the plain
``L0`` objective under BASICDP, and uses it as the unconstrained reference
point that the constrained mechanisms are compared against.

Because every column (and the column CDF) has a closed form,
:func:`geometric_mechanism` returns a
:class:`~repro.core.mechanism.ClosedFormMechanism`: O(1) memory, analytic
``max_alpha`` and property answers, and inverse-CDF sampling that never
builds the matrix.  :func:`geometric_matrix` still materialises the dense
Figure-3 matrix — it is assembled from the same column function the closed
form evaluates, so the two representations are bit-identical column by
column.

Three views of GM are provided and tested against each other:

* :func:`geometric_mechanism` / :func:`geometric_matrix` — the exact
  distribution (closed-form object and dense matrix).
* :func:`two_sided_geometric_noise` / :func:`sample_geometric_mechanism` —
  the additive-noise sampling procedure of Definition 4.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

import numpy as np

from repro.core.mechanism import ClosedFormMechanism, ClosedFormSpec, Mechanism


def _check_parameters(n: int, alpha: float) -> None:
    if int(n) != n or n < 1:
        raise ValueError("group size n must be a positive integer")
    if not (0.0 <= alpha <= 1.0):
        raise ValueError("alpha must lie in [0, 1]")


def geometric_column(n: int, alpha: float, j: int) -> np.ndarray:
    """Column ``j`` of GM's matrix (Figure 3), evaluated directly.

    This single function backs both representations: the dense
    :func:`geometric_matrix` stacks it and the closed-form mechanism
    evaluates it on demand, which is what makes the two bit-identical.
    """
    size = n + 1
    if alpha == 0.0:
        # Noise collapses onto zero: the identity (truthful) mechanism.
        column = np.zeros(size)
        column[j] = 1.0
        return column
    if alpha == 1.0:
        # The two-sided geometric distribution degenerates; all mass is
        # pushed to the clamping rows.
        column = np.zeros(size)
        column[0] = 0.5
        column[n] = 0.5
        return column
    x = 1.0 / (1.0 + alpha)
    y = (1.0 - alpha) / (1.0 + alpha)
    exponents = np.abs(np.arange(size) - j).astype(float)
    column = y * alpha**exponents
    column[0] = x * alpha ** float(j)
    column[n] = x * alpha ** float(n - j)
    return column


def geometric_matrix(n: int, alpha: float) -> np.ndarray:
    """Exact probability matrix of GM (Figure 3).

    For ``α = 0`` the noise distribution collapses onto zero and GM becomes
    the identity (truthful) mechanism; for ``α = 1`` the two-sided geometric
    distribution degenerates and all mass is pushed to the clamping rows, so
    the limit matrix splits each column evenly between outputs 0 and n.
    """
    _check_parameters(n, alpha)
    return np.column_stack([geometric_column(n, alpha, j) for j in range(n + 1)])


def _geometric_cdf(n: int, alpha: float, i: np.ndarray, j: np.ndarray) -> np.ndarray:
    """Analytic column CDF ``F(i | j)`` of GM, vectorised over (i, j) arrays.

    The two-sided geometric tails sum in closed form:
    ``F(i | j) = x α^{j−i}`` for ``i < j`` and ``1 − x α^{i−j+1}`` for
    ``i >= j`` (with ``F(-1) = 0`` and ``F(n) = 1`` exactly).
    """
    i = np.asarray(i, dtype=np.int64)
    j = np.asarray(j, dtype=np.int64)
    if alpha == 0.0:
        cdf = (i >= j).astype(float)
    elif alpha == 1.0:
        cdf = np.full(np.broadcast(i, j).shape, 0.5)
    else:
        x = 1.0 / (1.0 + alpha)
        # Clamp exponents at zero so the branch not selected by `where`
        # cannot overflow (alpha ** -large).
        below = x * alpha ** np.maximum(j - i, 0).astype(float)
        above = 1.0 - x * alpha ** np.maximum(i - j + 1, 0).astype(float)
        cdf = np.where(i < j, below, above)
    cdf = np.where(i >= n, 1.0, cdf)
    return np.where(i < 0, 0.0, cdf)


def _geometric_diagonal(n: int, alpha: float) -> np.ndarray:
    """GM's diagonal: ``x`` at the clamped ends, ``y`` in the interior."""
    size = n + 1
    if alpha == 0.0:
        return np.ones(size)
    if alpha == 1.0:
        diagonal = np.zeros(size)
        diagonal[0] = 0.5
        diagonal[n] = 0.5
        return diagonal
    x = 1.0 / (1.0 + alpha)
    y = (1.0 - alpha) / (1.0 + alpha)
    diagonal = np.full(size, y)
    diagonal[0] = x
    diagonal[n] = x
    return diagonal


def _geometric_properties(n: int, alpha: float, tolerance: float) -> Dict[str, bool]:
    """Analytic verdicts for the seven structural properties of GM.

    Encodes Theorem 3 and Lemmas 2-3 with the same tolerance semantics as
    the numeric matrix checks (the equivalence tests assert they agree for
    every (n, α) on a grid including the α ∈ {0, 1} degenerations).
    """
    if n == 1:
        # The 2x2 GM is [[x, xα], [xα, x]]: every property holds.
        return {"RH": True, "RM": True, "CH": True, "CM": True, "F": True, "WH": True, "S": True}
    x = 1.0 / (1.0 + alpha) if alpha < 1.0 else 0.5
    y = (1.0 - alpha) / (1.0 + alpha)
    column_ok = x * alpha <= y + tolerance  # Lemma 3 (α <= 1/2), exact at the ends
    return {
        "RH": True,  # rows decay away from the diagonal (Section IV-B)
        "RM": True,
        "CH": column_ok,
        "CM": column_ok,
        "F": abs(x - y) <= tolerance,  # x == y only in the identity limit α = 0
        "WH": y >= 1.0 / (n + 1) - tolerance,  # Lemma 2 in diagonal form
        "S": True,
    }


def geometric_mechanism(n: int, alpha: float) -> Mechanism:
    """The range-restricted geometric mechanism GM as a closed-form mechanism."""
    _check_parameters(n, alpha)
    alpha = float(alpha)
    n = int(n)
    spec = ClosedFormSpec(
        factory="GM",
        params={"alpha": alpha},
        column_fn=lambda j: geometric_column(n, alpha, j),
        cdf_fn=lambda i, j: _geometric_cdf(n, alpha, i, j),
        diagonal_fn=lambda: _geometric_diagonal(n, alpha),
        # Adjacent interior entries differ by exactly one power of α, so
        # Definition 2 is tight at the design parameter.
        max_alpha_fn=lambda: alpha,
        properties_fn=lambda tol: _geometric_properties(n, alpha, tol),
    )
    return ClosedFormMechanism(
        n=n,
        spec=spec,
        name="GM",
        alpha=alpha,
        metadata={
            "source": "closed-form",
            "representation": "closed-form",
            "definition": "truncated geometric (Def. 4)",
        },
    )


def two_sided_geometric_noise(
    alpha: float,
    rng: Optional[np.random.Generator] = None,
    size: Optional[int] = None,
) -> Union[int, np.ndarray]:
    """Draw noise from the two-sided geometric distribution of Definition 4.

    ``Pr[X = δ] = (1 − α) α^{|δ|} / (1 + α)`` for integer δ.  Sampling uses
    the standard decomposition into a sign and two independent geometric
    tails: with probability ``(1 − α)/(1 + α)`` return 0, otherwise return
    ``±G`` where ``G`` is geometric with success probability ``1 − α``.
    """
    if not (0.0 <= alpha < 1.0):
        raise ValueError("two-sided geometric noise requires alpha in [0, 1)")
    rng = rng if rng is not None else np.random.default_rng()
    scalar = size is None
    count = 1 if scalar else int(size)
    if alpha == 0.0:
        noise = np.zeros(count, dtype=int)
    else:
        # Difference of two independent geometric variables (support {0,1,...})
        # with success probability 1 - alpha is exactly the two-sided
        # geometric distribution above.
        first = rng.geometric(1.0 - alpha, size=count) - 1
        second = rng.geometric(1.0 - alpha, size=count) - 1
        noise = first - second
    if scalar:
        return int(noise[0])
    return noise.astype(int)


def sample_geometric_mechanism(
    true_count: int,
    n: int,
    alpha: float,
    rng: Optional[np.random.Generator] = None,
    size: Optional[int] = None,
) -> Union[int, np.ndarray]:
    """Sample GM by its operational definition: add noise, then clamp to ``[0, n]``.

    This is the procedure a deployment would run; the matrix form is its
    exact distribution (the test-suite verifies the two agree).
    """
    _check_parameters(n, alpha)
    if not (0 <= true_count <= n):
        raise ValueError(f"true count {true_count} outside [0, {n}]")
    if alpha == 1.0:
        raise ValueError("alpha = 1 has no sampling form; use the matrix limit instead")
    noise = two_sided_geometric_noise(alpha, rng=rng, size=size)
    released = np.clip(np.asarray(noise) + true_count, 0, n)
    if size is None:
        return int(released)
    return released.astype(int)
