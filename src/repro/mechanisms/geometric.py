"""The range-restricted (truncated) geometric mechanism GM (Definition 4).

GM adds two-sided geometric noise to the true count and clamps the result to
``[0, n]``.  Its matrix (Figure 3 of the paper) has truncation rows at the
extremes, ``x α^j`` and ``x α^{n−j}`` with ``x = 1 / (1 + α)``, and interior
entries ``y α^{|i−j|}`` with ``y = (1 − α) / (1 + α)``.

Ghosh et al. proved GM is the basis of utility-optimal mechanisms; the paper
additionally shows (Theorem 3) that GM is the unique optimum of the plain
``L0`` objective under BASICDP, and uses it as the unconstrained reference
point that the constrained mechanisms are compared against.

Two views of GM are provided and tested against each other:

* :func:`geometric_mechanism` — the exact probability matrix.
* :func:`two_sided_geometric_noise` / :func:`sample_geometric_mechanism` —
  the additive-noise sampling procedure of Definition 4.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.core.mechanism import Mechanism


def _check_parameters(n: int, alpha: float) -> None:
    if int(n) != n or n < 1:
        raise ValueError("group size n must be a positive integer")
    if not (0.0 <= alpha <= 1.0):
        raise ValueError("alpha must lie in [0, 1]")


def geometric_matrix(n: int, alpha: float) -> np.ndarray:
    """Exact probability matrix of GM (Figure 3).

    For ``α = 0`` the noise distribution collapses onto zero and GM becomes
    the identity (truthful) mechanism; for ``α = 1`` the two-sided geometric
    distribution degenerates and all mass is pushed to the clamping rows, so
    the limit matrix splits each column evenly between outputs 0 and n.
    """
    _check_parameters(n, alpha)
    size = n + 1
    if alpha == 0.0:
        return np.eye(size)
    if alpha == 1.0:
        matrix = np.zeros((size, size))
        matrix[0, :] = 0.5
        matrix[n, :] = 0.5
        return matrix
    x = 1.0 / (1.0 + alpha)
    y = (1.0 - alpha) / (1.0 + alpha)
    matrix = np.zeros((size, size))
    for j in range(size):
        for i in range(size):
            if i == 0:
                matrix[i, j] = x * alpha**j
            elif i == n:
                matrix[i, j] = x * alpha ** (n - j)
            else:
                matrix[i, j] = y * alpha ** abs(i - j)
    return matrix


def geometric_mechanism(n: int, alpha: float) -> Mechanism:
    """The range-restricted geometric mechanism GM as a :class:`Mechanism`."""
    matrix = geometric_matrix(n, alpha)
    return Mechanism(
        matrix,
        name="GM",
        alpha=alpha,
        metadata={"source": "closed-form", "definition": "truncated geometric (Def. 4)"},
    )


def two_sided_geometric_noise(
    alpha: float,
    rng: Optional[np.random.Generator] = None,
    size: Optional[int] = None,
) -> Union[int, np.ndarray]:
    """Draw noise from the two-sided geometric distribution of Definition 4.

    ``Pr[X = δ] = (1 − α) α^{|δ|} / (1 + α)`` for integer δ.  Sampling uses
    the standard decomposition into a sign and two independent geometric
    tails: with probability ``(1 − α)/(1 + α)`` return 0, otherwise return
    ``±G`` where ``G`` is geometric with success probability ``1 − α``.
    """
    if not (0.0 <= alpha < 1.0):
        raise ValueError("two-sided geometric noise requires alpha in [0, 1)")
    rng = rng if rng is not None else np.random.default_rng()
    scalar = size is None
    count = 1 if scalar else int(size)
    if alpha == 0.0:
        noise = np.zeros(count, dtype=int)
    else:
        # Difference of two independent geometric variables (support {0,1,...})
        # with success probability 1 - alpha is exactly the two-sided
        # geometric distribution above.
        first = rng.geometric(1.0 - alpha, size=count) - 1
        second = rng.geometric(1.0 - alpha, size=count) - 1
        noise = first - second
    if scalar:
        return int(noise[0])
    return noise.astype(int)


def sample_geometric_mechanism(
    true_count: int,
    n: int,
    alpha: float,
    rng: Optional[np.random.Generator] = None,
    size: Optional[int] = None,
) -> Union[int, np.ndarray]:
    """Sample GM by its operational definition: add noise, then clamp to ``[0, n]``.

    This is the procedure a deployment would run; the matrix form is its
    exact distribution (the test-suite verifies the two agree).
    """
    _check_parameters(n, alpha)
    if not (0 <= true_count <= n):
        raise ValueError(f"true count {true_count} outside [0, {n}]")
    if alpha == 1.0:
        raise ValueError("alpha = 1 has no sampling form; use the matrix limit instead")
    noise = two_sided_geometric_noise(alpha, rng=rng, size=size)
    released = np.clip(np.asarray(noise) + true_count, 0, n)
    if size is None:
        return int(released)
    return released.astype(int)
