"""repro — constrained differentially private mechanisms for count data.

A full reproduction of *Constrained Private Mechanisms for Count Data*
(Cormode, Kulkarni, Srivastava, ICDE 2018): the mechanism abstraction, the
seven structural properties, the LP design framework, the named mechanisms
GM / EM / WM / UM, the data and evaluation substrates, and drivers for every
figure in the paper's experimental study.

Quick start
-----------
>>> import repro
>>> gm = repro.geometric_mechanism(n=8, alpha=0.9)
>>> em = repro.explicit_fair_mechanism(n=8, alpha=0.9)
>>> mech, decision = repro.choose_mechanism(n=8, alpha=0.9, properties="F")
>>> decision.branch
'EM'
"""

from repro.core.design import design_mechanism, optimal_objective_value
from repro.core.losses import (
    Objective,
    l0_score,
    l0d_score,
    l1_score,
    l2_score,
    mechanism_rmse,
    objective_value,
    truth_probability,
)
from repro.core.mechanism import (
    ClosedFormMechanism,
    DenseMechanism,
    Mechanism,
    SparseMechanism,
    empirical_prior,
    uniform_prior,
)
from repro.core.properties import (
    ALL_PROPERTIES,
    StructuralProperty,
    check_all_properties,
    implied_closure,
    parse_properties,
    satisfies_differential_privacy,
    satisfies_property,
)
from repro.core.output_privacy import (
    bidirectional_private,
    max_output_alpha,
    satisfies_output_dp,
)
from repro.core.selector import SelectorDecision, choose_mechanism, decide
from repro.core.transformations import derive_from_geometric, optimal_remap, post_process
from repro.core import theory
from repro import privacy
from repro.engine import (
    AccountantLedger,
    LedgerCorruptionError,
    LedgerError,
    ReleasePlan,
    StreamExecutor,
    compile_plan,
)
from repro.privacy import BudgetExceededError, PrivacyAccountant
from repro.eval.estimation import (
    debias_released_mean,
    estimate_true_histogram,
    estimate_true_mean,
)
from repro.mechanisms.exponential import exponential_mechanism
from repro.mechanisms.fair import explicit_fair_mechanism
from repro.mechanisms.geometric import geometric_mechanism
from repro.mechanisms.laplace import laplace_mechanism
from repro.mechanisms.randomized_response import (
    binary_randomized_response,
    nary_randomized_response,
)
from repro.mechanisms.registry import (
    available_mechanisms,
    create_mechanism,
    paper_mechanisms,
)
from repro.mechanisms.staircase import staircase_mechanism
from repro.mechanisms.uniform import uniform_mechanism
from repro.mechanisms.weakly_honest import weakly_honest_mechanism
from repro.serving import (
    BatchReleaseSession,
    DesignCache,
    ReleaseRequest,
    ReleasedCount,
    design_key,
)

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # Core types
    "Mechanism",
    "DenseMechanism",
    "ClosedFormMechanism",
    "SparseMechanism",
    "Objective",
    "StructuralProperty",
    "ALL_PROPERTIES",
    "SelectorDecision",
    # Design and selection
    "design_mechanism",
    "optimal_objective_value",
    "choose_mechanism",
    "decide",
    # Properties
    "parse_properties",
    "implied_closure",
    "check_all_properties",
    "satisfies_property",
    "satisfies_differential_privacy",
    "satisfies_output_dp",
    "max_output_alpha",
    "bidirectional_private",
    # Post-processing (Ghosh et al. derivations)
    "post_process",
    "optimal_remap",
    "derive_from_geometric",
    # Losses
    "objective_value",
    "l0_score",
    "l0d_score",
    "l1_score",
    "l2_score",
    "mechanism_rmse",
    "truth_probability",
    # Priors
    "uniform_prior",
    "empirical_prior",
    # Named mechanisms
    "geometric_mechanism",
    "explicit_fair_mechanism",
    "uniform_mechanism",
    "weakly_honest_mechanism",
    "binary_randomized_response",
    "nary_randomized_response",
    "exponential_mechanism",
    "laplace_mechanism",
    "staircase_mechanism",
    "available_mechanisms",
    "create_mechanism",
    "paper_mechanisms",
    # Release engine (compiled plans + streaming executors)
    "ReleasePlan",
    "StreamExecutor",
    "compile_plan",
    # Serving layer (design cache + vectorised batch release)
    "BatchReleaseSession",
    "DesignCache",
    "ReleaseRequest",
    "ReleasedCount",
    "design_key",
    # Estimation from released counts
    "estimate_true_histogram",
    "estimate_true_mean",
    "debias_released_mean",
    # Theory and accounting
    "theory",
    "privacy",
    "PrivacyAccountant",
    "BudgetExceededError",
    # Durable accounting (crash-safe execution)
    "AccountantLedger",
    "LedgerError",
    "LedgerCorruptionError",
]
