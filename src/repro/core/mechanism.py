"""The :class:`Mechanism` abstraction (Definition 1 of the paper).

A mechanism for count queries over a group of ``n`` individuals is an
``(n + 1) x (n + 1)`` column-stochastic matrix ``P`` with
``P[i, j] = Pr[output = i | true count = j]``.  This module wraps such a
matrix with validation, sampling, data application and rendering utilities.
Everything downstream (properties, losses, LP design, experiments) operates
on these objects.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Mapping, Optional, Sequence, Union

import numpy as np

#: Default numerical tolerance for stochasticity / probability checks.
DEFAULT_TOLERANCE = 1e-9

ArrayLike = Union[Sequence[Sequence[float]], np.ndarray]


class MechanismValidationError(ValueError):
    """Raised when a matrix does not describe a valid randomized mechanism."""


@dataclass
class Mechanism:
    """A randomized mechanism for count queries.

    Parameters
    ----------
    matrix:
        Square ``(n + 1) x (n + 1)`` array with ``matrix[i, j] =
        Pr[output = i | input = j]``.  Columns must sum to one and entries
        must lie in ``[0, 1]`` (within ``tolerance``).
    name:
        Short identifier, e.g. ``"GM"`` or ``"EM"``.
    alpha:
        The privacy parameter the mechanism was designed for, if known.  The
        matrix itself is the source of truth; :meth:`max_alpha` recomputes
        the strongest guarantee the matrix actually provides.
    metadata:
        Free-form provenance (e.g. which LP and properties produced it).
    """

    matrix: np.ndarray
    name: str = "mechanism"
    alpha: Optional[float] = None
    metadata: Dict[str, Any] = field(default_factory=dict)
    tolerance: float = DEFAULT_TOLERANCE

    def __post_init__(self) -> None:
        self.matrix = np.asarray(self.matrix, dtype=float)
        self.validate()

    # ------------------------------------------------------------------ #
    # Validation and basic structure
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Raise :class:`MechanismValidationError` if the matrix is not valid."""
        matrix = self.matrix
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise MechanismValidationError(
                f"mechanism matrix must be square, got shape {matrix.shape}"
            )
        if matrix.shape[0] < 2:
            raise MechanismValidationError(
                "mechanism must cover at least the outputs {0, 1} (n >= 1)"
            )
        if not np.all(np.isfinite(matrix)):
            raise MechanismValidationError("mechanism matrix contains non-finite entries")
        tol = self.tolerance
        if np.any(matrix < -tol) or np.any(matrix > 1.0 + tol):
            raise MechanismValidationError("mechanism entries must lie in [0, 1]")
        column_sums = matrix.sum(axis=0)
        if not np.allclose(column_sums, 1.0, atol=max(tol, 1e-7)):
            worst = float(np.max(np.abs(column_sums - 1.0)))
            raise MechanismValidationError(
                f"mechanism columns must sum to 1 (worst deviation {worst:.3e})"
            )
        if self.alpha is not None and not (0.0 <= self.alpha <= 1.0):
            raise MechanismValidationError("alpha must lie in [0, 1]")

    @property
    def n(self) -> int:
        """Group size ``n``; inputs and outputs range over ``{0, …, n}``."""
        return self.matrix.shape[0] - 1

    @property
    def size(self) -> int:
        """Number of distinct inputs/outputs, ``n + 1``."""
        return self.matrix.shape[0]

    @property
    def diagonal(self) -> np.ndarray:
        """The truth-reporting probabilities ``Pr[j | j]``."""
        return np.diag(self.matrix).copy()

    @property
    def trace(self) -> float:
        """Sum of the diagonal (used by the rescaled ``L0`` score, Eq. 1)."""
        return float(np.trace(self.matrix))

    def probabilities(self, true_count: int) -> np.ndarray:
        """Output distribution for a given true count (a column of ``P``)."""
        self._check_count(true_count)
        return self.matrix[:, true_count].copy()

    def probability(self, output: int, true_count: int) -> float:
        """``Pr[output | true_count]``."""
        self._check_count(true_count)
        self._check_count(output)
        return float(self.matrix[output, true_count])

    def _check_count(self, value: int) -> None:
        if not (0 <= int(value) <= self.n) or int(value) != value:
            raise ValueError(f"count {value!r} outside the mechanism range [0, {self.n}]")

    # ------------------------------------------------------------------ #
    # Privacy
    # ------------------------------------------------------------------ #
    def max_alpha(self) -> float:
        """The largest α for which the matrix is α-differentially private.

        Definition 2 requires ``α <= P[i, j] / P[i, j + 1] <= 1/α`` for all
        ``i`` and neighbouring inputs ``j, j + 1``.  The strongest guarantee
        the matrix supports is the minimum over all adjacent ratios (both
        directions).  Zero rows force α = 0 unless the paired entry is also
        zero (a ``0/0`` ratio imposes no constraint).
        """
        matrix = self.matrix
        best = 1.0
        for j in range(self.n):
            left = matrix[:, j]
            right = matrix[:, j + 1]
            for i in range(self.size):
                a, b = left[i], right[i]
                if a == 0.0 and b == 0.0:
                    continue
                if a == 0.0 or b == 0.0:
                    return 0.0
                ratio = min(a / b, b / a)
                best = min(best, ratio)
        return float(best)

    def satisfies_dp(self, alpha: float, tolerance: float = 1e-9) -> bool:
        """Whether the mechanism is α-differentially private (Definition 2)."""
        if not (0.0 <= alpha <= 1.0):
            raise ValueError("alpha must lie in [0, 1]")
        return self.max_alpha() >= alpha - tolerance

    def epsilon(self) -> float:
        """The ε-differential-privacy guarantee, ``ε = -ln(max_alpha)``."""
        alpha = self.max_alpha()
        if alpha <= 0.0:
            return float("inf")
        return float(-np.log(alpha))

    # ------------------------------------------------------------------ #
    # Sampling and application to data
    # ------------------------------------------------------------------ #
    def sample(
        self,
        true_count: int,
        rng: Optional[np.random.Generator] = None,
        size: Optional[int] = None,
    ) -> Union[int, np.ndarray]:
        """Draw noisy outputs for a single true count.

        Returns an ``int`` when ``size`` is ``None``, otherwise an integer
        array of the requested length.

        Pass a shared seeded ``rng`` (``np.random.default_rng(seed)``) for
        reproducible releases; when omitted, a fresh unseeded generator is
        created, which is private-by-default but never reproducible.
        """
        rng = rng if rng is not None else np.random.default_rng()
        probabilities = self.probabilities(true_count)
        # Guard against tiny negative values introduced by LP solvers.
        probabilities = np.clip(probabilities, 0.0, None)
        probabilities /= probabilities.sum()
        outputs = rng.choice(self.size, size=size, p=probabilities)
        if size is None:
            return int(outputs)
        return np.asarray(outputs, dtype=int)

    def column_cdfs(self) -> np.ndarray:
        """Per-input output CDFs, ``cdfs[j]`` = inverse-sampling CDF of column ``j``.

        Row ``j`` reproduces exactly the CDF that ``numpy``'s
        ``Generator.choice`` builds inside :meth:`sample` (clip negatives,
        normalise, cumulate, renormalise the final entry to 1), so sampling
        by ``searchsorted`` over these rows is bit-identical to the scalar
        path.  The array is computed once and cached on the mechanism; do
        not mutate :attr:`matrix` in place after sampling has started.
        """
        cached = self.__dict__.get("_column_cdfs")
        if cached is None:
            # C-contiguous rows so the row reductions below use the same
            # pairwise-summation order as the 1-D scalar sampling path.
            columns = np.ascontiguousarray(np.clip(self.matrix.T, 0.0, None))
            columns = columns / columns.sum(axis=1, keepdims=True)
            cached = np.cumsum(columns, axis=1)
            cached /= cached[:, -1:]
            self.__dict__["_column_cdfs"] = cached
        return cached

    def apply_batch(
        self,
        true_counts: Union[Sequence[int], np.ndarray],
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Vectorised independent draws, one per true count in the batch.

        This is the serving-layer hot path: the column CDFs are precomputed
        once per mechanism (:meth:`column_cdfs`) and a whole batch is
        answered with one uniform draw plus one ``searchsorted`` over a
        column-offset CDF, instead of a Python-level loop.

        The output is bit-identical to calling ``self.sample(c, rng=rng)``
        once per element in order with the same generator — element ``i``
        consumes the ``i``-th uniform of the stream — so scalar and batch
        paths are interchangeable in reproducible pipelines.
        """
        rng = rng if rng is not None else np.random.default_rng()
        counts = np.asarray(true_counts, dtype=int)
        if counts.ndim != 1:
            raise ValueError("true_counts must be a 1-D sequence")
        if counts.size == 0:
            return np.empty(0, dtype=int)
        if counts.min() < 0 or counts.max() > self.n:
            raise ValueError(
                f"counts must lie in [0, {self.n}]; got [{counts.min()}, {counts.max()}]"
            )
        cdfs = self.column_cdfs()
        uniforms = rng.random(counts.shape[0])
        # Offsetting column j's CDF (values in (0, 1]) by +j makes the
        # flattened array globally non-decreasing, so one searchsorted
        # answers every count in the batch at once.
        flat = (cdfs + np.arange(self.size)[:, None]).ravel()
        positions = np.searchsorted(flat, counts + uniforms, side="right")
        # ``count + u`` can round up to exactly ``count + 1`` (u within one
        # ulp of 1), letting the search run into the next column's block;
        # the true inverse-CDF index never exceeds size - 1, so clamp and
        # let the fix-up below walk back to the exact answer.
        released = np.minimum(positions - counts * self.size, self.size - 1)
        # Adding the integer offset can round a near-tie ``cdf > u`` down to
        # equality, overshooting the inverse-CDF index by one; walk any such
        # element back until it matches the un-offset comparison exactly.
        while True:
            overshoot = (released > 0) & (cdfs[counts, released - 1] > uniforms)
            if not overshoot.any():
                break
            released[overshoot] -= 1
        return released.astype(int, copy=False)

    def apply(
        self,
        true_counts: Union[int, Sequence[int], np.ndarray],
        rng: Optional[np.random.Generator] = None,
    ) -> Union[int, np.ndarray]:
        """Apply the mechanism independently to each true count in a batch.

        This is the primitive the empirical experiments use: every group's
        true count is perturbed by one independent draw from the mechanism.
        Arrays are routed through the vectorised :meth:`apply_batch`; pass a
        seeded ``rng`` to make the release reproducible.
        """
        rng = rng if rng is not None else np.random.default_rng()
        if np.isscalar(true_counts):
            return self.sample(int(true_counts), rng=rng)
        counts = np.asarray(true_counts, dtype=int)
        if counts.ndim != 1:
            raise ValueError("true_counts must be a scalar or a 1-D sequence")
        return self.apply_batch(counts, rng=rng)

    # ------------------------------------------------------------------ #
    # Moments and summary statistics
    # ------------------------------------------------------------------ #
    def expected_output(self, true_count: Optional[int] = None) -> Union[float, np.ndarray]:
        """Expected released value for one input, or for every input column."""
        outputs = np.arange(self.size, dtype=float)
        if true_count is None:
            return outputs @ self.matrix
        return float(outputs @ self.probabilities(true_count))

    def output_variance(self, true_count: Optional[int] = None) -> Union[float, np.ndarray]:
        """Variance of the released value for one input, or for every column."""
        outputs = np.arange(self.size, dtype=float)
        first = outputs @ self.matrix
        second = (outputs**2) @ self.matrix
        variances = second - first**2
        if true_count is None:
            return variances
        self._check_count(true_count)
        return float(variances[true_count])

    def bias(self, true_count: Optional[int] = None) -> Union[float, np.ndarray]:
        """Bias ``E[output] - input`` for one input, or for every column."""
        inputs = np.arange(self.size, dtype=float)
        biases = np.asarray(self.expected_output()) - inputs
        if true_count is None:
            return biases
        self._check_count(true_count)
        return float(biases[true_count])

    def truth_probability(self, prior: Optional[Sequence[float]] = None) -> float:
        """Probability of reporting the true answer under a prior on inputs.

        With no prior the uniform prior ``w_j = 1 / (n + 1)`` is used, as in
        the paper's comparison of GM (0.238) and EM (0.224) for ``n = 4``.
        """
        weights = _normalise_prior(prior, self.size)
        return float(np.dot(weights, self.diagonal))

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #
    def reversed(self) -> "Mechanism":
        """The centro-symmetric reflection ``P[i, j] -> P[n - i, n - j]``."""
        reflected = self.matrix[::-1, ::-1].copy()
        return Mechanism(
            reflected,
            name=f"{self.name}^S",
            alpha=self.alpha,
            metadata=dict(self.metadata),
        )

    def symmetrized(self) -> "Mechanism":
        """Theorem-1 symmetrisation ``M* = (M + M^S) / 2``.

        The construction preserves differential privacy, every structural
        property of Section IV-A and the ``L0`` objective value.
        """
        averaged = 0.5 * (self.matrix + self.matrix[::-1, ::-1])
        metadata = dict(self.metadata)
        metadata["symmetrized_from"] = self.name
        return Mechanism(averaged, name=f"{self.name}*", alpha=self.alpha, metadata=metadata)

    def allclose(self, other: "Mechanism", tolerance: float = 1e-8) -> bool:
        """Whether two mechanisms have (numerically) identical matrices."""
        if self.size != other.size:
            return False
        return bool(np.allclose(self.matrix, other.matrix, atol=tolerance))

    # ------------------------------------------------------------------ #
    # Serialisation and rendering
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable representation."""
        return {
            "name": self.name,
            "alpha": self.alpha,
            "matrix": self.matrix.tolist(),
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Mechanism":
        """Inverse of :meth:`to_dict`."""
        return cls(
            matrix=np.asarray(payload["matrix"], dtype=float),
            name=str(payload.get("name", "mechanism")),
            alpha=payload.get("alpha"),
            metadata=dict(payload.get("metadata", {})),
        )

    def to_json(self) -> str:
        """Serialise to a JSON string."""
        return json.dumps(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "Mechanism":
        """Deserialise from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    def render(self, precision: int = 3) -> str:
        """Plain-text rendering of the probability matrix (rows = outputs)."""
        width = precision + 3
        lines = []
        header = " " * 6 + " ".join(f"j={j:<{width - 2}d}" for j in range(self.size))
        lines.append(f"{self.name} (n={self.n})")
        lines.append(header)
        for i in range(self.size):
            cells = " ".join(f"{self.matrix[i, j]:{width}.{precision}f}" for j in range(self.size))
            lines.append(f"i={i:<3d} {cells}")
        return "\n".join(lines)

    def heatmap(self, levels: str = " .:-=+*#%@") -> str:
        """ASCII heatmap of the matrix, mirroring the paper's figures."""
        peak = float(self.matrix.max())
        if peak <= 0.0:
            peak = 1.0
        lines = [f"{self.name} (n={self.n}, darker = higher probability)"]
        for i in range(self.size):
            row = ""
            for j in range(self.size):
                level = int(round((len(levels) - 1) * self.matrix[i, j] / peak))
                row += levels[level] * 2
            lines.append(f"i={i:<3d} |{row}|")
        lines.append("      " + "".join(f"{j:<2d}" for j in range(self.size)))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        alpha = "?" if self.alpha is None else f"{self.alpha:.3f}"
        return f"Mechanism(name={self.name!r}, n={self.n}, alpha={alpha})"


def _normalise_prior(prior: Optional[Sequence[float]], size: int) -> np.ndarray:
    """Validate and normalise a prior over inputs; default to uniform."""
    if prior is None:
        return np.full(size, 1.0 / size)
    weights = np.asarray(prior, dtype=float)
    if weights.shape != (size,):
        raise ValueError(f"prior must have length {size}, got shape {weights.shape}")
    if np.any(weights < 0):
        raise ValueError("prior weights must be non-negative")
    total = weights.sum()
    if total <= 0:
        raise ValueError("prior weights must not all be zero")
    return weights / total


def uniform_prior(n: int) -> np.ndarray:
    """The uniform prior ``w_j = 1 / (n + 1)`` used throughout the paper."""
    if n < 1:
        raise ValueError("group size n must be at least 1")
    return np.full(n + 1, 1.0 / (n + 1))


def empirical_prior(true_counts: Iterable[int], n: int) -> np.ndarray:
    """Prior estimated from observed per-group true counts.

    Useful for evaluating mechanisms against the data distribution actually
    seen in an experiment (e.g. the Adult groups of Figure 10).
    """
    counts = np.bincount(np.asarray(list(true_counts), dtype=int), minlength=n + 1)
    if counts.shape[0] > n + 1:
        raise ValueError("observed counts exceed the stated group size")
    total = counts.sum()
    if total == 0:
        raise ValueError("no counts supplied")
    return counts / total
