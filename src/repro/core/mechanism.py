"""The :class:`Mechanism` abstraction (Definition 1 of the paper).

A mechanism for count queries over a group of ``n`` individuals is an
``(n + 1) x (n + 1)`` column-stochastic matrix ``P`` with
``P[i, j] = Pr[output = i | true count = j]``.  Definition 1 *represents* a
mechanism as that explicit matrix, but the matrix is an implementation
detail, not the interface: most mechanisms the serving layer hands out have
closed forms (GM, EM, UM, NRR — the Figure-5 selector result), and
LP-designed mechanisms are sparse/banded.  Materialising ``(n + 1)^2``
floats for every request stops scaling long before the roadmap's
``n >= 10^5`` target (~80 GB at ``n = 10^5``).

This module therefore provides a representation-polymorphic core:

:class:`Mechanism`
    The common interface *and* the dense backend (constructing it directly
    from a matrix preserves the original semantics exactly).  Also exported
    as :data:`DenseMechanism`.
:class:`ClosedFormMechanism`
    Backed by analytic column / CDF / diagonal functions supplied by a
    factory (see :mod:`repro.mechanisms`); samples by inverse-CDF inversion
    with ``O(batch)`` memory and never needs the matrix.
:class:`SparseMechanism`
    CSC storage for LP-designed mechanisms, built directly from the sparse
    solver output by :mod:`repro.core.design`.

Every representation implements the same interface — ``n``, ``alpha``,
``column(j)``, ``prob(i, j)``, ``sample_batch(counts, rng)``,
``max_alpha()`` — and a *lazy* :attr:`Mechanism.matrix` shim densifies on
demand for backward compatibility.  The class-level counter
:attr:`Mechanism.densifications` counts every dense ``(n + 1)^2`` matrix
materialised (eager or lazy), so tests and examples can assert that a
serving path never built one.

Sampling equivalence guarantee: for ``n <= ClosedFormMechanism.
EXACT_SAMPLING_LIMIT`` the non-dense backends build each needed column's
CDF with the exact float operations of the dense sampler, so closed-form /
sparse / dense mechanisms with bit-identical columns release bit-identical
counts on a shared uniform stream (the test-suite proves this up to
``n = 512``).  Above the limit, closed forms switch to an O(1)-memory
analytic inverse-CDF bisection (same distribution, same one-uniform-per-
element stream consumption).
"""

from __future__ import annotations

import json
from collections import OrderedDict
from typing import Any, Callable, Dict, Iterable, Iterator, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core import _kernels

#: Default numerical tolerance for stochasticity / probability checks.
DEFAULT_TOLERANCE = 1e-9

ArrayLike = Union[Sequence[Sequence[float]], np.ndarray]


class MechanismValidationError(ValueError):
    """Raised when a matrix does not describe a valid randomized mechanism."""


def _max_alpha_loop(matrix: np.ndarray) -> float:
    """Reference implementation of :meth:`Mechanism.max_alpha` (per-entry loop).

    Kept as the ground truth the vectorised version is regression-tested
    against; do not use on large matrices.
    """
    size = matrix.shape[0]
    best = 1.0
    for j in range(size - 1):
        left = matrix[:, j]
        right = matrix[:, j + 1]
        for i in range(size):
            a, b = left[i], right[i]
            if a == 0.0 and b == 0.0:
                continue
            if a == 0.0 or b == 0.0:
                return 0.0
            ratio = min(a / b, b / a)
            best = min(best, ratio)
    return float(best)


def _pair_min_ratio(left: np.ndarray, right: np.ndarray) -> float:
    """Minimum two-sided ratio ``min(a/b, b/a)`` over two column blocks.

    ``0/0`` pairs impose no constraint; a zero paired with a non-zero forces
    the ratio (and therefore ``max_alpha``) to zero.  Matches the float
    arithmetic of :func:`_max_alpha_loop` exactly: the same divisions are
    performed, just all at once.
    """
    left_zero = left == 0.0
    right_zero = right == 0.0
    if bool(np.any(left_zero != right_zero)):
        return 0.0
    both_zero = left_zero  # == right_zero here
    with np.errstate(divide="ignore", invalid="ignore"):
        ratios = np.minimum(left / right, right / left)
    if both_zero.any():
        ratios = np.where(both_zero, 1.0, ratios)
    if ratios.size == 0:
        return 1.0
    return float(np.min(ratios))


class Mechanism:
    """A randomized mechanism for count queries (dense backend + interface).

    Parameters
    ----------
    matrix:
        Square ``(n + 1) x (n + 1)`` array with ``matrix[i, j] =
        Pr[output = i | input = j]``.  Columns must sum to one and entries
        must lie in ``[0, 1]`` (within ``tolerance``).
    name:
        Short identifier, e.g. ``"GM"`` or ``"EM"``.
    alpha:
        The privacy parameter the mechanism was designed for, if known.  The
        representation itself is the source of truth; :meth:`max_alpha`
        recomputes the strongest guarantee it actually provides.
    metadata:
        Free-form provenance (e.g. which LP and properties produced it).

    Subclasses provide alternative representations by overriding the
    ``_``-prefixed hooks (``_column``, ``_columns_block``, ``_diagonal``,
    ``_densify``, ``_inverse_sample``, ``validate``); the public interface
    is shared.
    """

    #: Representation tag; subclasses override ("closed-form", "sparse").
    representation = "dense"

    #: Class-level count of dense ``(n + 1)^2`` matrices materialised, both
    #: eager (constructing a dense mechanism) and lazy (touching ``.matrix``
    #: on a non-dense one).  Snapshot it around a code path to prove the
    #: path never built a dense matrix.
    densifications = 0

    #: Column-block width used by the streaming (columns-on-demand) paths.
    BLOCK_COLUMNS = 256

    #: Max number of per-column CDFs cached by the column-exact sampler.
    CDF_CACHE_COLUMNS = 512

    #: Guide-table resolution (bins per column) for the tiled sampler's
    #: O(1)-per-element fast path.  Must be a power of two: scaling a
    #: uniform by 2^k is exact in binary floating point, so ``u *
    #: GUIDE_BINS`` truncates to the mathematically correct bin and the
    #: bin's CDF bracket is guaranteed to contain ``u``.
    GUIDE_BINS = 4096

    #: Largest mechanism size for which :meth:`sample_tiled` builds a guide
    #: table (the table is ``size * GUIDE_BINS`` int16 entries).
    GUIDE_SIZE_LIMIT = 512

    def __init__(
        self,
        matrix: ArrayLike,
        name: str = "mechanism",
        alpha: Optional[float] = None,
        metadata: Optional[Dict[str, Any]] = None,
        tolerance: float = DEFAULT_TOLERANCE,
    ) -> None:
        self.name = name
        self.alpha = alpha
        self.metadata: Dict[str, Any] = metadata if metadata is not None else {}
        self.tolerance = tolerance
        self._matrix: Optional[np.ndarray] = np.asarray(matrix, dtype=float)
        self.validate()
        self._n = int(self._matrix.shape[0]) - 1
        Mechanism.densifications += 1

    # ------------------------------------------------------------------ #
    # Validation and basic structure
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Raise :class:`MechanismValidationError` if the matrix is not valid."""
        matrix = self._matrix
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise MechanismValidationError(
                f"mechanism matrix must be square, got shape {matrix.shape}"
            )
        if matrix.shape[0] < 2:
            raise MechanismValidationError(
                "mechanism must cover at least the outputs {0, 1} (n >= 1)"
            )
        if not np.all(np.isfinite(matrix)):
            raise MechanismValidationError("mechanism matrix contains non-finite entries")
        tol = self.tolerance
        if np.any(matrix < -tol) or np.any(matrix > 1.0 + tol):
            raise MechanismValidationError("mechanism entries must lie in [0, 1]")
        column_sums = matrix.sum(axis=0)
        if not np.allclose(column_sums, 1.0, atol=max(tol, 1e-7)):
            worst = float(np.max(np.abs(column_sums - 1.0)))
            raise MechanismValidationError(
                f"mechanism columns must sum to 1 (worst deviation {worst:.3e})"
            )
        self._validate_alpha()

    def _validate_alpha(self) -> None:
        if self.alpha is not None and not (0.0 <= self.alpha <= 1.0):
            raise MechanismValidationError("alpha must lie in [0, 1]")

    @property
    def is_dense(self) -> bool:
        """Whether this mechanism stores its matrix densely."""
        return self.representation == "dense"

    @property
    def matrix(self) -> np.ndarray:
        """The dense probability matrix (lazy backward-compatibility shim).

        Dense mechanisms hold it eagerly; other representations materialise
        (and cache) it on first access, incrementing
        :attr:`Mechanism.densifications`.  Avoid touching this attribute in
        scale-sensitive code — every interface method has a
        representation-native path.
        """
        if self._matrix is None:
            self._matrix = self._densify()
            Mechanism.densifications += 1
        return self._matrix

    def _densify(self) -> np.ndarray:  # pragma: no cover - dense holds it eagerly
        raise NotImplementedError

    @property
    def n(self) -> int:
        """Group size ``n``; inputs and outputs range over ``{0, …, n}``."""
        return self._n

    @property
    def size(self) -> int:
        """Number of distinct inputs/outputs, ``n + 1``."""
        return self._n + 1

    @property
    def diagonal(self) -> np.ndarray:
        """The truth-reporting probabilities ``Pr[j | j]``."""
        return self._diagonal().copy()

    def _diagonal(self) -> np.ndarray:
        return np.diag(self._matrix)

    @property
    def trace(self) -> float:
        """Sum of the diagonal (used by the rescaled ``L0`` score, Eq. 1)."""
        return float(self._diagonal().sum())

    def column(self, true_count: int) -> np.ndarray:
        """Output distribution for a given true count (a column of ``P``)."""
        self._check_count(true_count)
        return self._column(int(true_count))

    def _column(self, j: int) -> np.ndarray:
        return self._matrix[:, j].copy()

    def _columns_block(self, j0: int, j1: int) -> np.ndarray:
        """Columns ``j0:j1`` as a dense ``(size, j1 - j0)`` block (may be a view)."""
        return self._matrix[:, j0:j1]

    def iter_column_blocks(
        self, block_size: Optional[int] = None
    ) -> Iterator[Tuple[int, int, np.ndarray]]:
        """Yield ``(j0, j1, block)`` dense column blocks covering the matrix.

        This is the representation-agnostic way to scan a mechanism without
        materialising it: dense yields matrix views, closed forms evaluate
        their column functions, sparse expands CSC slices — all in
        ``O(size * block_size)`` memory.
        """
        block = block_size if block_size is not None else self.BLOCK_COLUMNS
        for j0 in range(0, self.size, block):
            j1 = min(self.size, j0 + block)
            yield j0, j1, self._columns_block(j0, j1)

    def probabilities(self, true_count: int) -> np.ndarray:
        """Output distribution for a given true count (alias of :meth:`column`)."""
        return self.column(true_count)

    def probability(self, output: int, true_count: int) -> float:
        """``Pr[output | true_count]``."""
        self._check_count(true_count)
        self._check_count(output)
        return self._probability(int(output), int(true_count))

    def _probability(self, i: int, j: int) -> float:
        return float(self._matrix[i, j])

    def prob(self, output: int, true_count: int) -> float:
        """``Pr[output | true_count]`` (interface alias of :meth:`probability`)."""
        return self.probability(output, true_count)

    def _check_count(self, value: int) -> None:
        if not (0 <= int(value) <= self.n) or int(value) != value:
            raise ValueError(f"count {value!r} outside the mechanism range [0, {self.n}]")

    def storage_bytes(self) -> int:
        """Approximate bytes held by this representation (excluding the lazy shim)."""
        if self._matrix is not None:
            return int(self._matrix.nbytes)
        return 0

    # ------------------------------------------------------------------ #
    # Privacy
    # ------------------------------------------------------------------ #
    def max_alpha(self) -> float:
        """The largest α for which the mechanism is α-differentially private.

        Definition 2 requires ``α <= P[i, j] / P[i, j + 1] <= 1/α`` for all
        ``i`` and neighbouring inputs ``j, j + 1``.  The strongest guarantee
        supported is the minimum over all adjacent ratios (both directions).
        Zero entries force α = 0 unless the paired entry is also zero (a
        ``0/0`` ratio imposes no constraint).

        The dense path is one vectorised ratio of column-shifted slices;
        non-dense representations stream adjacent column pairs, and closed
        forms may answer analytically.
        """
        if self._matrix is not None:
            matrix = self._matrix
            return min(1.0, _pair_min_ratio(matrix[:, :-1], matrix[:, 1:]))
        return self._max_alpha_streaming()

    def _max_alpha_streaming(self) -> float:
        best = 1.0
        previous_last: Optional[np.ndarray] = None
        for j0, j1, block in self.iter_column_blocks():
            if previous_last is not None:
                ratio = _pair_min_ratio(previous_last, block[:, 0])
                if ratio == 0.0:
                    return 0.0
                best = min(best, ratio)
            if block.shape[1] > 1:
                ratio = _pair_min_ratio(block[:, :-1], block[:, 1:])
                if ratio == 0.0:
                    return 0.0
                best = min(best, ratio)
            previous_last = np.array(block[:, -1])
        return float(best)

    def satisfies_dp(self, alpha: float, tolerance: float = 1e-9) -> bool:
        """Whether the mechanism is α-differentially private (Definition 2)."""
        if not (0.0 <= alpha <= 1.0):
            raise ValueError("alpha must lie in [0, 1]")
        return self.max_alpha() >= alpha - tolerance

    def epsilon(self) -> float:
        """The ε-differential-privacy guarantee, ``ε = -ln(max_alpha)``."""
        alpha = self.max_alpha()
        if alpha <= 0.0:
            return float("inf")
        return float(-np.log(alpha))

    # ------------------------------------------------------------------ #
    # Sampling and application to data
    # ------------------------------------------------------------------ #
    def sample(
        self,
        true_count: int,
        rng: Optional[np.random.Generator] = None,
        size: Optional[int] = None,
    ) -> Union[int, np.ndarray]:
        """Draw noisy outputs for a single true count.

        Returns an ``int`` when ``size`` is ``None``, otherwise an integer
        array of the requested length.

        Pass a shared seeded ``rng`` (``np.random.default_rng(seed)``) for
        reproducible releases; when omitted, a fresh unseeded generator is
        created, which is private-by-default but never reproducible.

        All representations consume exactly one uniform per draw from the
        generator's stream and invert the same per-column CDF, so dense,
        closed-form and sparse mechanisms with identical columns release
        identical values for the same seed.
        """
        rng = rng if rng is not None else np.random.default_rng()
        self._check_count(true_count)
        if self.is_dense:
            probabilities = self._matrix[:, int(true_count)].copy()
            # Guard against tiny negative values introduced by LP solvers.
            probabilities = np.clip(probabilities, 0.0, None)
            probabilities /= probabilities.sum()
            outputs = rng.choice(self.size, size=size, p=probabilities)
            if size is None:
                return int(outputs)
            return np.asarray(outputs, dtype=int)
        # Non-dense: the explicit inverse-CDF path (bit-identical to the
        # rng.choice path above for the same column values).
        count = 1 if size is None else int(size)
        uniforms = np.atleast_1d(rng.random(size))
        outputs = self._inverse_sample(np.full(count, int(true_count)), uniforms)
        if size is None:
            return int(outputs[0])
        return outputs.astype(int, copy=False)

    def column_cdfs(self) -> np.ndarray:
        """Per-input output CDFs, ``cdfs[j]`` = inverse-sampling CDF of column ``j``.

        Row ``j`` reproduces exactly the CDF that ``numpy``'s
        ``Generator.choice`` builds inside :meth:`sample` (clip negatives,
        normalise, cumulate, renormalise the final entry to 1), so sampling
        by ``searchsorted`` over these rows is bit-identical to the scalar
        path.  The array is computed once and cached on the mechanism; do
        not mutate :attr:`matrix` in place after sampling has started.

        Note this materialises a full ``(n + 1)^2`` array — it is the dense
        sampler's precomputation, not something the non-dense backends need.
        """
        cached = self.__dict__.get("_column_cdfs")
        if cached is None:
            # C-contiguous rows so the row reductions below use the same
            # pairwise-summation order as the 1-D scalar sampling path.
            columns = np.ascontiguousarray(np.clip(self.matrix.T, 0.0, None))
            columns = columns / columns.sum(axis=1, keepdims=True)
            cached = np.cumsum(columns, axis=1)
            cached /= cached[:, -1:]
            self.__dict__["_column_cdfs"] = cached
        return cached

    def prepare_sampling(self) -> None:
        """Run any per-mechanism sampling precomputation eagerly.

        The dense backend precomputes its ``(n + 1)^2`` column-CDF table so
        the first batch is not slower than the rest; the non-dense backends
        have nothing global to precompute (their per-column CDF caches warm
        on demand).  The serving layer calls this once per cached design.
        """
        if self.is_dense:
            self.column_cdfs()

    def sample_batch(
        self,
        true_counts: Union[Sequence[int], np.ndarray],
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Vectorised independent draws, one per true count in the batch.

        This is the serving-layer hot path.  Element ``i`` of the output
        consumes the ``i``-th uniform of the generator's stream, and the
        result is bit-identical to calling ``self.sample(c, rng=rng)`` once
        per element in order with the same generator — scalar and batch
        paths are interchangeable in reproducible pipelines.

        Memory behaviour depends on the representation: dense uses its
        precomputed CDF table, sparse and small-``n`` closed forms build
        only the CDFs of columns present in the batch, and large-``n``
        closed forms invert their analytic CDF in ``O(batch)`` memory.
        """
        rng = rng if rng is not None else np.random.default_rng()
        counts = self._validated_batch(true_counts)
        if counts.size == 0:
            return np.empty(0, dtype=int)
        uniforms = rng.random(counts.shape[0])
        return self._inverse_sample(counts, uniforms).astype(int, copy=False)

    def sample_with_uniforms(
        self,
        true_counts: Union[Sequence[int], np.ndarray],
        uniforms: np.ndarray,
    ) -> np.ndarray:
        """One draw per count from caller-supplied uniforms in ``[0, 1)``.

        The engine's batched-RNG hot path: a :class:`~repro.engine.executor
        .StreamExecutor` draws one uniform block covering several chunks and
        releases each chunk from its slice.  Bit-identical to
        :meth:`sample_batch` whenever ``uniforms`` is ``rng.random(len(
        true_counts))`` from the same generator state — numpy generators
        fill a large array with exactly the draws successive smaller
        requests would produce, so batching draws across chunks does not
        change a single released count.
        """
        counts = self._validated_batch(true_counts)
        uniforms = np.asarray(uniforms, dtype=float)
        if uniforms.shape != counts.shape:
            raise ValueError(
                f"uniforms with shape {uniforms.shape} do not match "
                f"{counts.shape[0]} counts"
            )
        if counts.size == 0:
            return np.empty(0, dtype=int)
        return self._inverse_sample(counts, uniforms).astype(int, copy=False)

    def _validated_batch(self, true_counts: Union[Sequence[int], np.ndarray]) -> np.ndarray:
        """Shared batch validation for :meth:`sample_batch` / :meth:`sample_tiled`."""
        counts = np.asarray(true_counts, dtype=int)
        if counts.ndim != 1:
            raise ValueError("true_counts must be a 1-D sequence")
        if counts.size and (counts.min() < 0 or counts.max() > self.n):
            raise ValueError(
                f"counts must lie in [0, {self.n}]; got [{counts.min()}, {counts.max()}]"
            )
        return counts

    def sample_tiled(
        self,
        true_counts: Union[Sequence[int], np.ndarray],
        repetitions: int,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Draw ``repetitions`` independent releases of one batch in a single call.

        Returns an integer array of shape ``(repetitions, len(true_counts))``
        whose row ``r`` is the ``r``-th full release of the batch.  This is
        the empirical-evaluation hot path: the paper's experiments release
        the same true counts 30–50 times, and tiling those repetitions into
        one flat ``repetitions * batch`` request lets every representation
        answer them with a single vectorised pass.

        Row ``r`` is bit-identical to the ``r``-th of ``repetitions``
        sequential :meth:`sample_batch` calls on the same generator: one
        uniform is consumed per element in row-major order, and ``numpy``
        generators fill a large array with exactly the draws that successive
        smaller calls would produce.  The test-suite proves this for all
        three representations.
        """
        rng = rng if rng is not None else np.random.default_rng()
        if int(repetitions) != repetitions or repetitions < 1:
            raise ValueError("repetitions must be a positive integer")
        repetitions = int(repetitions)
        counts = self._validated_batch(true_counts)
        if counts.size == 0:
            return np.empty((repetitions, 0), dtype=int)
        tiled = np.tile(counts, repetitions)
        uniforms = rng.random(tiled.shape[0])
        if self._use_guide(tiled.shape[0]):
            released = self._sample_by_guide(tiled, uniforms)
        else:
            released = self._inverse_sample(tiled, uniforms)
        return released.astype(int, copy=False).reshape(repetitions, counts.shape[0])

    # Guide-table sampling: the tiled hot path ---------------------------- #
    def _use_guide(self, total: int) -> bool:
        """Whether a tiled batch of ``total`` draws should take the guide path.

        The guide table costs ``O(size * GUIDE_BINS)`` to build (cached per
        mechanism), so it only pays off for evaluation-sized requests; and it
        is only valid when the representation's :meth:`_inverse_sample` is
        the exact column-CDF inversion the guide accelerates
        (:meth:`_guide_compatible`), keeping the fast path bit-identical to
        the sequential one.
        """
        return (
            self.size <= self.GUIDE_SIZE_LIMIT
            and total >= self.size * self.GUIDE_BINS // 4
            and self._guide_compatible()
        )

    def _guide_compatible(self) -> bool:
        """Whether :meth:`_inverse_sample` inverts per-column CDFs here.

        True for the dense and sparse backends; closed forms override this
        to exclude their analytic-bisection regime (whose float path the
        guide does not reproduce).
        """
        return True

    def _sampling_cdf_row(self, j: int) -> np.ndarray:
        """The CDF row :meth:`_inverse_sample` inverts for column ``j``.

        The guide table must pre-answer *exactly* the CDF its fallback
        inverts: the dense backend samples from its precomputed
        :meth:`column_cdfs` table, the others from the per-column LRU cache
        (even when their lazy ``.matrix`` shim happens to be materialised —
        their :meth:`_inverse_sample` still reads the per-column cache).
        """
        if self.is_dense:
            return self.column_cdfs()[j]
        return self._column_cdf(j)

    def _guide_table(self) -> np.ndarray:
        """Flattened ``(size, GUIDE_BINS)`` int16 inverse-CDF guide (cached).

        Entry ``(j, b)`` answers every uniform in ``[b / K, (b + 1) / K)``
        for column ``j`` when the whole bin maps to one output index, and
        holds ``-1`` when the bin straddles a CDF step (those uniforms fall
        back to the exact sampler).  With ``K = GUIDE_BINS`` bins only about
        ``size / K`` of the uniforms hit a ``-1`` bin, so sampling becomes
        O(1) per element instead of a binary search.
        """
        cached = self.__dict__.get("_guide")
        if cached is None:
            bins = self.GUIDE_BINS
            edges = np.arange(bins + 1) / bins
            table = np.empty((self.size, bins), dtype=np.int16)
            for j in range(self.size):
                cdf = self._sampling_cdf_row(j)
                # For u in [edges[b], edges[b+1]): searchsorted(cdf, u,
                # "right") is bracketed by these two counts; equal bounds
                # make the whole bin unambiguous.
                lower = np.searchsorted(cdf, edges[:-1], side="right")
                upper = np.searchsorted(cdf, edges[1:], side="left")
                table[j] = np.where(lower == upper, lower, -1).astype(np.int16)
            cached = table.ravel()
            self.__dict__["_guide"] = cached
        return cached

    def _guide_sampling_cdfs(self) -> np.ndarray:
        """Stacked ``(size, size)`` per-column sampling CDFs (cached).

        Row ``j`` is exactly :meth:`_sampling_cdf_row` ``(j)`` — the CDF the
        exact fallback inverts — so a kernel doing its own binary search
        over these rows answers ambiguous guide bins bit-identically to
        :meth:`_inverse_sample`.  Only the JIT kernel needs the full stack;
        the numpy path keeps using the per-column caches.
        """
        cached = self.__dict__.get("_guide_cdfs")
        if cached is None:
            if self.is_dense:
                cached = self.column_cdfs()
            else:
                cached = np.vstack([self._sampling_cdf_row(j) for j in range(self.size)])
            self.__dict__["_guide_cdfs"] = cached
        return cached

    def _sample_by_guide(self, counts: np.ndarray, uniforms: np.ndarray) -> np.ndarray:
        """O(1)-per-element exact inverse-CDF sampling via the guide table.

        Bit-identical to :meth:`_inverse_sample` on the same inputs: guide
        hits read the pre-computed inverse-CDF index, and the few bin-
        boundary elements are answered by :meth:`_inverse_sample` itself
        (numpy path) or by an inline binary search over the same CDF rows
        (the optional numba kernel — see :mod:`repro.core._kernels`;
        ``REPRO_NO_NUMBA=1`` forces the numpy path).
        """
        table = self._guide_table()
        if _kernels.kernel_active():
            return _kernels.guide_sample_jit(
                table, self._guide_sampling_cdfs(), counts, uniforms, self.GUIDE_BINS
            )
        return _kernels.guide_sample_numpy(
            table, counts, uniforms, self.GUIDE_BINS, self._inverse_sample
        )

    def apply_batch(
        self,
        true_counts: Union[Sequence[int], np.ndarray],
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Alias of :meth:`sample_batch` (the pre-refactor name)."""
        return self.sample_batch(true_counts, rng=rng)

    def _inverse_sample(self, counts: np.ndarray, uniforms: np.ndarray) -> np.ndarray:
        """Invert the per-column CDFs at the given uniforms (dense backend).

        The column CDFs are precomputed once (:meth:`column_cdfs`) and the
        whole batch is answered with one ``searchsorted`` over a
        column-offset CDF instead of a Python-level loop.
        """
        cdfs = self.column_cdfs()
        # Offsetting column j's CDF (values in (0, 1]) by +j makes the
        # flattened array globally non-decreasing, so one searchsorted
        # answers every count in the batch at once.
        flat = (cdfs + np.arange(self.size)[:, None]).ravel()
        positions = np.searchsorted(flat, counts + uniforms, side="right")
        # ``count + u`` can round up to exactly ``count + 1`` (u within one
        # ulp of 1), letting the search run into the next column's block;
        # the true inverse-CDF index never exceeds size - 1, so clamp and
        # let the fix-up below walk back to the exact answer.
        released = np.minimum(positions - counts * self.size, self.size - 1)
        # Adding the integer offset can round a near-tie ``cdf > u`` down to
        # equality, overshooting the inverse-CDF index by one; walk any such
        # element back until it matches the un-offset comparison exactly.
        while True:
            overshoot = (released > 0) & (cdfs[counts, released - 1] > uniforms)
            if not overshoot.any():
                break
            released[overshoot] -= 1
        return released

    # Shared column-exact sampler used by the non-dense backends ---------- #
    def _column_cdf(self, j: int) -> np.ndarray:
        """CDF of column ``j`` built exactly like the dense sampler's (LRU-cached)."""
        cache: "OrderedDict[int, np.ndarray]" = self.__dict__.setdefault(
            "_cdf_cache", OrderedDict()
        )
        cdf = cache.get(j)
        if cdf is None:
            column = np.clip(self._column(j), 0.0, None)
            column = column / column.sum()
            cdf = np.cumsum(column)
            cdf /= cdf[-1]
            cache[j] = cdf
            while len(cache) > self.CDF_CACHE_COLUMNS:
                cache.popitem(last=False)
        else:
            cache.move_to_end(j)
        return cdf

    def _sample_by_columns(self, counts: np.ndarray, uniforms: np.ndarray) -> np.ndarray:
        """Exact inverse-CDF sampling using only the columns present in the batch.

        Groups the batch by count (one stable sort), builds each distinct
        column's CDF once and answers the group with one ``searchsorted`` —
        ``O(batch log batch + distinct * n)`` time, ``O(batch + distinct *
        n)`` transient memory, never the full matrix.
        """
        order = np.argsort(counts, kind="stable")
        sorted_counts = counts[order]
        # Group boundaries: positions where the sorted count changes.
        boundaries = np.flatnonzero(np.diff(sorted_counts)) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [counts.shape[0]]))
        released = np.empty(counts.shape[0], dtype=np.int64)
        for start, end in zip(starts, ends):
            j = int(sorted_counts[start])
            indices = order[start:end]
            cdf = self._column_cdf(j)
            released[indices] = np.searchsorted(cdf, uniforms[indices], side="right")
        return released

    def apply(
        self,
        true_counts: Union[int, Sequence[int], np.ndarray],
        rng: Optional[np.random.Generator] = None,
    ) -> Union[int, np.ndarray]:
        """Apply the mechanism independently to each true count in a batch.

        This is the primitive the empirical experiments use: every group's
        true count is perturbed by one independent draw from the mechanism.
        Arrays are routed through the vectorised :meth:`sample_batch`; pass
        a seeded ``rng`` to make the release reproducible.
        """
        rng = rng if rng is not None else np.random.default_rng()
        if np.isscalar(true_counts):
            return self.sample(int(true_counts), rng=rng)
        counts = np.asarray(true_counts, dtype=int)
        if counts.ndim != 1:
            raise ValueError("true_counts must be a scalar or a 1-D sequence")
        return self.sample_batch(counts, rng=rng)

    # ------------------------------------------------------------------ #
    # Moments and summary statistics
    # ------------------------------------------------------------------ #
    def expected_output(self, true_count: Optional[int] = None) -> Union[float, np.ndarray]:
        """Expected released value for one input, or for every input column."""
        outputs = np.arange(self.size, dtype=float)
        if true_count is not None:
            return float(outputs @ self.column(true_count))
        if self._matrix is not None:
            return outputs @ self._matrix
        return self._column_reductions(outputs)[0]

    def output_variance(self, true_count: Optional[int] = None) -> Union[float, np.ndarray]:
        """Variance of the released value for one input, or for every column."""
        outputs = np.arange(self.size, dtype=float)
        if true_count is not None:
            column = self.column(true_count)
            first = float(outputs @ column)
            second = float((outputs**2) @ column)
            return second - first**2
        if self._matrix is not None:
            first = outputs @ self._matrix
            second = (outputs**2) @ self._matrix
        else:
            first, second = self._column_reductions(outputs, outputs**2)
        return second - first**2

    def _column_reductions(self, *row_weights: np.ndarray) -> Tuple[np.ndarray, ...]:
        """Per-column dot products ``w @ P`` computed blockwise (no densify)."""
        results = [np.empty(self.size) for _ in row_weights]
        for j0, j1, block in self.iter_column_blocks():
            for result, weights in zip(results, row_weights):
                result[j0:j1] = weights @ block
        return tuple(results)

    def bias(self, true_count: Optional[int] = None) -> Union[float, np.ndarray]:
        """Bias ``E[output] - input`` for one input, or for every column."""
        if true_count is not None:
            self._check_count(true_count)
            return float(self.expected_output(true_count)) - float(true_count)
        inputs = np.arange(self.size, dtype=float)
        return np.asarray(self.expected_output()) - inputs

    def truth_probability(self, prior: Optional[Sequence[float]] = None) -> float:
        """Probability of reporting the true answer under a prior on inputs.

        With no prior the uniform prior ``w_j = 1 / (n + 1)`` is used, as in
        the paper's comparison of GM (0.238) and EM (0.224) for ``n = 4``.
        """
        weights = _normalise_prior(prior, self.size)
        return float(np.dot(weights, self._diagonal()))

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #
    def reversed(self) -> "Mechanism":
        """The centro-symmetric reflection ``P[i, j] -> P[n - i, n - j]``."""
        reflected = self.matrix[::-1, ::-1].copy()
        return Mechanism(
            reflected,
            name=f"{self.name}^S",
            alpha=self.alpha,
            metadata=dict(self.metadata),
        )

    def symmetrized(self) -> "Mechanism":
        """Theorem-1 symmetrisation ``M* = (M + M^S) / 2``.

        The construction preserves differential privacy, every structural
        property of Section IV-A and the ``L0`` objective value.
        """
        averaged = 0.5 * (self.matrix + self.matrix[::-1, ::-1])
        metadata = dict(self.metadata)
        metadata["symmetrized_from"] = self.name
        return Mechanism(averaged, name=f"{self.name}*", alpha=self.alpha, metadata=metadata)

    def allclose(self, other: "Mechanism", tolerance: float = 1e-8) -> bool:
        """Whether two mechanisms have (numerically) identical matrices."""
        if self.size != other.size:
            return False
        return bool(np.allclose(self.matrix, other.matrix, atol=tolerance))

    # ------------------------------------------------------------------ #
    # Serialisation and rendering
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable representation.

        Dense mechanisms serialise their matrix; non-dense subclasses emit a
        compact representation descriptor instead (closed forms: the factory
        call that rebuilds them; sparse: CSC arrays).  :meth:`from_dict`
        understands all three.
        """
        return {
            "name": self.name,
            "alpha": self.alpha,
            "matrix": self.matrix.tolist(),
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Mechanism":
        """Inverse of :meth:`to_dict` for every representation."""
        representation = payload.get("representation")
        if representation == "sparse":
            return SparseMechanism._from_payload(payload)
        if representation == "closed-form":
            # Deferred import: repro.mechanisms depends on this module.
            from repro.mechanisms.registry import rebuild_closed_form

            return rebuild_closed_form(payload)
        return Mechanism(
            matrix=np.asarray(payload["matrix"], dtype=float),
            name=str(payload.get("name", "mechanism")),
            alpha=payload.get("alpha"),
            metadata=dict(payload.get("metadata", {})),
        )

    def to_json(self) -> str:
        """Serialise to a JSON string."""
        return json.dumps(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "Mechanism":
        """Deserialise from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    def render(self, precision: int = 3) -> str:
        """Plain-text rendering of the probability matrix (rows = outputs)."""
        width = precision + 3
        matrix = self.matrix
        lines = []
        header = " " * 6 + " ".join(f"j={j:<{width - 2}d}" for j in range(self.size))
        lines.append(f"{self.name} (n={self.n})")
        lines.append(header)
        for i in range(self.size):
            cells = " ".join(f"{matrix[i, j]:{width}.{precision}f}" for j in range(self.size))
            lines.append(f"i={i:<3d} {cells}")
        return "\n".join(lines)

    def heatmap(self, levels: str = " .:-=+*#%@") -> str:
        """ASCII heatmap of the matrix, mirroring the paper's figures."""
        matrix = self.matrix
        peak = float(matrix.max())
        if peak <= 0.0:
            peak = 1.0
        lines = [f"{self.name} (n={self.n}, darker = higher probability)"]
        for i in range(self.size):
            row = ""
            for j in range(self.size):
                level = int(round((len(levels) - 1) * matrix[i, j] / peak))
                row += levels[level] * 2
            lines.append(f"i={i:<3d} |{row}|")
        lines.append("      " + "".join(f"{j:<2d}" for j in range(self.size)))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        alpha = "?" if self.alpha is None else f"{self.alpha:.3f}"
        tag = "" if self.is_dense else f", representation={self.representation!r}"
        return f"Mechanism(name={self.name!r}, n={self.n}, alpha={alpha}{tag})"


#: The dense backend under the name the representation taxonomy uses.
#: Constructing :class:`Mechanism` directly *is* the dense representation.
DenseMechanism = Mechanism


class ClosedFormSpec:
    """Analytic backing functions for a :class:`ClosedFormMechanism`.

    Produced by the factories in :mod:`repro.mechanisms`; the functions
    close over the mechanism's parameters so the mechanism object itself
    stays O(1)-sized.

    Attributes
    ----------
    factory:
        Registry key (e.g. ``"GM"``) used to rebuild the mechanism from a
        serialised descriptor.
    params:
        Keyword arguments (beyond ``n``) that reproduce the factory call.
    column_fn:
        ``column_fn(j) -> ndarray`` — the exact column, bit-identical to the
        dense factory's matrix column (this is what makes the representations
        provably sampling-equivalent).
    cdf_fn:
        Optional vectorised analytic CDF ``cdf_fn(i, j) -> F(i | j)`` with
        ``F(-1) = 0`` and ``F(n) = 1`` exactly; enables O(1)-memory
        inverse-CDF sampling at large ``n``.
    diagonal_fn:
        Optional ``() -> ndarray`` of the diagonal (O(n), no matrix).
    max_alpha_fn:
        Optional ``() -> float`` analytic :meth:`Mechanism.max_alpha`.
    properties_fn:
        Optional ``(tolerance) -> dict`` of analytic verdicts for the seven
        structural properties, keyed by the property *code* (``"RH"`` …).
    """

    __slots__ = (
        "factory",
        "params",
        "column_fn",
        "cdf_fn",
        "diagonal_fn",
        "max_alpha_fn",
        "properties_fn",
    )

    def __init__(
        self,
        factory: str,
        params: Optional[Dict[str, Any]] = None,
        column_fn: Optional[Callable[[int], np.ndarray]] = None,
        cdf_fn: Optional[Callable[[np.ndarray, np.ndarray], np.ndarray]] = None,
        diagonal_fn: Optional[Callable[[], np.ndarray]] = None,
        max_alpha_fn: Optional[Callable[[], float]] = None,
        properties_fn: Optional[Callable[[float], Dict[str, bool]]] = None,
    ) -> None:
        if column_fn is None:
            raise ValueError("a closed-form spec requires at least a column function")
        self.factory = factory
        self.params = dict(params or {})
        self.column_fn = column_fn
        self.cdf_fn = cdf_fn
        self.diagonal_fn = diagonal_fn
        self.max_alpha_fn = max_alpha_fn
        self.properties_fn = properties_fn


class ClosedFormMechanism(Mechanism):
    """A mechanism represented by analytic column/CDF functions, not a matrix.

    Sampling strategy: for ``n <= EXACT_SAMPLING_LIMIT`` (or when no
    analytic CDF is available) the exact column-CDF sampler is used — it
    reproduces the dense sampler bit-for-bit on a shared uniform stream
    while only ever materialising the columns present in a batch.  Above
    the limit, the analytic CDF is inverted by vectorised bisection:
    ``O(batch log n)`` time and ``O(batch)`` memory, which is what lets
    ``serve-batch`` release millions of counts at ``n = 10^5``.
    """

    representation = "closed-form"

    #: Largest n for which the exact (column-CDF) sampler is used.  The
    #: switch is keyed on n alone so that, for a fixed mechanism, scalar and
    #: batch sampling always take the same path (and therefore stay
    #: bit-identical to each other on a shared stream).
    EXACT_SAMPLING_LIMIT = 2048

    def __init__(
        self,
        n: int,
        spec: ClosedFormSpec,
        name: str = "mechanism",
        alpha: Optional[float] = None,
        metadata: Optional[Dict[str, Any]] = None,
        tolerance: float = DEFAULT_TOLERANCE,
    ) -> None:
        if int(n) != n or n < 1:
            raise MechanismValidationError("group size n must be a positive integer")
        self.name = name
        self.alpha = alpha
        self.metadata = metadata if metadata is not None else {}
        self.tolerance = tolerance
        self.spec = spec
        self._n = int(n)
        self._matrix = None
        self.validate()

    def validate(self) -> None:
        """Spot-check the analytic columns instead of a full matrix scan."""
        self._validate_alpha()
        for j in (0, self._n // 2, self._n):
            column = self.spec.column_fn(j)
            if column.shape != (self._n + 1,):
                raise MechanismValidationError(
                    f"closed-form column {j} has shape {column.shape}, "
                    f"expected ({self._n + 1},)"
                )
            total = float(column.sum())
            if not np.isfinite(total) or abs(total - 1.0) > max(self.tolerance, 1e-7):
                raise MechanismValidationError(
                    f"closed-form column {j} sums to {total!r}, expected 1"
                )

    def _densify(self) -> np.ndarray:
        columns = [self.spec.column_fn(j) for j in range(self.size)]
        return np.column_stack(columns)

    def _column(self, j: int) -> np.ndarray:
        return np.asarray(self.spec.column_fn(j), dtype=float)

    def _columns_block(self, j0: int, j1: int) -> np.ndarray:
        return np.column_stack([self.spec.column_fn(j) for j in range(j0, j1)])

    def _diagonal(self) -> np.ndarray:
        cached = self.__dict__.get("_diagonal_cache")
        if cached is None:
            if self.spec.diagonal_fn is not None:
                cached = np.asarray(self.spec.diagonal_fn(), dtype=float)
            else:
                cached = np.array(
                    [float(self.spec.column_fn(j)[j]) for j in range(self.size)]
                )
            self.__dict__["_diagonal_cache"] = cached
        return cached

    def _probability(self, i: int, j: int) -> float:
        return float(self.spec.column_fn(j)[i])

    def max_alpha(self) -> float:
        if self.spec.max_alpha_fn is not None:
            return float(self.spec.max_alpha_fn())
        return self._max_alpha_streaming()

    def _known_properties(self, tolerance: float) -> Optional[Dict[str, bool]]:
        """Analytic verdicts for the seven structural properties, if available."""
        if self.spec.properties_fn is None:
            return None
        return dict(self.spec.properties_fn(tolerance))

    def _guide_compatible(self) -> bool:
        return self.spec.cdf_fn is None or self.n <= self.EXACT_SAMPLING_LIMIT

    def _inverse_sample(self, counts: np.ndarray, uniforms: np.ndarray) -> np.ndarray:
        if self.spec.cdf_fn is None or self.n <= self.EXACT_SAMPLING_LIMIT:
            return self._sample_by_columns(counts, uniforms)
        return self._sample_by_bisection(counts, uniforms)

    def _sample_by_bisection(self, counts: np.ndarray, uniforms: np.ndarray) -> np.ndarray:
        """Invert the analytic CDF: smallest ``i`` with ``F(i | j) > u``.

        Classic vectorised bisection with the invariant ``F(low) <= u <
        F(high)``; ``F(-1) = 0`` and ``F(n) = 1`` make the initial bracket
        valid for every uniform in ``[0, 1)``.
        """
        cdf = self.spec.cdf_fn
        low = np.full(counts.shape[0], -1, dtype=np.int64)
        high = np.full(counts.shape[0], self.n, dtype=np.int64)
        while np.any(high - low > 1):
            mid = (low + high) // 2
            above = cdf(mid, counts) > uniforms
            high = np.where(above, mid, high)
            low = np.where(above, low, mid)
        return high

    def storage_bytes(self) -> int:
        return 0 if self._matrix is None else int(self._matrix.nbytes)

    def to_dict(self) -> Dict[str, Any]:
        """Compact representation descriptor (no matrix)."""
        return {
            "representation": "closed-form",
            "factory": self.spec.factory,
            "n": self.n,
            "params": dict(self.spec.params),
            "name": self.name,
            "alpha": self.alpha,
            "metadata": dict(self.metadata),
        }

    def __reduce__(self):
        return (Mechanism.from_dict, (self.to_dict(),))


class SparseMechanism(Mechanism):
    """A mechanism stored as a CSC sparse matrix (LP-designed mechanisms).

    The LP solutions of Sections III-IV are sparse/banded; storing only the
    non-zeros keeps designed mechanisms O(nnz) in memory and lets the
    design cache persist them as small descriptors.  Sampling uses the
    shared column-exact inverse-CDF path (bit-identical to a dense
    mechanism with the same column values on a shared uniform stream), and
    property checks stream CSC column blocks at O(nnz) expansion cost.
    """

    representation = "sparse"

    def __init__(
        self,
        matrix: Any,
        name: str = "mechanism",
        alpha: Optional[float] = None,
        metadata: Optional[Dict[str, Any]] = None,
        tolerance: float = DEFAULT_TOLERANCE,
    ) -> None:
        from scipy import sparse

        self.name = name
        self.alpha = alpha
        self.metadata = metadata if metadata is not None else {}
        self.tolerance = tolerance
        csc = sparse.csc_matrix(matrix, dtype=float, copy=True)
        csc.sum_duplicates()
        csc.sort_indices()
        self._csc = csc
        self._matrix = None
        self.validate()
        self._n = int(csc.shape[0]) - 1

    def validate(self) -> None:
        csc = self._csc
        if csc.shape[0] != csc.shape[1]:
            raise MechanismValidationError(
                f"mechanism matrix must be square, got shape {csc.shape}"
            )
        if csc.shape[0] < 2:
            raise MechanismValidationError(
                "mechanism must cover at least the outputs {0, 1} (n >= 1)"
            )
        data = csc.data
        if not np.all(np.isfinite(data)):
            raise MechanismValidationError("mechanism matrix contains non-finite entries")
        tol = self.tolerance
        if data.size and (np.any(data < -tol) or np.any(data > 1.0 + tol)):
            raise MechanismValidationError("mechanism entries must lie in [0, 1]")
        column_sums = np.asarray(csc.sum(axis=0)).ravel()
        if not np.allclose(column_sums, 1.0, atol=max(tol, 1e-7)):
            worst = float(np.max(np.abs(column_sums - 1.0)))
            raise MechanismValidationError(
                f"mechanism columns must sum to 1 (worst deviation {worst:.3e})"
            )
        self._validate_alpha()

    @property
    def nnz(self) -> int:
        """Number of stored non-zero entries."""
        return int(self._csc.nnz)

    @property
    def csc(self):
        """The underlying ``scipy.sparse.csc_matrix`` (treat as read-only)."""
        return self._csc

    def storage_bytes(self) -> int:
        csc = self._csc
        return int(csc.data.nbytes + csc.indices.nbytes + csc.indptr.nbytes)

    def _densify(self) -> np.ndarray:
        return self._csc.toarray()

    def _column(self, j: int) -> np.ndarray:
        csc = self._csc
        start, end = csc.indptr[j], csc.indptr[j + 1]
        column = np.zeros(self.size)
        column[csc.indices[start:end]] = csc.data[start:end]
        return column

    def _columns_block(self, j0: int, j1: int) -> np.ndarray:
        return self._csc[:, j0:j1].toarray()

    def _diagonal(self) -> np.ndarray:
        cached = self.__dict__.get("_diagonal_cache")
        if cached is None:
            cached = np.asarray(self._csc.diagonal(), dtype=float)
            self.__dict__["_diagonal_cache"] = cached
        return cached

    def _probability(self, i: int, j: int) -> float:
        return float(self._csc[i, j])

    def _inverse_sample(self, counts: np.ndarray, uniforms: np.ndarray) -> np.ndarray:
        return self._sample_by_columns(counts, uniforms)

    def to_dict(self) -> Dict[str, Any]:
        """CSC representation descriptor: O(nnz) rather than O(n^2) JSON."""
        csc = self._csc
        return {
            "representation": "sparse",
            "n": self.n,
            "data": csc.data.tolist(),
            "indices": csc.indices.tolist(),
            "indptr": csc.indptr.tolist(),
            "name": self.name,
            "alpha": self.alpha,
            "metadata": dict(self.metadata),
        }

    @classmethod
    def _from_payload(cls, payload: Mapping[str, Any]) -> "SparseMechanism":
        from scipy import sparse

        size = int(payload["n"]) + 1
        csc = sparse.csc_matrix(
            (
                np.asarray(payload["data"], dtype=float),
                np.asarray(payload["indices"], dtype=np.int32),
                np.asarray(payload["indptr"], dtype=np.int32),
            ),
            shape=(size, size),
        )
        return cls(
            csc,
            name=str(payload.get("name", "mechanism")),
            alpha=payload.get("alpha"),
            metadata=dict(payload.get("metadata", {})),
        )

    def __reduce__(self):
        return (Mechanism.from_dict, (self.to_dict(),))


def _normalise_prior(prior: Optional[Sequence[float]], size: int) -> np.ndarray:
    """Validate and normalise a prior over inputs; default to uniform."""
    if prior is None:
        return np.full(size, 1.0 / size)
    weights = np.asarray(prior, dtype=float)
    if weights.shape != (size,):
        raise ValueError(f"prior must have length {size}, got shape {weights.shape}")
    if np.any(weights < 0):
        raise ValueError("prior weights must be non-negative")
    total = weights.sum()
    if total <= 0:
        raise ValueError("prior weights must not all be zero")
    return weights / total


def uniform_prior(n: int) -> np.ndarray:
    """The uniform prior ``w_j = 1 / (n + 1)`` used throughout the paper."""
    if n < 1:
        raise ValueError("group size n must be at least 1")
    return np.full(n + 1, 1.0 / (n + 1))


def empirical_prior(true_counts: Iterable[int], n: int) -> np.ndarray:
    """Prior estimated from observed per-group true counts.

    Useful for evaluating mechanisms against the data distribution actually
    seen in an experiment (e.g. the Adult groups of Figure 10).
    """
    counts = np.bincount(np.asarray(list(true_counts), dtype=int), minlength=n + 1)
    if counts.shape[0] > n + 1:
        raise ValueError("observed counts exceed the stated group size")
    total = counts.sum()
    if total == 0:
        raise ValueError("no counts supplied")
    return counts / total
