"""Objective (loss) functions for mechanisms (Definition 3 and Equation 1).

The paper evaluates a mechanism ``P`` through the family of objectives

    ``O_{p,⊕}(P) = ⊕_j  Σ_i  w_j · Pr[i | j] · |i − j|^p``

where ``⊕`` is either a sum or a maximum over inputs, ``w`` is a prior on
inputs (uniform by default), and ``p`` selects the error notion: ``p = 0``
penalises every wrong answer equally, ``p = 1`` is the absolute error and
``p = 2`` the squared error.

The headline score of the paper is the *rescaled* ``L0`` (Equation 1),

    ``L0(P) = (n + 1) / n − trace(P) / n``

which equals ``(n + 1) / n`` times the probability of a wrong answer under a
uniform prior, normalised so the uniform mechanism scores exactly 1.  The
related tail score ``L0,d`` measures the (rescaled) probability of an answer
more than ``d`` steps from the truth, so that ``L0 = L0,0``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Union

import numpy as np

from repro.core.mechanism import Mechanism, _normalise_prior

MatrixLike = Union[np.ndarray, Mechanism]


def _as_matrix(mechanism: MatrixLike) -> np.ndarray:
    if isinstance(mechanism, Mechanism):
        return mechanism.matrix
    matrix = np.asarray(mechanism, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"expected a square matrix, got shape {matrix.shape}")
    return matrix


def _is_lazy(mechanism: MatrixLike) -> bool:
    """Non-dense mechanisms are scored columns-on-demand, never densified."""
    return isinstance(mechanism, Mechanism) and not mechanism.is_dense


def _diagonal_of(mechanism: MatrixLike) -> np.ndarray:
    """The diagonal without materialising a matrix for non-dense mechanisms."""
    if isinstance(mechanism, Mechanism):
        return mechanism._diagonal()
    return np.diag(_as_matrix(mechanism))


def _size_of(mechanism: MatrixLike) -> int:
    if isinstance(mechanism, Mechanism):
        return mechanism.size
    return _as_matrix(mechanism).shape[0]


def distance_matrix(size: int) -> np.ndarray:
    """The ``|i - j|`` matrix used by every objective."""
    indices = np.arange(size)
    return np.abs(indices[:, None] - indices[None, :]).astype(float)


def penalty_matrix(size: int, p: float, d: int = 0) -> np.ndarray:
    """Per-entry penalties ``|i - j|^p`` (or the ``L0,d`` indicator when p = 0).

    For ``p = 0`` the penalty is the indicator ``1[|i - j| > d]``: a response
    within ``d`` of the truth incurs no cost.  ``d = 0`` recovers the plain
    wrong-answer indicator, matching the paper's use of ``L0``.
    """
    distances = distance_matrix(size)
    if p == 0:
        return (distances > d).astype(float)
    if d != 0:
        raise ValueError("the distance threshold d is only meaningful for p = 0")
    return distances**p


@dataclass(frozen=True)
class Objective:
    """A fully specified objective ``O_{p,⊕}`` with optional ``L0,d`` threshold.

    Attributes
    ----------
    p:
        Exponent of the per-entry penalty ``|i - j|^p``; ``0`` selects the
        wrong-answer indicator.
    d:
        Distance threshold for ``p = 0`` (the ``L0,d`` family).  Ignored for
        ``p > 0``.
    aggregator:
        ``"sum"`` for expected loss over the prior, ``"max"`` for the
        worst-case (minimax) loss over inputs.
    weights:
        Optional prior over inputs; uniform when ``None``.
    """

    p: float = 0.0
    d: int = 0
    aggregator: str = "sum"
    weights: Optional[Sequence[float]] = None

    def __post_init__(self) -> None:
        if self.p < 0:
            raise ValueError("p must be non-negative")
        if self.d < 0:
            raise ValueError("d must be non-negative")
        if self.aggregator not in ("sum", "max"):
            raise ValueError("aggregator must be 'sum' or 'max'")
        if self.p != 0 and self.d != 0:
            raise ValueError("d is only meaningful when p = 0")

    def penalties(self, size: int) -> np.ndarray:
        """Penalty matrix for a mechanism with ``size = n + 1`` outputs."""
        return penalty_matrix(size, self.p, self.d)

    def prior(self, size: int) -> np.ndarray:
        """Normalised prior over inputs."""
        return _normalise_prior(self.weights, size)

    def describe(self) -> str:
        """Readable description, e.g. ``"L0,1 (sum)"`` or ``"L2 (max)"``."""
        if self.p == 0:
            base = "L0" if self.d == 0 else f"L0,{self.d}"
        else:
            base = f"L{self.p:g}"
        return f"{base} ({self.aggregator})"

    # Named constructors for the objectives the paper uses ---------------- #
    @classmethod
    def l0(cls, weights: Optional[Sequence[float]] = None) -> "Objective":
        """The wrong-answer objective (the paper's main objective)."""
        return cls(p=0.0, d=0, aggregator="sum", weights=weights)

    @classmethod
    def l0d(cls, d: int, weights: Optional[Sequence[float]] = None) -> "Objective":
        """The tail objective: probability of an answer more than ``d`` off."""
        return cls(p=0.0, d=d, aggregator="sum", weights=weights)

    @classmethod
    def l1(cls, weights: Optional[Sequence[float]] = None) -> "Objective":
        """Expected absolute error."""
        return cls(p=1.0, aggregator="sum", weights=weights)

    @classmethod
    def l2(cls, weights: Optional[Sequence[float]] = None) -> "Objective":
        """Expected squared error."""
        return cls(p=2.0, aggregator="sum", weights=weights)

    @classmethod
    def minimax(cls, p: float = 1.0) -> "Objective":
        """Worst-case loss over inputs (the Gupte–Sundararajan setting)."""
        return cls(p=p, aggregator="max")


def objective_value(
    mechanism: MatrixLike,
    objective: Optional[Objective] = None,
    p: Optional[float] = None,
    d: int = 0,
    weights: Optional[Sequence[float]] = None,
    aggregator: str = "sum",
) -> float:
    """Evaluate ``O_{p,⊕}(P)`` for a mechanism (Definition 3, unrescaled).

    Either pass a fully-specified :class:`Objective` or the individual
    parameters ``p``, ``d``, ``weights`` and ``aggregator``.
    """
    if objective is None:
        objective = Objective(p=0.0 if p is None else p, d=d, aggregator=aggregator, weights=weights)
    elif p is not None:
        raise ValueError("pass either an Objective or raw parameters, not both")
    size = _size_of(mechanism)
    per_input = per_input_loss(mechanism, objective)
    prior = objective.prior(size)
    if objective.aggregator == "max":
        return float(per_input.max())
    return float(np.dot(prior, per_input))


def _penalty_block(size: int, j0: int, j1: int, p: float, d: int) -> np.ndarray:
    """Columns ``j0:j1`` of :func:`penalty_matrix`, built directly."""
    distances = np.abs(
        np.arange(size, dtype=float)[:, None] - np.arange(j0, j1, dtype=float)[None, :]
    )
    if p == 0:
        return (distances > d).astype(float)
    return distances**p


def per_input_loss(
    mechanism: MatrixLike, objective: Optional[Objective] = None
) -> np.ndarray:
    """The loss ``Σ_i Pr[i | j] |i - j|^p`` for every input ``j`` separately.

    Dense mechanisms (and raw matrices) are scored with one full-matrix
    product; non-dense representations are scored columns-on-demand, one
    block of penalty columns at a time, so the loss of a closed-form or
    sparse mechanism never materialises an ``(n + 1)^2`` array.
    """
    if objective is None:
        objective = Objective.l0()
    if _is_lazy(mechanism):
        size = mechanism.size
        losses = np.empty(size)
        for j0, j1, block in mechanism.iter_column_blocks():
            penalties = _penalty_block(size, j0, j1, objective.p, objective.d)
            losses[j0:j1] = (penalties * block).sum(axis=0)
        return losses
    matrix = _as_matrix(mechanism)
    penalties = objective.penalties(matrix.shape[0])
    return (penalties * matrix).sum(axis=0)


def l0_score(mechanism: MatrixLike, weights: Optional[Sequence[float]] = None) -> float:
    """The rescaled ``L0`` score of Equation 1.

    With a uniform prior this equals ``(n + 1) / n − trace(P) / n``; with a
    general prior the natural generalisation ``(n + 1) / n · (1 − Σ_j w_j
    P[j, j])`` is used, which agrees in the uniform case.
    """
    diagonal = _diagonal_of(mechanism)
    size = diagonal.shape[0]
    n = size - 1
    prior = _normalise_prior(weights, size)
    weighted_trace = float(np.dot(prior, diagonal))
    return (size / n) * (1.0 - weighted_trace)


def l0d_score(
    mechanism: MatrixLike, d: int, weights: Optional[Sequence[float]] = None
) -> float:
    """The rescaled tail score ``L0,d``: probability of missing by more than ``d``.

    ``l0d_score(P, 0)`` equals :func:`l0_score`, matching the paper's
    statement that ``L0 = L0,0``.
    """
    size = _size_of(mechanism)
    n = size - 1
    raw = objective_value(mechanism, Objective.l0d(d, weights=weights))
    return (size / n) * raw


def l1_score(mechanism: MatrixLike, weights: Optional[Sequence[float]] = None) -> float:
    """Expected absolute error ``O_{1,Σ}`` (unrescaled)."""
    return objective_value(mechanism, Objective.l1(weights=weights))


def l2_score(mechanism: MatrixLike, weights: Optional[Sequence[float]] = None) -> float:
    """Expected squared error ``O_{2,Σ}`` (unrescaled)."""
    return objective_value(mechanism, Objective.l2(weights=weights))


def worst_case_loss(mechanism: MatrixLike, p: float = 1.0) -> float:
    """Minimax loss: the largest per-input expected ``|i - j|^p`` penalty."""
    return objective_value(mechanism, Objective.minimax(p))


def mechanism_rmse(mechanism: MatrixLike, weights: Optional[Sequence[float]] = None) -> float:
    """Root-mean-square error of the released value under a prior on inputs.

    This is the analytic counterpart of the empirical RMSE of Figure 13:
    ``sqrt(Σ_j w_j Σ_i P[i, j] (i − j)^2)``.
    """
    return float(np.sqrt(l2_score(mechanism, weights=weights)))


def mechanism_mae(mechanism: MatrixLike, weights: Optional[Sequence[float]] = None) -> float:
    """Mean absolute error of the released value under a prior on inputs."""
    return l1_score(mechanism, weights=weights)


def truth_probability(mechanism: MatrixLike, weights: Optional[Sequence[float]] = None) -> float:
    """Probability of reporting the true answer under a prior on inputs."""
    diagonal = _diagonal_of(mechanism)
    prior = _normalise_prior(weights, diagonal.shape[0])
    return float(np.dot(prior, diagonal))


def tail_distribution(mechanism: MatrixLike, weights: Optional[Sequence[float]] = None) -> np.ndarray:
    """Vector of ``L0,d`` values for every ``d`` from 0 to ``n``.

    Entry ``d`` is the (rescaled) probability of reporting an answer more
    than ``d`` steps from the truth — the analytic counterpart of the
    Figure-12 histograms.
    """
    n = _size_of(mechanism) - 1
    return np.array([l0d_score(mechanism, d, weights=weights) for d in range(n + 1)])


def compare_mechanisms(
    mechanisms: Sequence[Mechanism],
    score: Callable[[MatrixLike], float] = l0_score,
) -> dict:
    """Score a collection of mechanisms with a common loss, keyed by name."""
    return {mechanism.name: float(score(mechanism)) for mechanism in mechanisms}
