"""Output-side differential privacy — the extension proposed in the paper's
concluding remarks.

Section VI suggests "taking a version of the DP constraint applied to
columns of the mechanism (in addition to the rows): this would enforce that
the ratio of probabilities between neighbouring *outputs* is bounded, as
well as that of neighbouring inputs."  Intuitively this forbids cliff edges
in each column's output distribution: if the mechanism can report ``i`` it
must also be able to report ``i ± 1`` with comparable probability, which
both smooths the released distribution and limits how much an observer
learns from the *identity* of the output among its neighbours.

This module provides the property as a checkable predicate
(:func:`satisfies_output_dp`, :func:`max_output_alpha`) and closed-form
results for the named mechanisms:

* GM's binding column ratio sits at the clamping corner — ``x`` against
  ``y α`` — so the strongest output-side level it supports is
  ``α (1 − α)``, strictly below α; GM therefore *never* meets the symmetric
  requirement (β = α) for any α in (0, 1).
* EM's column-adjacent exponents differ by at most one, so EM always meets
  the symmetric requirement, as does UM trivially.

The constraint is available in LP design through
``MechanismLPBuilder.add_output_dp`` /
``design_mechanism(..., output_alpha=...)``.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.core.mechanism import Mechanism

MatrixLike = Union[np.ndarray, Mechanism]


def _as_matrix(mechanism: MatrixLike) -> np.ndarray:
    if isinstance(mechanism, Mechanism):
        return mechanism.matrix
    matrix = np.asarray(mechanism, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"expected a square matrix, got shape {matrix.shape}")
    return matrix


def _check_level(value: float, name: str) -> float:
    if not (0.0 <= value <= 1.0):
        raise ValueError(f"{name} must lie in [0, 1]")
    return float(value)


def satisfies_output_dp(
    mechanism: MatrixLike, beta: float, tolerance: float = 1e-9
) -> bool:
    """Whether ``beta <= P[i, j] / P[i + 1, j] <= 1/beta`` for all i and j.

    ``beta`` plays the same role for neighbouring *outputs* that α plays for
    neighbouring inputs in Definition 2.
    """
    beta = _check_level(beta, "beta")
    matrix = _as_matrix(mechanism)
    size = matrix.shape[0]
    for j in range(size):
        for i in range(size - 1):
            a = matrix[i, j]
            b = matrix[i + 1, j]
            if a < beta * b - tolerance or b < beta * a - tolerance:
                return False
    return True


def max_output_alpha(mechanism: MatrixLike) -> float:
    """The largest β for which the mechanism satisfies output-side DP.

    Mirrors :meth:`Mechanism.max_alpha` but walks down each column instead of
    along each row.  A zero entry adjacent to a non-zero one forces β = 0.
    """
    matrix = _as_matrix(mechanism)
    size = matrix.shape[0]
    best = 1.0
    for j in range(size):
        column = matrix[:, j]
        for i in range(size - 1):
            a, b = column[i], column[i + 1]
            if a == 0.0 and b == 0.0:
                continue
            if a == 0.0 or b == 0.0:
                return 0.0
            best = min(best, a / b, b / a)
    return float(best)


def gm_output_alpha(alpha: float) -> float:
    """The strongest output-side level GM supports: ``α (1 − α)``.

    In the first column GM places ``x = 1/(1+α)`` on output 0 and
    ``y α = (1−α) α/(1+α)`` on output 1, a ratio of ``1/(α (1 − α))``; every
    other adjacent pair is at least as balanced, so ``α (1 − α)`` is exactly
    the value returned by :func:`max_output_alpha` on GM's matrix.
    """
    alpha = _check_level(alpha, "alpha")
    return alpha * (1.0 - alpha)


def gm_satisfies_output_dp(alpha: float, beta: Optional[float] = None) -> bool:
    """Whether GM meets output-side DP at level ``beta`` (default: ``alpha``).

    With the symmetric requirement ``beta = alpha`` this is false for every
    α in (0, 1): the clamping rows always tower over their interior
    neighbours by a factor ``1/(α(1−α)) > 1/α``.
    """
    alpha = _check_level(alpha, "alpha")
    beta = alpha if beta is None else _check_level(beta, "beta")
    return beta <= gm_output_alpha(alpha) + 1e-12


def em_satisfies_output_dp(alpha: float, beta: Optional[float] = None) -> bool:
    """EM meets output-side DP at any level ``beta <= alpha`` (default alpha).

    Column-adjacent exponents in the Equation-16 pattern differ by at most
    one, so every column ratio lies in ``[α, 1/α]``.
    """
    alpha = _check_level(alpha, "alpha")
    beta = alpha if beta is None else _check_level(beta, "beta")
    return beta <= alpha + 1e-12


def bidirectional_private(
    mechanism: MatrixLike,
    alpha: float,
    beta: Optional[float] = None,
    tolerance: float = 1e-9,
) -> bool:
    """Whether a mechanism is α-DP along rows *and* β-DP along columns.

    ``beta`` defaults to ``alpha`` (the symmetric requirement suggested by
    the paper).
    """
    from repro.core.properties import satisfies_differential_privacy

    beta = alpha if beta is None else beta
    return satisfies_differential_privacy(mechanism, alpha, tolerance=tolerance) and (
        satisfies_output_dp(mechanism, beta, tolerance=tolerance)
    )
