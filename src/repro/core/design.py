"""LP-based constrained mechanism design (Sections III and IV).

:func:`design_mechanism` is the workhorse of the reproduction: it builds the
BASICDP linear program for a given group size and privacy level, adds any
subset of the seven structural properties, installs the requested objective
and solves the program with one of the LP backends, returning the optimal
mechanism as a :class:`~repro.core.mechanism.Mechanism`.

Setting ``properties=()`` reproduces the *unconstrained* designs of Figure 1
(including their pathological gaps and spikes); ``properties="all"``
reproduces the fully constrained designs of Figure 2.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Union

from repro.core.constraints import MechanismLP, build_mechanism_lp
from repro.core.losses import Objective
from repro.core.mechanism import Mechanism, SparseMechanism
from repro.core.properties import StructuralProperty, combination_label, parse_properties
from repro.lp.solver import DEFAULT_BACKEND, solve

# Process-wide accumulators for LP wall-time, surfaced by the serving
# layer's ``--stats-json`` / daemon ``stats`` payloads.  Guarded by a lock
# because the daemon designs from worker threads.
_TIMING_LOCK = threading.Lock()
_LP_BUILD_SECONDS = 0.0
_LP_SOLVE_SECONDS = 0.0


def lp_timing_totals() -> Dict[str, float]:
    """Cumulative LP build/solve wall-time (seconds) in this process."""
    with _TIMING_LOCK:
        return {
            "lp_build_seconds": _LP_BUILD_SECONDS,
            "lp_solve_seconds": _LP_SOLVE_SECONDS,
        }


def reset_lp_timing_totals() -> Dict[str, float]:
    """Zero the LP timing accumulators and return the previous totals."""
    global _LP_BUILD_SECONDS, _LP_SOLVE_SECONDS
    with _TIMING_LOCK:
        previous = {
            "lp_build_seconds": _LP_BUILD_SECONDS,
            "lp_solve_seconds": _LP_SOLVE_SECONDS,
        }
        _LP_BUILD_SECONDS = 0.0
        _LP_SOLVE_SECONDS = 0.0
    return previous


def _record_lp_timing(build_seconds: float, solve_seconds: float) -> None:
    global _LP_BUILD_SECONDS, _LP_SOLVE_SECONDS
    with _TIMING_LOCK:
        _LP_BUILD_SECONDS += float(build_seconds)
        _LP_SOLVE_SECONDS += float(solve_seconds)


def design_mechanism(
    n: int,
    alpha: float,
    properties: Union[None, str, Iterable[Union[str, StructuralProperty]]] = (),
    objective: Optional[Objective] = None,
    backend: str = DEFAULT_BACKEND,
    name: Optional[str] = None,
    output_alpha: Optional[float] = None,
    representation: str = "dense",
    warm_start: Optional[Sequence[int]] = None,
) -> Mechanism:
    """Solve for the optimal mechanism satisfying BASICDP plus the given properties.

    Parameters
    ----------
    n:
        Group size; the mechanism covers inputs and outputs ``{0, …, n}``.
    alpha:
        Differential-privacy parameter (Definition 2); values near 1 are
        stronger privacy.
    properties:
        Any subset of the seven structural properties (Section IV-A), given
        as enum members, codes (``"WH"``), a combined string (``"WH+CM"``),
        the keyword ``"all"``, or an empty collection for the unconstrained
        LP of Section III.
    objective:
        The loss to minimise; defaults to the paper's main objective
        :meth:`Objective.l0`.
    backend:
        ``"scipy"`` (default) or ``"simplex"``.
    name:
        Optional name for the resulting mechanism; auto-generated otherwise.
    output_alpha:
        When given, also enforce the output-side DP constraint of the
        paper's Section-VI extension at this level (typically ``alpha``):
        the ratio of probabilities of neighbouring *outputs* within a column
        is bounded as well as that of neighbouring inputs.
    representation:
        ``"dense"`` (default) wraps the solution in a dense
        :class:`Mechanism`; ``"sparse"`` keeps only the non-zero entries in
        a :class:`~repro.core.mechanism.SparseMechanism` — LP optima are
        sparse/banded, so this is what the serving layer caches.
    warm_start:
        Optional standard-form simplex basis from a neighbouring design
        (same ``n``/properties, nearby ``alpha``), forwarded to
        :func:`repro.lp.solver.solve`.  Only the ``simplex`` backend uses
        it; a stale basis falls back to the cold path automatically.

    Returns
    -------
    Mechanism
        The optimal constrained mechanism, with solve provenance recorded in
        ``metadata`` (objective value, backend, property set, LP size).
    """
    objective = objective if objective is not None else Objective.l0()
    props = parse_properties(properties)
    build_start = time.perf_counter()
    mechanism_lp = build_mechanism_lp(
        n=n, alpha=alpha, properties=props, objective=objective, output_alpha=output_alpha
    )
    build_seconds = time.perf_counter() - build_start
    mechanism = solve_mechanism_lp(
        mechanism_lp,
        backend=backend,
        name=name,
        build_seconds=build_seconds,
        representation=representation,
        warm_start=warm_start,
    )
    if output_alpha is not None:
        mechanism.metadata["output_alpha"] = float(output_alpha)
    return mechanism


def solve_mechanism_lp(
    mechanism_lp: MechanismLP,
    backend: str = DEFAULT_BACKEND,
    name: Optional[str] = None,
    build_seconds: Optional[float] = None,
    representation: str = "dense",
    warm_start: Optional[Sequence[int]] = None,
) -> Mechanism:
    """Solve an already-built :class:`MechanismLP` and wrap the result.

    Exposed separately so callers can inspect or extend the LP (e.g. to add
    bespoke constraints beyond the paper's seven properties) before solving.
    ``build_seconds``, when known, is recorded alongside the solve wall-time
    so benchmark runs can track the build/solve cost trajectory.  With
    ``representation="sparse"`` the solution goes straight from the sparse
    solver output into CSC storage without densification.
    """
    if representation not in ("dense", "sparse"):
        raise ValueError(f"unknown mechanism representation {representation!r}")
    solve_start = time.perf_counter()
    solution = solve(mechanism_lp.program, backend=backend, warm_start=warm_start)
    solve_seconds = time.perf_counter() - solve_start
    _record_lp_timing(build_seconds or 0.0, solve_seconds)
    label = combination_label(mechanism_lp.properties)
    mechanism_name = name or f"LP[{label}]"
    metadata = {
        "source": "lp",
        "backend": backend,
        "representation": representation,
        "objective": mechanism_lp.objective.describe(),
        "objective_value": float(solution.objective),
        "properties": sorted(prop.value for prop in mechanism_lp.properties),
        "lp_variables": mechanism_lp.program.num_variables,
        "lp_constraints": mechanism_lp.program.num_constraints,
        "lp_nonzeros": mechanism_lp.program.num_nonzeros(),
        "lp_iterations": solution.iterations,
        "lp_solve_seconds": float(solve_seconds),
    }
    if build_seconds is not None:
        metadata["lp_build_seconds"] = float(build_seconds)
    if solution.basis is not None:
        # Standard-form optimal basis (simplex backend only): cached in the
        # plan registry so neighbouring alphas can warm-start from it.
        metadata["lp_basis"] = [int(i) for i in solution.basis]
    if solution.warm_started:
        metadata["lp_warm_started"] = True
    if representation == "sparse":
        csc = mechanism_lp.sparse_matrix_from_values(solution.values)
        metadata["nnz"] = int(csc.nnz)
        return SparseMechanism(
            csc, name=mechanism_name, alpha=mechanism_lp.alpha, metadata=metadata
        )
    matrix = mechanism_lp.matrix_from_values(solution.values)
    return Mechanism(matrix, name=mechanism_name, alpha=mechanism_lp.alpha, metadata=metadata)


def design_mechanisms(
    specs: Sequence[Mapping[str, Any]],
    backend: str = DEFAULT_BACKEND,
    max_workers: Optional[int] = None,
) -> List[Mechanism]:
    """Design many mechanisms, optionally across worker processes.

    ``specs`` is a sequence of keyword-argument mappings for
    :func:`design_mechanism` (e.g. ``{"n": 20, "alpha": 0.9, "properties":
    "all"}``).  Results are returned in input order regardless of worker
    scheduling, so parallel runs are exactly reproducible.  With
    ``max_workers`` unset (or <= 1) everything runs in-process; otherwise
    each grid point is solved in a separate process, which is what lets
    figure sweeps use every available core for their LP design stage.
    """
    tasks = [dict(spec) for spec in specs]
    for task in tasks:
        task.setdefault("backend", backend)
    if max_workers is None or int(max_workers) <= 1 or len(tasks) <= 1:
        return [design_mechanism(**task) for task in tasks]
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=int(max_workers)) as pool:
        return list(pool.map(_design_mechanism_task, tasks))


def _design_mechanism_task(task: Mapping[str, Any]) -> Mechanism:
    """Module-level worker so :func:`design_mechanisms` tasks can pickle."""
    return design_mechanism(**task)


def optimal_objective_value(
    n: int,
    alpha: float,
    properties: Union[None, str, Iterable[Union[str, StructuralProperty]]] = (),
    objective: Optional[Objective] = None,
    backend: str = DEFAULT_BACKEND,
    output_alpha: Optional[float] = None,
) -> float:
    """The optimal objective value for a property set, without keeping the matrix.

    This is what the Figure-8 experiment sweeps: the cost of requesting each
    combination of properties.  Note the value returned is the *unrescaled*
    LP objective ``O_{p,⊕}``; use :func:`repro.core.losses.l0_score` on the
    designed mechanism for the rescaled ``L0``.
    """
    objective = objective if objective is not None else Objective.l0()
    props = parse_properties(properties)
    mechanism_lp = build_mechanism_lp(
        n=n, alpha=alpha, properties=props, objective=objective, output_alpha=output_alpha
    )
    solution = solve(mechanism_lp.program, backend=backend)
    return float(solution.objective)
