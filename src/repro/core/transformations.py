"""Post-processing transformations of mechanisms (the Ghosh et al. framework).

Section II-B and IV-D of the paper lean on a structural fact due to Ghosh,
Roughgarden and Sundararajan: every utility-optimal unconstrained mechanism
can be *derived from GM* by post-processing — first run the geometric
mechanism, then randomly remap its output according to a column-stochastic
remapping matrix that may depend on the analyst's prior and loss but not on
the data.  Gupte and Sundararajan's inequality (implemented in
:func:`repro.core.theory.gupte_sundararajan_derivable`) tests whether a
given mechanism is such a derivation; the paper uses it to show WM and EM
are genuinely new.

This module implements the machinery itself:

* :func:`post_process` — compose a mechanism with a remapping matrix
  (post-processing never weakens differential privacy);
* :func:`optimal_remap` — solve the small LP for the remapping of a base
  mechanism (typically GM) that minimises a given objective under a given
  prior, i.e. the Ghosh-et-al. recipe for prior-aware utility-optimal
  release;
* :func:`derive_from_geometric` — convenience wrapper returning the
  prior-optimal post-processed GM.

Together with the structural-constraint LP of :mod:`repro.core.design` this
gives both design routes discussed by the paper: constrain the mechanism
itself, or keep GM and remap its output.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.core.losses import Objective
from repro.core.mechanism import Mechanism
from repro.lp.model import LinearProgram
from repro.lp.solver import DEFAULT_BACKEND, solve

MatrixLike = Union[np.ndarray, Mechanism]


def _as_matrix(mechanism: MatrixLike) -> np.ndarray:
    if isinstance(mechanism, Mechanism):
        return mechanism.matrix
    matrix = np.asarray(mechanism, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"expected a square matrix, got shape {matrix.shape}")
    return matrix


def post_process(mechanism: Mechanism, remap: np.ndarray, name: Optional[str] = None) -> Mechanism:
    """Apply a data-independent randomized remapping to a mechanism's output.

    ``remap[k, i]`` is the probability of releasing ``k`` when the base
    mechanism produced ``i``; it must be column stochastic over the base
    mechanism's output range.  The composite mechanism is ``remap @ P``,
    which inherits the base mechanism's differential-privacy guarantee
    because post-processing cannot amplify the dependence on the input.
    """
    base = mechanism.matrix
    remap = np.asarray(remap, dtype=float)
    if remap.ndim != 2 or remap.shape[1] != base.shape[0]:
        raise ValueError(
            f"remap must have one column per base output; got {remap.shape} for base size {base.shape[0]}"
        )
    if np.any(remap < -1e-12):
        raise ValueError("remap entries must be non-negative")
    if not np.allclose(remap.sum(axis=0), 1.0, atol=1e-8):
        raise ValueError("remap columns must sum to one")
    if remap.shape[0] != base.shape[0]:
        raise ValueError(
            "remap must keep the output range {0..n} so the result is a count mechanism"
        )
    composite = remap @ base
    metadata = dict(mechanism.metadata)
    metadata["post_processed_from"] = mechanism.name
    return Mechanism(
        composite,
        name=name or f"{mechanism.name}+remap",
        alpha=mechanism.alpha,
        metadata=metadata,
    )


def optimal_remap(
    mechanism: Mechanism,
    objective: Optional[Objective] = None,
    prior: Optional[Sequence[float]] = None,
    backend: str = DEFAULT_BACKEND,
) -> np.ndarray:
    """The remapping matrix minimising an objective for a given prior.

    Solves the LP over column-stochastic remappings ``R`` of

        ``min  Σ_j w_j Σ_i P[i, j] Σ_k R[k, i] · penalty(k, j)``

    which is the Ghosh-et-al. post-processing step: the analyst keeps the
    α-DP base mechanism fixed and only reinterprets its output.  The program
    has ``(n+1)²`` variables and is tiny compared to the constrained-design
    LPs because the DP constraints do not appear (they are already enforced
    by the base mechanism).
    """
    objective = objective if objective is not None else Objective.l0()
    if objective.aggregator != "sum":
        raise ValueError("optimal_remap currently supports the expectation aggregator only")
    base = mechanism.matrix
    size = base.shape[0]
    weights = (
        np.asarray(Objective(p=objective.p, d=objective.d, weights=prior).prior(size))
        if prior is not None
        else objective.prior(size)
    )
    penalties = objective.penalties(size)

    # Cost of sending base output i to released value k:
    #   c[k, i] = sum_j w_j P[i, j] penalty(k, j)
    cost = penalties @ (base * weights[None, :]).T

    program = LinearProgram(name=f"remap({mechanism.name})")
    variables = [
        [program.add_variable(f"r_{k}_{i}", lower=0.0, upper=1.0) for i in range(size)]
        for k in range(size)
    ]
    for i in range(size):
        program.add_constraint(
            {variables[k][i]: 1.0 for k in range(size)}, "==", 1.0, name=f"column_{i}"
        )
    program.set_objective(
        {variables[k][i]: float(cost[k, i]) for k in range(size) for i in range(size)},
        sense="min",
    )
    solution = solve(program, backend=backend)
    remap = np.zeros((size, size))
    for k in range(size):
        for i in range(size):
            remap[k, i] = solution.value_of(variables[k][i])
    remap = np.clip(remap, 0.0, 1.0)
    remap /= remap.sum(axis=0, keepdims=True)
    return remap


def derive_from_geometric(
    n: int,
    alpha: float,
    objective: Optional[Objective] = None,
    prior: Optional[Sequence[float]] = None,
    backend: str = DEFAULT_BACKEND,
) -> Mechanism:
    """The prior-optimal post-processing of GM (the Ghosh et al. construction).

    Returns GM composed with the remapping from :func:`optimal_remap`.  With
    a uniform prior and the ``L0`` objective the optimal remapping is the
    identity (GM is already optimal, Theorem 3); with a skewed prior the
    remapping shifts mass towards the a-priori likely outputs and strictly
    improves the expected loss, while the result remains α-DP and — by
    construction — passes the Gupte–Sundararajan derivability test.
    """
    from repro.mechanisms.geometric import geometric_mechanism

    gm = geometric_mechanism(n, alpha)
    remap = optimal_remap(gm, objective=objective, prior=prior, backend=backend)
    derived = post_process(gm, remap, name="GM*")
    derived.metadata["derived_via"] = "optimal_remap"
    return derived
