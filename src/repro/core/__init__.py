"""Core abstractions for constrained private mechanism design.

This package implements the paper's primary contribution:

* :mod:`repro.core.mechanism` — the :class:`Mechanism` matrix abstraction
  (Definition 1), including sampling and application to data.
* :mod:`repro.core.properties` — differential privacy (Definition 2) and the
  seven structural properties of Section IV-A as checkable predicates.
* :mod:`repro.core.losses` — the objective functions of Definition 3 and the
  rescaled ``L0`` / ``L0,d`` scores of Equation (1).
* :mod:`repro.core.constraints` — translation of BASICDP and the structural
  properties into linear constraints (Section III and Theorem 2).
* :mod:`repro.core.design` — LP-based constrained mechanism design.
* :mod:`repro.core.selector` — the Figure-5 flowchart that picks GM / EM /
  WM without redundant LP solves.
* :mod:`repro.core.theory` — closed forms, lemma thresholds, the
  Gupte–Sundararajan derivability test and Theorem-1 symmetrisation.
"""

from repro.core.mechanism import (
    ClosedFormMechanism,
    DenseMechanism,
    Mechanism,
    SparseMechanism,
)
from repro.core.properties import (
    ALL_PROPERTIES,
    StructuralProperty,
    check_all_properties,
    implied_closure,
    parse_properties,
    satisfies_differential_privacy,
    satisfies_property,
)
from repro.core.losses import (
    Objective,
    l0_score,
    l0d_score,
    l1_score,
    l2_score,
    mechanism_rmse,
    objective_value,
)
from repro.core.design import design_mechanism
from repro.core.selector import SelectorDecision, choose_mechanism
from repro.core import theory

__all__ = [
    "Mechanism",
    "DenseMechanism",
    "ClosedFormMechanism",
    "SparseMechanism",
    "StructuralProperty",
    "ALL_PROPERTIES",
    "parse_properties",
    "implied_closure",
    "check_all_properties",
    "satisfies_property",
    "satisfies_differential_privacy",
    "Objective",
    "objective_value",
    "l0_score",
    "l0d_score",
    "l1_score",
    "l2_score",
    "mechanism_rmse",
    "design_mechanism",
    "choose_mechanism",
    "SelectorDecision",
    "theory",
]
