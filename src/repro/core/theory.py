"""Closed forms, thresholds and tests from the paper's analysis.

This module gathers every analytic statement the paper proves about the
named mechanisms, so the experiments (and the test-suite) can compare LP
results against theory:

* Theorem 3 / Section IV-B — the ``L0`` score of GM is ``2α / (1 + α)``.
* Lemma 2 — GM is weakly honest iff ``n >= 2α / (1 − α)``.
* Lemma 3 — GM is column monotone iff ``α <= 1/2``.
* Lemma 4 / Eq. 15 — the largest feasible fair diagonal value ``y``.
* Section IV-C — the ``L0`` score of EM, ``(n + 1)/n · (1 − y)``.
* Definition 5 — the ``L0`` score of the uniform mechanism is exactly 1.
* Section IV-D — the Gupte–Sundararajan test for derivability from GM.
* Theorem 1 — the symmetrisation construction (also exposed as
  :meth:`Mechanism.symmetrized`).
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np

from repro.core.mechanism import Mechanism

MatrixLike = Union[np.ndarray, Mechanism]


def _as_matrix(mechanism: MatrixLike) -> np.ndarray:
    if isinstance(mechanism, Mechanism):
        return mechanism.matrix
    return np.asarray(mechanism, dtype=float)


def _check_alpha(alpha: float) -> float:
    if not (0.0 <= alpha <= 1.0):
        raise ValueError("alpha must lie in [0, 1]")
    return float(alpha)


def _check_n(n: int) -> int:
    if int(n) != n or n < 1:
        raise ValueError("group size n must be a positive integer")
    return int(n)


# --------------------------------------------------------------------------- #
# Privacy parameter conversions
# --------------------------------------------------------------------------- #
def alpha_from_epsilon(epsilon: float) -> float:
    """Convert an ε-differential-privacy parameter to ``α = exp(−ε)``."""
    if epsilon < 0:
        raise ValueError("epsilon must be non-negative")
    return float(math.exp(-epsilon))


def epsilon_from_alpha(alpha: float) -> float:
    """Convert ``α`` to ``ε = −ln(α)`` (infinite for α = 0)."""
    alpha = _check_alpha(alpha)
    if alpha == 0.0:
        return float("inf")
    return float(-math.log(alpha))


# --------------------------------------------------------------------------- #
# Closed-form L0 scores (Figure 6)
# --------------------------------------------------------------------------- #
def gm_l0_score(alpha: float) -> float:
    """The ``L0`` score of the geometric mechanism, ``2α / (1 + α)`` (Section IV-B)."""
    alpha = _check_alpha(alpha)
    return 2.0 * alpha / (1.0 + alpha)


def gm_diagonal_interior(alpha: float) -> float:
    """GM's interior diagonal value ``y = (1 − α) / (1 + α)`` (Figure 3)."""
    alpha = _check_alpha(alpha)
    return (1.0 - alpha) / (1.0 + alpha)


def gm_corner_value(alpha: float) -> float:
    """GM's truncation-row value ``x = 1 / (1 + α)`` (Figure 3)."""
    alpha = _check_alpha(alpha)
    return 1.0 / (1.0 + alpha)


def em_diagonal(n: int, alpha: float) -> float:
    """The fair diagonal value ``y`` of the explicit fair mechanism EM.

    Every column of EM contains the same multiset of powers of α, so ``y`` is
    the reciprocal of that column sum (the construction makes the Lemma-4
    bound tight).  For even ``n`` this matches Eq. 15,
    ``y = (1 − α) / (1 + α − 2 α^{n/2 + 1})``; for odd ``n`` the column has a
    single largest power so ``y = 1 / (1 + 2 Σ_{k<= (n−1)/2} α^k + α^{(n+1)/2})``.
    """
    n = _check_n(n)
    alpha = _check_alpha(alpha)
    if alpha == 1.0:
        # Every power collapses to 1 and EM degenerates to the uniform mechanism.
        return 1.0 / (n + 1)
    if n % 2 == 0:
        half = n // 2
        column_sum = 1.0 + 2.0 * sum(alpha**k for k in range(1, half + 1))
    else:
        half = (n - 1) // 2
        column_sum = 1.0 + 2.0 * sum(alpha**k for k in range(1, half + 1)) + alpha ** (half + 1)
    return 1.0 / column_sum


def em_l0_score(n: int, alpha: float) -> float:
    """The ``L0`` score of EM: ``(n + 1)/n · (1 − y)`` (Lemma 1 and Eq. 1)."""
    n = _check_n(n)
    return (n + 1) / n * (1.0 - em_diagonal(n, alpha))


def um_l0_score(n: int) -> float:
    """The ``L0`` score of the uniform mechanism, exactly 1 by construction of Eq. 1."""
    _check_n(n)
    return 1.0


def um_raw_objective(n: int) -> float:
    """The unrescaled ``O_{0,Σ}`` value of UM, ``n / (n + 1)`` (Section IV-A)."""
    n = _check_n(n)
    return n / (n + 1)


def fairness_diagonal_bound(n: int, alpha: float) -> float:
    """Lemma 4: the largest diagonal value any fair mechanism can achieve.

    The bound is obtained by making the DP chain tight in the middle column;
    EM attains it, so this equals :func:`em_diagonal`.
    """
    return em_diagonal(n, alpha)


# --------------------------------------------------------------------------- #
# Lemma thresholds for GM
# --------------------------------------------------------------------------- #
def weak_honesty_threshold(alpha: float) -> float:
    """Lemma 2's group-size threshold ``2α / (1 − α)`` (infinite at α = 1)."""
    alpha = _check_alpha(alpha)
    if alpha >= 1.0:
        return float("inf")
    return 2.0 * alpha / (1.0 - alpha)


def gm_is_weakly_honest(n: int, alpha: float) -> bool:
    """Lemma 2: GM obeys weak honesty iff ``n >= 2α / (1 − α)``."""
    n = _check_n(n)
    return n >= weak_honesty_threshold(alpha) - 1e-12


def gm_is_column_monotone(alpha: float) -> bool:
    """Lemma 3: GM is column monotone iff ``α <= 1/2``."""
    alpha = _check_alpha(alpha)
    return alpha <= 0.5 + 1e-12


def wm_l0_bounds(n: int, alpha: float) -> tuple:
    """The sandwich ``L0(GM) <= L0(WM) <= L0(EM)`` from Section IV-D."""
    return gm_l0_score(alpha), em_l0_score(n, alpha)


# --------------------------------------------------------------------------- #
# Derivability from GM (Section IV-D, Gupte–Sundararajan test)
# --------------------------------------------------------------------------- #
def gupte_sundararajan_derivable(
    mechanism: MatrixLike, alpha: float, tolerance: float = 1e-9
) -> bool:
    """Whether a mechanism can be derived from GM by output remapping.

    Gupte and Sundararajan's test: ``P`` is derivable from GM iff every set
    of three row-adjacent entries satisfies

        ``(P[i, j] − α P[i, j − 1]) >= α (P[i, j + 1] − α P[i, j])``.

    The paper uses this to show that WM and EM are genuinely new mechanisms
    (the condition fails for them whenever ``n > 1``).
    """
    matrix = _as_matrix(mechanism)
    alpha = _check_alpha(alpha)
    size = matrix.shape[0]
    for i in range(size):
        for j in range(1, size - 1):
            left = matrix[i, j] - alpha * matrix[i, j - 1]
            right = alpha * (matrix[i, j + 1] - alpha * matrix[i, j])
            if left < right - tolerance:
                return False
    return True


def em_violates_derivability(n: int, alpha: float) -> bool:
    """Closed-form check from Section IV-D that EM breaks the GS condition for n > 1.

    The paper's witness is the triple ``Pr[2|0] = Pr[2|1] = yα`` and
    ``Pr[2|2] = y``, for which the condition reduces to ``1 >= 1 + α`` —
    false for every ``α > 0``.
    """
    n = _check_n(n)
    alpha = _check_alpha(alpha)
    return n > 1 and alpha > 0.0


# --------------------------------------------------------------------------- #
# Theorem 1: symmetrisation
# --------------------------------------------------------------------------- #
def symmetrize(mechanism: MatrixLike) -> np.ndarray:
    """Theorem 1: the centro-symmetric average ``(M + M^S) / 2`` as a raw matrix.

    The construction preserves differential privacy, all structural
    properties the input satisfies, and the ``L0`` objective value (the trace
    is unchanged).  :meth:`Mechanism.symmetrized` wraps this for Mechanism
    objects.
    """
    matrix = _as_matrix(mechanism)
    return 0.5 * (matrix + matrix[::-1, ::-1])


# --------------------------------------------------------------------------- #
# Randomized response (n = 1 baseline, Section II-B)
# --------------------------------------------------------------------------- #
def randomized_response_alpha(truth_probability: float) -> float:
    """Privacy level ``α = (1 − p) / p`` of binary randomized response."""
    if not (0.5 <= truth_probability <= 1.0):
        raise ValueError("randomized response requires a truth probability in [0.5, 1]")
    return (1.0 - truth_probability) / truth_probability


def randomized_response_truth_probability(alpha: float) -> float:
    """Truth probability ``p = 1 / (1 + α)`` achieving α-DP for binary RR."""
    alpha = _check_alpha(alpha)
    return 1.0 / (1.0 + alpha)


def nary_randomized_response_truth_probability(n: int, alpha: float) -> float:
    """Largest truth probability of the n-ary randomized response of Geng et al.

    The mechanism reports its input with probability ``p`` and otherwise a
    uniformly random *other* output.  The binding DP ratio is between the
    diagonal ``p`` and an off-diagonal ``(1 − p) / n`` in a neighbouring
    column, giving ``p <= 1 / (1 + n α)``; equality maximises utility.
    """
    n = _check_n(n)
    alpha = _check_alpha(alpha)
    return 1.0 / (1.0 + n * alpha)


# --------------------------------------------------------------------------- #
# Comparisons quoted in the introduction
# --------------------------------------------------------------------------- #
def em_to_gm_cost_ratio(n: int, alpha: float) -> float:
    """The ratio ``L0(EM) / L0(GM)``, approximately ``1 + 1/n`` for large n."""
    return em_l0_score(n, alpha) / gm_l0_score(alpha)
