"""Optional native-speed sampling kernels (numba), with a numpy fallback.

The guide-table sampler (:meth:`repro.core.mechanism.Mechanism
.sample_tiled`'s fast path) is the hottest loop in the library: one table
lookup per element, with a small fraction of bin-boundary elements falling
back to an exact per-column CDF inversion.  The pure-numpy implementation
pays several full-batch passes (bin computation, gather, ambiguity mask,
fallback batch); a compiled kernel fuses them into one pass with an inline
binary search for the ambiguous elements.

This module is the *only* place the optional ``numba`` dependency is
touched, and it degrades gracefully in three layers:

* ``numba`` not installed → :func:`jit_kernel` returns ``None`` and every
  caller uses the pure-numpy path (this module stays importable).
* ``REPRO_NO_NUMBA=1`` in the environment → the JIT kernel is disabled at
  call time even when numba is installed (checked per call, so tests can
  toggle it without re-importing).
* numba installed and enabled → :func:`guide_sample_jit` runs the compiled
  kernel.

Bit-identity contract: for every guide-compatible mechanism the JIT kernel
returns exactly the values of the numpy path on the same ``(table, cdfs,
counts, uniforms)`` inputs.  Guide hits read the same precomputed
inverse-CDF index; ambiguous elements are answered by a binary search that
reproduces ``np.searchsorted(cdf_row, u, side="right")`` — the inversion
every representation's exact sampler performs (see
:meth:`~repro.core.mechanism.Mechanism._sampling_cdf_row`).  The test-suite
proves the identity whenever numba is importable, and the pure-numpy path
is itself proven bit-identical to the sequential reference samplers.
"""

from __future__ import annotations

import os
from typing import Callable, Optional

import numpy as np

#: Environment variable that disables the JIT kernel when set to a truthy
#: value ("1", "true", ...).  Checked on every call, not at import.
NO_NUMBA_ENV = "REPRO_NO_NUMBA"

#: Cached numba availability: None = not probed yet, False = unavailable,
#: otherwise the compiled kernel function.
_JIT_KERNEL: Optional[object] = None
_JIT_PROBED = False


def numba_disabled_by_env() -> bool:
    """Whether ``REPRO_NO_NUMBA`` requests the pure-numpy path."""
    return os.environ.get(NO_NUMBA_ENV, "") not in ("", "0")


def numba_available() -> bool:
    """Whether the numba JIT kernel could be compiled (ignores the env switch)."""
    return jit_kernel() is not None


def jit_kernel() -> Optional[Callable]:
    """The compiled guide-table kernel, or ``None`` when numba is unusable.

    Compilation happens once per process on first call; an unimportable or
    broken numba installation is treated as absent rather than an error, so
    this module never makes the library harder to import.
    """
    global _JIT_KERNEL, _JIT_PROBED
    if not _JIT_PROBED:
        _JIT_PROBED = True
        try:
            import numba

            @numba.njit(cache=False, nogil=True)
            def _guide_kernel(table, cdfs, counts, uniforms, bins, out):
                size = cdfs.shape[1]
                for k in range(counts.shape[0]):
                    u = uniforms[k]
                    c = counts[k]
                    b = int(u * bins)
                    if b > bins - 1:
                        b = bins - 1
                    value = table[c * bins + b]
                    if value >= 0:
                        out[k] = value
                    else:
                        # np.searchsorted(cdfs[c], u, side="right"): the
                        # number of CDF entries <= u.
                        low = 0
                        high = size
                        while low < high:
                            mid = (low + high) >> 1
                            if cdfs[c, mid] <= u:
                                low = mid + 1
                            else:
                                high = mid
                        out[k] = low
                return out

            # Force a compilation now so the first hot batch pays nothing,
            # and so a broken toolchain is detected here, not mid-serving.
            _guide_kernel(
                np.zeros(4, dtype=np.int16),
                np.ones((1, 1)),
                np.zeros(1, dtype=np.int64),
                np.zeros(1),
                np.int64(4),
                np.empty(1, dtype=np.int64),
            )
            _JIT_KERNEL = _guide_kernel
        except Exception:  # pragma: no cover - depends on the environment
            _JIT_KERNEL = None
    return _JIT_KERNEL  # type: ignore[return-value]


def kernel_active() -> bool:
    """Whether guide sampling will run the JIT kernel right now."""
    return not numba_disabled_by_env() and jit_kernel() is not None


def kernel_name() -> str:
    """Human-readable name of the active guide-sampling implementation."""
    return "numba" if kernel_active() else "numpy"


def guide_sample_numpy(
    table: np.ndarray,
    counts: np.ndarray,
    uniforms: np.ndarray,
    bins: int,
    exact_fallback: Callable[[np.ndarray, np.ndarray], np.ndarray],
) -> np.ndarray:
    """Pure-numpy guide-table sampling (always importable reference path).

    Guide hits read the precomputed inverse-CDF index from ``table``; the
    bin-boundary elements (marked ``-1``) are answered in one batch by
    ``exact_fallback`` — the mechanism's own exact sampler, which keeps this
    path bit-identical to sequential sampling for every representation.
    """
    positions = np.minimum((uniforms * bins).astype(np.int64), bins - 1)
    released = table[counts * bins + positions].astype(np.int64)
    ambiguous = np.flatnonzero(released < 0)
    if ambiguous.size:
        released[ambiguous] = exact_fallback(counts[ambiguous], uniforms[ambiguous])
    return released


def guide_sample_jit(
    table: np.ndarray,
    cdfs: np.ndarray,
    counts: np.ndarray,
    uniforms: np.ndarray,
    bins: int,
) -> np.ndarray:
    """Run the compiled guide-table kernel (caller must check availability).

    ``cdfs`` holds the per-column sampling CDFs (row ``j`` is exactly the
    CDF the exact fallback inverts for count ``j``); ambiguous elements are
    resolved by the kernel's inline ``searchsorted(..., side="right")``
    binary search over that row, so the result is bit-identical to
    :func:`guide_sample_numpy` on the same inputs.
    """
    kernel = jit_kernel()
    if kernel is None:  # pragma: no cover - callers check kernel_active()
        raise RuntimeError("numba guide kernel is not available")
    out = np.empty(counts.shape[0], dtype=np.int64)
    return kernel(
        table,
        cdfs,
        np.ascontiguousarray(counts, dtype=np.int64),
        np.ascontiguousarray(uniforms, dtype=np.float64),
        np.int64(bins),
        out,
    )
