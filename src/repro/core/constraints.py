"""Translation of BASICDP and the structural properties into LP constraints.

Section III of the paper writes the unconstrained design problem as a linear
program over variables ``ρ_{i,j} = Pr[i | j]`` (constraints 3–6); Theorem 2
observes that each of the seven structural properties of Section IV-A is
itself a set of linear constraints, so any subset can be added to the same
program.  This module performs that translation on top of the
:class:`~repro.lp.model.LinearProgram` substrate.

The central class is :class:`MechanismLPBuilder`: it creates the variable
grid, installs BASICDP, adds any requested structural properties, installs
the objective (including the minimax variant via an auxiliary variable) and
hands back the finished program together with the variable grid so the
caller can reconstruct the mechanism matrix from a solution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.core.losses import Objective
from repro.core.properties import StructuralProperty, parse_properties
from repro.lp.model import LinearProgram, Variable


@dataclass
class MechanismLP:
    """A finished mechanism-design LP plus the bookkeeping to read it back.

    ``variables[i][j]`` is the LP variable for ``Pr[i | j]``.
    """

    program: LinearProgram
    variables: List[List[Variable]]
    n: int
    alpha: float
    objective: Objective
    properties: FrozenSet[StructuralProperty]
    auxiliary: Optional[Variable] = None

    def matrix_from_values(self, values: Sequence[float]) -> np.ndarray:
        """Assemble the mechanism matrix from a raw LP solution vector."""
        size = self.n + 1
        matrix = np.zeros((size, size), dtype=float)
        for i in range(size):
            for j in range(size):
                matrix[i, j] = float(values[self.variables[i][j].index])
        # Clean tiny numerical noise from the solver and renormalise columns.
        matrix = np.clip(matrix, 0.0, 1.0)
        matrix /= matrix.sum(axis=0, keepdims=True)
        return matrix


class MechanismLPBuilder:
    """Builds the constrained mechanism-design LP of Sections III–IV.

    Typical usage::

        builder = MechanismLPBuilder(n=7, alpha=0.62)
        builder.add_basic_dp()
        builder.add_properties(["WH", "CM"])
        builder.set_objective(Objective.l0())
        mechanism_lp = builder.build()
    """

    def __init__(self, n: int, alpha: float, name: Optional[str] = None) -> None:
        if n < 1:
            raise ValueError("group size n must be at least 1")
        if not (0.0 <= alpha <= 1.0):
            raise ValueError("alpha must lie in [0, 1]")
        self.n = int(n)
        self.alpha = float(alpha)
        self.size = self.n + 1
        self.program = LinearProgram(name=name or f"mechanism(n={n}, alpha={alpha:.4g})")
        # Constraint 4: every entry is a probability in [0, 1].
        self.variables: List[List[Variable]] = [
            [
                self.program.add_variable(f"rho_{i}_{j}", lower=0.0, upper=1.0)
                for j in range(self.size)
            ]
            for i in range(self.size)
        ]
        self._auxiliary: Optional[Variable] = None
        self._objective: Optional[Objective] = None
        self._properties: set = set()
        self._basic_dp_added = False

    # ------------------------------------------------------------------ #
    # BASICDP (constraints 4–6)
    # ------------------------------------------------------------------ #
    def add_basic_dp(self) -> None:
        """Install the stochasticity and differential-privacy constraints.

        Constraint 5: each column sums to one.  Constraint 6: for every row
        ``i`` and neighbouring inputs ``j, j + 1``,
        ``ρ_{i,j} >= α ρ_{i,j+1}`` and ``ρ_{i,j+1} >= α ρ_{i,j}``.
        """
        if self._basic_dp_added:
            return
        for j in range(self.size):
            self.program.add_constraint(
                {self.variables[i][j]: 1.0 for i in range(self.size)},
                "==",
                1.0,
                name=f"column_sum_{j}",
            )
        for i in range(self.size):
            for j in range(self.size - 1):
                self.program.add_constraint(
                    {self.variables[i][j]: 1.0, self.variables[i][j + 1]: -self.alpha},
                    ">=",
                    0.0,
                    name=f"dp_forward_{i}_{j}",
                )
                self.program.add_constraint(
                    {self.variables[i][j + 1]: 1.0, self.variables[i][j]: -self.alpha},
                    ">=",
                    0.0,
                    name=f"dp_backward_{i}_{j}",
                )
        self._basic_dp_added = True

    def add_output_dp(self, beta: Optional[float] = None) -> None:
        """Install the output-side DP constraints (the Section-VI extension).

        For every input ``j`` and neighbouring outputs ``i, i + 1``,
        ``ρ_{i,j} >= β ρ_{i+1,j}`` and ``ρ_{i+1,j} >= β ρ_{i,j}``.  ``beta``
        defaults to the mechanism's α, the symmetric requirement the paper
        suggests in its concluding remarks.
        """
        beta = self.alpha if beta is None else float(beta)
        if not (0.0 <= beta <= 1.0):
            raise ValueError("beta must lie in [0, 1]")
        for j in range(self.size):
            for i in range(self.size - 1):
                self.program.add_constraint(
                    {self.variables[i][j]: 1.0, self.variables[i + 1][j]: -beta},
                    ">=",
                    0.0,
                    name=f"output_dp_down_{i}_{j}",
                )
                self.program.add_constraint(
                    {self.variables[i + 1][j]: 1.0, self.variables[i][j]: -beta},
                    ">=",
                    0.0,
                    name=f"output_dp_up_{i}_{j}",
                )

    # ------------------------------------------------------------------ #
    # Structural properties (Section IV-A)
    # ------------------------------------------------------------------ #
    def add_properties(
        self, properties: Iterable[Union[str, StructuralProperty]]
    ) -> FrozenSet[StructuralProperty]:
        """Add every property in the given specification; returns the parsed set."""
        props = parse_properties(properties)
        for prop in props:
            self.add_property(prop)
        return props

    def add_property(self, prop: Union[str, StructuralProperty]) -> None:
        """Add the linear constraints for a single structural property."""
        prop = StructuralProperty.coerce(prop)
        if prop in self._properties:
            return
        dispatch = {
            StructuralProperty.ROW_HONESTY: self._add_row_honesty,
            StructuralProperty.ROW_MONOTONE: self._add_row_monotonicity,
            StructuralProperty.COLUMN_HONESTY: self._add_column_honesty,
            StructuralProperty.COLUMN_MONOTONE: self._add_column_monotonicity,
            StructuralProperty.FAIRNESS: self._add_fairness,
            StructuralProperty.WEAK_HONESTY: self._add_weak_honesty,
            StructuralProperty.SYMMETRY: self._add_symmetry,
        }
        dispatch[prop]()
        self._properties.add(prop)

    def _add_row_honesty(self) -> None:
        """RH (Eq. 7): ``ρ_{i,i} >= ρ_{i,j}``."""
        for i in range(self.size):
            for j in range(self.size):
                if i == j:
                    continue
                self.program.add_constraint(
                    {self.variables[i][i]: 1.0, self.variables[i][j]: -1.0},
                    ">=",
                    0.0,
                    name=f"row_honesty_{i}_{j}",
                )

    def _add_row_monotonicity(self) -> None:
        """RM (Eq. 8): row entries decay away from the diagonal."""
        for i in range(self.size):
            for j in range(1, i + 1):
                self.program.add_constraint(
                    {self.variables[i][j]: 1.0, self.variables[i][j - 1]: -1.0},
                    ">=",
                    0.0,
                    name=f"row_monotone_left_{i}_{j}",
                )
            for j in range(i, self.size - 1):
                self.program.add_constraint(
                    {self.variables[i][j]: 1.0, self.variables[i][j + 1]: -1.0},
                    ">=",
                    0.0,
                    name=f"row_monotone_right_{i}_{j}",
                )

    def _add_column_honesty(self) -> None:
        """CH (Eq. 9): ``ρ_{j,j} >= ρ_{i,j}``."""
        for j in range(self.size):
            for i in range(self.size):
                if i == j:
                    continue
                self.program.add_constraint(
                    {self.variables[j][j]: 1.0, self.variables[i][j]: -1.0},
                    ">=",
                    0.0,
                    name=f"column_honesty_{i}_{j}",
                )

    def _add_column_monotonicity(self) -> None:
        """CM (Eq. 10): column entries decay away from the diagonal."""
        for j in range(self.size):
            for i in range(1, j + 1):
                self.program.add_constraint(
                    {self.variables[i][j]: 1.0, self.variables[i - 1][j]: -1.0},
                    ">=",
                    0.0,
                    name=f"column_monotone_up_{i}_{j}",
                )
            for i in range(j, self.size - 1):
                self.program.add_constraint(
                    {self.variables[i][j]: 1.0, self.variables[i + 1][j]: -1.0},
                    ">=",
                    0.0,
                    name=f"column_monotone_down_{i}_{j}",
                )

    def _add_fairness(self) -> None:
        """F (Eq. 11): every diagonal entry equals ``ρ_{0,0}``."""
        for i in range(1, self.size):
            self.program.add_constraint(
                {self.variables[i][i]: 1.0, self.variables[0][0]: -1.0},
                "==",
                0.0,
                name=f"fairness_{i}",
            )

    def _add_weak_honesty(self) -> None:
        """WH (Eq. 13): ``ρ_{i,i} >= 1 / (n + 1)``."""
        threshold = 1.0 / self.size
        for i in range(self.size):
            self.program.add_constraint(
                {self.variables[i][i]: 1.0},
                ">=",
                threshold,
                name=f"weak_honesty_{i}",
            )

    def _add_symmetry(self) -> None:
        """S (Eq. 14): centro-symmetry ``ρ_{i,j} = ρ_{n-i,n-j}``."""
        seen = set()
        for i in range(self.size):
            for j in range(self.size):
                mirror = (self.n - i, self.n - j)
                if (i, j) == mirror or ((i, j) in seen) or (mirror in seen):
                    continue
                seen.add((i, j))
                self.program.add_constraint(
                    {self.variables[i][j]: 1.0, self.variables[mirror[0]][mirror[1]]: -1.0},
                    "==",
                    0.0,
                    name=f"symmetry_{i}_{j}",
                )

    # ------------------------------------------------------------------ #
    # Objective (constraint 3)
    # ------------------------------------------------------------------ #
    def set_objective(self, objective: Objective) -> None:
        """Install the loss function as the LP objective.

        For the expectation aggregator the objective is the linear form
        ``Σ_j w_j Σ_i penalty(i, j) ρ_{i,j}``.  For the minimax aggregator an
        auxiliary variable ``t`` bounds each per-input loss from above and is
        itself minimised.
        """
        self._objective = objective
        penalties = objective.penalties(self.size)
        weights = objective.prior(self.size)
        if objective.aggregator == "sum":
            coefficients: Dict[Variable, float] = {}
            for j in range(self.size):
                for i in range(self.size):
                    coeff = weights[j] * penalties[i, j]
                    if coeff != 0.0:
                        coefficients[self.variables[i][j]] = coeff
            self.program.set_objective(coefficients, sense="min")
            return
        # Minimax: minimise t subject to per-input loss <= t.
        self._auxiliary = self.program.add_variable("minimax_bound", lower=0.0)
        for j in range(self.size):
            row: Dict[Variable, float] = {self._auxiliary: -1.0}
            for i in range(self.size):
                coeff = penalties[i, j]
                if coeff != 0.0:
                    row[self.variables[i][j]] = coeff
            self.program.add_constraint(row, "<=", 0.0, name=f"minimax_bound_{j}")
        self.program.set_objective({self._auxiliary: 1.0}, sense="min")

    # ------------------------------------------------------------------ #
    # Assembly
    # ------------------------------------------------------------------ #
    def build(self) -> MechanismLP:
        """Return the finished :class:`MechanismLP` (BASICDP added if missing)."""
        if not self._basic_dp_added:
            self.add_basic_dp()
        if self._objective is None:
            self.set_objective(Objective.l0())
        return MechanismLP(
            program=self.program,
            variables=self.variables,
            n=self.n,
            alpha=self.alpha,
            objective=self._objective,
            properties=frozenset(self._properties),
            auxiliary=self._auxiliary,
        )


def build_mechanism_lp(
    n: int,
    alpha: float,
    properties: Iterable[Union[str, StructuralProperty]] = (),
    objective: Optional[Objective] = None,
    output_alpha: Optional[float] = None,
) -> MechanismLP:
    """Convenience wrapper assembling BASICDP + properties + objective.

    ``output_alpha`` additionally installs the output-side DP constraints of
    the Section-VI extension at the given level (pass ``alpha`` itself for
    the symmetric requirement).
    """
    builder = MechanismLPBuilder(n=n, alpha=alpha)
    builder.add_basic_dp()
    if output_alpha is not None:
        builder.add_output_dp(output_alpha)
    builder.add_properties(properties)
    builder.set_objective(objective if objective is not None else Objective.l0())
    return builder.build()
