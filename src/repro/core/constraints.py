"""Translation of BASICDP and the structural properties into LP constraints.

Section III of the paper writes the unconstrained design problem as a linear
program over variables ``ρ_{i,j} = Pr[i | j]`` (constraints 3–6); Theorem 2
observes that each of the seven structural properties of Section IV-A is
itself a set of linear constraints, so any subset can be added to the same
program.  This module performs that translation on top of the
:class:`~repro.lp.model.LinearProgram` substrate.

The central class is :class:`MechanismLPBuilder`: it creates the variable
grid, installs BASICDP, adds any requested structural properties, installs
the objective (including the minimax variant via an auxiliary variable) and
hands back the finished program together with the variable grid so the
caller can reconstruct the mechanism matrix from a solution.

Constraints are emitted as vectorized COO triplet blocks
(:meth:`~repro.lp.model.LinearProgram.add_constraints_from_triplets`) built
with NumPy index arithmetic, so assembling the LP costs ``O(nonzeros)``
instead of one Python dict per constraint.  The original loop-based emitters
are retained behind ``vectorized=False``; the test-suite verifies both paths
produce the identical constraint system (same names, senses, right-hand
sides and coefficients, in the same order) for every property combination.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.core.losses import Objective
from repro.core.properties import StructuralProperty, parse_properties
from repro.lp.model import LinearProgram, Variable


@dataclass
class MechanismLP:
    """A finished mechanism-design LP plus the bookkeeping to read it back.

    ``variables[i][j]`` is the LP variable for ``Pr[i | j]``.
    """

    program: LinearProgram
    variables: List[List[Variable]]
    n: int
    alpha: float
    objective: Objective
    properties: FrozenSet[StructuralProperty]
    auxiliary: Optional[Variable] = None

    def _index_grid(self) -> np.ndarray:
        """Variable indices of the ρ grid as an ``(n+1, n+1)`` int array."""
        cached = self.__dict__.get("_index_grid_cache")
        if cached is None:
            cached = np.array(
                [[variable.index for variable in row] for row in self.variables],
                dtype=np.int64,
            )
            self.__dict__["_index_grid_cache"] = cached
        return cached

    def matrix_from_values(self, values: Sequence[float]) -> np.ndarray:
        """Assemble the mechanism matrix from a raw LP solution vector.

        A single fancy-index gathers the ``(n + 1)^2`` grid entries; tiny
        numerical noise from the solver is clipped and columns renormalised.
        """
        values = np.asarray(values, dtype=float)
        matrix = np.clip(values[self._index_grid()], 0.0, 1.0)
        column_sums = matrix.sum(axis=0, keepdims=True)
        if np.any(column_sums <= 0.0):
            bad = np.nonzero(column_sums.ravel() <= 0.0)[0]
            raise ValueError(
                f"solution column(s) {bad.tolist()} sum to zero after clipping; "
                "the LP solution does not describe a mechanism"
            )
        matrix /= column_sums
        return matrix

    def sparse_matrix_from_values(self, values: Sequence[float]):
        """Assemble the mechanism as a CSC sparse matrix from a solution vector.

        Same clipping/renormalisation semantics as :meth:`matrix_from_values`
        but only the strictly positive entries are kept, so the result is
        O(nnz) — LP optima are sparse/banded, and this is what lets
        :mod:`repro.core.design` hand the serving layer a
        :class:`~repro.core.mechanism.SparseMechanism` without ever storing
        the dense ``(n + 1)^2`` matrix.
        """
        from scipy import sparse

        values = np.asarray(values, dtype=float)
        size = self.n + 1
        # Cell value per (column, row) pair, column-major so the kept
        # entries drop straight into CSC order.
        cells = np.clip(values[self._index_grid().T.ravel()], 0.0, 1.0)
        column_sums = cells.reshape(size, size).sum(axis=1)
        if np.any(column_sums <= 0.0):
            bad = np.nonzero(column_sums <= 0.0)[0]
            raise ValueError(
                f"solution column(s) {bad.tolist()} sum to zero after clipping; "
                "the LP solution does not describe a mechanism"
            )
        keep = cells > 0.0
        per_column = keep.reshape(size, size).sum(axis=1)
        indptr = np.concatenate(([0], np.cumsum(per_column)))
        indices = np.nonzero(keep.reshape(size, size))[1].astype(np.int32)
        data = cells[keep] / np.repeat(column_sums, per_column)
        return sparse.csc_matrix(
            (data, indices, indptr.astype(np.int32)), shape=(size, size)
        )


class MechanismLPBuilder:
    """Builds the constrained mechanism-design LP of Sections III–IV.

    Typical usage::

        builder = MechanismLPBuilder(n=7, alpha=0.62)
        builder.add_basic_dp()
        builder.add_properties(["WH", "CM"])
        builder.set_objective(Objective.l0())
        mechanism_lp = builder.build()

    ``vectorized=False`` selects the original loop-based constraint emitters
    (one Python dict per constraint); it exists as the reference
    implementation for equivalence testing and benchmarking and builds the
    exact same program.
    """

    def __init__(
        self,
        n: int,
        alpha: float,
        name: Optional[str] = None,
        vectorized: bool = True,
    ) -> None:
        if n < 1:
            raise ValueError("group size n must be at least 1")
        if not (0.0 <= alpha <= 1.0):
            raise ValueError("alpha must lie in [0, 1]")
        self.n = int(n)
        self.alpha = float(alpha)
        self.size = self.n + 1
        self.vectorized = bool(vectorized)
        self.program = LinearProgram(name=name or f"mechanism(n={n}, alpha={alpha:.4g})")
        # Constraint 4: every entry is a probability in [0, 1].
        self.variables: List[List[Variable]] = [
            [
                self.program.add_variable(f"rho_{i}_{j}", lower=0.0, upper=1.0)
                for j in range(self.size)
            ]
            for i in range(self.size)
        ]
        self._auxiliary: Optional[Variable] = None
        self._objective: Optional[Objective] = None
        self._properties: set = set()
        self._basic_dp_added = False

    # ------------------------------------------------------------------ #
    # BASICDP (constraints 4–6)
    # ------------------------------------------------------------------ #
    def add_basic_dp(self) -> None:
        """Install the stochasticity and differential-privacy constraints.

        Constraint 5: each column sums to one.  Constraint 6: for every row
        ``i`` and neighbouring inputs ``j, j + 1``,
        ``ρ_{i,j} >= α ρ_{i,j+1}`` and ``ρ_{i,j+1} >= α ρ_{i,j}``.
        """
        if self._basic_dp_added:
            return
        if self.vectorized:
            self._add_basic_dp_vectorized()
        else:
            self._add_basic_dp_loops()
        self._basic_dp_added = True

    def _add_basic_dp_vectorized(self) -> None:
        size = self.size
        # Column sums: row j covers ρ_{0,j} … ρ_{n,j}.
        j = np.arange(size)
        self.program.add_constraints_from_triplets(
            rows=np.repeat(j, size),
            # Row j touches the flat indices i * size + j for every output i.
            cols=(np.arange(size)[None, :] * size + j[:, None]).ravel(),
            vals=np.ones(size * size),
            senses="==",
            rhs=np.ones(size),
            names=lambda k: f"column_sum_{k}",
        )
        # DP ratio pairs, interleaved forward/backward exactly like the loop
        # emitter: pair k = i * n + j gives rows 2k (forward) and 2k+1
        # (backward).
        num_pairs = size * (size - 1)
        i_idx = np.repeat(np.arange(size), size - 1)
        j_idx = np.tile(np.arange(size - 1), size)
        left = i_idx * size + j_idx  # ρ_{i,j}
        right = left + 1  # ρ_{i,j+1}
        k = np.arange(num_pairs)
        ones = np.ones(num_pairs)
        self.program.add_constraints_from_triplets(
            rows=np.concatenate([2 * k, 2 * k, 2 * k + 1, 2 * k + 1]),
            cols=np.concatenate([left, right, right, left]),
            vals=np.concatenate([ones, -self.alpha * ones, ones, -self.alpha * ones]),
            senses=">=",
            rhs=np.zeros(2 * num_pairs),
            names=self._dp_name,
        )

    def _dp_name(self, k: int) -> str:
        pair, backward = divmod(k, 2)
        i, j = divmod(pair, self.size - 1)
        return f"dp_{'backward' if backward else 'forward'}_{i}_{j}"

    def _add_basic_dp_loops(self) -> None:
        for j in range(self.size):
            self.program.add_constraint(
                {self.variables[i][j]: 1.0 for i in range(self.size)},
                "==",
                1.0,
                name=f"column_sum_{j}",
            )
        for i in range(self.size):
            for j in range(self.size - 1):
                self.program.add_constraint(
                    {self.variables[i][j]: 1.0, self.variables[i][j + 1]: -self.alpha},
                    ">=",
                    0.0,
                    name=f"dp_forward_{i}_{j}",
                )
                self.program.add_constraint(
                    {self.variables[i][j + 1]: 1.0, self.variables[i][j]: -self.alpha},
                    ">=",
                    0.0,
                    name=f"dp_backward_{i}_{j}",
                )

    def add_output_dp(self, beta: Optional[float] = None) -> None:
        """Install the output-side DP constraints (the Section-VI extension).

        For every input ``j`` and neighbouring outputs ``i, i + 1``,
        ``ρ_{i,j} >= β ρ_{i+1,j}`` and ``ρ_{i+1,j} >= β ρ_{i,j}``.  ``beta``
        defaults to the mechanism's α, the symmetric requirement the paper
        suggests in its concluding remarks.
        """
        beta = self.alpha if beta is None else float(beta)
        if not (0.0 <= beta <= 1.0):
            raise ValueError("beta must lie in [0, 1]")
        if not self.vectorized:
            for j in range(self.size):
                for i in range(self.size - 1):
                    self.program.add_constraint(
                        {self.variables[i][j]: 1.0, self.variables[i + 1][j]: -beta},
                        ">=",
                        0.0,
                        name=f"output_dp_down_{i}_{j}",
                    )
                    self.program.add_constraint(
                        {self.variables[i + 1][j]: 1.0, self.variables[i][j]: -beta},
                        ">=",
                        0.0,
                        name=f"output_dp_up_{i}_{j}",
                    )
            return
        size = self.size
        num_pairs = size * (size - 1)
        j_idx = np.repeat(np.arange(size), size - 1)
        i_idx = np.tile(np.arange(size - 1), size)
        upper = i_idx * size + j_idx  # ρ_{i,j}
        lower = upper + size  # ρ_{i+1,j}
        k = np.arange(num_pairs)
        ones = np.ones(num_pairs)
        self.program.add_constraints_from_triplets(
            rows=np.concatenate([2 * k, 2 * k, 2 * k + 1, 2 * k + 1]),
            cols=np.concatenate([upper, lower, lower, upper]),
            vals=np.concatenate([ones, -beta * ones, ones, -beta * ones]),
            senses=">=",
            rhs=np.zeros(2 * num_pairs),
            names=self._output_dp_name,
        )

    def _output_dp_name(self, k: int) -> str:
        pair, up = divmod(k, 2)
        j, i = divmod(pair, self.size - 1)
        return f"output_dp_{'up' if up else 'down'}_{i}_{j}"

    # ------------------------------------------------------------------ #
    # Structural properties (Section IV-A)
    # ------------------------------------------------------------------ #
    def add_properties(
        self, properties: Iterable[Union[str, StructuralProperty]]
    ) -> FrozenSet[StructuralProperty]:
        """Add every property in the given specification; returns the parsed set."""
        props = parse_properties(properties)
        for prop in props:
            self.add_property(prop)
        return props

    def add_property(self, prop: Union[str, StructuralProperty]) -> None:
        """Add the linear constraints for a single structural property."""
        prop = StructuralProperty.coerce(prop)
        if prop in self._properties:
            return
        dispatch = {
            StructuralProperty.ROW_HONESTY: self._add_row_honesty,
            StructuralProperty.ROW_MONOTONE: self._add_row_monotonicity,
            StructuralProperty.COLUMN_HONESTY: self._add_column_honesty,
            StructuralProperty.COLUMN_MONOTONE: self._add_column_monotonicity,
            StructuralProperty.FAIRNESS: self._add_fairness,
            StructuralProperty.WEAK_HONESTY: self._add_weak_honesty,
            StructuralProperty.SYMMETRY: self._add_symmetry,
        }
        dispatch[prop]()
        self._properties.add(prop)

    def _pairwise_block(self, plus, minus, sense, rhs, names) -> None:
        """Batch of two-term constraints ``ρ[plus_k] - ρ[minus_k] sense rhs``."""
        count = plus.shape[0]
        rows = np.arange(count)
        self.program.add_constraints_from_triplets(
            rows=np.concatenate([rows, rows]),
            cols=np.concatenate([plus, minus]),
            vals=np.concatenate([np.ones(count), -np.ones(count)]),
            senses=sense,
            rhs=np.full(count, float(rhs)),
            names=names,
        )

    def _add_row_honesty(self) -> None:
        """RH (Eq. 7): ``ρ_{i,i} >= ρ_{i,j}``."""
        size = self.size
        if not self.vectorized:
            for i in range(size):
                for j in range(size):
                    if i == j:
                        continue
                    self.program.add_constraint(
                        {self.variables[i][i]: 1.0, self.variables[i][j]: -1.0},
                        ">=",
                        0.0,
                        name=f"row_honesty_{i}_{j}",
                    )
            return
        i_idx = np.repeat(np.arange(size), size)
        j_idx = np.tile(np.arange(size), size)
        off = i_idx != j_idx
        i_idx, j_idx = i_idx[off], j_idx[off]
        self._pairwise_block(
            plus=i_idx * size + i_idx,
            minus=i_idx * size + j_idx,
            sense=">=",
            rhs=0.0,
            names=lambda k, i=i_idx, j=j_idx: f"row_honesty_{i[k]}_{j[k]}",
        )

    def _add_row_monotonicity(self) -> None:
        """RM (Eq. 8): row entries decay away from the diagonal."""
        size = self.size
        if not self.vectorized:
            for i in range(size):
                for j in range(1, i + 1):
                    self.program.add_constraint(
                        {self.variables[i][j]: 1.0, self.variables[i][j - 1]: -1.0},
                        ">=",
                        0.0,
                        name=f"row_monotone_left_{i}_{j}",
                    )
                for j in range(i, size - 1):
                    self.program.add_constraint(
                        {self.variables[i][j]: 1.0, self.variables[i][j + 1]: -1.0},
                        ">=",
                        0.0,
                        name=f"row_monotone_right_{i}_{j}",
                    )
            return
        # Each row i emits: left pairs for j = 1 … i, then right pairs for
        # j = i … size-2 (size-1 constraints per row).  The local slot of a
        # left pair is base + j - 1 and of a right pair base + j, which
        # reproduces the loop emitter's interleaving exactly.
        i_grid = np.repeat(np.arange(size), size)
        j_grid = np.tile(np.arange(size), size)
        base = i_grid * (size - 1)
        left = (j_grid >= 1) & (j_grid <= i_grid)
        right = (j_grid >= i_grid) & (j_grid <= size - 2)
        li, lj = i_grid[left], j_grid[left]
        ri, rj = i_grid[right], j_grid[right]
        rows = np.concatenate([base[left] + lj - 1, base[right] + rj])
        num = size * (size - 1)
        plus = np.concatenate([li * size + lj, ri * size + rj])
        minus = np.concatenate([li * size + lj - 1, ri * size + rj + 1])
        self.program.add_constraints_from_triplets(
            rows=np.concatenate([rows, rows]),
            cols=np.concatenate([plus, minus]),
            vals=np.concatenate([np.ones(num), -np.ones(num)]),
            senses=">=",
            rhs=np.zeros(num),
            names=self._row_monotone_name,
        )

    def _row_monotone_name(self, k: int) -> str:
        i, slot = divmod(k, self.size - 1)
        j = slot + 1 if slot < i else slot
        side = "left" if slot < i else "right"
        return f"row_monotone_{side}_{i}_{j}"

    def _add_column_honesty(self) -> None:
        """CH (Eq. 9): ``ρ_{j,j} >= ρ_{i,j}``."""
        size = self.size
        if not self.vectorized:
            for j in range(size):
                for i in range(size):
                    if i == j:
                        continue
                    self.program.add_constraint(
                        {self.variables[j][j]: 1.0, self.variables[i][j]: -1.0},
                        ">=",
                        0.0,
                        name=f"column_honesty_{i}_{j}",
                    )
            return
        j_idx = np.repeat(np.arange(size), size)
        i_idx = np.tile(np.arange(size), size)
        off = i_idx != j_idx
        i_idx, j_idx = i_idx[off], j_idx[off]
        self._pairwise_block(
            plus=j_idx * size + j_idx,
            minus=i_idx * size + j_idx,
            sense=">=",
            rhs=0.0,
            names=lambda k, i=i_idx, j=j_idx: f"column_honesty_{i[k]}_{j[k]}",
        )

    def _add_column_monotonicity(self) -> None:
        """CM (Eq. 10): column entries decay away from the diagonal."""
        size = self.size
        if not self.vectorized:
            for j in range(size):
                for i in range(1, j + 1):
                    self.program.add_constraint(
                        {self.variables[i][j]: 1.0, self.variables[i - 1][j]: -1.0},
                        ">=",
                        0.0,
                        name=f"column_monotone_up_{i}_{j}",
                    )
                for i in range(j, size - 1):
                    self.program.add_constraint(
                        {self.variables[i][j]: 1.0, self.variables[i + 1][j]: -1.0},
                        ">=",
                        0.0,
                        name=f"column_monotone_down_{i}_{j}",
                    )
            return
        # Mirror of row monotonicity with the roles of i and j swapped.
        j_grid = np.repeat(np.arange(size), size)
        i_grid = np.tile(np.arange(size), size)
        base = j_grid * (size - 1)
        up = (i_grid >= 1) & (i_grid <= j_grid)
        down = (i_grid >= j_grid) & (i_grid <= size - 2)
        ui, uj = i_grid[up], j_grid[up]
        di, dj = i_grid[down], j_grid[down]
        rows = np.concatenate([base[up] + ui - 1, base[down] + di])
        num = size * (size - 1)
        plus = np.concatenate([ui * size + uj, di * size + dj])
        minus = np.concatenate([(ui - 1) * size + uj, (di + 1) * size + dj])
        self.program.add_constraints_from_triplets(
            rows=np.concatenate([rows, rows]),
            cols=np.concatenate([plus, minus]),
            vals=np.concatenate([np.ones(num), -np.ones(num)]),
            senses=">=",
            rhs=np.zeros(num),
            names=self._column_monotone_name,
        )

    def _column_monotone_name(self, k: int) -> str:
        j, slot = divmod(k, self.size - 1)
        i = slot + 1 if slot < j else slot
        side = "up" if slot < j else "down"
        return f"column_monotone_{side}_{i}_{j}"

    def _add_fairness(self) -> None:
        """F (Eq. 11): every diagonal entry equals ``ρ_{0,0}``."""
        size = self.size
        if not self.vectorized:
            for i in range(1, size):
                self.program.add_constraint(
                    {self.variables[i][i]: 1.0, self.variables[0][0]: -1.0},
                    "==",
                    0.0,
                    name=f"fairness_{i}",
                )
            return
        i_idx = np.arange(1, size)
        self._pairwise_block(
            plus=i_idx * size + i_idx,
            minus=np.zeros(size - 1, dtype=np.int64),
            sense="==",
            rhs=0.0,
            names=lambda k: f"fairness_{k + 1}",
        )

    def _add_weak_honesty(self) -> None:
        """WH (Eq. 13): ``ρ_{i,i} >= 1 / (n + 1)``."""
        size = self.size
        threshold = 1.0 / size
        if not self.vectorized:
            for i in range(size):
                self.program.add_constraint(
                    {self.variables[i][i]: 1.0},
                    ">=",
                    threshold,
                    name=f"weak_honesty_{i}",
                )
            return
        i_idx = np.arange(size)
        self.program.add_constraints_from_triplets(
            rows=i_idx,
            cols=i_idx * size + i_idx,
            vals=np.ones(size),
            senses=">=",
            rhs=np.full(size, threshold),
            names=lambda k: f"weak_honesty_{k}",
        )

    def _add_symmetry(self) -> None:
        """S (Eq. 14): centro-symmetry ``ρ_{i,j} = ρ_{n-i,n-j}``."""
        size = self.size
        if not self.vectorized:
            seen = set()
            for i in range(size):
                for j in range(size):
                    mirror = (self.n - i, self.n - j)
                    if (i, j) == mirror or ((i, j) in seen) or (mirror in seen):
                        continue
                    seen.add((i, j))
                    self.program.add_constraint(
                        {self.variables[i][j]: 1.0, self.variables[mirror[0]][mirror[1]]: -1.0},
                        "==",
                        0.0,
                        name=f"symmetry_{i}_{j}",
                    )
            return
        # In flat (row-major) indexing the mirror of f is size^2 - 1 - f, so
        # the loop emitter's first-visit rule keeps exactly the cells in the
        # strict first half of the grid.
        flat = np.arange(size * size)
        keep = flat[2 * flat < size * size - 1]
        self._pairwise_block(
            plus=keep,
            minus=size * size - 1 - keep,
            sense="==",
            rhs=0.0,
            names=lambda k, f=keep: f"symmetry_{f[k] // self.size}_{f[k] % self.size}",
        )

    # ------------------------------------------------------------------ #
    # Objective (constraint 3)
    # ------------------------------------------------------------------ #
    def set_objective(self, objective: Objective) -> None:
        """Install the loss function as the LP objective.

        For the expectation aggregator the objective is the linear form
        ``Σ_j w_j Σ_i penalty(i, j) ρ_{i,j}``.  For the minimax aggregator an
        auxiliary variable ``t`` bounds each per-input loss from above and is
        itself minimised.
        """
        self._objective = objective
        penalties = objective.penalties(self.size)
        weights = objective.prior(self.size)
        if objective.aggregator == "sum":
            if self.vectorized:
                self.program.set_objective_from_array(
                    (penalties * weights[None, :]).ravel(), sense="min"
                )
                return
            coefficients: Dict[Variable, float] = {}
            for j in range(self.size):
                for i in range(self.size):
                    coeff = weights[j] * penalties[i, j]
                    if coeff != 0.0:
                        coefficients[self.variables[i][j]] = coeff
            self.program.set_objective(coefficients, sense="min")
            return
        # Minimax: minimise t subject to per-input loss <= t.
        self._auxiliary = self.program.add_variable("minimax_bound", lower=0.0)
        if self.vectorized:
            size = self.size
            j_idx = np.repeat(np.arange(size), size)
            i_idx = np.tile(np.arange(size), size)
            self.program.add_constraints_from_triplets(
                rows=np.concatenate([np.arange(size), j_idx]),
                cols=np.concatenate(
                    [np.full(size, self._auxiliary.index), i_idx * size + j_idx]
                ),
                vals=np.concatenate([-np.ones(size), penalties[i_idx, j_idx]]),
                senses="<=",
                rhs=np.zeros(size),
                names=lambda k: f"minimax_bound_{k}",
            )
        else:
            for j in range(self.size):
                row: Dict[Variable, float] = {self._auxiliary: -1.0}
                for i in range(self.size):
                    coeff = penalties[i, j]
                    if coeff != 0.0:
                        row[self.variables[i][j]] = coeff
                self.program.add_constraint(row, "<=", 0.0, name=f"minimax_bound_{j}")
        self.program.set_objective({self._auxiliary: 1.0}, sense="min")

    # ------------------------------------------------------------------ #
    # Assembly
    # ------------------------------------------------------------------ #
    def build(self) -> MechanismLP:
        """Return the finished :class:`MechanismLP` (BASICDP added if missing)."""
        if not self._basic_dp_added:
            self.add_basic_dp()
        if self._objective is None:
            self.set_objective(Objective.l0())
        return MechanismLP(
            program=self.program,
            variables=self.variables,
            n=self.n,
            alpha=self.alpha,
            objective=self._objective,
            properties=frozenset(self._properties),
            auxiliary=self._auxiliary,
        )


def build_mechanism_lp(
    n: int,
    alpha: float,
    properties: Iterable[Union[str, StructuralProperty]] = (),
    objective: Optional[Objective] = None,
    output_alpha: Optional[float] = None,
    vectorized: bool = True,
) -> MechanismLP:
    """Convenience wrapper assembling BASICDP + properties + objective.

    ``output_alpha`` additionally installs the output-side DP constraints of
    the Section-VI extension at the given level (pass ``alpha`` itself for
    the symmetric requirement).  ``vectorized=False`` selects the loop-based
    reference emitters (same program, slower assembly).
    """
    builder = MechanismLPBuilder(n=n, alpha=alpha, vectorized=vectorized)
    builder.add_basic_dp()
    if output_alpha is not None:
        builder.add_output_dp(output_alpha)
    builder.add_properties(properties)
    builder.set_objective(objective if objective is not None else Objective.l0())
    return builder.build()
