"""Structural properties of mechanisms (Section IV-A of the paper).

The paper defines seven properties that a mechanism matrix ``P`` (with
``P[i, j] = Pr[output = i | input = j]``) may satisfy:

* **Row honesty (RH)** — ``Pr[i | i] >= Pr[i | j]`` for all ``i, j``.
* **Row monotonicity (RM)** — entries in row ``i`` are non-increasing as the
  input moves away from ``i``.  RM implies RH.
* **Column honesty (CH)** — ``Pr[j | j] >= Pr[i | j]`` for all ``i, j``.
* **Column monotonicity (CM)** — entries in column ``j`` are non-increasing
  as the output moves away from ``j``.  CM implies CH.
* **Fairness (F)** — the truth-reporting probability ``Pr[i | i]`` is the
  same for every input.
* **Weak honesty (WH)** — ``Pr[i | i] >= 1 / (n + 1)`` for every input.
  CH implies WH.
* **Symmetry (S)** — the matrix is centro-symmetric,
  ``Pr[i | j] = Pr[n - i | n - j]``.

This module provides the properties as an enum, per-property checkers on raw
matrices or :class:`~repro.core.mechanism.Mechanism` objects, the implication
lattice, and a canonicaliser that reduces requested property sets to the nine
meaningful combinations studied in Section V-A.
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.core.mechanism import Mechanism

MatrixLike = Union[np.ndarray, Mechanism]

#: Default tolerance for property checks on floating-point matrices.
DEFAULT_TOLERANCE = 1e-9


class StructuralProperty(str, enum.Enum):
    """The seven structural properties of Section IV-A."""

    ROW_HONESTY = "RH"
    ROW_MONOTONE = "RM"
    COLUMN_HONESTY = "CH"
    COLUMN_MONOTONE = "CM"
    FAIRNESS = "F"
    WEAK_HONESTY = "WH"
    SYMMETRY = "S"

    @classmethod
    def coerce(cls, value: Union["StructuralProperty", str]) -> "StructuralProperty":
        """Accept an enum member, its code (``"RH"``) or its full name."""
        if isinstance(value, StructuralProperty):
            return value
        text = str(value).strip().upper().replace("-", "_").replace(" ", "_")
        for member in cls:
            if text == member.value or text == member.name:
                return member
        aliases = {
            "ROW_HONEST": cls.ROW_HONESTY,
            "ROW_MONOTONICITY": cls.ROW_MONOTONE,
            "COLUMN_HONEST": cls.COLUMN_HONESTY,
            "COLUMN_MONOTONICITY": cls.COLUMN_MONOTONE,
            "FAIR": cls.FAIRNESS,
            "WEAKLY_HONEST": cls.WEAK_HONESTY,
            "SYMMETRIC": cls.SYMMETRY,
        }
        if text in aliases:
            return aliases[text]
        raise ValueError(f"unknown structural property: {value!r}")


#: All seven properties, in the order the paper lists them.
ALL_PROPERTIES: Tuple[StructuralProperty, ...] = (
    StructuralProperty.ROW_HONESTY,
    StructuralProperty.ROW_MONOTONE,
    StructuralProperty.COLUMN_HONESTY,
    StructuralProperty.COLUMN_MONOTONE,
    StructuralProperty.FAIRNESS,
    StructuralProperty.WEAK_HONESTY,
    StructuralProperty.SYMMETRY,
)

#: Direct implications between single properties: RM ⇒ RH, CM ⇒ CH, CH ⇒ WH.
DIRECT_IMPLICATIONS: Dict[StructuralProperty, Tuple[StructuralProperty, ...]] = {
    StructuralProperty.ROW_MONOTONE: (StructuralProperty.ROW_HONESTY,),
    StructuralProperty.COLUMN_MONOTONE: (StructuralProperty.COLUMN_HONESTY,),
    StructuralProperty.COLUMN_HONESTY: (StructuralProperty.WEAK_HONESTY,),
}


def parse_properties(
    spec: Union[None, str, StructuralProperty, Iterable[Union[str, StructuralProperty]]],
) -> FrozenSet[StructuralProperty]:
    """Parse a property specification into a frozen set of properties.

    Accepts ``None`` (no properties), a single property or code, a
    comma/plus/space separated string such as ``"WH+CM"`` or ``"RH, S"``,
    the keyword ``"all"``, or any iterable of the above.
    """
    if spec is None:
        return frozenset()
    if isinstance(spec, StructuralProperty):
        return frozenset({spec})
    if isinstance(spec, str):
        text = spec.strip()
        if not text:
            return frozenset()
        if text.lower() in ("all", "*"):
            return frozenset(ALL_PROPERTIES)
        tokens = [token for token in text.replace("+", ",").replace(" ", ",").split(",") if token]
        return frozenset(StructuralProperty.coerce(token) for token in tokens)
    return frozenset(StructuralProperty.coerce(item) for item in spec)


def implied_closure(
    properties: Iterable[Union[str, StructuralProperty]],
) -> FrozenSet[StructuralProperty]:
    """Close a property set under the implication lattice of Section IV-A.

    In addition to the single-property implications (RM ⇒ RH, CM ⇒ CH ⇒ WH)
    the paper notes two joint implications: a fair and row-honest mechanism
    is column honest, and a fair and column-honest mechanism is row honest.
    """
    current: Set[StructuralProperty] = set(parse_properties(properties))
    changed = True
    while changed:
        changed = False
        for prop in list(current):
            for implied in DIRECT_IMPLICATIONS.get(prop, ()):
                if implied not in current:
                    current.add(implied)
                    changed = True
        if StructuralProperty.FAIRNESS in current:
            if StructuralProperty.ROW_HONESTY in current and (
                StructuralProperty.COLUMN_HONESTY not in current
            ):
                current.add(StructuralProperty.COLUMN_HONESTY)
                changed = True
            if StructuralProperty.COLUMN_HONESTY in current and (
                StructuralProperty.ROW_HONESTY not in current
            ):
                current.add(StructuralProperty.ROW_HONESTY)
                changed = True
    return frozenset(current)


def minimal_representation(
    properties: Iterable[Union[str, StructuralProperty]],
) -> FrozenSet[StructuralProperty]:
    """Drop properties implied by others, giving a minimal equivalent request.

    For example ``{RM, RH, WH, CM, CH}`` reduces to ``{RM, CM}`` because
    RM ⇒ RH and CM ⇒ CH ⇒ WH.
    """
    requested = implied_closure(properties)
    minimal: Set[StructuralProperty] = set(requested)
    for prop in list(minimal):
        without = minimal - {prop}
        if prop in implied_closure(without):
            minimal.discard(prop)
    return frozenset(minimal)


# --------------------------------------------------------------------------- #
# Checkers
# --------------------------------------------------------------------------- #
# Every public checker dispatches on the mechanism's representation:
#
# * raw arrays and dense mechanisms use the original full-matrix predicates;
# * closed-form mechanisms answer from their factory's analytic verdicts
#   when available (``_known_properties``);
# * other non-dense mechanisms (sparse CSC, closed forms without analytic
#   answers) are checked by *streaming* column blocks through the exact
#   same per-entry predicates, so the verdict is identical to the dense
#   check without ever materialising the matrix — O(size * block) memory,
#   and O(nnz + block) expansion cost per block for sparse storage.
def _as_matrix(mechanism: MatrixLike) -> np.ndarray:
    if isinstance(mechanism, Mechanism):
        return mechanism.matrix
    matrix = np.asarray(mechanism, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"expected a square matrix, got shape {matrix.shape}")
    return matrix


def _is_lazy(mechanism: MatrixLike) -> bool:
    """Whether property checks should avoid materialising the matrix."""
    return isinstance(mechanism, Mechanism) and not mechanism.is_dense


def _known_verdict(
    mechanism: MatrixLike, prop: "StructuralProperty", tolerance: float
) -> Optional[bool]:
    """Analytic verdict from a closed-form factory, if one exists."""
    known_fn = getattr(mechanism, "_known_properties", None)
    if known_fn is None:
        return None
    known = known_fn(tolerance)
    if known is None:
        return None
    return bool(known[prop.value])


def _stream_column_pairs(mechanism: Mechanism):
    """Yield ``(j, left_block, right_block)`` adjacent column pairs.

    ``left`` holds columns ``j … j + b - 1`` and ``right`` the columns one
    to their right, so predicates over neighbouring inputs can scan the
    whole mechanism in O(size * block) memory.
    """
    previous_last: Optional[np.ndarray] = None
    for j0, j1, block in mechanism.iter_column_blocks():
        if previous_last is not None:
            yield j0 - 1, previous_last[:, None], block[:, :1]
        if block.shape[1] > 1:
            yield j0, block[:, :-1], block[:, 1:]
        previous_last = np.array(block[:, -1])


def satisfies_differential_privacy(
    mechanism: MatrixLike, alpha: float, tolerance: float = DEFAULT_TOLERANCE
) -> bool:
    """Definition 2: ``alpha <= P[i, j] / P[i, j + 1] <= 1 / alpha`` for all i, j."""
    if not (0.0 <= alpha <= 1.0):
        raise ValueError("alpha must lie in [0, 1]")
    if _is_lazy(mechanism):
        for _, left, right in _stream_column_pairs(mechanism):
            if np.any(left < alpha * right - tolerance) or np.any(
                right < alpha * left - tolerance
            ):
                return False
        return True
    matrix = _as_matrix(mechanism)
    size = matrix.shape[0]
    for j in range(size - 1):
        for i in range(size):
            a = matrix[i, j]
            b = matrix[i, j + 1]
            if a < alpha * b - tolerance or b < alpha * a - tolerance:
                return False
    return True


def is_row_honest(mechanism: MatrixLike, tolerance: float = DEFAULT_TOLERANCE) -> bool:
    """RH (Eq. 7): ``Pr[i | i] >= Pr[i | j]``."""
    known = _known_verdict(mechanism, StructuralProperty.ROW_HONESTY, tolerance)
    if known is not None:
        return known
    if _is_lazy(mechanism):
        diagonal = mechanism._diagonal()
        return all(
            bool(np.all(block <= diagonal[:, None] + tolerance))
            for _, _, block in mechanism.iter_column_blocks()
        )
    matrix = _as_matrix(mechanism)
    diagonal = np.diag(matrix)
    return bool(np.all(matrix <= diagonal[:, None] + tolerance))


def is_row_monotone(mechanism: MatrixLike, tolerance: float = DEFAULT_TOLERANCE) -> bool:
    """RM (Eq. 8): entries in a row are non-increasing away from the diagonal."""
    known = _known_verdict(mechanism, StructuralProperty.ROW_MONOTONE, tolerance)
    if known is not None:
        return known
    if _is_lazy(mechanism):
        rows = np.arange(mechanism.size)[:, None]
        for j, left, right in _stream_column_pairs(mechanism):
            columns = np.arange(j, j + left.shape[1])[None, :]
            # Moving right is *toward* the diagonal for rows below the pair
            # (i >= j + 1) and *away* from it for rows at or above (i <= j).
            toward = (rows > columns) & (left > right + tolerance)
            away = (rows <= columns) & (right > left + tolerance)
            if bool(np.any(toward)) or bool(np.any(away)):
                return False
        return True
    matrix = _as_matrix(mechanism)
    size = matrix.shape[0]
    for i in range(size):
        for j in range(1, i + 1):
            if matrix[i, j - 1] > matrix[i, j] + tolerance:
                return False
        for j in range(i, size - 1):
            if matrix[i, j + 1] > matrix[i, j] + tolerance:
                return False
    return True


def is_column_honest(mechanism: MatrixLike, tolerance: float = DEFAULT_TOLERANCE) -> bool:
    """CH (Eq. 9): ``Pr[j | j] >= Pr[i | j]``."""
    known = _known_verdict(mechanism, StructuralProperty.COLUMN_HONESTY, tolerance)
    if known is not None:
        return known
    if _is_lazy(mechanism):
        diagonal = mechanism._diagonal()
        return all(
            bool(np.all(block <= diagonal[None, j0:j1] + tolerance))
            for j0, j1, block in mechanism.iter_column_blocks()
        )
    matrix = _as_matrix(mechanism)
    diagonal = np.diag(matrix)
    return bool(np.all(matrix <= diagonal[None, :] + tolerance))


def is_column_monotone(mechanism: MatrixLike, tolerance: float = DEFAULT_TOLERANCE) -> bool:
    """CM (Eq. 10): entries in a column are non-increasing away from the diagonal."""
    known = _known_verdict(mechanism, StructuralProperty.COLUMN_MONOTONE, tolerance)
    if known is not None:
        return known
    if _is_lazy(mechanism):
        rows = np.arange(mechanism.size - 1)[:, None]  # index of each diff
        for j0, j1, block in mechanism.iter_column_blocks():
            columns = np.arange(j0, j1)[None, :]
            steps = np.diff(block, axis=0)  # steps[i] = P[i+1, j] - P[i, j]
            above = (rows < columns) & (steps < -tolerance)  # must rise toward j
            below = (rows >= columns) & (steps > tolerance)  # must fall past j
            if bool(np.any(above)) or bool(np.any(below)):
                return False
        return True
    matrix = _as_matrix(mechanism)
    size = matrix.shape[0]
    for j in range(size):
        for i in range(1, j + 1):
            if matrix[i - 1, j] > matrix[i, j] + tolerance:
                return False
        for i in range(j, size - 1):
            if matrix[i + 1, j] > matrix[i, j] + tolerance:
                return False
    return True


def is_fair(mechanism: MatrixLike, tolerance: float = DEFAULT_TOLERANCE) -> bool:
    """F (Eq. 11): every diagonal entry equals the same value ``y``."""
    known = _known_verdict(mechanism, StructuralProperty.FAIRNESS, tolerance)
    if known is not None:
        return known
    if _is_lazy(mechanism):
        diagonal = mechanism._diagonal()
    else:
        diagonal = np.diag(_as_matrix(mechanism))
    return bool(np.all(np.abs(diagonal - diagonal[0]) <= tolerance))


def is_weakly_honest(mechanism: MatrixLike, tolerance: float = DEFAULT_TOLERANCE) -> bool:
    """WH (Eq. 13): ``Pr[i | i] >= 1 / (n + 1)``."""
    known = _known_verdict(mechanism, StructuralProperty.WEAK_HONESTY, tolerance)
    if known is not None:
        return known
    if _is_lazy(mechanism):
        diagonal = mechanism._diagonal()
        size = mechanism.size
    else:
        matrix = _as_matrix(mechanism)
        diagonal = np.diag(matrix)
        size = matrix.shape[0]
    return bool(np.all(diagonal >= 1.0 / size - tolerance))


def is_symmetric(mechanism: MatrixLike, tolerance: float = DEFAULT_TOLERANCE) -> bool:
    """S (Eq. 14): centro-symmetry, ``Pr[i | j] = Pr[n - i | n - j]``."""
    known = _known_verdict(mechanism, StructuralProperty.SYMMETRY, tolerance)
    if known is not None:
        return known
    if _is_lazy(mechanism):
        n = mechanism.n
        for j0, j1, block in mechanism.iter_column_blocks():
            if j0 > n - j0:  # every remaining pair was checked from the left
                break
            mirror = mechanism._columns_block(n - j1 + 1, n - j0 + 1)
            if not np.allclose(block, mirror[::-1, ::-1], atol=tolerance):
                return False
        return True
    matrix = _as_matrix(mechanism)
    return bool(np.allclose(matrix, matrix[::-1, ::-1], atol=tolerance))


#: Dispatch table from property to checker.
_CHECKERS = {
    StructuralProperty.ROW_HONESTY: is_row_honest,
    StructuralProperty.ROW_MONOTONE: is_row_monotone,
    StructuralProperty.COLUMN_HONESTY: is_column_honest,
    StructuralProperty.COLUMN_MONOTONE: is_column_monotone,
    StructuralProperty.FAIRNESS: is_fair,
    StructuralProperty.WEAK_HONESTY: is_weakly_honest,
    StructuralProperty.SYMMETRY: is_symmetric,
}


def satisfies_property(
    mechanism: MatrixLike,
    prop: Union[str, StructuralProperty],
    tolerance: float = DEFAULT_TOLERANCE,
) -> bool:
    """Whether a mechanism satisfies a single structural property."""
    return _CHECKERS[StructuralProperty.coerce(prop)](mechanism, tolerance=tolerance)


def satisfies_all(
    mechanism: MatrixLike,
    properties: Iterable[Union[str, StructuralProperty]],
    tolerance: float = DEFAULT_TOLERANCE,
) -> bool:
    """Whether a mechanism satisfies every property in the given set."""
    return all(
        satisfies_property(mechanism, prop, tolerance=tolerance)
        for prop in parse_properties(properties)
    )


def check_all_properties(
    mechanism: MatrixLike, tolerance: float = DEFAULT_TOLERANCE
) -> Dict[StructuralProperty, bool]:
    """Evaluate all seven structural properties, returning a report dict."""
    return {
        prop: checker(mechanism, tolerance=tolerance) for prop, checker in _CHECKERS.items()
    }


def violations(
    mechanism: MatrixLike,
    properties: Iterable[Union[str, StructuralProperty]],
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[StructuralProperty]:
    """The subset of requested properties that the mechanism violates."""
    return [
        prop
        for prop in sorted(parse_properties(properties), key=lambda p: p.value)
        if not satisfies_property(mechanism, prop, tolerance=tolerance)
    ]


def has_gap(mechanism: MatrixLike, tolerance: float = DEFAULT_TOLERANCE) -> bool:
    """Whether any output is never reported (a zero row — a "gap" in Fig. 1)."""
    if _is_lazy(mechanism):
        row_max = np.zeros(mechanism.size)
        for _, _, block in mechanism.iter_column_blocks():
            np.maximum(row_max, block.max(axis=1), out=row_max)
        return bool(np.any(row_max <= tolerance))
    matrix = _as_matrix(mechanism)
    return bool(np.any(matrix.max(axis=1) <= tolerance))


def spike_ratio(mechanism: MatrixLike) -> float:
    """How spiky the mechanism is: max row mass divided by the uniform row mass.

    A perfectly balanced mechanism (every output equally likely under a
    uniform prior) scores 1; the degenerate Figure-1 L2 mechanism, which
    always reports the same value, scores ``n + 1``.
    """
    if _is_lazy(mechanism):
        size = mechanism.size
        row_sum = np.zeros(size)
        for _, _, block in mechanism.iter_column_blocks():
            row_sum += block.sum(axis=1)
        return float(row_sum.max())  # mean over size columns, times size
    matrix = _as_matrix(mechanism)
    size = matrix.shape[0]
    row_mass = matrix.mean(axis=1)
    return float(row_mass.max() * size)


# --------------------------------------------------------------------------- #
# Meaningful combinations (Section V-A)
# --------------------------------------------------------------------------- #
def meaningful_weak_honesty_combinations() -> List[FrozenSet[StructuralProperty]]:
    """The nine meaningful property sets studied alongside weak honesty.

    Section V-A combines WH with subsets of {RH, RM, CH, CM}; because
    RM ⇒ RH and CM ⇒ CH, only nine combinations are distinct:
    ∅, RH, RM, CH, CM, RH+CH, RH+CM, RM+CH, RM+CM (each together with WH).
    """
    wh = StructuralProperty.WEAK_HONESTY
    rh = StructuralProperty.ROW_HONESTY
    rm = StructuralProperty.ROW_MONOTONE
    ch = StructuralProperty.COLUMN_HONESTY
    cm = StructuralProperty.COLUMN_MONOTONE
    row_options = (frozenset(), frozenset({rh}), frozenset({rm}))
    column_options = (frozenset(), frozenset({ch}), frozenset({cm}))
    combos: List[FrozenSet[StructuralProperty]] = []
    for row_part in row_options:
        for column_part in column_options:
            combos.append(frozenset({wh}) | row_part | column_part)
    return combos


def combination_label(properties: Iterable[Union[str, StructuralProperty]]) -> str:
    """Short label for a property combination, e.g. ``"WH+RM+CM"``."""
    props = parse_properties(properties)
    ordered = [prop.value for prop in ALL_PROPERTIES if prop in props]
    return "+".join(ordered) if ordered else "(none)"
