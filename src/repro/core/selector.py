"""The Figure-5 flowchart: which mechanism serves a requested property set.

Section IV-D's headline structural result is that, although seven properties
give 128 possible requests, under the ``L0`` objective only four distinct
optimal behaviours exist:

1. **EM** whenever fairness is requested (Theorem 4: EM is optimal among
   fair mechanisms and carries every other property for free).
2. **GM** whenever only {S, RM, RH} are requested (Theorem 3: GM is the
   BASICDP optimum and already has those properties), and more generally
   whenever GM happens to satisfy everything requested — which by Lemma 2
   includes weak honesty once ``n >= 2α/(1 − α)``, and by Lemma 3 includes
   the column properties once ``α <= 1/2``.
3. **WM (WH)** — the LP solution with weak honesty — when WH is requested,
   GM does not provide it, and no column property is requested.
4. **WM (WH + CM)** — the LP solution with weak honesty and column
   monotonicity — when a column property is requested and GM does not
   provide it.

:func:`choose_mechanism` implements this decision procedure and returns both
the mechanism and a :class:`SelectorDecision` explaining which branch fired,
so the test-suite can verify the flowchart never loses optimality relative
to solving the full LP directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional, Sequence, Tuple, Union

from repro.core.losses import Objective
from repro.core.mechanism import Mechanism
from repro.core.properties import (
    StructuralProperty,
    combination_label,
    implied_closure,
    parse_properties,
)
from repro.core.theory import gm_is_column_monotone, gm_is_weakly_honest
from repro.lp.solver import DEFAULT_BACKEND


#: Branch labels for SelectorDecision.branch.
BRANCH_FAIR = "EM"
BRANCH_GEOMETRIC = "GM"
BRANCH_WEAK_HONESTY = "WM[WH]"
BRANCH_WEAK_HONESTY_COLUMN = "WM[WH+CM]"

#: Properties GM is guaranteed to satisfy for every (n, alpha): symmetry and
#: the row-wise properties (Section IV-B).
_GM_UNCONDITIONAL: FrozenSet[StructuralProperty] = frozenset(
    {
        StructuralProperty.SYMMETRY,
        StructuralProperty.ROW_MONOTONE,
        StructuralProperty.ROW_HONESTY,
    }
)

_COLUMN_PROPERTIES: FrozenSet[StructuralProperty] = frozenset(
    {StructuralProperty.COLUMN_HONESTY, StructuralProperty.COLUMN_MONOTONE}
)


@dataclass(frozen=True)
class SelectorDecision:
    """The outcome of the Figure-5 decision procedure."""

    branch: str
    requested: FrozenSet[StructuralProperty]
    closure: FrozenSet[StructuralProperty]
    n: int
    alpha: float
    reason: str

    def describe(self) -> str:
        """Readable one-line description of the decision."""
        label = combination_label(self.requested) or "(none)"
        return f"properties {label} at (n={self.n}, alpha={self.alpha:g}) -> {self.branch}: {self.reason}"


def gm_satisfies(
    properties: Iterable[Union[str, StructuralProperty]], n: int, alpha: float
) -> bool:
    """Whether GM satisfies every property in the set, using the paper's lemmas.

    GM always satisfies S, RM and RH; it satisfies WH iff ``n >= 2α/(1 − α)``
    (Lemma 2) and the column properties iff ``α <= 1/2`` (Lemma 3); it is
    never fair for n > 1.
    """
    closure = implied_closure(properties)
    for prop in closure:
        if prop in _GM_UNCONDITIONAL:
            continue
        if prop is StructuralProperty.WEAK_HONESTY:
            # Column monotonicity also implies weak honesty, so either lemma
            # can discharge the requirement.
            if gm_is_weakly_honest(n, alpha) or gm_is_column_monotone(alpha):
                continue
            return False
        if prop in _COLUMN_PROPERTIES:
            if gm_is_column_monotone(alpha):
                continue
            return False
        if prop is StructuralProperty.FAIRNESS:
            return n == 1 and alpha <= 1.0 and False  # GM is never fair for n >= 2
        return False
    return True


def decide(
    n: int,
    alpha: float,
    properties: Union[None, str, Iterable[Union[str, StructuralProperty]]] = (),
) -> SelectorDecision:
    """Run the Figure-5 decision procedure without building any mechanism."""
    if int(n) != n or n < 1:
        raise ValueError("group size n must be a positive integer")
    if not (0.0 <= alpha <= 1.0):
        raise ValueError("alpha must lie in [0, 1]")
    requested = parse_properties(properties)
    closure = implied_closure(requested)

    if StructuralProperty.FAIRNESS in closure:
        return SelectorDecision(
            branch=BRANCH_FAIR,
            requested=requested,
            closure=closure,
            n=n,
            alpha=alpha,
            reason="fairness requested; EM is optimal among fair mechanisms (Theorem 4)",
        )
    if gm_satisfies(closure, n, alpha):
        return SelectorDecision(
            branch=BRANCH_GEOMETRIC,
            requested=requested,
            closure=closure,
            n=n,
            alpha=alpha,
            reason="GM already satisfies every requested property (Theorem 3, Lemmas 2-3)",
        )
    if closure & _COLUMN_PROPERTIES:
        return SelectorDecision(
            branch=BRANCH_WEAK_HONESTY_COLUMN,
            requested=requested,
            closure=closure,
            n=n,
            alpha=alpha,
            reason="column property requested and GM lacks it; solve the LP with WH + CM",
        )
    return SelectorDecision(
        branch=BRANCH_WEAK_HONESTY,
        requested=requested,
        closure=closure,
        n=n,
        alpha=alpha,
        reason="weak honesty requested and GM lacks it; solve the LP with WH",
    )


def choose_mechanism(
    n: int,
    alpha: float,
    properties: Union[None, str, Iterable[Union[str, StructuralProperty]]] = (),
    objective: Optional[Objective] = None,
    backend: str = DEFAULT_BACKEND,
    cache: Optional[object] = None,
    representation: str = "auto",
    warm_start: Optional[Sequence[int]] = None,
) -> Tuple[Mechanism, SelectorDecision]:
    """Return the optimal mechanism for the requested properties plus the decision.

    The explicit branches (GM, EM) are built in closed form — matrix-free
    :class:`~repro.core.mechanism.ClosedFormMechanism` objects whose
    construction never materialises an ``(n + 1)^2`` array, so the selector
    scales to arbitrarily large groups.  The two WM branches solve the
    corresponding LP; under the default ``representation="auto"`` their
    banded solutions are kept in CSC storage
    (:class:`~repro.core.mechanism.SparseMechanism`), while
    ``representation="dense"`` forces the pre-refactor dense wrapping.  The
    returned mechanism always satisfies every requested property and is
    ``L0``-optimal among mechanisms that do (the structural results of
    Section IV-D).

    When ``cache`` is a :class:`~repro.serving.cache.DesignCache` (anything
    with a ``get_or_design`` method works), the request is routed through it
    so repeated designs skip both the flowchart and the LP solver; this is
    what high-volume callers (the serving layer, the ``serve-batch`` CLI)
    rely on.

    ``warm_start`` (a standard-form simplex basis from a neighbouring
    design) is forwarded to the LP branches; the closed-form branches and
    the scipy backend ignore it.  It is only meaningful for direct calls —
    when routing through a cache the cache itself decides warm-starting.
    """
    if representation not in ("auto", "dense", "sparse"):
        raise ValueError(f"unknown mechanism representation {representation!r}")
    if cache is not None:
        return cache.get_or_design(  # type: ignore[attr-defined]
            n, alpha, properties=properties, objective=objective, backend=backend
        )
    # Imported here to avoid a circular import at package load time:
    # repro.mechanisms depends on repro.core.design.
    from repro.mechanisms.fair import explicit_fair_mechanism
    from repro.mechanisms.geometric import geometric_mechanism
    from repro.mechanisms.weakly_honest import weakly_honest_mechanism

    lp_representation = "sparse" if representation == "auto" else representation
    decision = decide(n, alpha, properties)
    if decision.branch == BRANCH_FAIR:
        mechanism = explicit_fair_mechanism(n, alpha)
    elif decision.branch == BRANCH_GEOMETRIC:
        mechanism = geometric_mechanism(n, alpha)
    elif decision.branch == BRANCH_WEAK_HONESTY:
        mechanism = weakly_honest_mechanism(
            n,
            alpha,
            column_monotone=False,
            objective=objective,
            backend=backend,
            representation=lp_representation,
            warm_start=warm_start,
        )
    else:
        mechanism = weakly_honest_mechanism(
            n,
            alpha,
            column_monotone=True,
            objective=objective,
            backend=backend,
            representation=lp_representation,
            warm_start=warm_start,
        )
    mechanism.metadata["selector_branch"] = decision.branch
    mechanism.metadata["selector_reason"] = decision.reason
    return mechanism, decision
