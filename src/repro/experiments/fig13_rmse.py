"""Figure 13 — root-mean-square error on Binomial data.

The final experiment measures the RMSE of the released counts — a spread
measure none of the mechanisms is designed to optimise — across the same
(p, n, α) grid as Figure 11.  The paper's observations:

* balanced inputs (p near 0.5) are easier for most mechanisms, although GM
  can struggle there;
* RMSE grows with the group size, since the constraints force some
  probability onto every output of a wider range;
* at strong privacy (α = 0.91) GM is frequently worse than uniform guessing,
  and EM gives the lowest error across group sizes and input distributions.

``run()`` reproduces the grid, reporting the empirical RMSE with standard
deviations over repetitions, plus the analytic RMSE of each mechanism under
the matching Binomial prior.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.losses import mechanism_rmse
from repro.data.synthetic import DEFAULT_POPULATION, skewed_probabilities
from repro.eval.metrics import root_mean_square_error
from repro.eval.sweep import sweep
from repro.experiments.base import ExperimentResult
from repro.experiments.fig12_l0d_histograms import binomial_prior
from repro.mechanisms.registry import paper_mechanisms

DEFAULT_ALPHAS = (0.91, 0.67)
DEFAULT_GROUP_SIZES = (4, 8, 12)
DEFAULT_REPETITIONS = 30


def run(
    alphas: Sequence[float] = DEFAULT_ALPHAS,
    group_sizes: Sequence[int] = DEFAULT_GROUP_SIZES,
    probabilities: Optional[Sequence[float]] = None,
    repetitions: int = DEFAULT_REPETITIONS,
    population: int = DEFAULT_POPULATION,
    mechanisms: Sequence[str] = ("GM", "WM", "EM", "UM"),
    backend: str = "scipy",
    seed: Optional[int] = 2018,
) -> ExperimentResult:
    """Sweep the Figure-13 grid and collect empirical and analytic RMSE."""
    probabilities = list(probabilities) if probabilities is not None else skewed_probabilities(9)
    result = ExperimentResult(
        experiment="figure-13",
        description="RMSE of released counts on Binomial data",
        parameters={
            "alphas": [float(a) for a in alphas],
            "group_sizes": list(group_sizes),
            "probabilities": probabilities,
            "repetitions": repetitions,
            "population": population,
            "backend": backend,
        },
    )
    for group_size in group_sizes:
        num_groups = max(1, population // group_size)
        swept = sweep(
            alphas=alphas,
            group_sizes=[group_size],
            probabilities=probabilities,
            mechanisms=mechanisms,
            repetitions=repetitions,
            num_groups=num_groups,
            # Matrix-kernel metric: one tiled sample and a single reduction
            # per cell, parallelisable via --max-workers.
            metrics={"rmse": root_mean_square_error},
            seed=seed,
            backend=backend,
        )
        result.rows.extend(swept.rows)

    # Attach the analytic RMSE under the Binomial prior for every cell, so
    # the empirical numbers can be sanity-checked against the exact values.
    analytic = {}
    for alpha in alphas:
        for group_size in group_sizes:
            built = {m.name: m for m in paper_mechanisms(group_size, alpha, backend=backend)}
            for probability in probabilities:
                prior = binomial_prior(group_size, probability)
                for name, mechanism in built.items():
                    analytic[(name, float(alpha), group_size, float(probability))] = mechanism_rmse(
                        mechanism, weights=prior
                    )
    for row in result.rows:
        key = (
            str(row["mechanism"]),
            float(row["alpha"]),
            int(row["group_size"]),
            float(row["probability"]),
        )
        if key in analytic:
            row["analytic_rmse"] = analytic[key]
    return result


def main() -> None:  # pragma: no cover - convenience entry point
    print(run().summary())


if __name__ == "__main__":  # pragma: no cover
    main()
