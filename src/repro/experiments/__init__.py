"""Experiment drivers reproducing every figure of the paper's evaluation.

Each module exposes a ``run(...)`` function with the paper's parameters as
defaults (and lighter settings available for quick runs), returning an
:class:`~repro.experiments.base.ExperimentResult` whose rows carry the same
series the corresponding figure plots.  ``python -m repro.experiments.runner``
executes all of them and prints text tables.

| Module                     | Paper artefact                                      |
|----------------------------|-----------------------------------------------------|
| ``fig01_unconstrained``    | Figure 1 — unconstrained LP mechanisms (pathologies)|
| ``fig02_constrained``      | Figure 2 — fully constrained LP mechanisms          |
| ``fig06_property_table``   | Figure 6 — property/score table of GM, WM, EM, UM   |
| ``fig07_heatmaps``         | Figure 7 — GM / EM / WM heatmaps at n=4, α=0.9      |
| ``fig08_wh_combinations``  | Figure 8 — L0 of weak honesty + other properties    |
| ``fig09_l0_vs_n``          | Figure 9 — L0 of GM/WM/EM/UM vs n at three α        |
| ``fig10_adult``            | Figure 10 — empirical error on (synthetic) Adult    |
| ``fig11_l01_binomial``     | Figure 11 — empirical L0,1 on Binomial data         |
| ``fig12_l0d_histograms``   | Figure 12 — L0,d histograms on Binomial data        |
| ``fig13_rmse``             | Figure 13 — RMSE on Binomial data                   |
"""

from repro.experiments.base import ExperimentResult

__all__ = ["ExperimentResult"]
