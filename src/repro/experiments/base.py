"""Shared result container for the figure-reproduction experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.eval.reporting import format_table, rows_to_csv

Row = Dict[str, Union[str, float, int]]


@dataclass
class ExperimentResult:
    """Rows plus free-form artefacts produced by one experiment driver.

    Attributes
    ----------
    experiment:
        Identifier such as ``"figure-9"``.
    description:
        What the paper figure shows, for self-describing output.
    parameters:
        The parameter values the run used (α grid, group sizes, repetitions…).
    rows:
        The tabular data corresponding to the figure's plotted series.
    artefacts:
        Additional named outputs (e.g. rendered heatmaps, mechanisms).
    """

    experiment: str
    description: str
    parameters: Dict[str, Any] = field(default_factory=dict)
    rows: List[Row] = field(default_factory=list)
    artefacts: Dict[str, Any] = field(default_factory=dict)

    def to_table(self, columns: Optional[Sequence[str]] = None) -> str:
        """Aligned text table of the experiment rows."""
        title = f"{self.experiment}: {self.description}"
        return format_table(self.rows, columns=columns, title=title)

    def to_csv(self, path=None, columns: Optional[Sequence[str]] = None) -> str:
        """CSV text of the experiment rows (optionally written to ``path``)."""
        return rows_to_csv(self.rows, path=path, columns=columns)

    def series(self, x: str, y: str, group_by: str = "mechanism") -> Dict[str, List]:
        """Group rows into plot-ready (x, y) series keyed by ``group_by``."""
        series: Dict[str, List] = {}
        for row in self.rows:
            if x in row and y in row and group_by in row:
                series.setdefault(str(row[group_by]), []).append((row[x], row[y]))
        for values in series.values():
            values.sort()
        return series

    def filter_rows(self, **criteria) -> List[Row]:
        """Rows matching every key=value criterion."""
        return [
            row
            for row in self.rows
            if all(row.get(key) == value for key, value in criteria.items())
        ]

    def summary(self) -> str:
        """Table plus any string artefacts (heatmaps etc.)."""
        parts = [self.to_table()]
        for name, artefact in self.artefacts.items():
            if isinstance(artefact, str):
                parts.append(f"\n[{name}]\n{artefact}")
        return "\n".join(parts)
