"""Figure 12 — histograms of L0,d against d on Binomial data (n = 8).

For a fixed group size the paper sweeps the distance threshold ``d`` and
plots, per mechanism, the fraction of groups whose released count is more
than ``d`` away from the truth — i.e. the tail mass of the error
distribution.  Two input regimes are compared (a balanced ``p`` and a skewed
``p``) at two privacy levels:

* with balanced inputs EM beats everything, with the margin over GM growing
  as ``d`` grows (GM's tail is fat because of its preference for the
  extremes);
* with skewed inputs GM recovers, but EM does not fall far behind;
* at high α GM can be worse than uniform guessing across most of the range.

``run()`` reproduces both the empirical tail rates and the exact analytic
tails (:func:`repro.core.losses.tail_distribution` under the Binomial prior)
so users can see the sampling noise separately from the mechanism behaviour.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np
from scipy import stats

from repro.core.losses import l0d_score
from repro.data.groups import GroupedCounts
from repro.data.synthetic import DEFAULT_POPULATION, binomial_group_counts
from repro.eval.empirical import evaluate_mechanism
from repro.eval.metrics import distance_metrics
from repro.experiments.base import ExperimentResult
from repro.mechanisms.registry import paper_mechanisms

DEFAULT_ALPHAS = (0.91, 0.67)
DEFAULT_GROUP_SIZE = 8
#: Balanced ("proportionate") and skewed input regimes, matching the two rows
#: of the paper's Figure 12.
DEFAULT_PROBABILITIES = (0.5, 0.1)
DEFAULT_REPETITIONS = 30


def binomial_prior(n: int, p: float) -> np.ndarray:
    """The Binomial(n, p) prior over true counts used for the analytic tails."""
    return stats.binom.pmf(np.arange(n + 1), n, p)


def run(
    alphas: Sequence[float] = DEFAULT_ALPHAS,
    group_size: int = DEFAULT_GROUP_SIZE,
    probabilities: Sequence[float] = DEFAULT_PROBABILITIES,
    distances: Optional[Sequence[int]] = None,
    repetitions: int = DEFAULT_REPETITIONS,
    population: int = DEFAULT_POPULATION,
    backend: str = "scipy",
    seed: Optional[int] = 2018,
) -> ExperimentResult:
    """Sweep d for every (α, p) cell and record empirical and analytic tails."""
    distances = list(distances) if distances is not None else list(range(group_size))
    num_groups = max(1, population // group_size)
    rng = np.random.default_rng(seed)
    result = ExperimentResult(
        experiment="figure-12",
        description="tail error rates L0,d versus d on Binomial data",
        parameters={
            "alphas": [float(a) for a in alphas],
            "group_size": group_size,
            "probabilities": list(probabilities),
            "distances": distances,
            "repetitions": repetitions,
            "num_groups": num_groups,
            "backend": backend,
        },
    )
    # The whole d-sweep is one metric family: evaluate_mechanism answers
    # every threshold from a single histogram pass over the shared |diff|
    # matrix instead of one metric call per (repetition, d).
    metrics = distance_metrics(distances)
    for alpha in alphas:
        mechanisms = paper_mechanisms(group_size, alpha, backend=backend)
        for probability in probabilities:
            counts = binomial_group_counts(num_groups, group_size, probability, rng=rng)
            workload = GroupedCounts(counts=counts, group_size=group_size, label=f"p={probability}")
            prior = binomial_prior(group_size, probability)
            for mechanism in mechanisms:
                evaluation = evaluate_mechanism(
                    mechanism, workload, repetitions=repetitions, metrics=metrics, rng=rng
                )
                for d in distances:
                    result.rows.append(
                        {
                            "mechanism": mechanism.name,
                            "alpha": float(alpha),
                            "probability": float(probability),
                            "group_size": group_size,
                            "d": int(d),
                            "empirical_rate": evaluation.mean(f"exceeds_{d}_rate"),
                            "empirical_std": evaluation.std(f"exceeds_{d}_rate"),
                            # Analytic rescaled tail under the Binomial prior,
                            # de-rescaled to a plain probability for comparison.
                            "analytic_rate": l0d_score(mechanism, d, weights=prior)
                            * group_size
                            / (group_size + 1),
                        }
                    )
    return result


def main() -> None:  # pragma: no cover - convenience entry point
    print(run().summary())


if __name__ == "__main__":  # pragma: no cover
    main()
