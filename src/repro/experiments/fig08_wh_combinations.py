"""Figure 8 — the L0 cost of weak honesty combined with other properties.

Section V-A asks: once weak honesty (WH) is requested, what do the other
row/column properties add?  Because RM ⇒ RH and CM ⇒ CH there are only nine
meaningful combinations (∅, RH, RM, CH, CM, RH+CH, RH+CM, RM+CH, RM+CM, each
together with WH).  Figure 8 plots the optimal ``L0`` value of each
combination, (a) against the group size at a fixed α = 0.76 and (b) against
α at a fixed group size, and finds only two behaviours:

* combinations with no column property cost ``2α/(1+α)`` — the GM optimum —
  as soon as ``n >= 2α/(1−α)`` (Lemma 2);
* combinations including a column property cost the same as EM.

``run()`` solves the LP for every combination over the requested grid and
labels each row with which of the two regimes it matches.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.core.design import design_mechanism
from repro.core.losses import l0_score
from repro.core.properties import (
    StructuralProperty,
    combination_label,
    meaningful_weak_honesty_combinations,
)
from repro.core.theory import em_l0_score, gm_l0_score, weak_honesty_threshold
from repro.experiments.base import ExperimentResult

#: Privacy level of Figure 8(a); its WH threshold 2α/(1−α) ≈ 6.33.
DEFAULT_ALPHA = 0.76
#: Group sizes swept in panel (a).
DEFAULT_GROUP_SIZES = (2, 3, 4, 5, 6, 7, 8, 10, 12)
#: Privacy levels swept in panel (b).
DEFAULT_ALPHAS = (0.5, 0.62, 0.67, 0.76, 0.83, 0.91, 0.96, 0.99)
#: Group size of panel (b).
DEFAULT_PANEL_B_GROUP_SIZE = 7

#: Tolerance used when classifying a combination's cost as GM-like or EM-like.
MATCH_TOLERANCE = 1e-6


def _classify(l0_value: float, n: int, alpha: float) -> str:
    """Which closed-form regime an optimal value matches (or 'between')."""
    gm = gm_l0_score(alpha)
    em = em_l0_score(n, alpha)
    if abs(l0_value - gm) <= MATCH_TOLERANCE:
        return "GM"
    if abs(l0_value - em) <= MATCH_TOLERANCE:
        return "EM"
    return "between"


def _evaluate_combination(
    combination: Iterable[StructuralProperty], n: int, alpha: float, backend: str
) -> dict:
    mechanism = design_mechanism(n=n, alpha=alpha, properties=combination, backend=backend)
    value = l0_score(mechanism)
    has_column = bool(
        set(combination)
        & {StructuralProperty.COLUMN_HONESTY, StructuralProperty.COLUMN_MONOTONE}
    )
    return {
        "combination": combination_label(combination),
        "group_size": n,
        "alpha": alpha,
        "l0_score": value,
        "gm_l0": gm_l0_score(alpha),
        "em_l0": em_l0_score(n, alpha),
        "wh_threshold": weak_honesty_threshold(alpha),
        "includes_column_property": has_column,
        "matches": _classify(value, n, alpha),
    }


def run(
    alpha: float = DEFAULT_ALPHA,
    group_sizes: Sequence[int] = DEFAULT_GROUP_SIZES,
    alphas: Sequence[float] = DEFAULT_ALPHAS,
    panel_b_group_size: int = DEFAULT_PANEL_B_GROUP_SIZE,
    combinations: Optional[Sequence[Iterable[StructuralProperty]]] = None,
    backend: str = "scipy",
    include_panel_b: bool = True,
) -> ExperimentResult:
    """Sweep the nine WH combinations over group size (panel a) and α (panel b)."""
    combos = (
        list(combinations)
        if combinations is not None
        else meaningful_weak_honesty_combinations()
    )
    result = ExperimentResult(
        experiment="figure-8",
        description="optimal L0 of weak honesty combined with row/column properties",
        parameters={
            "panel_a_alpha": alpha,
            "panel_a_group_sizes": list(group_sizes),
            "panel_b_alphas": list(alphas) if include_panel_b else [],
            "panel_b_group_size": panel_b_group_size,
            "num_combinations": len(combos),
            "backend": backend,
        },
    )
    for n in group_sizes:
        for combination in combos:
            row = _evaluate_combination(combination, n, alpha, backend)
            row["panel"] = "a"
            result.rows.append(row)
    if include_panel_b:
        for alpha_value in alphas:
            for combination in combos:
                row = _evaluate_combination(combination, panel_b_group_size, alpha_value, backend)
                row["panel"] = "b"
                result.rows.append(row)
    return result


def main() -> None:  # pragma: no cover - convenience entry point
    print(run().summary())


if __name__ == "__main__":  # pragma: no cover
    main()
