"""Run every figure-reproduction experiment and print (or save) its results.

Usage::

    python -m repro.experiments.runner                # full paper settings
    python -m repro.experiments.runner --fast         # reduced settings
    python -m repro.experiments.runner --only figure-9 figure-10
    python -m repro.experiments.runner --csv-dir out/ # also write CSV files

The ``--fast`` profile shrinks repetitions, population sizes and grids so the
whole suite completes in a couple of minutes; the qualitative conclusions
(who wins, where the crossovers fall) are unchanged.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional

from repro.experiments import (
    ext_l1_l2_study,
    ext_output_dp,
    ext_range_queries,
    fig01_unconstrained,
    fig02_constrained,
    fig06_property_table,
    fig07_heatmaps,
    fig08_wh_combinations,
    fig09_l0_vs_n,
    fig10_adult,
    fig11_l01_binomial,
    fig12_l0d_histograms,
    fig13_rmse,
)
from repro.engine.plan import ReleasePlan
from repro.eval.sweep import set_default_max_workers
from repro.experiments.base import ExperimentResult


def _fast_settings() -> Dict[str, Callable[[], ExperimentResult]]:
    """Reduced-size runs of every experiment (used by --fast and the tests)."""
    return {
        "figure-1": lambda: fig01_unconstrained.run(),
        "figure-2": lambda: fig02_constrained.run(),
        "figure-6": lambda: fig06_property_table.run(),
        "figure-7": lambda: fig07_heatmaps.run(),
        "figure-8": lambda: fig08_wh_combinations.run(
            group_sizes=(2, 4, 6, 8), alphas=(0.5, 0.76, 0.91), include_panel_b=True
        ),
        "figure-9": lambda: fig09_l0_vs_n.run(group_sizes=(2, 4, 8, 12, 20, 24)),
        "figure-10": lambda: fig10_adult.run(
            group_sizes=(2, 4, 8), repetitions=10, num_records=4000
        ),
        "figure-11": lambda: fig11_l01_binomial.run(
            group_sizes=(4, 8), probabilities=(0.1, 0.3, 0.5), repetitions=5, population=2000
        ),
        "figure-12": lambda: fig12_l0d_histograms.run(
            probabilities=(0.5, 0.1), repetitions=5, population=2000
        ),
        "figure-13": lambda: fig13_rmse.run(
            group_sizes=(4, 8), probabilities=(0.1, 0.5, 0.9), repetitions=5, population=2000
        ),
        "extension-output-dp": lambda: ext_output_dp.run(alphas=(0.5, 0.7, 0.9), n=6),
        "extension-l1-l2": lambda: ext_l1_l2_study.run(group_sizes=(5,)),
        "extension-range-queries": lambda: ext_range_queries.run(
            alphas=(0.9,), population=800, repetitions=3, num_queries=32
        ),
    }


def _full_settings() -> Dict[str, Callable[[], ExperimentResult]]:
    """Paper-scale runs of every experiment."""
    return {
        "figure-1": lambda: fig01_unconstrained.run(),
        "figure-2": lambda: fig02_constrained.run(),
        "figure-6": lambda: fig06_property_table.run(),
        "figure-7": lambda: fig07_heatmaps.run(),
        "figure-8": lambda: fig08_wh_combinations.run(),
        "figure-9": lambda: fig09_l0_vs_n.run(),
        "figure-10": lambda: fig10_adult.run(),
        "figure-11": lambda: fig11_l01_binomial.run(),
        "figure-12": lambda: fig12_l0d_histograms.run(),
        "figure-13": lambda: fig13_rmse.run(),
        "extension-output-dp": lambda: ext_output_dp.run(),
        "extension-l1-l2": lambda: ext_l1_l2_study.run(),
        "extension-range-queries": lambda: ext_range_queries.run(),
    }


def available_experiments() -> List[str]:
    """Names accepted by :func:`run_experiments` and the ``--only`` flag."""
    return list(_full_settings())


def run_experiments(
    names: Optional[Iterable[str]] = None,
    fast: bool = False,
    csv_dir: Optional[Path] = None,
    verbose: bool = True,
    max_workers: Optional[int] = None,
) -> Dict[str, ExperimentResult]:
    """Run the selected experiments and return their results keyed by name.

    ``max_workers`` opts the sweeps' LP design *and* empirical evaluation
    stages into process parallelism for the duration of the run (see
    :func:`repro.eval.sweep.set_default_max_workers`); every figure module
    that evaluates through :func:`repro.eval.sweep.sweep` fans out without
    per-module changes, and results are identical to a serial run.

    The runner itself is a thin adapter over the release engine: every
    empirical release any experiment performs is drawn through a compiled
    :class:`~repro.engine.plan.ReleasePlan` (via the sweep and evaluation
    layers), and a verbose run reports how many plans the engine compiled.
    """
    settings = _fast_settings() if fast else _full_settings()
    selected = list(names) if names is not None else list(settings)
    unknown = [name for name in selected if name not in settings]
    if unknown:
        raise KeyError(f"unknown experiments {unknown}; available: {list(settings)}")
    results: Dict[str, ExperimentResult] = {}
    plans_before = ReleasePlan.compilations
    # Only override the sweep-level default when explicitly asked, so a
    # caller's own set_default_max_workers() configuration survives.
    previous_workers = (
        set_default_max_workers(max_workers) if max_workers is not None else None
    )
    try:
        for name in selected:
            result = settings[name]()
            results[name] = result
            if verbose:
                print(result.to_table())
                print()
            if csv_dir is not None:
                csv_dir = Path(csv_dir)
                csv_dir.mkdir(parents=True, exist_ok=True)
                result.to_csv(path=csv_dir / f"{name}.csv")
    finally:
        if max_workers is not None:
            set_default_max_workers(previous_workers)
    if verbose:
        print(
            f"engine: {ReleasePlan.compilations - plans_before} release plans "
            f"compiled across {len(results)} experiment(s)"
        )
    return results


def main(argv: Optional[List[str]] = None) -> None:  # pragma: no cover - CLI glue
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="use reduced-size settings")
    parser.add_argument(
        "--only", nargs="*", default=None, help="subset of experiments to run (e.g. figure-9)"
    )
    parser.add_argument("--csv-dir", type=Path, default=None, help="directory for CSV output")
    parser.add_argument(
        "--max-workers",
        type=int,
        default=None,
        help=(
            "fan the sweeps' LP design and empirical evaluation stages out "
            "across this many worker processes (default: in-process; results "
            "are bit-identical either way)"
        ),
    )
    arguments = parser.parse_args(argv)
    run_experiments(
        names=arguments.only,
        fast=arguments.fast,
        csv_dir=arguments.csv_dir,
        max_workers=arguments.max_workers,
    )


if __name__ == "__main__":  # pragma: no cover
    main()
