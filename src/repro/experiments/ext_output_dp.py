"""Extension experiment — the cost of output-side differential privacy.

The paper's concluding remarks propose also bounding the ratio of
probabilities between neighbouring *outputs* (a DP-style constraint applied
to the columns of the mechanism).  This experiment quantifies that proposal:

* how far the off-the-shelf GM falls short of the symmetric output-side
  requirement (closed form: its strongest output-side level is ``α(1 − α)``,
  always below α, because of its clamping rows), while EM meets it for free;
* how much ``L0`` the constraint costs when added to the BASICDP LP, with
  and without the seven structural properties, across a sweep of α.

The qualitative outcome mirrors the paper's main message: adding the extra
structure costs very little (the optimum moves from GM's level to at most
EM's level), because EM — which is already fully constrained — also happens
to satisfy the new requirement.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.design import design_mechanism
from repro.core.losses import l0_score
from repro.core.output_privacy import (
    gm_output_alpha,
    gm_satisfies_output_dp,
    max_output_alpha,
)
from repro.core.theory import em_l0_score, gm_l0_score
from repro.experiments.base import ExperimentResult
from repro.mechanisms.fair import explicit_fair_mechanism
from repro.mechanisms.geometric import geometric_mechanism

DEFAULT_ALPHAS = (0.3, 0.5, 0.618, 0.7, 0.8, 0.9, 0.95)
DEFAULT_GROUP_SIZE = 8


def run(
    alphas: Sequence[float] = DEFAULT_ALPHAS,
    n: int = DEFAULT_GROUP_SIZE,
    backend: str = "scipy",
) -> ExperimentResult:
    """Sweep α and measure the L0 cost of the output-side DP constraint."""
    result = ExperimentResult(
        experiment="extension-output-dp",
        description="L0 cost of adding the Section-VI output-side DP constraint",
        parameters={
            "alphas": [float(a) for a in alphas],
            "n": n,
            "backend": backend,
        },
    )
    for alpha in alphas:
        gm = geometric_mechanism(n, alpha)
        em = explicit_fair_mechanism(n, alpha)
        unconstrained = design_mechanism(n, alpha, properties=(), backend=backend)
        with_output_dp = design_mechanism(
            n, alpha, properties=(), output_alpha=alpha, backend=backend
        )
        fully_constrained = design_mechanism(
            n, alpha, properties="all", output_alpha=alpha, backend=backend
        )
        result.rows.append(
            {
                "alpha": float(alpha),
                "group_size": n,
                "gm_l0": gm_l0_score(alpha),
                "em_l0": em_l0_score(n, alpha),
                "l0_unconstrained": l0_score(unconstrained),
                "l0_with_output_dp": l0_score(with_output_dp),
                "l0_all_properties_plus_output_dp": l0_score(fully_constrained),
                "gm_satisfies_output_dp": gm_satisfies_output_dp(alpha),
                "gm_output_alpha_measured": max_output_alpha(gm),
                "gm_output_alpha_closed_form": gm_output_alpha(alpha),
                "em_output_alpha": max_output_alpha(em),
                "relative_cost_of_output_dp": l0_score(with_output_dp) / gm_l0_score(alpha)
                if gm_l0_score(alpha) > 0
                else 1.0,
            }
        )
    return result


def main() -> None:  # pragma: no cover - convenience entry point
    print(run().summary())


if __name__ == "__main__":  # pragma: no cover
    main()
