"""Figure 9 — L0 scores of GM, WM, EM, UM against group size for three α.

Figure 9 plots the ``L0`` score of the four named mechanisms as the group
size grows, for α = 2/3, 10/11 and 99/100.  The paper highlights three
regimes governed by the Lemma-2 threshold ``n* = 2α/(1−α)``:

* α = 2/3 (threshold 4): GM is weakly honest over essentially the whole
  range, so WM coincides with GM and EM carries a visible but shrinking
  premium;
* α = 10/11 (threshold 20): WM converges onto GM exactly at n = 20;
* α = 99/100 (threshold 198): the threshold lies beyond the plotted range
  and EM's diagonal already exceeds ``1/(n+1)``, so WM's cost stays equal to
  EM's throughout.

``run()`` computes the same series (WM through the LP, the others in closed
form, with measured values cross-checked against the formulas).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.losses import l0_score
from repro.core.theory import em_l0_score, gm_l0_score, um_l0_score, weak_honesty_threshold
from repro.experiments.base import ExperimentResult
from repro.mechanisms.fair import explicit_fair_mechanism
from repro.mechanisms.geometric import geometric_mechanism
from repro.mechanisms.uniform import uniform_mechanism
from repro.mechanisms.weakly_honest import weakly_honest_mechanism

#: The three privacy levels of Figure 9.
DEFAULT_ALPHAS = (2.0 / 3.0, 10.0 / 11.0, 99.0 / 100.0)
#: Group sizes swept (the paper shows n from 2 up to a few tens).
DEFAULT_GROUP_SIZES = (2, 3, 4, 5, 6, 8, 10, 12, 16, 20, 24, 28, 32, 40)


def run(
    alphas: Sequence[float] = DEFAULT_ALPHAS,
    group_sizes: Sequence[int] = DEFAULT_GROUP_SIZES,
    backend: str = "scipy",
    include_wm: bool = True,
    wm_column_monotone: bool = False,
) -> ExperimentResult:
    """Compute L0(GM), L0(WM), L0(EM), L0(UM) over the (α, n) grid.

    ``include_wm=False`` skips the LP solves (useful for quick runs; the
    closed-form mechanisms alone already show the GM/EM envelope).

    ``wm_column_monotone`` selects which LP box of the Figure-5 flowchart the
    WM curve uses.  Figure 9's convergence onto GM at ``n = 2α/(1−α)`` is the
    behaviour of the weak-honesty-only LP (GM never becomes column monotone
    for α > 1/2), so that variant is the default here; passing ``True`` plots
    the stricter WH+CM mechanism instead, whose cost stays at the EM level.
    """
    result = ExperimentResult(
        experiment="figure-9",
        description="L0 of the named mechanisms vs group size at three privacy levels",
        parameters={
            "alphas": [float(a) for a in alphas],
            "group_sizes": list(group_sizes),
            "backend": backend,
            "include_wm": include_wm,
            "wm_column_monotone": wm_column_monotone,
        },
    )
    for alpha in alphas:
        threshold = weak_honesty_threshold(alpha)
        for n in group_sizes:
            entries = [
                ("GM", l0_score(geometric_mechanism(n, alpha)), gm_l0_score(alpha)),
                ("EM", l0_score(explicit_fair_mechanism(n, alpha)), em_l0_score(n, alpha)),
                ("UM", l0_score(uniform_mechanism(n)), um_l0_score(n)),
            ]
            if include_wm:
                wm = weakly_honest_mechanism(
                    n, alpha, column_monotone=wm_column_monotone, backend=backend
                )
                entries.append(("WM", l0_score(wm), None))
            for name, measured, closed_form in entries:
                result.rows.append(
                    {
                        "mechanism": name,
                        "alpha": float(alpha),
                        "group_size": n,
                        "l0_score": measured,
                        "l0_closed_form": closed_form if closed_form is not None else "-",
                        "wh_threshold": threshold,
                        "gm_weakly_honest": n >= threshold,
                    }
                )
    return result


def main() -> None:  # pragma: no cover - convenience entry point
    print(run().summary())


if __name__ == "__main__":  # pragma: no cover
    main()
