"""Extension experiment — constrained mechanism design under L1 and L2.

The paper's concluding remarks name "a deeper study of mechanisms with
various properties using L1 or L2 as objective function" as the next logical
direction.  This experiment carries out that study with the machinery the
reproduction already has:

for each objective in {L1, L2} and each property set in a ladder from
unconstrained to fully constrained, solve the design LP and record

* the optimal objective value (how much the constraints cost under the new
  loss);
* whether the optimum is degenerate (gaps / a dominant output), i.e. whether
  the Figure-1 pathologies appear under that loss and disappear once the
  constraints are added;
* the truth-reporting probability, to compare against the L0-optimal designs.

The qualitative outcome extends the paper's message to the other losses: the
unconstrained L1/L2 optima are exactly the pathological mechanisms of
Figure 1, the fully constrained optima are well-behaved, and the additional
cost of the constraints stays a small constant factor.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.core.design import design_mechanism
from repro.core.losses import Objective, l0_score, objective_value, truth_probability
from repro.core.properties import has_gap, spike_ratio
from repro.experiments.base import ExperimentResult

DEFAULT_ALPHA = 0.62
DEFAULT_GROUP_SIZES = (5, 7)

#: The ladder of property sets studied, from nothing to everything.
PROPERTY_LADDER: Tuple[Tuple[str, str], ...] = (
    ("unconstrained", ""),
    ("weak honesty", "WH"),
    ("weak honesty + monotone", "WH+RM+CM"),
    ("fairness", "F"),
    ("all seven", "all"),
)


def run(
    alpha: float = DEFAULT_ALPHA,
    group_sizes: Sequence[int] = DEFAULT_GROUP_SIZES,
    objectives: Sequence[Objective] = (Objective.l1(), Objective.l2()),
    backend: str = "scipy",
) -> ExperimentResult:
    """Solve the L1/L2 design LPs across the property ladder."""
    result = ExperimentResult(
        experiment="extension-l1-l2",
        description="constrained mechanism design under the L1 and L2 objectives",
        parameters={
            "alpha": alpha,
            "group_sizes": list(group_sizes),
            "objectives": [objective.describe() for objective in objectives],
            "backend": backend,
        },
    )
    for n in group_sizes:
        for objective in objectives:
            baseline_value = None
            for label, properties in PROPERTY_LADDER:
                mechanism = design_mechanism(
                    n=n, alpha=alpha, properties=properties, objective=objective, backend=backend
                )
                value = objective_value(mechanism, objective)
                if baseline_value is None:
                    baseline_value = value
                result.rows.append(
                    {
                        "objective": objective.describe(),
                        "group_size": n,
                        "alpha": alpha,
                        "properties": label,
                        "objective_value": value,
                        "relative_to_unconstrained": value / baseline_value
                        if baseline_value
                        else 1.0,
                        "l0_score": l0_score(mechanism),
                        "truth_probability": truth_probability(mechanism),
                        "has_gap": has_gap(mechanism),
                        "spike_ratio": spike_ratio(mechanism),
                    }
                )
    return result


def main() -> None:  # pragma: no cover - convenience entry point
    print(run().summary())


if __name__ == "__main__":  # pragma: no cover
    main()
