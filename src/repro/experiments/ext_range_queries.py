"""Extension experiment — range-query accuracy of histogram releases.

The paper's concluding remarks point at "other queries such as range
queries" as the next application of the constrained-mechanism machinery.
This experiment builds the obvious baseline for that direction: release a
categorical histogram by applying a per-bucket count mechanism (GM, EM or
UM) and measure the error of contiguous range queries answered from the
released counts, across data skew and privacy levels.

The outcome echoes the single-count findings: because range answers sum many
per-bucket errors, a mechanism that piles its error onto the extreme outputs
(GM at strong privacy) produces heavily biased range answers on mid-heavy
buckets, while the fair mechanism's smaller, more symmetric per-bucket error
accumulates more slowly.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.experiments.base import ExperimentResult
from repro.histogram.queries import evaluate_range_queries_matrix, random_range_queries
from repro.histogram.release import HistogramRelease
from repro.histogram.workloads import categorical_population, histogram_from_items, zipf_weights
from repro.mechanisms.fair import explicit_fair_mechanism
from repro.mechanisms.geometric import geometric_mechanism
from repro.mechanisms.uniform import uniform_mechanism

DEFAULT_ALPHAS = (0.67, 0.9)
DEFAULT_NUM_BUCKETS = 16
DEFAULT_POPULATION = 2_000
DEFAULT_ZIPF_EXPONENTS = (0.0, 1.0)
DEFAULT_NUM_QUERIES = 64
DEFAULT_REPETITIONS = 10

#: Per-bucket mechanism factories compared by the experiment.
FACTORIES: Dict[str, callable] = {
    "GM": geometric_mechanism,
    "EM": explicit_fair_mechanism,
    "UM": lambda n, alpha: uniform_mechanism(n, alpha=alpha),
}


def _total_variation_errors(true_counts: np.ndarray, released_matrix: np.ndarray) -> np.ndarray:
    """Per-repetition total-variation error of released histogram rows.

    Row-vectorised version of
    :meth:`~repro.histogram.release.PrivateHistogram.total_variation_error`.
    """
    true = np.asarray(true_counts, dtype=float)
    released = np.asarray(released_matrix, dtype=float)
    true_total = true.sum()
    released_totals = released.sum(axis=1)
    if true_total == 0 or np.any(released_totals == 0):
        raise ValueError("cannot normalise an empty histogram")
    normalised = released / released_totals[:, None]
    return 0.5 * np.abs(normalised - true / true_total).sum(axis=1)


def run(
    alphas: Sequence[float] = DEFAULT_ALPHAS,
    num_buckets: int = DEFAULT_NUM_BUCKETS,
    population: int = DEFAULT_POPULATION,
    zipf_exponents: Sequence[float] = DEFAULT_ZIPF_EXPONENTS,
    num_queries: int = DEFAULT_NUM_QUERIES,
    repetitions: int = DEFAULT_REPETITIONS,
    seed: Optional[int] = 2018,
) -> ExperimentResult:
    """Sweep (α, skew) and measure range-query error per mechanism."""
    rng = np.random.default_rng(seed)
    result = ExperimentResult(
        experiment="extension-range-queries",
        description="range-query error of histogram releases built on the count mechanisms",
        parameters={
            "alphas": [float(a) for a in alphas],
            "num_buckets": num_buckets,
            "population": population,
            "zipf_exponents": list(zipf_exponents),
            "num_queries": num_queries,
            "repetitions": repetitions,
        },
    )
    for exponent in zipf_exponents:
        weights = zipf_weights(num_buckets, exponent)
        items = categorical_population(population, weights, rng=rng)
        true_counts = histogram_from_items(items, num_buckets)
        capacity = int(true_counts.max())
        queries = random_range_queries(num_buckets, num_queries, rng=rng)
        for alpha in alphas:
            for name, factory in FACTORIES.items():
                release = HistogramRelease(factory, alpha)
                # All repetitions in one tiled release; every query answered
                # on every repetition by one prefix-sum pass.
                released = release.release_many(
                    true_counts, repetitions, capacity=capacity, rng=rng
                )
                summary = evaluate_range_queries_matrix(true_counts, released, queries)
                tv_released = release.release_many(true_counts, 3, capacity=capacity, rng=rng)
                result.rows.append(
                    {
                        "mechanism": name,
                        "alpha": float(alpha),
                        "zipf_exponent": float(exponent),
                        "num_buckets": num_buckets,
                        "capacity": capacity,
                        "range_mae": float(np.mean(summary["mae"])),
                        "range_rmse": float(np.mean(summary["rmse"])),
                        "range_max_error": float(np.mean(summary["max_error"])),
                        "histogram_tv_error": float(
                            np.mean(_total_variation_errors(true_counts, tv_released))
                        ),
                    }
                )
    return result


def main() -> None:  # pragma: no cover - convenience entry point
    print(run().summary())


if __name__ == "__main__":  # pragma: no cover
    main()
