"""Figure 2 — heatmaps of fully *constrained* mechanisms (α = 0.62).

Figure 2 repeats the four designs of Figure 1 with every structural property
of Section IV-A enforced, and shows that the gaps and spikes disappear: no
output has zero probability, no output far from the truth dominates, and in
the ``L2`` instance the probability that the output is within one step of
the truth is at least 2/3 for every input.

``run()`` reuses the Figure-1 driver with ``properties="all"`` and
additionally reports the within-one-step probability that the paper quotes.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.losses import Objective
from repro.core.mechanism import Mechanism
from repro.experiments import fig01_unconstrained
from repro.experiments.base import ExperimentResult

FIGURE_ALPHA = fig01_unconstrained.FIGURE_ALPHA
FIGURE_CASES = fig01_unconstrained.FIGURE_CASES


def min_within_one_probability(mechanism: Mechanism) -> float:
    """The smallest (over inputs) probability of reporting within 1 of the truth."""
    size = mechanism.size
    indices = np.arange(size)
    mask = np.abs(indices[:, None] - indices[None, :]) <= 1
    return float((mechanism.matrix * mask).sum(axis=0).min())


def run(
    alpha: float = FIGURE_ALPHA,
    cases: Optional[Sequence[Tuple[str, int, Objective]]] = None,
    backend: str = "scipy",
    include_heatmaps: bool = True,
) -> ExperimentResult:
    """Solve the Figure-2 LPs (all seven properties) and report diagnostics."""
    result = fig01_unconstrained.run(
        alpha=alpha,
        cases=cases,
        backend=backend,
        properties="all",
        include_heatmaps=include_heatmaps,
    )
    # Augment each row with the within-one-step guarantee highlighted by the paper.
    for row in result.rows:
        label = str(row["case"])
        mechanism = result.artefacts[f"mechanism:{label}"]
        row["min_within_1_probability"] = min_within_one_probability(mechanism)
    result.description = "constrained LP-optimal mechanisms (all structural properties)"
    return result


def main() -> None:  # pragma: no cover - convenience entry point
    print(run().summary())


if __name__ == "__main__":  # pragma: no cover
    main()
