"""Figure 7 — heatmaps of GM, EM and WM for n = 4, α = 0.9.

Figure 7 illustrates how differently the three non-trivial mechanisms
distribute their probability mass at a small group size and strong privacy:
GM concentrates on the extreme outputs 0 and n, EM spreads mass evenly along
the diagonal (as fairness requires), and WM sits in between.  The paper
quotes the truth-reporting probabilities under a uniform prior: ≈0.238 for
GM and ≈0.224 for EM, with WM in between.

``run()`` rebuilds the three mechanisms (plus UM for reference), renders
their ASCII heatmaps, and reports the truth-reporting probability, the mass
on the extreme outputs, and the diagonal concentration for each.
"""

from __future__ import annotations

import numpy as np

from repro.core.losses import l0_score
from repro.core.mechanism import Mechanism
from repro.eval.reporting import ascii_heatmap
from repro.experiments.base import ExperimentResult
from repro.mechanisms.registry import paper_mechanisms

DEFAULT_GROUP_SIZE = 4
DEFAULT_ALPHA = 0.9


def extreme_output_mass(mechanism: Mechanism) -> float:
    """Probability (under a uniform prior) of reporting one of the extremes 0 or n."""
    row_mass = mechanism.matrix.mean(axis=1)
    return float(row_mass[0] + row_mass[-1])


def diagonal_band_mass(mechanism: Mechanism, width: int = 1) -> float:
    """Probability (uniform prior) of reporting within ``width`` of the truth."""
    size = mechanism.size
    indices = np.arange(size)
    mask = np.abs(indices[:, None] - indices[None, :]) <= width
    return float((mechanism.matrix * mask).sum(axis=0).mean())


def run(
    n: int = DEFAULT_GROUP_SIZE,
    alpha: float = DEFAULT_ALPHA,
    backend: str = "scipy",
    include_heatmaps: bool = True,
) -> ExperimentResult:
    """Rebuild the Figure-7 mechanisms and report their mass distribution."""
    result = ExperimentResult(
        experiment="figure-7",
        description="probability-mass structure of GM, WM, EM (and UM) at small n",
        parameters={"n": n, "alpha": alpha, "backend": backend},
    )
    for mechanism in paper_mechanisms(n, alpha, backend=backend):
        result.rows.append(
            {
                "mechanism": mechanism.name,
                "truth_probability": mechanism.truth_probability(),
                "extreme_output_mass": extreme_output_mass(mechanism),
                "within_1_mass": diagonal_band_mass(mechanism, width=1),
                "l0_score": l0_score(mechanism),
            }
        )
        result.artefacts[f"mechanism:{mechanism.name}"] = mechanism
        if include_heatmaps:
            result.artefacts[f"heatmap:{mechanism.name}"] = ascii_heatmap(
                mechanism, title=f"{mechanism.name} (n={n}, alpha={alpha})"
            )
    return result


def main() -> None:  # pragma: no cover - convenience entry point
    print(run().summary())


if __name__ == "__main__":  # pragma: no cover
    main()
