"""Figure 1 — heatmaps of *unconstrained* LP-optimal mechanisms (α = 0.62).

The paper's Figure 1 shows four mechanisms obtained by solving the BASICDP
linear program of Section III with no structural constraints, for different
group sizes and objectives, and points out their pathological behaviour:

* minimising ``L1`` for n = 5 and n = 7 produces mechanisms with *gaps*
  (outputs that are never reported) and *spikes* (a few outputs reported
  with very high probability regardless of the input);
* minimising ``L2`` for n = 7 produces the degenerate "always report 2"
  mechanism;
* minimising ``L0`` with distance threshold d = 1 for n = 5 concentrates
  over 90% of the mass on two outputs.

``run()`` regenerates those four mechanisms and reports, for each, the
number of gap rows, the spike ratio, and the probability mass on the most
popular output — the quantitative signature of the pathologies the figure
displays visually.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.design import design_mechanism
from repro.core.losses import Objective, l0_score, objective_value
from repro.core.mechanism import Mechanism
from repro.core.properties import has_gap, parse_properties, spike_ratio
from repro.eval.reporting import ascii_heatmap
from repro.experiments.base import ExperimentResult

#: Privacy parameter used by Figure 1.
FIGURE_ALPHA = 0.62

#: The four panels of Figure 1: (label, group size, objective).
FIGURE_CASES: Tuple[Tuple[str, int, Objective], ...] = (
    ("L1, n=5", 5, Objective.l1()),
    ("L1, n=7", 7, Objective.l1()),
    ("L2, n=7", 7, Objective.l2()),
    ("L0 d=1, n=5", 5, Objective.l0d(1)),
)


def gap_rows(mechanism: Mechanism, tolerance: float = 1e-7) -> List[int]:
    """Outputs that are (numerically) never reported for any input."""
    return [int(i) for i in np.nonzero(mechanism.matrix.max(axis=1) <= tolerance)[0]]


def most_popular_output_mass(mechanism: Mechanism) -> Tuple[int, float]:
    """The single output carrying the most probability under a uniform prior."""
    row_mass = mechanism.matrix.mean(axis=1)
    index = int(np.argmax(row_mass))
    return index, float(row_mass[index])


def run(
    alpha: float = FIGURE_ALPHA,
    cases: Optional[Sequence[Tuple[str, int, Objective]]] = None,
    backend: str = "scipy",
    properties: Sequence[str] = (),
    include_heatmaps: bool = True,
) -> ExperimentResult:
    """Solve the Figure-1 LPs and report their pathology diagnostics.

    ``properties`` is exposed so Figure 2 (the constrained counterpart) can
    reuse the same driver with ``properties="all"``.
    """
    cases = tuple(cases) if cases is not None else FIGURE_CASES
    result = ExperimentResult(
        experiment="figure-1" if not properties else "figure-2",
        description=(
            "unconstrained LP-optimal mechanisms and their pathologies"
            if not properties
            else "constrained LP-optimal mechanisms (all structural properties)"
        ),
        parameters={
            "alpha": alpha,
            "backend": backend,
            "properties": sorted(prop.value for prop in parse_properties(properties)),
        },
    )
    for label, n, objective in cases:
        mechanism = design_mechanism(
            n=n,
            alpha=alpha,
            properties=properties,
            objective=objective,
            backend=backend,
            name=f"LP[{label}]",
        )
        popular_output, popular_mass = most_popular_output_mass(mechanism)
        gaps = gap_rows(mechanism)
        result.rows.append(
            {
                "case": label,
                "group_size": n,
                "objective": objective.describe(),
                "objective_value": objective_value(mechanism, objective),
                "l0_score": l0_score(mechanism),
                "num_gap_outputs": len(gaps),
                "gap_outputs": ",".join(str(i) for i in gaps) if gaps else "-",
                "spike_ratio": spike_ratio(mechanism),
                "most_popular_output": popular_output,
                "most_popular_mass": popular_mass,
                "has_gap": has_gap(mechanism),
            }
        )
        result.artefacts[f"mechanism:{label}"] = mechanism
        if include_heatmaps:
            result.artefacts[f"heatmap:{label}"] = ascii_heatmap(
                mechanism, title=f"{result.experiment} {label} (alpha={alpha})"
            )
    return result


def main() -> None:  # pragma: no cover - convenience entry point
    print(run().summary())


if __name__ == "__main__":  # pragma: no cover
    main()
