"""Figure 11 — empirical L0,1 on Binomial data across (p, n, α).

The synthetic study draws a population of 10,000 individuals whose private
bit is one with probability ``p``, splits it into groups of size
n ∈ {4, 8, 12}, and measures the fraction of groups whose released count is
more than one away from the truth, for α ∈ {0.91, 0.67}, across a sweep of
``p``.  Key observations the figure supports:

* the shape of the input distribution matters: GM is competitive only when
  ``p`` is near 0 or 1 (counts pile up at the extremes, GM's favourite
  outputs), and is often worse than uniform guessing for balanced ``p``;
* the constrained mechanisms (EM especially) are much less sensitive to the
  input distribution;
* at the lower α the gap shrinks and WM converges onto GM.

``run()`` reproduces the sweep; each row is one (mechanism, α, n, p) cell
with the mean and standard deviation over the repetitions.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.data.synthetic import DEFAULT_POPULATION, skewed_probabilities
from repro.eval.metrics import distance_metric, error_rate
from repro.eval.sweep import sweep
from repro.experiments.base import ExperimentResult

DEFAULT_ALPHAS = (0.91, 0.67)
DEFAULT_GROUP_SIZES = (4, 8, 12)
DEFAULT_REPETITIONS = 30


def run(
    alphas: Sequence[float] = DEFAULT_ALPHAS,
    group_sizes: Sequence[int] = DEFAULT_GROUP_SIZES,
    probabilities: Optional[Sequence[float]] = None,
    repetitions: int = DEFAULT_REPETITIONS,
    population: int = DEFAULT_POPULATION,
    mechanisms: Sequence[str] = ("GM", "WM", "EM", "UM"),
    backend: str = "scipy",
    seed: Optional[int] = 2018,
) -> ExperimentResult:
    """Sweep the Figure-11 grid and collect empirical L0,1 (and L0) rates."""
    probabilities = list(probabilities) if probabilities is not None else skewed_probabilities(9)
    result = ExperimentResult(
        experiment="figure-11",
        description="empirical miss-by-more-than-1 rate (L0,1) on Binomial data",
        parameters={
            "alphas": [float(a) for a in alphas],
            "group_sizes": list(group_sizes),
            "probabilities": probabilities,
            "repetitions": repetitions,
            "population": population,
            "backend": backend,
        },
    )
    # Both metrics carry matrix kernels (and pickle into sweep workers), so
    # every (grid point, mechanism) cell is one tiled sample + two
    # single-pass reductions, parallelisable via --max-workers.
    metrics = {"error_rate": error_rate, "exceeds_1_rate": distance_metric(1)}
    for group_size in group_sizes:
        num_groups = max(1, population // group_size)
        swept = sweep(
            alphas=alphas,
            group_sizes=[group_size],
            probabilities=probabilities,
            mechanisms=mechanisms,
            repetitions=repetitions,
            num_groups=num_groups,
            metrics=metrics,
            seed=seed,
            backend=backend,
        )
        result.rows.extend(swept.rows)
    return result


def main() -> None:  # pragma: no cover - convenience entry point
    print(run().summary())


if __name__ == "__main__":  # pragma: no cover
    main()
