"""Figure 6 — properties and L0 scores of the named mechanisms GM, WM, EM, UM.

The paper's Figure 6 is a table: for each of the four named mechanisms it
records whether symmetry, row monotonicity, column monotonicity, fairness
and weak honesty hold (with "—" where the answer depends on n and α), and
the ``L0`` score (``2α/(1+α)`` for GM, about ``(n+1)/n`` times that for EM,
in between for WM, and exactly 1 for UM).

``run()`` instantiates the four mechanisms for a concrete ``(n, α)``, checks
every property on the actual matrices, and reports both the measured ``L0``
and the closed-form prediction so the two can be compared row by row.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.losses import l0_score
from repro.core.mechanism import Mechanism
from repro.core.properties import ALL_PROPERTIES, check_all_properties
from repro.core.theory import em_l0_score, gm_l0_score, um_l0_score, wm_l0_bounds
from repro.experiments.base import ExperimentResult
from repro.mechanisms.registry import paper_mechanisms

#: Default setting: a moderate group size and the strong privacy level used
#: in the paper's Figure 7 discussion.
DEFAULT_GROUP_SIZE = 8
DEFAULT_ALPHA = 0.9


def _closed_form_l0(name: str, n: int, alpha: float) -> Optional[float]:
    if name == "GM":
        return gm_l0_score(alpha)
    if name == "EM":
        return em_l0_score(n, alpha)
    if name == "UM":
        return um_l0_score(n)
    return None  # WM has no closed form; it is bounded by GM and EM.


def run(
    n: int = DEFAULT_GROUP_SIZE,
    alpha: float = DEFAULT_ALPHA,
    backend: str = "scipy",
    mechanisms: Optional[Sequence[Mechanism]] = None,
) -> ExperimentResult:
    """Build GM, WM, EM, UM for (n, α) and tabulate properties and L0 scores."""
    result = ExperimentResult(
        experiment="figure-6",
        description="properties and L0 scores of the named mechanisms",
        parameters={"n": n, "alpha": alpha, "backend": backend},
    )
    built = list(mechanisms) if mechanisms is not None else paper_mechanisms(n, alpha, backend=backend)
    gm_score, em_score = wm_l0_bounds(n, alpha)
    for mechanism in built:
        properties = check_all_properties(mechanism)
        closed_form = _closed_form_l0(mechanism.name, n, alpha)
        measured = l0_score(mechanism)
        row = {
            "mechanism": mechanism.name,
            "l0_measured": measured,
            "l0_closed_form": closed_form if closed_form is not None else "-",
            "l0_lower_bound_gm": gm_score,
            "l0_upper_bound_em": em_score,
        }
        for prop in ALL_PROPERTIES:
            row[prop.value] = properties[prop]
        result.rows.append(row)
    result.artefacts["mechanisms"] = {mechanism.name: mechanism for mechanism in built}
    return result


def main() -> None:  # pragma: no cover - convenience entry point
    print(run().summary())


if __name__ == "__main__":  # pragma: no cover
    main()
