"""Figure 10 — empirical wrong-answer probability on the Adult dataset (α = 0.9).

The paper groups the 32K Adult records arbitrarily into groups of a chosen
size, releases each group's count of three sensitive binary attributes
(young, gender, income) through GM, WM, EM and UM, and measures the fraction
of groups whose released count differs from the truth, averaged over 50
repetitions with one-standard-error bars.  Its findings:

* UM's error is data-independent at ``1 − 1/(n+1)``;
* GM does *worse* than UM because Adult group counts concentrate near the
  middle of the range, where GM rarely reports the truth;
* WM tracks UM closely; EM (fairness) gives the best truth-reporting rate.

``run()`` reproduces the pipeline on the synthetic Adult-like dataset (or on
the real CSV if a path is supplied) and reports the same series.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Union

import numpy as np

from repro.data.adult import ADULT_TARGETS, AdultDataset, generate_adult_like, load_adult_csv
from repro.data.groups import group_counts
from repro.eval.empirical import evaluate_mechanism
from repro.eval.metrics import error_rate
from repro.experiments.base import ExperimentResult
from repro.mechanisms.registry import paper_mechanisms

DEFAULT_ALPHA = 0.9
DEFAULT_GROUP_SIZES = (2, 4, 6, 8, 10, 12, 16, 20)
DEFAULT_REPETITIONS = 50


def run(
    alpha: float = DEFAULT_ALPHA,
    group_sizes: Sequence[int] = DEFAULT_GROUP_SIZES,
    targets: Sequence[str] = ADULT_TARGETS,
    repetitions: int = DEFAULT_REPETITIONS,
    num_records: Optional[int] = None,
    dataset: Optional[AdultDataset] = None,
    adult_csv_path: Optional[str] = None,
    backend: str = "scipy",
    seed: Optional[int] = 2018,
) -> ExperimentResult:
    """Reproduce the Figure-10 pipeline on Adult-like data.

    Parameters
    ----------
    dataset:
        Optional pre-built :class:`AdultDataset`; by default a synthetic
        Adult-like dataset is generated (see ``repro.data.adult``).
    adult_csv_path:
        Path to the real ``adult.data`` file; takes precedence over the
        synthetic generator when provided.
    num_records:
        Optionally truncate the dataset (useful for fast runs).
    """
    rng = np.random.default_rng(seed)
    if dataset is None:
        if adult_csv_path is not None:
            dataset = load_adult_csv(adult_csv_path)
        else:
            dataset = generate_adult_like(rng=rng)
    if num_records is not None and num_records < dataset.num_records:
        dataset = dataset.subset(num_records, rng=rng)

    result = ExperimentResult(
        experiment="figure-10",
        description="empirical wrong-answer probability on Adult-like data",
        parameters={
            "alpha": alpha,
            "group_sizes": list(group_sizes),
            "targets": list(targets),
            "repetitions": repetitions,
            "num_records": dataset.num_records,
            "data_source": dataset.source,
            "backend": backend,
        },
    )
    result.artefacts["target_rates"] = dataset.target_rates()

    for group_size in group_sizes:
        mechanisms = paper_mechanisms(group_size, alpha, backend=backend)
        for target in targets:
            bits = dataset.target(target)
            workload = group_counts(bits, group_size, label=target, shuffle=True, rng=rng)
            for mechanism in mechanisms:
                evaluation = evaluate_mechanism(
                    mechanism,
                    workload,
                    repetitions=repetitions,
                    metrics={"error_rate": error_rate},
                    rng=rng,
                )
                result.rows.append(
                    {
                        "mechanism": mechanism.name,
                        "target": target,
                        "group_size": group_size,
                        "alpha": alpha,
                        "error_rate": evaluation.mean("error_rate"),
                        "error_rate_stderr": evaluation.standard_error("error_rate"),
                        "num_groups": evaluation.num_groups,
                        "um_reference": 1.0 - 1.0 / (group_size + 1),
                    }
                )
    return result


def mechanism_ranking(result: ExperimentResult, target: str, group_size: int) -> Dict[str, float]:
    """Error rate per mechanism for one (target, group size) cell, sorted ascending."""
    rows = result.filter_rows(target=target, group_size=group_size)
    ranking = {str(row["mechanism"]): float(row["error_rate"]) for row in rows}
    return dict(sorted(ranking.items(), key=lambda item: item[1]))


def main() -> None:  # pragma: no cover - convenience entry point
    print(run().summary())


if __name__ == "__main__":  # pragma: no cover
    main()
