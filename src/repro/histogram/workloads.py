"""Categorical populations and histogram workload generators.

Used by the range-query extension experiment and available to users who want
to stress the histogram layer with realistic (skewed) category frequencies.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np


def zipf_weights(num_buckets: int, exponent: float = 1.0) -> np.ndarray:
    """Normalised Zipf(``exponent``) weights over ``num_buckets`` ranked buckets.

    ``exponent = 0`` gives uniform weights; larger exponents concentrate the
    mass on the first few buckets, the classic shape of categorical web and
    retail data.
    """
    if num_buckets < 1:
        raise ValueError("num_buckets must be positive")
    if exponent < 0:
        raise ValueError("exponent must be non-negative")
    ranks = np.arange(1, num_buckets + 1, dtype=float)
    weights = ranks**-exponent
    return weights / weights.sum()


def categorical_population(
    size: int,
    weights: Sequence[float],
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Assign ``size`` individuals to buckets according to ``weights``."""
    if size < 0:
        raise ValueError("population size must be non-negative")
    weights = np.asarray(weights, dtype=float)
    if weights.ndim != 1 or weights.size == 0 or np.any(weights < 0) or weights.sum() <= 0:
        raise ValueError("weights must be a non-empty non-negative vector with positive sum")
    weights = weights / weights.sum()
    rng = rng if rng is not None else np.random.default_rng()
    return rng.choice(weights.size, size=size, p=weights).astype(int)


def histogram_from_items(items: Sequence[int], num_buckets: int) -> np.ndarray:
    """Bucket counts of a categorical population (items are bucket indices)."""
    items = np.asarray(items, dtype=int)
    if num_buckets < 1:
        raise ValueError("num_buckets must be positive")
    if items.size and (items.min() < 0 or items.max() >= num_buckets):
        raise ValueError("items contain bucket indices outside [0, num_buckets)")
    return np.bincount(items, minlength=num_buckets).astype(int)
