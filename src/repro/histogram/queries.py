"""Range queries over released histograms.

A range query asks for the number of individuals whose bucket falls in a
contiguous interval ``[start, end]`` — the building block of CDFs, quantiles
and "how many users are aged 30–39"-style analytics.  Answering it from a
privately released histogram simply sums the released bucket counts in the
range; the error of that answer is what the extension experiment compares
across the paper's mechanisms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.histogram.release import PrivateHistogram


@dataclass(frozen=True)
class RangeQuery:
    """A contiguous-bucket sum query ``sum(counts[start … end])`` (inclusive)."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < self.start:
            raise ValueError(f"invalid range [{self.start}, {self.end}]")

    @property
    def width(self) -> int:
        return self.end - self.start + 1

    def evaluate(self, counts: Sequence[int]) -> int:
        """The exact answer of the query on a vector of bucket counts."""
        counts = np.asarray(counts)
        if self.end >= counts.shape[0]:
            raise ValueError(
                f"range [{self.start}, {self.end}] exceeds histogram with {counts.shape[0]} buckets"
            )
        return int(counts[self.start : self.end + 1].sum())


def all_range_queries(num_buckets: int, max_width: Optional[int] = None) -> List[RangeQuery]:
    """Every contiguous range over ``num_buckets`` buckets (optionally width-capped)."""
    if num_buckets < 1:
        raise ValueError("num_buckets must be positive")
    queries: List[RangeQuery] = []
    for start in range(num_buckets):
        for end in range(start, num_buckets):
            if max_width is not None and end - start + 1 > max_width:
                continue
            queries.append(RangeQuery(start, end))
    return queries


def random_range_queries(
    num_buckets: int,
    count: int,
    rng: Optional[np.random.Generator] = None,
) -> List[RangeQuery]:
    """A random workload of ``count`` range queries with uniform endpoints."""
    if num_buckets < 1:
        raise ValueError("num_buckets must be positive")
    if count < 0:
        raise ValueError("count must be non-negative")
    rng = rng if rng is not None else np.random.default_rng()
    queries: List[RangeQuery] = []
    for _ in range(count):
        a, b = sorted(rng.integers(0, num_buckets, size=2).tolist())
        queries.append(RangeQuery(int(a), int(b)))
    return queries


def answer_range_query(histogram: PrivateHistogram, query: RangeQuery) -> int:
    """Answer a range query from the released bucket counts."""
    return query.evaluate(histogram.released_counts)


def evaluate_range_queries(
    histogram: PrivateHistogram, queries: Sequence[RangeQuery]
) -> Dict[str, float]:
    """Error summary of a query workload answered from a released histogram.

    Returns the mean absolute error, RMSE, maximum absolute error and the
    mean *relative* error (absolute error divided by ``max(true, 1)``) over
    the workload.
    """
    summary = evaluate_range_queries_matrix(
        histogram.true_counts, histogram.released_counts[None, :], queries
    )
    return {name: float(values[0]) for name, values in summary.items()}


def _range_answers(counts: np.ndarray, starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    """Answer every ``[start, end]`` query on each row of bucket counts."""
    prefix = np.zeros((counts.shape[0], counts.shape[1] + 1), dtype=np.int64)
    np.cumsum(counts, axis=1, out=prefix[:, 1:])
    return prefix[:, ends + 1] - prefix[:, starts]


def evaluate_range_queries_matrix(
    true_counts: Sequence[int],
    released_matrix: np.ndarray,
    queries: Sequence[RangeQuery],
) -> Dict[str, np.ndarray]:
    """Per-repetition error summaries of a query workload, all releases at once.

    ``released_matrix`` holds one released histogram per row (the output of
    :meth:`~repro.histogram.release.HistogramRelease.release_many`); every
    query is answered on every row with one prefix-sum pass, so the
    repeated-release experiment needs no Python loop over repetitions or
    queries.  Each summary value is an array over the repetition axis; row
    ``r`` matches :func:`evaluate_range_queries` on release ``r`` exactly.
    """
    if not queries:
        raise ValueError("query workload is empty")
    true = np.asarray(true_counts, dtype=np.int64)
    released = np.atleast_2d(np.asarray(released_matrix, dtype=np.int64))
    if released.shape[1] != true.shape[0]:
        raise ValueError(
            f"released matrix has {released.shape[1]} buckets, expected {true.shape[0]}"
        )
    starts = np.asarray([query.start for query in queries], dtype=np.int64)
    ends = np.asarray([query.end for query in queries], dtype=np.int64)
    if ends.max() >= true.shape[0]:
        raise ValueError(
            f"range [{starts[ends.argmax()]}, {ends.max()}] exceeds histogram "
            f"with {true.shape[0]} buckets"
        )
    true_answers = _range_answers(true[None, :], starts, ends)[0]
    noisy_answers = _range_answers(released, starts, ends)
    absolute = np.abs(noisy_answers - true_answers).astype(float)
    relative = absolute / np.maximum(true_answers, 1)
    return {
        # absolute errors are integer-valued floats, so these reductions sum
        # exactly in any order and match the one-release path bit-for-bit.
        "mae": absolute.mean(axis=1),
        "rmse": np.sqrt((absolute**2).mean(axis=1)),
        "max_error": absolute.max(axis=1),
        # relative errors are fractional: reduce row-by-row, because numpy's
        # multi-row axis reduction sums in a different order than the 1-D
        # mean the scalar path takes, and would drift by an ulp.
        "mean_relative_error": np.asarray([np.mean(row) for row in relative]),
        "num_queries": np.full(released.shape[0], float(len(queries))),
    }
