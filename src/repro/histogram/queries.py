"""Range queries over released histograms.

A range query asks for the number of individuals whose bucket falls in a
contiguous interval ``[start, end]`` — the building block of CDFs, quantiles
and "how many users are aged 30–39"-style analytics.  Answering it from a
privately released histogram simply sums the released bucket counts in the
range; the error of that answer is what the extension experiment compares
across the paper's mechanisms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.histogram.release import PrivateHistogram


@dataclass(frozen=True)
class RangeQuery:
    """A contiguous-bucket sum query ``sum(counts[start … end])`` (inclusive)."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < self.start:
            raise ValueError(f"invalid range [{self.start}, {self.end}]")

    @property
    def width(self) -> int:
        return self.end - self.start + 1

    def evaluate(self, counts: Sequence[int]) -> int:
        """The exact answer of the query on a vector of bucket counts."""
        counts = np.asarray(counts)
        if self.end >= counts.shape[0]:
            raise ValueError(
                f"range [{self.start}, {self.end}] exceeds histogram with {counts.shape[0]} buckets"
            )
        return int(counts[self.start : self.end + 1].sum())


def all_range_queries(num_buckets: int, max_width: Optional[int] = None) -> List[RangeQuery]:
    """Every contiguous range over ``num_buckets`` buckets (optionally width-capped)."""
    if num_buckets < 1:
        raise ValueError("num_buckets must be positive")
    queries: List[RangeQuery] = []
    for start in range(num_buckets):
        for end in range(start, num_buckets):
            if max_width is not None and end - start + 1 > max_width:
                continue
            queries.append(RangeQuery(start, end))
    return queries


def random_range_queries(
    num_buckets: int,
    count: int,
    rng: Optional[np.random.Generator] = None,
) -> List[RangeQuery]:
    """A random workload of ``count`` range queries with uniform endpoints."""
    if num_buckets < 1:
        raise ValueError("num_buckets must be positive")
    if count < 0:
        raise ValueError("count must be non-negative")
    rng = rng if rng is not None else np.random.default_rng()
    queries: List[RangeQuery] = []
    for _ in range(count):
        a, b = sorted(rng.integers(0, num_buckets, size=2).tolist())
        queries.append(RangeQuery(int(a), int(b)))
    return queries


def answer_range_query(histogram: PrivateHistogram, query: RangeQuery) -> int:
    """Answer a range query from the released bucket counts."""
    return query.evaluate(histogram.released_counts)


def evaluate_range_queries(
    histogram: PrivateHistogram, queries: Sequence[RangeQuery]
) -> Dict[str, float]:
    """Error summary of a query workload answered from a released histogram.

    Returns the mean absolute error, RMSE, maximum absolute error and the
    mean *relative* error (absolute error divided by ``max(true, 1)``) over
    the workload.
    """
    if not queries:
        raise ValueError("query workload is empty")
    absolute_errors = []
    relative_errors = []
    for query in queries:
        true_answer = query.evaluate(histogram.true_counts)
        noisy_answer = query.evaluate(histogram.released_counts)
        error = abs(noisy_answer - true_answer)
        absolute_errors.append(error)
        relative_errors.append(error / max(true_answer, 1))
    absolute = np.asarray(absolute_errors, dtype=float)
    return {
        "mae": float(absolute.mean()),
        "rmse": float(np.sqrt((absolute**2).mean())),
        "max_error": float(absolute.max()),
        "mean_relative_error": float(np.mean(relative_errors)),
        "num_queries": float(len(queries)),
    }
