"""Histogram release and range queries on top of the count mechanisms.

The paper motivates count queries as the building block for "frequency
distributions, statistical models and SQL ``COUNT *`` queries", and its
concluding remarks name range queries as the next target.  This subpackage
provides that downstream layer:

* :mod:`repro.histogram.release` — release a ``k``-bucket histogram by
  applying an independent count mechanism to every bucket, with the privacy
  accounting for both neighbouring-dataset notions (add/remove one
  individual → parallel composition at full α; change one individual's
  bucket → two buckets affected → α² overall).
* :mod:`repro.histogram.queries` — answer range (contiguous-bucket) sum
  queries from a released histogram and measure their error.
* :mod:`repro.histogram.workloads` — categorical population generators
  (uniform / Zipf-skewed) and range-query workloads.
"""

from repro.histogram.release import (
    HistogramRelease,
    PrivateHistogram,
    histogram_via_session,
    released_histogram,
)
from repro.histogram.queries import (
    RangeQuery,
    all_range_queries,
    answer_range_query,
    evaluate_range_queries,
    random_range_queries,
)
from repro.histogram.workloads import categorical_population, histogram_from_items, zipf_weights

__all__ = [
    "HistogramRelease",
    "PrivateHistogram",
    "histogram_via_session",
    "released_histogram",
    "RangeQuery",
    "all_range_queries",
    "answer_range_query",
    "evaluate_range_queries",
    "random_range_queries",
    "categorical_population",
    "histogram_from_items",
    "zipf_weights",
]
