"""Releasing a full histogram through per-bucket count mechanisms.

A histogram over ``k`` buckets assigns each individual to exactly one
bucket; the sensitive output is the vector of bucket counts.  Because each
individual affects a single bucket, releasing every bucket's count through
an α-DP count mechanism is α-DP under the add/remove-one-individual
neighbouring notion (parallel composition).  Under the alternative notion
where one individual may *move* between buckets, two counts change by one
each, and sequential composition over the two affected buckets gives an
``α²`` guarantee (ε doubles).

The count mechanism applied to each bucket is any
:class:`~repro.core.mechanism.Mechanism` from this library — so the paper's
comparison of GM vs EM vs WM carries over directly to histogram and range
query accuracy, which is what the extension experiment
(:mod:`repro.experiments.ext_range_queries`) measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Union

import numpy as np

from repro.core.mechanism import Mechanism
from repro.engine.plan import ReleasePlan
from repro.privacy import PrivacyAccountant

#: Signature of a mechanism factory: (n, alpha) -> Mechanism.
MechanismFactory = Callable[[int, float], Mechanism]


def _validated_counts_and_capacity(
    true_counts: Sequence[int], capacity: Optional[int]
) -> "tuple[np.ndarray, int]":
    """Shared validation for histogram release paths.

    Returns the counts as an int array and the per-bucket capacity,
    defaulting to the largest observed bucket count (floored at 1).
    """
    counts = np.asarray(true_counts, dtype=int)
    if counts.ndim != 1 or counts.size == 0:
        raise ValueError("true_counts must be a non-empty 1-D sequence")
    if counts.min() < 0:
        raise ValueError("bucket counts must be non-negative")
    capacity = int(counts.max()) if capacity is None else int(capacity)
    capacity = max(capacity, 1)
    if counts.max() > capacity:
        raise ValueError("capacity is smaller than the largest bucket count")
    return counts, capacity


def _overall_alpha(alpha: float, neighbouring: str) -> float:
    """The α of a full histogram release under the chosen neighbouring notion."""
    if neighbouring not in ("add_remove", "swap"):
        raise ValueError("neighbouring must be 'add_remove' or 'swap'")
    return float(alpha) if neighbouring == "add_remove" else float(alpha) ** 2


@dataclass(frozen=True)
class PrivateHistogram:
    """The result of one private histogram release."""

    true_counts: np.ndarray
    released_counts: np.ndarray
    alpha: float
    mechanism_name: str

    def __post_init__(self) -> None:
        true = np.asarray(self.true_counts, dtype=int)
        released = np.asarray(self.released_counts, dtype=int)
        if true.shape != released.shape or true.ndim != 1:
            raise ValueError("true and released counts must be 1-D arrays of equal length")
        object.__setattr__(self, "true_counts", true)
        object.__setattr__(self, "released_counts", released)

    @property
    def num_buckets(self) -> int:
        return int(self.true_counts.shape[0])

    def total_variation_error(self) -> float:
        """Half the L1 distance between the normalised true and released histograms."""
        true_total = self.true_counts.sum()
        released_total = self.released_counts.sum()
        if true_total == 0 or released_total == 0:
            raise ValueError("cannot normalise an empty histogram")
        true = self.true_counts / true_total
        released = self.released_counts / released_total
        return float(0.5 * np.abs(true - released).sum())

    def per_bucket_error(self) -> np.ndarray:
        """Signed per-bucket error (released − true)."""
        return self.released_counts - self.true_counts


class HistogramRelease:
    """Releases histograms by applying a count mechanism to every bucket.

    Parameters
    ----------
    mechanism_factory:
        Builds the per-bucket count mechanism, e.g.
        ``repro.geometric_mechanism`` or ``repro.explicit_fair_mechanism``.
        Factories that solve LPs (WM) work too; the mechanism is built once
        per distinct bucket capacity and cached.
    alpha:
        Per-bucket differential-privacy level.
    neighbouring:
        ``"add_remove"`` (default): one individual appears or disappears, so
        only one bucket changes and the whole release is α-DP.
        ``"swap"``: one individual may move between buckets; two buckets
        change and the release is α²-DP.
    rng:
        Optional shared generator used by :meth:`release` whenever the call
        does not pass its own.  Construct with
        ``np.random.default_rng(seed)`` to make every release from this
        object reproducible end-to-end; the default is a fresh unseeded
        generator per call.
    accountant:
        Optional :class:`~repro.privacy.PrivacyAccountant` charged
        :meth:`overall_alpha` per released histogram (``overall_alpha ^
        repetitions`` for :meth:`release_many`) *before* any sampling; an
        over-budget release raises
        :class:`~repro.privacy.BudgetExceededError` with nothing drawn.
    """

    def __init__(
        self,
        mechanism_factory: MechanismFactory,
        alpha: float,
        neighbouring: str = "add_remove",
        rng: Optional[np.random.Generator] = None,
        accountant: Optional[PrivacyAccountant] = None,
    ) -> None:
        if not (0.0 <= alpha <= 1.0):
            raise ValueError("alpha must lie in [0, 1]")
        if neighbouring not in ("add_remove", "swap"):
            raise ValueError("neighbouring must be 'add_remove' or 'swap'")
        self._factory = mechanism_factory
        self.alpha = float(alpha)
        self.neighbouring = neighbouring
        self.rng = rng
        self.accountant = accountant
        self._plans: Dict[int, ReleasePlan] = {}

    def overall_alpha(self) -> float:
        """The α guarantee of a full histogram release under the chosen notion."""
        return _overall_alpha(self.alpha, self.neighbouring)

    def overall_epsilon(self) -> float:
        """The ε guarantee corresponding to :meth:`overall_alpha`."""
        alpha = self.overall_alpha()
        return float(np.inf) if alpha == 0.0 else float(-np.log(alpha))

    def plan_for(self, capacity: int) -> ReleasePlan:
        """The compiled release plan covering counts ``0 … capacity`` (cached).

        The plan wraps the factory's mechanism with eagerly-prepared
        sampling state and the histogram's per-release privacy cost
        (:meth:`overall_alpha` — the whole histogram is one release under
        the configured neighbouring notion).
        """
        if capacity < 1:
            raise ValueError("bucket capacity must be at least 1")
        if capacity not in self._plans:
            self._plans[capacity] = ReleasePlan.from_mechanism(
                self._factory(capacity, self.alpha),
                alpha_cost=self.overall_alpha(),
            )
        return self._plans[capacity]

    def mechanism_for(self, capacity: int) -> Mechanism:
        """The per-bucket mechanism covering counts ``0 … capacity`` (cached)."""
        return self.plan_for(capacity).mechanism

    def release(
        self,
        true_counts: Sequence[int],
        capacity: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> PrivateHistogram:
        """Release one noisy histogram.

        ``capacity`` is the per-bucket maximum count the mechanism must
        cover; it defaults to the largest observed bucket count (a data-
        independent bound such as the population size is the safe choice
        when the maximum itself is considered sensitive).

        The generator priority is ``rng`` argument, then the instance's
        ``rng``, then a fresh unseeded generator.  All buckets are sampled
        with one vectorised :meth:`~repro.engine.plan.ReleasePlan.execute`
        call (bit-identical to the pre-engine ``apply_batch`` path on the
        same generator); the accountant, when present, is charged first.
        """
        counts, capacity = _validated_counts_and_capacity(true_counts, capacity)
        if rng is None:
            rng = self.rng if self.rng is not None else np.random.default_rng()
        plan = self.plan_for(capacity)
        plan.charge(self.accountant, label=f"histogram ({counts.size} buckets)")
        released = plan.execute(counts, rng=rng)
        return PrivateHistogram(
            true_counts=counts,
            released_counts=np.asarray(released, dtype=int),
            alpha=self.overall_alpha(),
            mechanism_name=plan.mechanism.name,
        )

    def release_many(
        self,
        true_counts: Sequence[int],
        repetitions: int,
        capacity: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Draw ``repetitions`` independent releases of one histogram at once.

        Returns a ``(repetitions, num_buckets)`` integer matrix whose row
        ``r`` is bit-identical to the ``r``-th of ``repetitions`` sequential
        :meth:`release` calls on the same generator (the repeated-release
        loop of the range-query experiment, collapsed into a single
        :meth:`~repro.engine.plan.ReleasePlan.execute_tiled` call).  The
        accountant, when present, is charged for all ``repetitions``
        sequential releases before any sampling.
        """
        counts, capacity = _validated_counts_and_capacity(true_counts, capacity)
        if rng is None:
            rng = self.rng if self.rng is not None else np.random.default_rng()
        plan = self.plan_for(capacity)
        plan.charge(
            self.accountant,
            releases=int(repetitions),
            label=f"histogram x{repetitions} ({counts.size} buckets)",
        )
        return plan.execute_tiled(counts, repetitions, rng=rng)

    def _release_many_loop(
        self,
        true_counts: Sequence[int],
        repetitions: int,
        capacity: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Sequential :meth:`release` loop (regression reference).

        Kept as the ground truth :meth:`release_many` is proven
        bit-identical against on a shared generator; do not use on large
        workloads.
        """
        rows = [
            self.release(true_counts, capacity=capacity, rng=rng).released_counts
            for _ in range(int(repetitions))
        ]
        return np.stack(rows)


def released_histogram(
    true_counts: Sequence[int],
    mechanism_factory: MechanismFactory,
    alpha: float,
    capacity: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    neighbouring: str = "add_remove",
) -> PrivateHistogram:
    """One-shot convenience wrapper around :class:`HistogramRelease`."""
    release = HistogramRelease(mechanism_factory, alpha, neighbouring=neighbouring)
    return release.release(true_counts, capacity=capacity, rng=rng)


def histogram_via_session(
    session,
    true_counts: Sequence[int],
    alpha: float,
    properties=(),
    capacity: Optional[int] = None,
    neighbouring: str = "add_remove",
) -> PrivateHistogram:
    """Release a histogram through a serving-layer :class:`BatchReleaseSession`.

    Unlike :class:`HistogramRelease`, which builds mechanisms from a raw
    factory, this path goes through the session's
    :class:`~repro.serving.cache.DesignCache`: the per-bucket mechanism is
    the Figure-5 optimum for ``(capacity, alpha, properties)``, solved at
    most once per distinct design across every caller sharing the cache,
    and all buckets are sampled in one vectorised batch using the
    session's generator.
    """
    counts, capacity = _validated_counts_and_capacity(true_counts, capacity)
    overall = _overall_alpha(alpha, neighbouring)
    released = session.release_counts(counts, n=capacity, alpha=alpha, properties=properties)
    mechanism = session.mechanism_for(capacity, alpha, properties=properties)
    return PrivateHistogram(
        true_counts=counts,
        released_counts=np.asarray(released, dtype=int),
        alpha=overall,
        mechanism_name=mechanism.name,
    )
