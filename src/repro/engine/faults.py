"""Fault injection for chaos-testing the crash-safe execution layer.

A durability layer is only as good as the failures it has actually been
tested against.  This module is the single switchboard through which the
engine's failure-sensitive code paths — the seeded worker pool, the
accountant ledger, the binary stream writer and the design cache's disk
tier — ask "should I fail *here*, *now*?".  Production code pays one
predicate call per site; tests (and the ``tests-chaos`` CI leg) turn the
switchboard on to prove the recovery invariants under injected failure.

Faults are configured either programmatically (:func:`install`,
:func:`injected`) or through the ``REPRO_FAULTS`` environment variable, a
comma-separated list of ``name[:arg]`` specs::

    REPRO_FAULTS="kill_worker:3,io_error:0.1,torn_write"

Supported faults
----------------
``kill_worker[:index]``
    The pool worker sampling chunk ``index`` (default 0) calls
    ``os._exit`` on the chunk's first attempt — a hard worker death the
    parent observes as a broken pool.  Retried attempts survive, so the
    requeue path is exercised end to end.
``hang_worker[:index]``
    Like ``kill_worker`` but the worker sleeps past any per-chunk timeout
    instead of dying — the failure mode ``chunk_timeout`` exists for.
``io_error[:rate]``
    Deterministic pseudo-random ``OSError`` at I/O sites (ledger appends,
    ``.npy`` chunk writes, design-cache stores) with the given rate
    (default 1.0).  The decision hashes ``(site, call-counter)``, so a
    given run fails at exactly the same calls every time.
``torn_write[:k]``
    The ``k``-th (default 0) *ledger* append after the header writes only
    half its record, then raises :class:`InjectedCrash` — simulating a
    process killed mid-``write`` with a torn tail on disk.
``torn_npy[:k]``
    The ``k``-th ``.npy`` chunk write flushes only half the chunk's bytes
    before raising :class:`InjectedCrash` — a crash mid-output-write.
``torn_cache[:k]``
    The ``k``-th design-cache disk store crashes after writing half the
    temp file — proving the atomic-rename path never exposes a truncated
    entry.
``torn_tenant_ledger[:k]``
    The ``k``-th append to a *tenant* budget ledger (the serving daemon's
    per-tenant :class:`~repro.engine.durability.AccountantLedger` under
    ``--state-dir``) writes only half its record before raising
    :class:`InjectedCrash` — the daemon translates that into a hard
    process exit, leaving a torn tail for restart recovery to truncate.
``kill_daemon[:n]``
    The serving daemon calls ``os._exit`` immediately after completing its
    ``n``-th coalesced batch flush (default 1) — after the batch's charges
    were fsync'd and its samples drawn, *before* any response reaches a
    client.  Every request of that batch lands in the charged-but-not-done
    crash window the durable tenant store exists for.
``client_stall[:k]``
    The daemon's ``k``-th response write (default 0) stalls for
    ``hang_seconds`` before draining — simulating a client that stops
    reading so the write-side ``--client-timeout`` must reap the
    connection without blocking the batcher or other tenants.

One-shot semantics: each ``torn_*`` spec fires exactly once per injector
instance, and ``kill_worker``/``hang_worker`` fire only on attempt 0 of
their chunk (``kill_attempts`` raises that for unrecoverable-pool tests).
A crashed-and-restarted process naturally gets a fresh injector from the
environment, which is why the chaos tests reset or re-install between the
"crash" and the "restart" halves of a scenario.
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass, field
from typing import Dict, Optional

#: Environment variable holding the fault spec string.
FAULTS_ENV = "REPRO_FAULTS"

#: Exit status an injected worker death uses (visible in pool diagnostics).
KILLED_WORKER_EXIT = 43

#: Exit status an injected daemon death uses (``kill_daemon`` and the
#: daemon's hard-exit translation of a torn tenant-ledger append).
KILLED_DAEMON_EXIT = 44


class InjectedCrash(RuntimeError):
    """A simulated process death raised by a ``torn_*`` fault.

    Deliberately *not* one of the exception types the CLI or executor
    handles: like a real ``kill -9`` it must unwind straight out of the
    run (components set their ``_crashed`` flag first so ``finally``
    cleanup cannot tidy up state a dead process would have left behind).
    """


@dataclass
class FaultInjector:
    """Holds the active fault specs plus per-site firing state.

    All fields default to "off"; an all-default injector is a no-op and
    is what production runs (no ``REPRO_FAULTS``) pay for: one attribute
    check per site.
    """

    kill_worker: Optional[int] = None
    hang_worker: Optional[int] = None
    #: Attempts (per chunk) that die/hang; attempt numbers >= this survive.
    kill_attempts: int = 1
    #: Seconds a hung worker sleeps (bounded so leaked workers die on their own).
    hang_seconds: float = 20.0
    io_error_rate: float = 0.0
    torn_write: Optional[int] = None
    torn_npy: Optional[int] = None
    torn_cache: Optional[int] = None
    torn_tenant_ledger: Optional[int] = None
    #: Batch count after which the serving daemon hard-exits (``kill_daemon``).
    kill_daemon: Optional[int] = None
    #: Index of the daemon response write that stalls (``client_stall``).
    client_stall: Optional[int] = None
    _counters: Dict[str, int] = field(default_factory=dict)
    _fired: Dict[str, bool] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def parse(cls, spec: str) -> "FaultInjector":
        """Build an injector from a ``REPRO_FAULTS``-style spec string."""
        injector = cls()
        for entry in (spec or "").split(","):
            entry = entry.strip()
            if not entry:
                continue
            name, _, arg = entry.partition(":")
            name = name.strip()
            arg = arg.strip()
            if name == "kill_worker":
                injector.kill_worker = int(arg) if arg else 0
            elif name == "hang_worker":
                injector.hang_worker = int(arg) if arg else 0
            elif name == "io_error":
                injector.io_error_rate = float(arg) if arg else 1.0
            elif name == "torn_write":
                injector.torn_write = int(arg) if arg else 0
            elif name == "torn_npy":
                injector.torn_npy = int(arg) if arg else 0
            elif name == "torn_cache":
                injector.torn_cache = int(arg) if arg else 0
            elif name == "torn_tenant_ledger":
                injector.torn_tenant_ledger = int(arg) if arg else 0
            elif name == "kill_daemon":
                injector.kill_daemon = int(arg) if arg else 1
            elif name == "client_stall":
                injector.client_stall = int(arg) if arg else 0
            else:
                raise ValueError(
                    f"unknown fault {name!r} in {FAULTS_ENV} spec {spec!r} "
                    "(known: kill_worker, hang_worker, io_error, torn_write, "
                    "torn_npy, torn_cache, torn_tenant_ledger, kill_daemon, "
                    "client_stall)"
                )
        return injector

    @classmethod
    def from_env(cls) -> "FaultInjector":
        """Parse the ``REPRO_FAULTS`` environment variable (empty = no faults)."""
        return cls.parse(os.environ.get(FAULTS_ENV, ""))

    def active(self) -> bool:
        """Whether any fault is configured at all."""
        return (
            self.kill_worker is not None
            or self.hang_worker is not None
            or self.io_error_rate > 0.0
            or self.torn_write is not None
            or self.torn_npy is not None
            or self.torn_cache is not None
            or self.torn_tenant_ledger is not None
            or self.kill_daemon is not None
            or self.client_stall is not None
        )

    # ------------------------------------------------------------------ #
    # Site predicates
    # ------------------------------------------------------------------ #
    def should_kill_worker(self, chunk_index: int, attempt: int) -> bool:
        """Whether the worker sampling ``chunk_index`` dies on this attempt."""
        return (
            self.kill_worker is not None
            and chunk_index == self.kill_worker
            and attempt < self.kill_attempts
        )

    def should_hang_worker(self, chunk_index: int, attempt: int) -> bool:
        """Whether the worker sampling ``chunk_index`` hangs on this attempt."""
        return (
            self.hang_worker is not None
            and chunk_index == self.hang_worker
            and attempt < self.kill_attempts
        )

    def io_error(self, site: str) -> bool:
        """Deterministic pseudo-random I/O failure at ``site``.

        Hashes ``(site, per-site call counter)`` so the same run fails at
        exactly the same calls on every execution — reproducible chaos.
        """
        if self.io_error_rate <= 0.0:
            return False
        count = self._counters[site] = self._counters.get(site, 0) + 1
        draw = zlib.crc32(f"{site}:{count}".encode()) / 2**32
        return draw < self.io_error_rate

    def torn(self, site: str) -> bool:
        """Whether the current call at a ``torn_*`` site crashes mid-write.

        Sites: ``ledger_append`` (``torn_write``), ``npy_write``
        (``torn_npy``), ``cache_store`` (``torn_cache``),
        ``tenant_ledger_append`` (``torn_tenant_ledger``).  Each spec fires
        exactly once — the ``k``-th call at its site — so a restarted run
        that replays the site does not crash again.
        """
        target = {
            "ledger_append": self.torn_write,
            "npy_write": self.torn_npy,
            "cache_store": self.torn_cache,
            "tenant_ledger_append": self.torn_tenant_ledger,
        }.get(site)
        if target is None or self._fired.get(site):
            if target is not None:
                self._counters[f"torn:{site}"] = self._counters.get(f"torn:{site}", 0) + 1
            return False
        count = self._counters.get(f"torn:{site}", 0)
        self._counters[f"torn:{site}"] = count + 1
        if count == target:
            self._fired[site] = True
            return True
        return False

    def should_kill_daemon(self, batches_completed: int) -> bool:
        """Whether the daemon hard-exits now, ``batches_completed`` flushes in.

        Fires once, after the configured batch count is reached — the
        charges of the final batch are durably in the tenant ledgers, its
        responses are not yet on the wire.
        """
        if self.kill_daemon is None or self._fired.get("kill_daemon"):
            return False
        if batches_completed >= self.kill_daemon:
            self._fired["kill_daemon"] = True
            return True
        return False

    def should_stall_client(self) -> bool:
        """Whether the current daemon response write stalls (one-shot).

        The ``k``-th write (and only it) sleeps ``hang_seconds`` before
        draining, so the write-side client timeout is what ends it.
        """
        if self.client_stall is None or self._fired.get("client_stall"):
            return False
        count = self._counters.get("client_stall", 0)
        self._counters["client_stall"] = count + 1
        if count == self.client_stall:
            self._fired["client_stall"] = True
            return True
        return False


#: The process-global injector; ``None`` until first use (lazy env parse).
_INJECTOR: Optional[FaultInjector] = None


def get_injector() -> FaultInjector:
    """The active global injector (parsed from ``REPRO_FAULTS`` on first use).

    Worker processes forked by the seeded pool inherit the parent's
    installed injector; spawned workers re-parse the environment, which
    carries the same spec.
    """
    global _INJECTOR
    if _INJECTOR is None:
        _INJECTOR = FaultInjector.from_env()
    return _INJECTOR


def install(injector: FaultInjector) -> FaultInjector:
    """Install an injector as the process-global one (returns it)."""
    global _INJECTOR
    _INJECTOR = injector
    return _INJECTOR


def reset() -> None:
    """Drop the global injector; the next :func:`get_injector` re-reads the env."""
    global _INJECTOR
    _INJECTOR = None


class injected:
    """Context manager installing an injector (or spec string) temporarily.

    >>> from repro.engine import faults
    >>> with faults.injected("io_error:0.0"):
    ...     pass
    """

    def __init__(self, spec) -> None:
        self.injector = (
            spec if isinstance(spec, FaultInjector) else FaultInjector.parse(spec)
        )

    def __enter__(self) -> FaultInjector:
        global _INJECTOR
        self._previous = _INJECTOR
        _INJECTOR = self.injector
        return self.injector

    def __exit__(self, *exc_info) -> None:
        global _INJECTOR
        _INJECTOR = self._previous
