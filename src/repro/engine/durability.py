"""Durable privacy accounting: a write-ahead ledger behind the accountant.

The :class:`~repro.privacy.PrivacyAccountant` tracks the one piece of state
a DP release system must never lose — how much of the privacy budget has
already been spent.  In-memory accounting is fine for a one-shot run, but a
crash mid-``serve-stream`` would forget every charge, and a restart would
happily re-release what was already paid for.  :class:`AccountantLedger`
closes that hole with a write-ahead log:

* **Append-only, fsync'd, per-record checksummed.**  Every record is
  ``<length:u32><crc32:u32><utf-8 json payload>``.  A charge is appended
  (and fsync'd) *before* it is applied to the in-memory accountant, so the
  durable state is always at least as spent as the in-memory one — the
  safe direction for a budget.
* **Atomic recovery.**  Reopening replays the log into a fresh accountant.
  A *torn tail* — a record whose length prefix or payload is cut short at
  EOF, exactly what a crash mid-``write`` leaves behind — is truncated
  away silently (that charge never took effect in any observable output).
  A record that is *complete but wrong* (checksum or JSON mismatch, or a
  replay that no longer fits the budget) is corruption, not a crash
  artifact, and raises :class:`LedgerCorruptionError` loudly rather than
  guessing; the tamper-evidence rationale follows the Integrity Coded
  Databases line of work cited in PAPERS.md.
* **Checkpointed resume.**  Besides ``charge`` records the executor
  journals ``done`` records — ``(chunk, size, records, offset)`` — once a
  chunk's released bytes are durably in the output file.  On restart,
  :meth:`resume_state` returns the contiguous done prefix so
  ``serve-stream --resume`` can truncate the output to the last checkpoint
  and skip exactly the chunks that were already served, while chunks that
  were *charged but not served* (the crash window) are re-served without
  being charged again — :meth:`charge` is idempotent by chunk index.

Record types
------------
``header``
    First record of every ledger: schema version, ``alpha_target``, and an
    arbitrary JSON ``config`` dict pinning the run parameters (n, alpha,
    properties, chunk size, seed entropy, …) so a resume with different
    parameters is refused (:class:`LedgerConfigError`) instead of silently
    producing a stream that matches nothing.
``charge``
    ``{chunk, alpha, size, label, crc}`` — one spent release.  ``crc`` is
    a checksum of the chunk's *input* counts, making a resume against a
    diverged input stream detectable (:meth:`verify_chunk`).
``done``
    ``{chunk, size, records, records_total, offset}`` — the chunk's output
    reached durable storage at byte ``offset``.
``refusal``
    ``{chunk, label}`` — the release at this index was *refused* over
    budget.  Nothing was spent, but the index itself is consumed: the
    serving daemon's per-tenant ledgers use record indices as substream
    spawn positions, and a refusal consumes a spawn (exactly as in
    in-memory serving), so restart recovery must replay refusals to land
    on the same stream position.

Multi-tenant note
-----------------
The serving daemon keeps one ledger *per tenant* (see
:mod:`repro.serving.tenant_store`); those ledgers use the daemon-specific
fault site ``tenant_ledger_append`` (the ``torn_tenant_ledger`` spec) and
group-commit their appends — ``charge(..., sync=False)`` buffers several
records, one :meth:`sync` makes them durable before any sample leaves the
process.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.engine import faults as _faults
from repro.privacy import BudgetExceededError, PrivacyAccountant

#: Bump on incompatible record-format changes.
LEDGER_VERSION = 1

#: Per-record head: payload length (u32) + payload crc32 (u32), little-endian.
_RECORD_HEAD = struct.Struct("<II")

#: Sanity cap on a record payload: ledger records are small JSON documents,
#: so a length beyond this is corruption, not a big record.
_MAX_PAYLOAD = 1 << 20


def datasync(fileno: int) -> None:
    """Flush file *data* (and the metadata needed to read it) to disk.

    ``fdatasync`` is the standard WAL sync: it skips the inode-only
    metadata (mtime etc.) a full ``fsync`` would also journal, which
    matters when a serving daemon group-commits many small appends per
    batch.  Falls back to ``fsync`` where unavailable.
    """
    if hasattr(os, "fdatasync"):
        os.fdatasync(fileno)
    else:  # pragma: no cover - non-POSIX fallback
        os.fsync(fileno)


class LedgerError(RuntimeError):
    """Base class for accountant-ledger failures."""


class LedgerCorruptionError(LedgerError):
    """A complete ledger record is damaged, or the log replays inconsistently.

    Never raised for a torn tail (which recovery truncates); raised when
    the bytes on disk claim to be a full record but fail their checksum,
    do not parse, or replay into an impossible accounting state.
    """


class LedgerConfigError(LedgerError):
    """An existing ledger's pinned run configuration does not match the caller's."""


def chunk_crc(chunk) -> int:
    """Checksum of a chunk's input counts (int64 little-endian bytes).

    Stored in ``charge`` records so a resumed run can detect that the
    input stream it is skipping over is not the stream that was charged.
    """
    global _np
    if _np is None:
        import numpy

        _np = numpy
    return zlib.crc32(_np.ascontiguousarray(chunk, dtype="<i8").tobytes())


#: Lazily-bound numpy module (:func:`chunk_crc` is this module's only user,
#: and the ledger itself must stay importable without numpy).
_np = None


@dataclass(frozen=True)
class ResumeState:
    """The contiguous completed prefix recovered from a ledger.

    ``next_chunk`` is the first chunk index that still needs serving;
    ``records`` is how many released counts the completed prefix contains;
    ``offset`` is the output-file byte offset recorded by the last done
    chunk (``None`` when nothing completed — the output starts empty).
    """

    next_chunk: int
    records: int
    offset: Optional[int]


class AccountantLedger:
    """A :class:`~repro.privacy.PrivacyAccountant` with a write-ahead log.

    Construct via :meth:`open`.  The wrapped accountant is exposed as
    :attr:`accountant`; all budget *decisions* still live in
    :class:`~repro.privacy.PrivacyAccountant` — this class only makes the
    outcomes durable and replayable.
    """

    def __init__(
        self,
        path: Path,
        handle,
        accountant: PrivacyAccountant,
        config: dict,
        fsync: bool,
        charges: Dict[int, dict],
        done: Dict[int, dict],
        refusals: Optional[Dict[int, dict]] = None,
        fault_site: str = "ledger_append",
    ) -> None:
        self.path = path
        self._handle = handle
        self.accountant = accountant
        self.config = config
        self._fsync = fsync
        self._charges = charges
        self._done = done
        self._refusals: Dict[int, dict] = {} if refusals is None else refusals
        self.fault_site = fault_site
        #: Buffered appends awaiting a group-commit :meth:`sync`.
        self._dirty = False
        #: ``(offset, blob)`` of appends deferred with ``sync=False``,
        #: until either a full :meth:`sync` of this file or a
        #: :meth:`drain_unsynced` hand-off to an external commit log.
        self._unsynced: List[Tuple[int, bytes]] = []
        #: Done records deferred with ``mark_done(..., defer=True)``;
        #: serialised and appended at the next :meth:`sync` (checkpoint or
        #: close), not per request.
        self._pending_done: List[dict] = []
        #: Append position, tracked in userspace (the handle is positioned
        #: at EOF by :meth:`open` and only ever appends) — saves a
        #: ``tell()`` per record on the serving hot path.
        self._offset: int = handle.tell()
        #: Pre-serialised ``(head, tail)`` byte templates for charge
        #: records, keyed by everything except ``chunk``/``crc`` (the only
        #: fields that vary between a tenant's steady-state charges).
        #: ``None`` marks a key whose record shape the template cannot
        #: reproduce byte-for-byte — those fall back to ``json.dumps``.
        self._charge_templates: Dict[tuple, Optional[Tuple[bytes, bytes]]] = {}
        self._closed = False
        self._crashed = False

    # ------------------------------------------------------------------ #
    # Open / recover
    # ------------------------------------------------------------------ #
    @classmethod
    def open(
        cls,
        path: Union[str, Path],
        alpha_target: Optional[float] = None,
        config: Optional[dict] = None,
        fsync: bool = True,
        fault_site: str = "ledger_append",
    ) -> "AccountantLedger":
        """Open (creating or recovering) a ledger at ``path``.

        A fresh ledger requires ``alpha_target`` and pins ``config`` (any
        JSON-serialisable dict) into its header.  Reopening an existing
        ledger replays the log — truncating a torn tail, refusing complete
        corruption — and then checks that ``alpha_target`` and every key
        the caller passes in ``config`` match the pinned header (keys the
        caller omits, e.g. the recorded seed entropy, are not compared and
        can be read back from :attr:`config`).
        """
        path = Path(path)
        if path.exists() and path.stat().st_size > 0:
            return cls._recover(path, alpha_target, config, fsync, fault_site)
        if alpha_target is None:
            raise LedgerError(
                f"{path}: creating a new ledger requires alpha_target"
            )
        accountant = PrivacyAccountant(alpha_target=alpha_target)
        handle = path.open("wb+")
        ledger = cls(
            path, handle, accountant, dict(config or {}), fsync, {}, {},
            fault_site=fault_site,
        )
        ledger._append(
            {
                "type": "header",
                "version": LEDGER_VERSION,
                "alpha_target": float(accountant.alpha_target),
                "config": ledger.config,
            },
            faultable=False,
        )
        return ledger

    @classmethod
    def _recover(
        cls,
        path: Path,
        alpha_target: Optional[float],
        config: Optional[dict],
        fsync: bool,
        fault_site: str = "ledger_append",
    ) -> "AccountantLedger":
        handle = path.open("rb+")
        try:
            records, keep_bytes = cls._read_records(path, handle)
        except LedgerError:
            handle.close()
            raise
        if not records:
            # The creating process died inside the very first (header)
            # write: nothing was ever charged, so start over.
            handle.close()
            path.unlink()
            return cls.open(
                path, alpha_target=alpha_target, config=config, fsync=fsync,
                fault_site=fault_site,
            )
        header = records[0]
        if header.get("type") != "header" or header.get("version") != LEDGER_VERSION:
            handle.close()
            raise LedgerCorruptionError(
                f"{path}: first record is not a version-{LEDGER_VERSION} header "
                f"(got {header.get('type')!r} v{header.get('version')!r})"
            )
        stored_target = float(header["alpha_target"])
        if alpha_target is not None and float(alpha_target) != stored_target:
            handle.close()
            raise LedgerConfigError(
                f"{path}: ledger was opened with --budget-alpha {stored_target:g}, "
                f"not {float(alpha_target):g}; resume with the original budget"
            )
        stored_config = dict(header.get("config") or {})
        for key, value in (config or {}).items():
            if stored_config.get(key) != value:
                handle.close()
                raise LedgerConfigError(
                    f"{path}: ledger pins {key}={stored_config.get(key)!r} but this "
                    f"run requests {key}={value!r}; resume with the original "
                    "parameters or start a fresh ledger"
                )
        accountant = PrivacyAccountant(alpha_target=stored_target)
        charges: Dict[int, dict] = {}
        done: Dict[int, dict] = {}
        refusals: Dict[int, dict] = {}
        for record in records[1:]:
            kind = record.get("type")
            if kind == "charge":
                chunk = int(record["chunk"])
                if chunk in charges or chunk in refusals:
                    handle.close()
                    raise LedgerCorruptionError(
                        f"{path}: chunk {chunk} is charged twice in the log"
                    )
                try:
                    accountant.record(
                        float(record["alpha"]), label=record.get("label", "")
                    )
                except (BudgetExceededError, ValueError) as error:
                    # A charge was only ever appended after can_release()
                    # passed, so a log that replays over budget (or with an
                    # invalid alpha) was not written by this code path.
                    handle.close()
                    raise LedgerCorruptionError(
                        f"{path}: replaying chunk {chunk}'s charge fails "
                        f"({error}); the log is inconsistent"
                    ) from error
                charges[chunk] = record
            elif kind == "done":
                chunk = int(record["chunk"])
                if chunk not in charges:
                    handle.close()
                    raise LedgerCorruptionError(
                        f"{path}: chunk {chunk} is marked done but never charged"
                    )
                done[chunk] = record
            elif kind == "refusal":
                chunk = int(record["chunk"])
                if chunk in charges or chunk in refusals:
                    handle.close()
                    raise LedgerCorruptionError(
                        f"{path}: chunk {chunk} is recorded twice in the log"
                    )
                refusals[chunk] = record
            else:
                handle.close()
                raise LedgerCorruptionError(
                    f"{path}: unknown record type {kind!r}"
                )
        if keep_bytes < path.stat().st_size:
            # Torn tail: drop the partial record a crash left behind, then
            # make the truncation itself durable before appending anything.
            handle.truncate(keep_bytes)
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        handle.seek(0, os.SEEK_END)
        return cls(
            path, handle, accountant, stored_config, fsync, charges, done,
            refusals=refusals, fault_site=fault_site,
        )

    @staticmethod
    def _read_records(path: Path, handle) -> tuple:
        """Parse every complete record; return (records, bytes_to_keep)."""
        records = []
        keep = 0
        handle.seek(0)
        while True:
            head = handle.read(_RECORD_HEAD.size)
            if len(head) == 0:
                break
            if len(head) < _RECORD_HEAD.size:
                break  # torn head at EOF
            length, crc = _RECORD_HEAD.unpack(head)
            if length > _MAX_PAYLOAD:
                raise LedgerCorruptionError(
                    f"{path}: record at byte {keep} claims {length} payload bytes "
                    f"(cap {_MAX_PAYLOAD}); the log is damaged"
                )
            payload = handle.read(length)
            if len(payload) < length:
                break  # torn payload at EOF
            if zlib.crc32(payload) != crc:
                raise LedgerCorruptionError(
                    f"{path}: record at byte {keep} fails its checksum; "
                    "the log is damaged (not merely torn) — refusing to guess "
                    "the spent budget"
                )
            try:
                record = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                raise LedgerCorruptionError(
                    f"{path}: record at byte {keep} passes its checksum but is "
                    f"not valid JSON ({error}); the log is damaged"
                ) from error
            records.append(record)
            keep += _RECORD_HEAD.size + length
        return records, keep

    # ------------------------------------------------------------------ #
    # Appending
    # ------------------------------------------------------------------ #
    def _append(
        self,
        record: dict,
        faultable: bool = True,
        sync: Optional[bool] = None,
        payload: Optional[bytes] = None,
    ) -> None:
        """Serialise, checksum, append and fsync one record.

        The in-memory accountant is only updated *after* this returns, so
        a crash anywhere inside leaves the durable state ahead of (never
        behind) the memory state.  ``sync=False`` defers the fsync to a
        later group-commit :meth:`sync` — the caller promises nothing
        derived from this record leaves the process before that sync.
        ``payload`` lets a hot caller hand in the record's serialisation
        (it must equal the canonical ``json.dumps`` below byte-for-byte —
        :meth:`_charge_template` verifies that once per record shape).
        """
        if self._closed:
            raise LedgerError(f"{self.path}: ledger is closed")
        if payload is None:
            payload = json.dumps(
                record, sort_keys=True, separators=(",", ":")
            ).encode("utf-8")
        blob = _RECORD_HEAD.pack(len(payload), zlib.crc32(payload)) + payload
        if faultable:
            injector = _faults.get_injector()
            # Cheap guard for the serving hot path: only walk the full
            # predicate calls when a fault that can reach a ledger append
            # is actually configured (production injectors are all-off).
            if (
                injector.io_error_rate > 0.0
                or injector.torn_write is not None
                or injector.torn_tenant_ledger is not None
            ):
                self._faulted_append(injector, blob)
        offset = self._offset
        self._handle.write(blob)
        self._offset = offset + len(blob)
        if sync is False:
            # Deferred append: leave the bytes in the userspace buffer —
            # the group-commit barrier (sync()/drain_unsynced()) flushes
            # them once per batch.  Nothing derived from this record may
            # leave the process before that barrier, so there is no
            # reader the buffering could disappoint.
            self._dirty = True
            if self._fsync:
                self._unsynced.append((offset, blob))
            return
        self._handle.flush()
        if self._fsync:
            datasync(self._handle.fileno())
            self._dirty = False
            self._unsynced.clear()
        else:
            self._dirty = True

    def _faulted_append(self, injector, blob: bytes) -> None:
        """The slow half of :meth:`_append`'s fault checks (injector armed)."""
        if injector.io_error(self.fault_site):
            raise OSError(f"injected I/O error appending to {self.path}")
        if injector.torn(self.fault_site):
            # Crash mid-write: half the record reaches the disk, the
            # process dies.  close() must not tidy up after a corpse.
            torn = blob[: max(1, len(blob) // 2)]
            self._offset += len(torn)
            self._handle.write(torn)
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._crashed = True
            raise _faults.InjectedCrash(
                f"torn write injected at {self.path}"
            )

    def sync(self) -> None:
        """Group-commit barrier: sync any appends buffered with ``sync=False``."""
        if self._closed or self._crashed:
            return
        if self._pending_done:
            # Materialise done marks deferred off the serving hot path.
            # They are advisory (losing one costs a bit-identical replay),
            # so they skip fault injection: a checkpoint must not crash on
            # a record whose loss is defined to be harmless.
            pending, self._pending_done = self._pending_done, []
            for record in pending:
                self._append(record, faultable=False, sync=False)
        if not self._dirty:
            return
        self._handle.flush()
        if self._fsync:
            datasync(self._handle.fileno())
        self._dirty = False
        self._unsynced.clear()

    def drain_unsynced(self) -> List[Tuple[int, bytes]]:
        """Hand off appends buffered with ``sync=False`` for external commit.

        Returns ``(ledger_offset, raw_record_bytes)`` pairs in append order
        and forgets them: the caller (the serving daemon's tenant store)
        takes over durability by copying the bytes into its own group-commit
        log and syncing *that* — one device flush per batch instead of one
        per touched tenant ledger.  This ledger file itself stays dirty, so
        a later :meth:`sync` (checkpoint/shutdown) still flushes it; until
        then restart recovery re-applies the commit-log copy at these exact
        byte offsets, which is idempotent against whatever prefix the page
        cache already persisted.
        """
        pending = self._unsynced
        self._unsynced = []
        # Deliberately NO flush here: pushing the ledger's dirty pages to
        # the OS every batch drags this file's metadata into the same
        # ext4 journal transaction the commit log's sync commits, making
        # that one ``fdatasync`` pay for every touched ledger anyway.
        # The drained records are fully recoverable from the commit log
        # (by byte offset), so the userspace buffer is loss-free; the
        # file itself catches up at :meth:`sync` (checkpoint/shutdown).
        return pending

    def charge(
        self,
        chunk: int,
        alpha: float,
        size: int,
        label: str = "",
        crc: Optional[int] = None,
        extra: Optional[dict] = None,
        sync: Optional[bool] = None,
    ) -> bool:
        """Durably charge one chunk; idempotent by chunk index.

        Returns ``True`` when the charge was applied now, ``False`` when
        the ledger already holds it (a resumed run replaying the schedule —
        the chunk is *not* double-counted, but its parameters must match
        the recorded ones or :class:`LedgerCorruptionError` is raised).
        An over-budget or invalid ``alpha`` raises *before* anything is
        appended: a refused release leaves no trace, durable or otherwise
        (the serving daemon journals the refusal separately via
        :meth:`record_refusal` because refusals consume substream spawns).
        ``extra`` lands as additional record keys (e.g. the daemon's design
        parameters, read back for idempotent request replay); ``sync=False``
        defers the fsync to a group-commit :meth:`sync`.
        """
        chunk = int(chunk)
        alpha = float(alpha)
        size = int(size)
        existing = self._charges.get(chunk)
        if existing is not None:
            if (
                float(existing["alpha"]) != alpha
                or int(existing["size"]) != size
                or (crc is not None and int(existing.get("crc", crc)) != int(crc))
            ):
                raise LedgerCorruptionError(
                    f"{self.path}: chunk {chunk} was charged as "
                    f"(alpha={existing['alpha']:g}, size={existing['size']}) but is "
                    f"now presented as (alpha={alpha:g}, size={size}); "
                    "the resumed run does not match the recorded one"
                )
            return False
        # Validate + budget-check before the WAL append, so refusals are
        # trace-free; mirrors charge_release()'s non-positive-alpha rule.
        # The budget comparison is can_release() inlined — alpha is already
        # validated here, so the accountant's re-validation is skipped.
        if not (0.0 < alpha <= 1.0):
            raise BudgetExceededError(
                f"release at alpha={alpha:g} has unbounded privacy cost "
                "(epsilon = inf); an accountant-guarded path cannot serve it"
            )
        accountant = self.accountant
        if accountant.spent_alpha() * alpha < accountant.alpha_target - 1e-15:
            raise BudgetExceededError(
                f"release at alpha={alpha:g} would push the guarantee below "
                f"the target {accountant.alpha_target:g} "
                f"(already spent alpha={accountant.spent_alpha():g})"
            )
        record = {
            "type": "charge",
            "chunk": chunk,
            "alpha": alpha,
            "size": size,
            "label": label,
        }
        if crc is not None:
            record["crc"] = int(crc)
        for key, value in (extra or {}).items():
            record.setdefault(key, value)
        payload = None
        if crc is not None:
            # Steady-state serving charges differ only in chunk and crc;
            # everything else is a per-tenant constant.  Serialise through
            # a cached, once-verified byte template instead of a full
            # sorted json.dumps per request.
            try:
                cache_key = (
                    alpha,
                    size,
                    label,
                    tuple(extra.items()) if extra else None,
                )
                template = self._charge_templates.get(cache_key, False)
            except TypeError:  # unhashable extra value (e.g. a dict)
                cache_key = (alpha, size, label, repr(extra))
                template = self._charge_templates.get(cache_key, False)
            if template is False:
                template = self._charge_template(record)
                if len(self._charge_templates) < 64:
                    self._charge_templates[cache_key] = template
            if template is not None:
                head, tail = template
                payload = (
                    head + b"%d" % chunk + b',"crc":' + b"%d" % record["crc"] + tail
                )
        if payload is not None and sync is False and not self._closed:
            # _append inlined for the serving hot path (template hit,
            # deferred sync): same framing, fault hook and offset/queue
            # bookkeeping, minus the call and the generic branches.
            blob = _RECORD_HEAD.pack(len(payload), zlib.crc32(payload)) + payload
            injector = _faults.get_injector()
            if (
                injector.io_error_rate > 0.0
                or injector.torn_write is not None
                or injector.torn_tenant_ledger is not None
            ):
                self._faulted_append(injector, blob)
            self._handle.write(blob)
            if self._fsync:
                self._unsynced.append((self._offset, blob))
            self._offset += len(blob)
            self._dirty = True
        else:
            self._append(record, sync=sync, payload=payload)
        # The inlined can_release() above already admitted this alpha;
        # record the spend without re-checking.
        accountant.record_admitted(alpha, label=label)
        self._charges[chunk] = record
        return True

    @staticmethod
    def _charge_template(record: dict) -> Optional[Tuple[bytes, bytes]]:
        """``(head, tail)`` bytes around a charge record's chunk/crc fields.

        Built once per record shape and verified against the canonical
        ``json.dumps(..., sort_keys=True)`` serialisation of ``record``
        itself — any shape the composition cannot reproduce exactly (an
        ``extra`` key sorting before ``"crc"``, say) returns ``None`` and
        stays on the generic path forever.
        """
        if sorted(record)[:3] != ["alpha", "chunk", "crc"]:
            return None
        head = ('{"alpha":%s,"chunk":' % json.dumps(record["alpha"])).encode("utf-8")
        rest = ",".join(
            "%s:%s"
            % (
                json.dumps(key),
                json.dumps(record[key], sort_keys=True, separators=(",", ":")),
            )
            for key in sorted(record)[3:]
        )
        tail = (",%s}" % rest).encode("utf-8")
        composed = (
            head + b"%d" % record["chunk"] + b',"crc":' + b"%d" % record["crc"] + tail
        )
        canonical = json.dumps(record, sort_keys=True, separators=(",", ":")).encode(
            "utf-8"
        )
        return (head, tail) if composed == canonical else None

    def record_refusal(
        self, chunk: int, label: str = "", sync: Optional[bool] = None
    ) -> bool:
        """Durably journal an over-budget refusal at ``chunk``; idempotent.

        Nothing is spent — the record exists because the *index* is
        consumed: the daemon's per-tenant ledgers map record indices to
        substream spawns, and a refusal consumes its spawn exactly as
        in-memory serving does, so recovery must count it to land on the
        same stream position.  Returns ``False`` when the ledger already
        holds this refusal (a replayed request).
        """
        chunk = int(chunk)
        if chunk in self._refusals:
            return False
        if chunk in self._charges:
            raise LedgerError(
                f"{self.path}: chunk {chunk} is already charged; it cannot "
                "also be refused"
            )
        record = {"type": "refusal", "chunk": chunk, "label": label}
        self._append(record, sync=sync)
        self._refusals[chunk] = record
        return True

    def mark_done(
        self,
        chunk: int,
        size: int,
        records: int,
        offset: int,
        sync: Optional[bool] = None,
        defer: bool = False,
    ) -> None:
        """Record that a charged chunk's output is durably at byte ``offset``.

        ``records`` is the *cumulative* released-count total through this
        chunk — what a resumed writer needs to rebuild its length header.
        ``sync=False`` skips the fsync: losing a done mark to a crash only
        costs one redundant (bit-identical) replay, never a double charge.
        ``defer=True`` goes further and skips the append itself until the
        next :meth:`sync` (checkpoint/close): the serving daemon marks
        hundreds of requests done per second and none of those marks is
        load-bearing — recovery treats a missing done mark exactly like a
        crash between charge and response, which replays bit-identically.
        """
        chunk = int(chunk)
        if chunk not in self._charges:
            raise LedgerError(
                f"{self.path}: chunk {chunk} cannot be done before it is charged"
            )
        if chunk in self._done:
            return
        record = {
            "type": "done",
            "chunk": chunk,
            "size": int(size),
            "records": int(records),
            "offset": int(offset),
        }
        if defer:
            self._done[chunk] = record
            self._pending_done.append(record)
            return
        self._append(record, sync=sync)
        self._done[chunk] = record

    # ------------------------------------------------------------------ #
    # Introspection / resume
    # ------------------------------------------------------------------ #
    def charged(self, chunk: int) -> bool:
        """Whether the ledger holds a charge for ``chunk``."""
        return int(chunk) in self._charges

    def refused(self, chunk: int) -> bool:
        """Whether the ledger holds a refusal for ``chunk``."""
        return int(chunk) in self._refusals

    def is_done(self, chunk: int) -> bool:
        """Whether ``chunk``'s output is recorded as durable."""
        return int(chunk) in self._done

    def charge_record(self, chunk: int) -> Optional[dict]:
        """The recorded charge for ``chunk`` (``None`` when not charged)."""
        record = self._charges.get(int(chunk))
        return None if record is None else dict(record)

    def refusal_count(self) -> int:
        """How many refusals the ledger holds."""
        return len(self._refusals)

    def next_index(self) -> int:
        """One past the highest recorded charge/refusal index (0 when empty).

        The daemon assigns request indices sequentially and every consumed
        index leaves a durable record (charge or refusal), so this is the
        restart position of a tenant's substream root.
        """
        indices = self._charges.keys() | self._refusals.keys()
        return 1 + max(indices) if indices else 0

    def verify_chunk(self, chunk: int, crc: int) -> None:
        """Check a skipped chunk's input counts against the recorded checksum.

        Raises :class:`LedgerCorruptionError` when the input stream a
        resumed run is skipping over differs from the one that was charged
        — resuming would then splice together two unrelated streams.
        """
        record = self._charges.get(int(chunk))
        if record is None or "crc" not in record:
            return
        if int(record["crc"]) != int(crc):
            raise LedgerCorruptionError(
                f"{self.path}: chunk {chunk}'s input counts differ from the "
                "charged stream (checksum mismatch); refusing to resume "
                "against a diverged input"
            )

    def resume_state(self) -> ResumeState:
        """The contiguous completed prefix: where a resumed run picks up."""
        next_chunk = 0
        records = 0
        offset: Optional[int] = None
        while next_chunk in self._done:
            record = self._done[next_chunk]
            records = int(record["records"])
            offset = int(record["offset"])
            next_chunk += 1
        return ResumeState(next_chunk=next_chunk, records=records, offset=offset)

    def spent_alpha(self) -> float:
        """The wrapped accountant's composed spend (durable by construction)."""
        return self.accountant.spent_alpha()

    def describe(self) -> str:
        """One-line summary for CLI ``--stats`` output."""
        return (
            f"ledger={self.path.name} charges={len(self._charges)} "
            f"refusals={len(self._refusals)} "
            f"done={len(self._done)} {self.accountant.describe()}"
        )

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Close the log file (a no-op after an injected crash)."""
        if self._closed or self._crashed:
            self._closed = True
            return
        self.sync()
        self._handle.close()
        self._closed = True

    def __enter__(self) -> "AccountantLedger":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
