"""Binary (``.npy``) stream I/O for the serving CLI.

At 10^6+ counts the text protocol of ``serve-stream`` stops being bounded
by sampling and starts being bounded by parsing: every count costs a line
split, an ``int()`` call and a string format on the way out.  This module
provides the binary alternative:

* :func:`open_npy_counts` — memory-map a ``.npy`` file of true counts and
  hand the array straight to :func:`~repro.engine.executor
  .iter_count_chunks`, which slices it without copying; no parsing at all.
* :class:`NpyCountWriter` — write released counts chunk by chunk into a
  valid ``.npy`` file without knowing the total length up front.  The
  header is written with a fixed padded size and back-patched with the
  final shape on :meth:`~NpyCountWriter.close`, so memory stays bounded by
  one chunk and an interrupted run (e.g. a budget refusal) still leaves a
  loadable file containing exactly the chunks flushed before the refusal.

The binary path releases byte-identical counts to the text path for the
same seed: both feed the same integers through the same executor
discipline; only the serialization differs.  The round trip is pinned by
the CLI test-suite.

Crash-safe resume (PR 7): the layout — a fixed 128-byte header followed by
``records`` little-endian int64 values — makes a partial file trivially
resumable.  ``NpyCountWriter(path, resume_records=k)`` truncates the file
to the ledger's last durable checkpoint (``128 + 8k`` bytes, discarding
any bytes a crash landed past it) and appends from there; :meth:`sync`
fsyncs so the checkpoint offset recorded in the ledger never runs ahead of
the bytes actually on disk.  The fault injector can tear a chunk write in
half (``REPRO_FAULTS=torn_npy``), after which the writer plays dead:
:meth:`close` refuses to back-patch the header, exactly as a killed
process would have left it.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.engine import faults as _faults

#: Total size of the back-patchable ``.npy`` header written by
#: :class:`NpyCountWriter`: magic (6) + version (2) + header length (2) +
#: padded header dict.  128 bytes leaves room for any count a ``(N,)``
#: int64 shape tuple can express.
_HEADER_TOTAL = 128

#: dtype released counts are stored as (matches the sampler's int64 output).
COUNT_DTYPE = np.dtype("<i8")


def _header_bytes(count: int) -> bytes:
    """A fixed-size version-1.0 ``.npy`` header for a 1-D int64 array."""
    body = "{'descr': '<i8', 'fortran_order': False, 'shape': (%d,), }" % int(count)
    prefix_len = 6 + 2 + 2  # magic + version + header-length field
    padding = _HEADER_TOTAL - prefix_len - len(body) - 1  # -1 for the final newline
    if padding < 0:  # pragma: no cover - needs a count of ~2**180
        raise ValueError(f"count {count} does not fit the fixed .npy header")
    header = (body + " " * padding + "\n").encode("latin1")
    return (
        b"\x93NUMPY"
        + bytes((1, 0))
        + len(header).to_bytes(2, "little")
        + header
    )


def open_npy_counts(path: Union[str, Path]) -> np.ndarray:
    """Memory-map a ``.npy`` count file for zero-copy streaming.

    Returns a read-only 1-D integer array (a ``numpy.memmap``); chunking it
    through the executor touches only the pages of the current chunk.
    Raises :class:`ValueError` for non-integer dtypes or non-1-D shapes —
    the failure modes a text stream would surface as parse errors.
    """
    array = np.load(Path(path), mmap_mode="r", allow_pickle=False)
    if array.ndim != 1:
        raise ValueError(
            f"{path}: expected a 1-D array of counts, got shape {array.shape}"
        )
    if not np.issubdtype(array.dtype, np.integer):
        raise ValueError(
            f"{path}: expected an integer dtype, got {array.dtype} "
            "(counts must be whole numbers)"
        )
    return array


class NpyCountWriter:
    """Incrementally write released counts as a single valid ``.npy`` file.

    Usage mirrors a file object: :meth:`write` per released chunk,
    :meth:`close` (or a ``with`` block) to finalise.  The header is written
    immediately with shape ``(0,)`` and back-patched with the real length
    at close, so the file on disk is loadable at every point after the
    first flush — a crash or budget refusal yields the prefix that was
    actually released, never a corrupt artifact.

    Pass ``resume_records`` to reopen a partial file at a known-good
    checkpoint: the file is truncated to exactly that many values (payload
    bytes past the checkpoint — a torn chunk from the crashed run — are
    discarded) and subsequent writes append after them.
    """

    def __init__(
        self, path: Union[str, Path], resume_records: Optional[int] = None
    ) -> None:
        self.path = Path(path)
        self._closed = False
        self._crashed = False
        if resume_records is None:
            self._handle = self.path.open("wb")
            self._handle.write(_header_bytes(0))
            self.records = 0
            return
        resume_records = int(resume_records)
        if resume_records < 0:
            raise ValueError("resume_records must be non-negative")
        keep = _HEADER_TOTAL + resume_records * COUNT_DTYPE.itemsize
        if not self.path.exists() or self.path.stat().st_size < keep:
            raise ValueError(
                f"{self.path}: cannot resume at {resume_records} records — the "
                f"file holds fewer bytes than the checkpoint ({keep}); the "
                "output does not match the ledger"
            )
        self._handle = self.path.open("r+b")
        self._handle.truncate(keep)
        self._handle.seek(keep)
        self.records = resume_records

    @property
    def offset(self) -> int:
        """Byte offset after the last fully written chunk (checkpoint value)."""
        return _HEADER_TOTAL + self.records * COUNT_DTYPE.itemsize

    def write(self, chunk: np.ndarray) -> None:
        """Append one chunk of released counts (any integer dtype)."""
        if self._closed:
            raise ValueError("writer is closed")
        values = np.ascontiguousarray(chunk, dtype=COUNT_DTYPE)
        if values.ndim != 1:
            raise ValueError("released chunks must be 1-D")
        injector = _faults.get_injector()
        if injector.io_error("npy_write"):
            raise OSError(f"injected I/O error writing to {self.path}")
        if injector.torn("npy_write"):
            # Crash mid-chunk: half the payload reaches the disk and the
            # process dies — records stays at the last full chunk, and
            # close() must not back-patch for a corpse.
            blob = values.tobytes()
            self._handle.write(blob[: max(1, len(blob) // 2)])
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._crashed = True
            raise _faults.InjectedCrash(f"torn .npy write injected at {self.path}")
        self._handle.write(values.tobytes())
        self.records += int(values.shape[0])

    def sync(self) -> None:
        """Flush and fsync the payload written so far (checkpoint barrier).

        Called before the ledger records a chunk as done, so the durable
        checkpoint never claims bytes the page cache could still lose.
        """
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        """Back-patch the header with the final count and close the file.

        After an injected crash this is a no-op: a dead process would
        never have reached the back-patch, and the resume path must see
        the file exactly as the crash left it.
        """
        if self._closed or self._crashed:
            self._closed = True
            return
        self._handle.flush()
        self._handle.seek(0)
        self._handle.write(_header_bytes(self.records))
        self._handle.close()
        self._closed = True

    def __enter__(self) -> "NpyCountWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def is_npy_path(path) -> bool:
    """Whether a CLI path argument selects the binary protocol."""
    return path is not None and Path(path).suffix.lower() == ".npy"
